//! Quickstart: match two traces to a common length.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a two-trace board, asks the router to bring the short trace up to
//! the long one's length, and verifies the result with the DRC checker.

use meander::core::{match_board_group, ExtendConfig};
use meander::geom::{Point, Polyline, Rect};
use meander::layout::{Board, MatchGroup, RoutableArea, Trace};

fn main() {
    // A 400×120 board with two roughly-parallel traces of different length.
    let mut board = Board::new(Rect::new(Point::new(0.0, 0.0), Point::new(400.0, 120.0)));

    let long = board.add_trace(Trace::new(
        "CLK",
        Polyline::new(vec![Point::new(10.0, 30.0), Point::new(390.0, 30.0)]),
        4.0,
    ));
    let short = board.add_trace(Trace::new(
        "DATA",
        Polyline::new(vec![Point::new(100.0, 90.0), Point::new(390.0, 90.0)]),
        4.0,
    ));

    // Each trace may meander inside its own corridor.
    board.set_area(
        long,
        RoutableArea::from_polygon(meander::geom::Polygon::rectangle(
            Point::new(0.0, 0.0),
            Point::new(400.0, 60.0),
        )),
    );
    board.set_area(
        short,
        RoutableArea::from_polygon(meander::geom::Polygon::rectangle(
            Point::new(90.0, 60.0),
            Point::new(400.0, 120.0),
        )),
    );

    // Match both to the longest member (CLK, 380 units).
    board.add_group(MatchGroup::new("grp", vec![long, short]));

    let report = match_board_group(&mut board, 0, &ExtendConfig::default());

    println!("target length: {:.3}", report.target);
    for t in &report.traces {
        println!(
            "  trace {}: {:.3} → {:.3} ({} patterns)",
            t.id, t.initial, t.achieved, t.patterns
        );
    }
    println!("max error: {:.4}%", report.max_error() * 100.0);
    println!("avg error: {:.4}%", report.avg_error() * 100.0);

    let violations = board.check();
    if violations.is_empty() {
        println!("DRC: clean");
    } else {
        for v in &violations {
            println!("DRC violation: {v}");
        }
        std::process::exit(1);
    }
}
