//! Differential-pair length matching through MSDTW (paper Sec. V).
//!
//! ```text
//! cargo run --release --example diff_pair
//! ```
//!
//! Takes the decoupled L-shaped pair (redundant corner nodes on P, a tiny
//! compensation pattern on N), merges it into a median trace, meanders the
//! median under the virtual DRC, and restores the pair.

use meander::core::{match_board_group, ExtendConfig};
use meander::layout::gen::decoupled_pair;
use meander::msdtw::{merge_pair, PairGeometry};

fn main() {
    let case = decoupled_pair(false);
    let mut board = case.board;

    let p0 = board.trace(case.p).expect("P").centerline().clone();
    let n0 = board.trace(case.n).expect("N").centerline().clone();
    println!(
        "input pair: P {} nodes / {:.2} long, N {} nodes / {:.2} long",
        p0.point_count(),
        p0.length(),
        n0.point_count(),
        n0.length()
    );

    // Show what MSDTW does with the decoupled geometry.
    let merged = merge_pair(&PairGeometry::new(&p0, &n0, case.sep0)).expect("mergeable pair");
    println!(
        "median: {} nodes, {:.2} long; {} matches, {} unpaired N-nodes (tiny pattern filtered)",
        merged.median.point_count(),
        merged.median.length(),
        merged.matches.len(),
        merged.unpaired_n.len()
    );

    // Full matching flow (merge → meander → restore happens inside).
    let report = match_board_group(&mut board, 0, &ExtendConfig::default());
    println!("target {:.2}", report.target);
    for t in &report.traces {
        println!(
            "  {} (msdtw={}): {:.2} → {:.2}",
            t.id, t.via_msdtw, t.initial, t.achieved
        );
    }
    println!("max error {:.3}%", report.max_error() * 100.0);

    // The restored pair must stay coupled.
    let p1 = board.trace(case.p).expect("P").centerline().clone();
    let n1 = board.trace(case.n).expect("N").centerline().clone();
    let pitch = p1.distance_to_polyline(&n1);
    println!("restored pair pitch: {:.2} (rule {:.2})", pitch, case.sep0);
    assert!(!p1.is_self_intersecting() && !n1.is_self_intersecting());
}
