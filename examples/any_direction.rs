//! Any-direction routing showcase (paper Fig. 14b): the same bus matched
//! at several arbitrary rotation angles — the capability that motivates
//! the paper's departure from gridded/octilinear meandering.
//!
//! ```text
//! cargo run --release --example any_direction
//! ```
//!
//! Writes `target/any_direction_<deg>.svg` for each angle.

use meander::core::{match_board_group, ExtendConfig};
use meander::geom::Angle;
use meander::layout::gen::any_angle_bus;
use meander::layout::svg::{render_board, SvgStyle};

fn main() {
    std::fs::create_dir_all("target").expect("target dir");
    for deg in [0.0, 17.0, 45.0, 73.0, 120.0] {
        let mut board = any_angle_bus(4, Angle::from_degrees(deg));
        let report = match_board_group(&mut board, 0, &ExtendConfig::default());
        let violations = board.check();
        println!(
            "angle {deg:>5.1}°: max err {:.3}%, avg {:.3}%, patterns {}, DRC {}",
            report.max_error() * 100.0,
            report.avg_error() * 100.0,
            report.traces.iter().map(|t| t.patterns).sum::<usize>(),
            if violations.is_empty() {
                "clean"
            } else {
                "DIRTY"
            }
        );
        assert!(violations.is_empty(), "{violations:?}");

        let svg = render_board(&board, &SvgStyle::default());
        let path = format!("target/any_direction_{deg:.0}.svg");
        std::fs::write(&path, svg).expect("write svg");
        println!("  wrote {path}");
    }
}
