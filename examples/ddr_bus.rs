//! DDR-style byte lane: eight traces, dense corridors, via obstacles —
//! the workload of the paper's Table I cases 1–4 — with automatic region
//! assignment (paper Sec. III) instead of hand-drawn corridors.
//!
//! ```text
//! cargo run --release --example ddr_bus
//! ```
//!
//! Writes `target/ddr_bus.svg` with the matched result.

use meander::core::{match_board_group, ExtendConfig};
use meander::layout::gen::table1_case;
use meander::layout::svg::{render_board, SvgStyle};
use meander::region::assign;

fn main() {
    let mut case = table1_case(1);
    println!(
        "case 1: {} traces, ltarget {:.2}, dgap {}",
        case.board.trace_count(),
        case.ltarget,
        case.dgap
    );

    // Stage 1 (Sec. III): LP-based region assignment. The generator already
    // provides corridors; we re-derive them from scratch to exercise the
    // whole pipeline, falling back to the generator's corridors if the LP
    // declares the decomposition infeasible at this cell size.
    // Cell size = half the corridor pitch so cells nest into one corridor
    // each; reach just over half a pitch keeps regions with their nearest
    // trace.
    let group = case.board.groups()[0].clone();
    match assign(&case.board, &group, 2.5 * case.dgap, 2.6 * case.dgap) {
        Ok(assignment) => {
            println!(
                "region assignment: {} grants across {} traces",
                assignment.grants.len(),
                assignment.areas.len()
            );
            for (id, area) in assignment.areas {
                case.board.set_area(id, area);
            }
        }
        Err(e) => println!("region assignment infeasible ({e}); using generator corridors"),
    }

    // Stage 2 (Sec. IV): DP-based meandering.
    let report = match_board_group(&mut case.board, 0, &ExtendConfig::default());
    println!("target {:.2}", report.target);
    for t in &report.traces {
        println!(
            "  {}: {:.2} → {:.2} (err {:.3}%)",
            t.id,
            t.initial,
            t.achieved,
            (report.target - t.achieved) / report.target * 100.0
        );
    }
    println!(
        "max error {:.3}%, avg {:.3}%, runtime {:?}",
        report.max_error() * 100.0,
        report.avg_error() * 100.0,
        report.runtime
    );

    let svg = render_board(&case.board, &SvgStyle::default());
    std::fs::create_dir_all("target").expect("target dir");
    std::fs::write("target/ddr_bus.svg", svg).expect("write svg");
    println!("wrote target/ddr_bus.svg");

    let violations = case.board.check();
    assert!(violations.is_empty(), "DRC violations: {violations:?}");
    println!("DRC: clean");
}
