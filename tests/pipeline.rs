//! End-to-end integration tests across the whole workspace: generators →
//! region assignment → MSDTW → DP meandering → DRC verification, through
//! the `meander` facade.

use meander::core::baseline::{extend_trace_fixed, match_group_aidt, FixedTrackOptions};
use meander::core::extend::{extend_trace, ExtendInput};
use meander::core::{match_board_group, ExtendConfig};
use meander::geom::Angle;
use meander::layout::gen::{any_angle_bus, decoupled_pair, table1_case, table2_case};
use meander::layout::io::{load_board, save_board};
use meander::layout::MatchGroup;
use meander::region::assign;

/// The tier-1 acceptance group: the paper's headline single-board
/// scenario plus the serving path (a cached mini-fleet routed twice).
/// `cargo test --test pipeline tier1` runs exactly this gate.
mod tier1 {
    use super::*;
    use meander::fleet::{route_fleet, BoardSet, FleetConfig, ResultCache};
    use meander::layout::gen::dup_fleet_boards_small;
    use std::sync::Arc;

    #[test]
    fn table1_case1_end_to_end() {
        let mut case = table1_case(1);
        let report = match_board_group(&mut case.board, 0, &ExtendConfig::default());
        assert!(
            report.max_error() < 0.06,
            "max err {:.4}",
            report.max_error()
        );
        assert!(report.avg_error() < 0.03);
        let violations = case.board.check();
        assert!(violations.is_empty(), "{violations:?}");
    }

    /// A 4-board duplicate-heavy fleet through the content-addressed
    /// cache, twice: the warm pass serves every job from the cache, the
    /// routed geometry is bit-identical across passes, and every board
    /// materializes DRC-clean.
    #[test]
    fn cached_mini_fleet_serves_warm_pass() {
        let fleet = dup_fleet_boards_small(4, 0.5, 19);
        let cache = Arc::new(ResultCache::default());
        let cfg = FleetConfig {
            workers: Some(2),
            cache: Some(Arc::clone(&cache)),
            ..Default::default()
        };
        let mut cold = BoardSet::new(fleet.boards.clone());
        let first = route_fleet(&mut cold, &cfg);
        assert!(first.all_routed(), "{:?}", first.outcomes);
        assert!(first.stats.cache_misses > 0, "cold pass routes");

        let mut warm = BoardSet::new(fleet.boards.clone());
        let second = route_fleet(&mut warm, &cfg);
        assert!(second.all_routed());
        assert_eq!(
            second.stats.cache_hits as usize, second.stats.units,
            "warm pass serves every unit packet from the cache"
        );
        for (a, b) in cold.boards().iter().zip(warm.boards()) {
            for (id, t) in a.board().traces() {
                assert_eq!(
                    t.centerline(),
                    b.board().trace(id).expect("same traces").centerline(),
                    "warm pass must replay the cold pass bit for bit"
                );
            }
        }
        for lb in warm.boards() {
            let violations = lb.to_board().check();
            assert!(violations.is_empty(), "{violations:?}");
        }
    }
}

#[test]
fn all_table1_cases_beat_baseline_on_error() {
    for case_no in 1..=4 {
        let mut ours_case = table1_case(case_no);
        let ours = match_board_group(&mut ours_case.board, 0, &ExtendConfig::default());
        let mut base_case = table1_case(case_no);
        let base = match_group_aidt(&mut base_case.board, 0, &ExtendConfig::default());
        assert!(
            ours.max_error() <= base.max_error() + 1e-9,
            "case {case_no}: ours {:.4} vs baseline {:.4}",
            ours.max_error(),
            base.max_error()
        );
    }
}

#[test]
fn table2_dp_dominates_at_tight_drc() {
    let case = table2_case(6);
    let trace = case.board.trace(case.trace).expect("trace").clone();
    let area = case
        .board
        .area(case.trace)
        .expect("area")
        .polygons()
        .to_vec();
    let obstacles: Vec<_> = case
        .board
        .obstacles()
        .iter()
        .map(|o| o.polygon().clone())
        .collect();
    let rules = *trace.rules();
    let input = ExtendInput {
        trace: trace.centerline(),
        target: trace.length() * 50.0,
        rules: &rules,
        area: &area,
        obstacles: &obstacles,
    };
    let config = ExtendConfig {
        max_iterations: 1000,
        ..ExtendConfig::default()
    };
    let dp = extend_trace(&input, &config);
    let fixed = extend_trace_fixed(&input, &config, &FixedTrackOptions::default());
    assert!(
        dp.achieved > fixed.achieved * 1.3,
        "DP {:.1} vs fixed {:.1}",
        dp.achieved,
        fixed.achieved
    );
}

#[test]
fn any_angle_bus_matches_at_odd_angles() {
    for deg in [17.0, 73.0, 159.0] {
        let mut board = any_angle_bus(3, Angle::from_degrees(deg));
        let report = match_board_group(&mut board, 0, &ExtendConfig::default());
        assert!(
            report.max_error() < 0.05,
            "angle {deg}: max err {:.4}",
            report.max_error()
        );
        let violations = board.check();
        assert!(violations.is_empty(), "angle {deg}: {violations:?}");
    }
}

#[test]
fn decoupled_pair_via_msdtw_stays_coupled() {
    let case = decoupled_pair(false);
    let mut board = case.board;
    let report = match_board_group(&mut board, 0, &ExtendConfig::default());
    assert!(report.traces.iter().all(|t| t.via_msdtw));
    assert!(report.max_error() < 0.05, "{:.4}", report.max_error());
    let p = board.trace(case.p).expect("p").centerline().clone();
    let n = board.trace(case.n).expect("n").centerline().clone();
    let pitch = p.distance_to_polyline(&n);
    assert!(
        (pitch - case.sep0).abs() < case.sep0 * 0.5,
        "pitch {pitch} vs rule {}",
        case.sep0
    );
}

#[test]
fn multi_dra_pair_matches() {
    let case = decoupled_pair(true);
    let mut board = case.board;
    let report = match_board_group(&mut board, 0, &ExtendConfig::default());
    // Multi-DRA pairs are harder; still expect a large improvement over
    // the initial state.
    let init_err: f64 = report
        .traces
        .iter()
        .map(|t| (report.target - t.initial) / report.target)
        .fold(0.0, f64::max);
    assert!(
        report.max_error() < init_err / 2.0,
        "init {init_err:.4} → {:.4}",
        report.max_error()
    );
}

#[test]
fn save_load_match_round_trip() {
    let case = table1_case(2);
    let text = save_board(&case.board).expect("save");
    let mut loaded = load_board(&text).expect("load");
    let report = match_board_group(&mut loaded, 0, &ExtendConfig::default());
    assert!(report.max_error() < 0.06, "{:.4}", report.max_error());
    let violations = loaded.check();
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn region_assignment_feeds_extension() {
    let mut case = table1_case(3);
    let group: MatchGroup = case.board.groups()[0].clone();
    let assignment =
        assign(&case.board, &group, 2.5 * case.dgap, 2.6 * case.dgap).expect("assignment feasible");
    for (id, area) in assignment.areas {
        case.board.set_area(id, area);
    }
    let report = match_board_group(&mut case.board, 0, &ExtendConfig::default());
    // LP corridors are narrower than the generator's; expect meaningful
    // improvement over the initial 36% even if not the tuned-corridor 4%.
    assert!(
        report.max_error() < 0.20,
        "max err {:.4}",
        report.max_error()
    );
    let violations = case.board.check();
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn matching_preserves_original_endpoints() {
    let mut case = table1_case(4);
    let before: Vec<_> = case
        .board
        .traces()
        .map(|(_, t)| (t.centerline().start(), t.centerline().end()))
        .collect();
    let _ = match_board_group(&mut case.board, 0, &ExtendConfig::default());
    for ((id, t), (s, e)) in case.board.traces().zip(before) {
        assert!(
            t.centerline().start().approx_eq(s) && t.centerline().end().approx_eq(e),
            "trace {id} endpoints moved"
        );
    }
}

#[test]
fn matching_never_overshoots_target() {
    for case_no in 1..=4 {
        let mut case = table1_case(case_no);
        let report = match_board_group(&mut case.board, 0, &ExtendConfig::default());
        for t in &report.traces {
            assert!(
                t.achieved <= report.target + 1e-6,
                "case {case_no}, {}: overshoot {} > {}",
                t.id,
                t.achieved,
                report.target
            );
        }
    }
}
