//! Property-based tests for the geometry substrate.
//!
//! These pin down the invariants the router relies on: frame transforms are
//! isometries, intersection predicates are symmetric and agree with distance
//! predicates, offsetting maintains its distance contract, and mitering never
//! lengthens a trace.

use meander_geom::batch::{
    distance_sq_to_point_batch, distance_sq_to_segment_batch, intersect_x_range_batch, min_argmin,
    vertical_side_min_cap, PointBatch, SegBatch,
};
use meander_geom::offset::offset_polyline;
use meander_geom::{
    segment_intersection, Frame, Point, Polygon, Polyline, Rect, Segment, SegmentIntersection,
    Vector,
};
use proptest::prelude::*;

fn pt_strategy() -> impl Strategy<Value = Point> {
    (-100.0..100.0f64, -100.0..100.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn seg_strategy() -> impl Strategy<Value = Segment> {
    (pt_strategy(), pt_strategy())
        .prop_filter("non-degenerate", |(a, b)| a.distance(*b) > 1e-3)
        .prop_map(|(a, b)| Segment::new(a, b))
}

fn polyline_strategy() -> impl Strategy<Value = Polyline> {
    proptest::collection::vec(pt_strategy(), 2..10)
        .prop_filter("consecutive points distinct", |pts| {
            pts.windows(2).all(|w| w[0].distance(w[1]) > 1e-2)
        })
        .prop_map(Polyline::new)
}

/// Candidate sets for the batch kernels: a mix of generic segments,
/// degenerate zero-length segments, axis-aligned runs that bait collinear
/// overlaps against axis-aligned probes, and near-vertical edges that force
/// the side kernels' parallel fallback.
fn mixed_seg_vec() -> impl Strategy<Value = Vec<Segment>> {
    proptest::collection::vec(
        (0usize..5, pt_strategy(), pt_strategy(), 0.1..30.0f64),
        1..32,
    )
    .prop_map(|items| {
        items
            .into_iter()
            .map(|(tag, a, b, len)| match tag {
                0 => Segment::new(a, a),
                1 => Segment::new(Point::new(a.x, 0.0), Point::new(a.x + len, 0.0)),
                2 => Segment::new(Point::new(a.x, a.y), Point::new(a.x, a.y + len)),
                _ => Segment::new(a, b),
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn batched_segment_distances_bit_identical(
        segs in mixed_seg_vec(),
        probe_tag in 0usize..3,
        pa in pt_strategy(),
        pb in pt_strategy(),
    ) {
        // Axis-aligned probes collide with the collinear bait; the third
        // variant exercises arbitrary angles.
        let probe = match probe_tag {
            0 => Segment::new(Point::new(pa.x, 0.0), Point::new(pb.x, 0.0)),
            1 => Segment::new(pa, pa),
            _ => Segment::new(pa, pb),
        };
        let mut batch = SegBatch::new();
        for s in &segs {
            batch.push(s);
        }
        let mut dsq = Vec::new();
        distance_sq_to_segment_batch(&probe, &batch, &mut dsq);
        for (i, s) in segs.iter().enumerate() {
            let scalar = probe.distance_to_segment(s);
            prop_assert_eq!(
                dsq[i].sqrt().to_bits(),
                scalar.to_bits(),
                "lane {}: batched {} vs scalar {}",
                i,
                dsq[i].sqrt(),
                scalar
            );
        }
        // The strict-min reduction picks the scalar scan's winner.
        if let Some((win, best)) = min_argmin(&dsq) {
            let mut sw = 0;
            let mut sb = f64::INFINITY;
            for (i, s) in segs.iter().enumerate() {
                let d = probe.distance_to_segment(s);
                if d < sb {
                    sb = d;
                    sw = i;
                }
            }
            prop_assert_eq!(win, sw);
            prop_assert_eq!(best.sqrt().to_bits(), sb.to_bits());
        }
    }

    #[test]
    fn batched_point_distances_bit_identical(
        seg in seg_strategy(),
        pts in proptest::collection::vec(pt_strategy(), 1..40),
        degenerate in 0usize..2,
    ) {
        let probe = if degenerate == 1 {
            Segment::new(seg.a, seg.a)
        } else {
            seg
        };
        let mut pb = PointBatch::new();
        for &p in &pts {
            pb.push(p);
        }
        let mut dsq = Vec::new();
        distance_sq_to_point_batch(&probe, &pb, &mut dsq);
        for (i, &p) in pts.iter().enumerate() {
            prop_assert_eq!(
                dsq[i].sqrt().to_bits(),
                probe.distance_to_point(p).to_bits(),
                "lane {}", i
            );
        }
    }

    #[test]
    fn batched_side_caps_bit_identical(
        segs in mixed_seg_vec(),
        x0 in -40.0..40.0f64,
        step in 0.5..4.0f64,
        yhi in 5.0..60.0f64,
        seg_len in 10.0..200.0f64,
    ) {
        // Reference: the scalar stage-1 contribution of a vertical side.
        let ylo = 1e-7;
        let cap_of = |x: f64, e: &Segment| -> f64 {
            let side = Segment::new(Point::new(x, ylo), Point::new(x, yhi));
            let baseline = Segment::new(Point::ORIGIN, Point::new(seg_len, 0.0));
            match segment_intersection(&side, e) {
                SegmentIntersection::None => f64::INFINITY,
                SegmentIntersection::Point(p) => baseline.distance_to_point(p),
                SegmentIntersection::Overlap(o) => baseline
                    .distance_to_point(o.a)
                    .min(baseline.distance_to_point(o.b)),
            }
        };
        // Lane-parallel over positions, one edge at a time.
        let xs: Vec<f64> = (0..24).map(|p| x0 + p as f64 * step).collect();
        for e in &segs {
            let mut caps = vec![f64::INFINITY; xs.len()];
            intersect_x_range_batch(&xs, ylo, yhi, e, seg_len, &mut caps);
            for (i, &x) in xs.iter().enumerate() {
                prop_assert_eq!(
                    caps[i].to_bits(),
                    cap_of(x, e).to_bits(),
                    "edge at lane {}", i
                );
            }
        }
        // Lane-parallel over edges, one position at a time.
        let mut batch = SegBatch::new();
        for s in &segs {
            batch.push(s);
        }
        for &x in xs.iter().step_by(5) {
            let got = vertical_side_min_cap(x, ylo, yhi, &batch, seg_len);
            let expect = segs
                .iter()
                .map(|e| cap_of(x, e))
                .fold(f64::INFINITY, f64::min);
            prop_assert_eq!(got.to_bits(), expect.to_bits());
        }
    }
}

proptest! {
    #[test]
    fn frame_round_trip_is_identity(seg in seg_strategy(), p in pt_strategy()) {
        let f = Frame::from_segment(&seg).unwrap();
        let rt = f.to_world(f.to_local(p));
        prop_assert!(rt.distance(p) < 1e-7);
    }

    #[test]
    fn frame_is_isometry(seg in seg_strategy(), p in pt_strategy(), q in pt_strategy()) {
        let f = Frame::from_segment(&seg).unwrap();
        let d_world = p.distance(q);
        let d_local = f.to_local(p).distance(f.to_local(q));
        prop_assert!((d_world - d_local).abs() < 1e-7);
    }

    #[test]
    fn segment_maps_onto_local_x_axis(seg in seg_strategy()) {
        let f = Frame::from_segment(&seg).unwrap();
        let b = f.to_local(seg.b);
        prop_assert!(b.y.abs() < 1e-7);
        prop_assert!((b.x - seg.length()).abs() < 1e-7);
    }

    #[test]
    fn intersection_is_symmetric(s1 in seg_strategy(), s2 in seg_strategy()) {
        let a = segment_intersection(&s1, &s2);
        let b = segment_intersection(&s2, &s1);
        // The *kind* of result must agree both ways.
        prop_assert_eq!(
            std::mem::discriminant(&a),
            std::mem::discriminant(&b)
        );
        // And a point intersection must lie on both segments.
        if let SegmentIntersection::Point(p) = a {
            prop_assert!(s1.distance_to_point(p) < 1e-6);
            prop_assert!(s2.distance_to_point(p) < 1e-6);
        }
    }

    #[test]
    fn distance_zero_iff_intersecting(s1 in seg_strategy(), s2 in seg_strategy()) {
        let d = s1.distance_to_segment(&s2);
        let hit = !matches!(segment_intersection(&s1, &s2), SegmentIntersection::None);
        if hit {
            prop_assert!(d < 1e-9);
        } else {
            prop_assert!(d > 0.0);
        }
    }

    #[test]
    fn closest_point_minimizes(seg in seg_strategy(), p in pt_strategy(), t in 0.0..1.0f64) {
        let d_closest = seg.distance_to_point(p);
        let d_other = seg.point_at(t).distance(p);
        prop_assert!(d_closest <= d_other + 1e-9);
    }

    #[test]
    fn rect_from_points_contains_all(pts in proptest::collection::vec(pt_strategy(), 1..20)) {
        let r = Rect::from_points(pts.iter().copied()).unwrap();
        for p in &pts {
            prop_assert!(r.contains(*p));
        }
    }

    #[test]
    fn polygon_bbox_contains_polygon_samples(c in pt_strategy(), r in 0.5..20.0f64, n in 3usize..10) {
        let poly = Polygon::regular(c, r, n, 0.3);
        let bbox = poly.bbox();
        for v in poly.vertices() {
            prop_assert!(bbox.contains(*v));
        }
        // Centroid of a regular polygon is inside both.
        prop_assert!(poly.contains(c));
        prop_assert!(bbox.contains(c));
    }

    #[test]
    fn regular_polygon_containment_matches_radius(
        c in pt_strategy(), r in 1.0..20.0f64, n in 8usize..24, probe_angle in 0.0..(2.0 * std::f64::consts::PI)
    ) {
        let poly = Polygon::regular(c, r, n, 0.0);
        // Inradius = r·cos(π/n); points clearly inside the inradius are
        // contained, points clearly outside the circumradius are not.
        let inr = r * (std::f64::consts::PI / n as f64).cos();
        let dir = Vector::new(probe_angle.cos(), probe_angle.sin());
        let inside = c + dir * (inr * 0.9);
        let outside = c + dir * (r * 1.1);
        prop_assert!(poly.contains(inside));
        prop_assert!(!poly.contains(outside));
    }

    #[test]
    fn polyline_simplify_preserves_length_and_ends(pl in polyline_strategy()) {
        let mut s = pl.clone();
        s.simplify();
        prop_assert!((s.length() - pl.length()).abs() < 1e-6);
        prop_assert!(s.start().approx_eq(pl.start()));
        prop_assert!(s.end().approx_eq(pl.end()));
        prop_assert!(s.point_count() <= pl.point_count());
    }

    #[test]
    fn point_at_length_is_on_polyline(pl in polyline_strategy(), t in 0.0..1.0f64) {
        let p = pl.point_at_length(pl.length() * t);
        prop_assert!(pl.distance_to_point(p) < 1e-6);
    }

    #[test]
    fn offset_keeps_distance_on_straight_runs(
        a in pt_strategy(), dir_deg in 0.0..360.0f64, len in 5.0..50.0f64, d in 0.2..3.0f64
    ) {
        let dir = Vector::new(dir_deg.to_radians().cos(), dir_deg.to_radians().sin());
        let pl = Polyline::new(vec![a, a + dir * len]);
        let off = offset_polyline(&pl, d).unwrap();
        // Sample the offset mid-point: must be exactly d away.
        let mid = off.point_at_length(off.length() / 2.0);
        prop_assert!((pl.distance_to_point(mid) - d).abs() < 1e-6);
        // And on the left side.
        prop_assert!(pl.segment(0).signed_line_distance(mid) > 0.0);
    }

    #[test]
    fn miter_never_lengthens(pl in polyline_strategy(), dm in 0.01..2.0f64) {
        let m = meander_geom::miter::miter_polyline(&pl, dm);
        prop_assert!(m.length() <= pl.length() + 1e-9);
        prop_assert!(m.start().approx_eq(pl.start()));
        prop_assert!(m.end().approx_eq(pl.end()));
    }

    #[test]
    fn signed_area_negates_on_reversal(c in pt_strategy(), r in 0.5..10.0f64, n in 3usize..12) {
        let poly = Polygon::regular(c, r, n, 0.1);
        let mut rev: Vec<Point> = poly.vertices().to_vec();
        rev.reverse();
        let rpoly = Polygon::new(rev);
        prop_assert!((poly.signed_area() + rpoly.signed_area()).abs() < 1e-9);
    }

    #[test]
    fn polygon_edges_close_the_ring(c in pt_strategy(), r in 0.5..10.0f64, n in 3usize..12) {
        let poly = Polygon::regular(c, r, n, 0.0);
        let edges: Vec<Segment> = poly.edges().collect();
        prop_assert_eq!(edges.len(), n);
        for w in edges.windows(2) {
            prop_assert!(w[0].b.approx_eq(w[1].a));
        }
        prop_assert!(edges.last().unwrap().b.approx_eq(edges[0].a));
    }
}
