//! Planar vectors (displacements and directions).

use crate::angle::Angle;
use crate::eps::{approx_zero, EPS};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A displacement in the board plane.
///
/// Distinct from [`crate::Point`] per the newtype guidance: a position and a
/// displacement must never be confused in clearance arithmetic.
///
/// ```
/// use meander_geom::Vector;
/// let v = Vector::new(3.0, 4.0);
/// assert_eq!(v.norm(), 5.0);
/// assert_eq!(v.perp(), Vector::new(-4.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vector {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
}

impl Vector {
    /// The zero vector.
    pub const ZERO: Vector = Vector { x: 0.0, y: 0.0 };
    /// Unit vector along +x.
    pub const UNIT_X: Vector = Vector { x: 1.0, y: 0.0 };
    /// Unit vector along +y.
    pub const UNIT_Y: Vector = Vector { x: 0.0, y: 1.0 };

    /// Creates a vector from its components.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Vector { x, y }
    }

    /// Unit vector at `angle` from the +x axis.
    #[inline]
    pub fn from_angle(angle: Angle) -> Self {
        Vector::new(angle.radians().cos(), angle.radians().sin())
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared norm.
    #[inline]
    pub fn norm_sq(&self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    #[inline]
    pub fn dot(&self, other: Vector) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2D cross product (z component of the 3D cross, a.k.a. perp-dot).
    ///
    /// Positive when `other` lies counter-clockwise of `self`. This is the
    /// orientation predicate the whole crate is built on.
    #[inline]
    pub fn cross(&self, other: Vector) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Counter-clockwise perpendicular (rotate by +90°).
    #[inline]
    pub fn perp(&self) -> Vector {
        Vector::new(-self.y, self.x)
    }

    /// Returns the unit vector with the same direction, or `None` for a
    /// (near-)zero vector.
    pub fn normalized(&self) -> Option<Vector> {
        let n = self.norm();
        if n <= EPS {
            None
        } else {
            Some(Vector::new(self.x / n, self.y / n))
        }
    }

    /// Rotates counter-clockwise by `angle`.
    pub fn rotated(&self, angle: Angle) -> Vector {
        let (s, c) = angle.radians().sin_cos();
        Vector::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// Angle from the +x axis, in `(-π, π]`.
    pub fn angle(&self) -> Angle {
        Angle::from_radians(self.y.atan2(self.x))
    }

    /// `true` when this vector is (near-)zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        approx_zero(self.x) && approx_zero(self.y)
    }

    /// `true` when `self` and `other` are parallel (possibly anti-parallel)
    /// within tolerance, scaled by the vector magnitudes.
    pub fn is_parallel(&self, other: Vector) -> bool {
        let scale = (self.norm() * other.norm()).max(1.0);
        self.cross(other).abs() <= EPS * scale
    }
}

impl Add for Vector {
    type Output = Vector;
    #[inline]
    fn add(self, rhs: Vector) -> Vector {
        Vector::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vector {
    #[inline]
    fn add_assign(&mut self, rhs: Vector) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Vector {
    type Output = Vector;
    #[inline]
    fn sub(self, rhs: Vector) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vector {
    #[inline]
    fn sub_assign(&mut self, rhs: Vector) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;
    #[inline]
    fn mul(self, rhs: f64) -> Vector {
        Vector::new(self.x * rhs, self.y * rhs)
    }
}

impl Neg for Vector {
    type Output = Vector;
    #[inline]
    fn neg(self) -> Vector {
        Vector::new(-self.x, -self.y)
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.4}, {:.4}>", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn norm_and_dot() {
        let v = Vector::new(3.0, 4.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_sq(), 25.0);
        assert_eq!(v.dot(Vector::new(1.0, 0.0)), 3.0);
    }

    #[test]
    fn cross_sign_encodes_orientation() {
        let x = Vector::UNIT_X;
        let y = Vector::UNIT_Y;
        assert!(x.cross(y) > 0.0);
        assert!(y.cross(x) < 0.0);
        assert_eq!(x.cross(x), 0.0);
    }

    #[test]
    fn perp_is_ccw_quarter_turn() {
        assert_eq!(Vector::UNIT_X.perp(), Vector::UNIT_Y);
        assert_eq!(Vector::UNIT_Y.perp(), Vector::new(-1.0, 0.0));
    }

    #[test]
    fn normalized_unit_or_none() {
        assert!(Vector::ZERO.normalized().is_none());
        let u = Vector::new(0.0, 2.5).normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert!(u.is_parallel(Vector::UNIT_Y));
    }

    #[test]
    fn rotation_by_quarter_and_half_turn() {
        let v = Vector::UNIT_X;
        let r = v.rotated(Angle::from_radians(FRAC_PI_2));
        assert!((r.x).abs() < 1e-12 && (r.y - 1.0).abs() < 1e-12);
        let r = v.rotated(Angle::from_radians(PI));
        assert!((r.x + 1.0).abs() < 1e-12 && (r.y).abs() < 1e-12);
    }

    #[test]
    fn angle_round_trip() {
        for deg in [-170.0, -90.0, -45.0, 0.0, 30.0, 90.0, 135.0, 179.0] {
            let a = Angle::from_degrees(deg);
            let v = Vector::from_angle(a);
            assert!(
                (v.angle().radians() - a.radians()).abs() < 1e-9,
                "deg={deg}"
            );
        }
    }

    #[test]
    fn parallel_detection() {
        assert!(Vector::new(1.0, 2.0).is_parallel(Vector::new(-2.0, -4.0)));
        assert!(!Vector::new(1.0, 2.0).is_parallel(Vector::new(2.0, 1.0)));
    }

    #[test]
    fn arithmetic_ops() {
        let a = Vector::new(1.0, 2.0);
        let b = Vector::new(3.0, -1.0);
        assert_eq!(a + b, Vector::new(4.0, 1.0));
        assert_eq!(a - b, Vector::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vector::new(2.0, 4.0));
        assert_eq!(-a, Vector::new(-1.0, -2.0));
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }
}
