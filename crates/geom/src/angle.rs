//! Angles with explicit unit handling.

use std::f64::consts::PI;
use std::fmt;
use std::ops::{Add, Neg, Sub};

/// An angle, stored in radians.
///
/// The paper's headline feature is *any-direction* routing: traces are not
/// restricted to 90°/135° directions, so angles appear throughout the router
/// (segment directions, frame rotations, corner classification for mitering).
///
/// ```
/// use meander_geom::Angle;
/// let a = Angle::from_degrees(135.0);
/// assert!((a.degrees() - 135.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Angle(f64);

impl Angle {
    /// Zero angle.
    pub const ZERO: Angle = Angle(0.0);

    /// Creates an angle from radians.
    #[inline]
    pub fn from_radians(r: f64) -> Self {
        Angle(r)
    }

    /// Creates an angle from degrees.
    #[inline]
    pub fn from_degrees(d: f64) -> Self {
        Angle(d.to_radians())
    }

    /// Value in radians.
    #[inline]
    pub fn radians(&self) -> f64 {
        self.0
    }

    /// Value in degrees.
    #[inline]
    pub fn degrees(&self) -> f64 {
        self.0.to_degrees()
    }

    /// Normalizes into `(-π, π]`.
    pub fn normalized(&self) -> Angle {
        let mut r = self.0 % (2.0 * PI);
        if r <= -PI {
            r += 2.0 * PI;
        } else if r > PI {
            r -= 2.0 * PI;
        }
        Angle(r)
    }

    /// `true` when, after normalization, the angle magnitude is strictly less
    /// than 90° minus tolerance — i.e. an *acute* rotation between
    /// consecutive segments, which the `dmiter` rule must chamfer
    /// (paper Sec. II: "any rotation of a right angle or an acute angle will
    /// be mitered by obtuse angles").
    pub fn is_acute_turn(&self) -> bool {
        let a = self.normalized().radians().abs();
        a > PI / 2.0 + 1e-9
    }

    /// `true` when the normalized magnitude is a right-angle turn within
    /// tolerance.
    pub fn is_right_turn(&self) -> bool {
        let a = self.normalized().radians().abs();
        (a - PI / 2.0).abs() <= 1e-9
    }
}

impl Add for Angle {
    type Output = Angle;
    #[inline]
    fn add(self, rhs: Angle) -> Angle {
        Angle(self.0 + rhs.0)
    }
}

impl Sub for Angle {
    type Output = Angle;
    #[inline]
    fn sub(self, rhs: Angle) -> Angle {
        Angle(self.0 - rhs.0)
    }
}

impl Neg for Angle {
    type Output = Angle;
    #[inline]
    fn neg(self) -> Angle {
        Angle(-self.0)
    }
}

impl fmt::Display for Angle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}°", self.degrees())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let a = Angle::from_degrees(45.0);
        assert!((a.radians() - PI / 4.0).abs() < 1e-12);
        assert!((Angle::from_radians(PI).degrees() - 180.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_into_half_open_interval() {
        assert!((Angle::from_degrees(540.0).normalized().degrees() - 180.0).abs() < 1e-9);
        assert!((Angle::from_degrees(-540.0).normalized().degrees() - 180.0).abs() < 1e-9);
        assert!((Angle::from_degrees(-90.0).normalized().degrees() + 90.0).abs() < 1e-9);
        assert!((Angle::from_degrees(360.0).normalized().degrees()).abs() < 1e-9);
    }

    #[test]
    fn turn_classification() {
        // A 135° direction change is sharper than a right angle: acute corner.
        assert!(Angle::from_degrees(135.0).is_acute_turn());
        assert!(!Angle::from_degrees(45.0).is_acute_turn());
        assert!(Angle::from_degrees(90.0).is_right_turn());
        assert!(Angle::from_degrees(-90.0).is_right_turn());
        assert!(!Angle::from_degrees(60.0).is_right_turn());
    }

    #[test]
    fn arithmetic() {
        let a = Angle::from_degrees(30.0) + Angle::from_degrees(60.0);
        assert!(a.is_right_turn());
        let b = Angle::from_degrees(30.0) - Angle::from_degrees(30.0);
        assert!(b.radians().abs() < 1e-12);
        assert!((-Angle::from_degrees(30.0)).degrees() + 30.0 < 1e-12);
    }

    #[test]
    fn display_shows_degrees() {
        assert!(format!("{}", Angle::from_degrees(90.0)).contains("90"));
    }
}
