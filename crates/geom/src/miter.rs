//! Corner mitering per the `dmiter` design rule.
//!
//! The paper's DRC glossary (Sec. II, Fig. 1) defines `dmiter` as the corner
//! chamfer applied to convex patterns: "any rotation of a right angle or an
//! acute angle will be mitered by obtuse angles". Meander patterns are
//! constructed with right-angle corners for simplicity and chamfered here as
//! a post-pass, turning each 90° (or sharper) corner into two obtuse corners.

use crate::eps::EPS;
use crate::point::Point;
use crate::polyline::Polyline;

/// Chamfers every corner of `pl` whose direction change is a right angle or
/// sharper, cutting `dmiter` along both incident segments.
///
/// Corners gentler than 90° (e.g. 135° corners of 45°-routing) are left
/// untouched. When an incident segment is too short to give up `dmiter` on
/// each side, the cut is scaled down to what the segment can afford (half
/// its length per end) instead of being skipped, so short jogs still lose
/// their sharp corners.
///
/// Mitering *shortens* a trace slightly (each chamfer replaces `2·dmiter` of
/// path with `√2·dmiter` at right angles); callers that miter after length
/// matching should either account for [`miter_length_loss`] in the target or
/// miter before the final fine-tuning iteration.
///
/// ```
/// use meander_geom::{miter::miter_polyline, Point, Polyline};
/// let pl = Polyline::new(vec![
///     Point::new(0.0, 0.0),
///     Point::new(10.0, 0.0),
///     Point::new(10.0, 10.0),
/// ]);
/// let m = miter_polyline(&pl, 2.0);
/// assert_eq!(m.point_count(), 4); // corner replaced by a chamfer pair
/// assert!(m.length() < pl.length());
/// ```
pub fn miter_polyline(pl: &Polyline, dmiter: f64) -> Polyline {
    miter_polyline_with_min(pl, dmiter, 0.0)
}

/// [`miter_polyline`] that additionally guarantees every *remainder* piece
/// (the part of a segment left between cuts) stays at least `min_len`
/// long, skipping or shrinking cuts that would fall below it.
///
/// Drivers pass `min_len = dprotect` so mitered outputs cannot introduce
/// short-segment DRC violations: a corner whose incident segments cannot
/// spare the length simply keeps its right angle.
pub fn miter_polyline_with_min(pl: &Polyline, dmiter: f64, min_len: f64) -> Polyline {
    if dmiter <= EPS || pl.point_count() < 3 {
        return pl.clone();
    }
    let pts = pl.points();
    let mut out: Vec<Point> = Vec::with_capacity(pts.len() * 2);
    out.push(pts[0]);

    for i in 1..pts.len() - 1 {
        let prev = *out.last().expect("non-empty");
        let cur = pts[i];
        let next = pts[i + 1];
        let din = (cur - prev).normalized();
        let dout = (next - cur).normalized();
        let (din, dout) = match (din, dout) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                out.push(cur);
                continue;
            }
        };
        // Direction-change magnitude; ≥ 90° − tol means right-angle or
        // sharper corner.
        let turn = din.cross(dout).atan2(din.dot(dout)).abs();
        if turn < std::f64::consts::FRAC_PI_2 - 1e-9 {
            out.push(cur);
            continue;
        }
        // Budget per side: half the incident segment (its other half may
        // belong to the neighbouring corner), reduced so that a remainder
        // of at least `min_len` survives when both ends are cut.
        let budget = |len: f64| ((len - min_len) / 2.0).min(len / 2.0).min(dmiter);
        let cut = budget((cur - prev).norm()).min(budget((next - cur).norm()));
        if cut <= EPS {
            out.push(cur);
            continue;
        }
        out.push(cur - din * cut);
        out.push(cur + dout * cut);
    }

    out.push(pts[pts.len() - 1]);
    let mut res = Polyline::new(out);
    res.simplify();
    res
}

/// Length removed by chamfering one right-angle corner with cut `dmiter`:
/// `2·dmiter − √2·dmiter`.
pub fn miter_length_loss(dmiter: f64) -> f64 {
    (2.0 - std::f64::consts::SQRT_2) * dmiter
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn right_angle_corner_is_chamfered() {
        let pl = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
        ]);
        let m = miter_polyline(&pl, 2.0);
        assert_eq!(m.point_count(), 4);
        assert!(m.points()[1].approx_eq(Point::new(8.0, 0.0)));
        assert!(m.points()[2].approx_eq(Point::new(10.0, 2.0)));
        let expected = pl.length() - miter_length_loss(2.0);
        assert!((m.length() - expected).abs() < 1e-9);
    }

    #[test]
    fn oblique_corner_untouched() {
        // 45° direction change — already obtuse corner, no miter.
        let pl = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(20.0, 10.0),
        ]);
        let m = miter_polyline(&pl, 2.0);
        assert_eq!(m.point_count(), 3);
        assert!((m.length() - pl.length()).abs() < 1e-12);
    }

    #[test]
    fn acute_corner_is_chamfered() {
        // 135° direction change (sharper than right angle).
        let pl = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(0.0, 10.0),
        ]);
        let m = miter_polyline(&pl, 1.0);
        assert_eq!(m.point_count(), 4);
        assert!(m.length() < pl.length());
    }

    #[test]
    fn short_segments_scale_the_cut() {
        // Middle segment of length 2 between two right angles: each corner
        // can use at most 1.0 of it.
        let pl = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 2.0),
            Point::new(20.0, 2.0),
        ]);
        let m = miter_polyline(&pl, 5.0);
        // Both corners chamfered with reduced cut, no vertex collisions.
        assert!(m.point_count() >= 5);
        assert!(!m.is_self_intersecting());
        assert!(m.min_segment_length() > 0.0);
    }

    #[test]
    fn zero_miter_is_identity() {
        let pl = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(5.0, 5.0),
        ]);
        assert_eq!(miter_polyline(&pl, 0.0), pl);
    }

    #[test]
    fn meander_pattern_gets_all_corners_cut() {
        // One trombone pattern: 4 right angles.
        let pl = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 6.0),
            Point::new(8.0, 6.0),
            Point::new(8.0, 0.0),
            Point::new(12.0, 0.0),
        ]);
        let m = miter_polyline(&pl, 1.0);
        assert_eq!(m.point_count(), 10);
        let expected = pl.length() - 4.0 * miter_length_loss(1.0);
        assert!((m.length() - expected).abs() < 1e-9);
        assert!(!m.is_self_intersecting());
    }

    #[test]
    fn any_angle_pattern_mitering() {
        // Same trombone rotated by 30°: mitering must be frame-independent.
        let rot = |p: Point| {
            let (s, c) = (30.0_f64.to_radians()).sin_cos();
            Point::new(p.x * c - p.y * s, p.x * s + p.y * c)
        };
        let base = [
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 6.0),
            Point::new(8.0, 6.0),
            Point::new(8.0, 0.0),
            Point::new(12.0, 0.0),
        ];
        let pl = Polyline::new(base.iter().map(|&p| rot(p)).collect());
        let m = miter_polyline(&pl, 1.0);
        assert_eq!(m.point_count(), 10);
        let expected = pl.length() - 4.0 * miter_length_loss(1.0);
        assert!((m.length() - expected).abs() < 1e-9);
    }
}
