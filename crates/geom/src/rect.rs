//! Axis-aligned rectangles.

use crate::eps::EPS;
use crate::point::Point;
use std::fmt;

/// An axis-aligned rectangle, stored as min/max corners.
///
/// URA outer borders are rectangles *in the local frame of the extended
/// segment*; the merge-sort tree of `meander-index` answers the
/// `[x_A, x_C] × [y_D, y_B]` range queries of paper Alg. 2 against these.
///
/// ```
/// use meander_geom::{Point, Rect};
/// let r = Rect::new(Point::new(0.0, 0.0), Point::new(4.0, 2.0));
/// assert!(r.contains(Point::new(1.0, 1.0)));
/// assert_eq!(r.area(), 8.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two corners (any order).
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Smallest rectangle containing every point, or `None` for an empty
    /// iterator.
    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut r = Rect {
            min: first,
            max: first,
        };
        for p in it {
            r.min.x = r.min.x.min(p.x);
            r.min.y = r.min.y.min(p.y);
            r.max.x = r.max.x.max(p.x);
            r.max.y = r.max.y.max(p.y);
        }
        Some(r)
    }

    /// Width along x.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along y.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// `true` when `p` lies inside or on the border (within tolerance).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x - EPS
            && p.x <= self.max.x + EPS
            && p.y >= self.min.y - EPS
            && p.y <= self.max.y + EPS
    }

    /// `true` when `p` lies strictly inside (border excluded, with
    /// tolerance).
    pub fn contains_strict(&self, p: Point) -> bool {
        p.x > self.min.x + EPS
            && p.x < self.max.x - EPS
            && p.y > self.min.y + EPS
            && p.y < self.max.y - EPS
    }

    /// `true` when the rectangles overlap (touching counts, within
    /// tolerance).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x + EPS
            && other.min.x <= self.max.x + EPS
            && self.min.y <= other.max.y + EPS
            && other.min.y <= self.max.y + EPS
    }

    /// `true` when `other` lies entirely within `self` (within tolerance).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.contains(other.min) && self.contains(other.max)
    }

    /// Rectangle grown by `margin` on all four sides (negative shrinks).
    pub fn expanded(&self, margin: f64) -> Rect {
        Rect {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        }
    }

    /// Union of two rectangles (smallest rectangle containing both).
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// The four corners, counter-clockwise from `min`.
    pub fn corners(&self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} ⇗ {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_corners() {
        let r = Rect::new(Point::new(4.0, 1.0), Point::new(0.0, 3.0));
        assert_eq!(r.min, Point::new(0.0, 1.0));
        assert_eq!(r.max, Point::new(4.0, 3.0));
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 2.0);
    }

    #[test]
    fn from_points_bbox() {
        let r = Rect::from_points([
            Point::new(1.0, 1.0),
            Point::new(-2.0, 5.0),
            Point::new(3.0, 0.0),
        ])
        .unwrap();
        assert_eq!(r.min, Point::new(-2.0, 0.0));
        assert_eq!(r.max, Point::new(3.0, 5.0));
        assert!(Rect::from_points([]).is_none());
    }

    #[test]
    fn containment_with_tolerance() {
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(2.0, 2.0)));
        assert!(!r.contains(Point::new(2.1, 1.0)));
        assert!(r.contains_strict(Point::new(1.0, 1.0)));
        assert!(!r.contains_strict(Point::new(0.0, 1.0)));
    }

    #[test]
    fn intersection_and_union() {
        let a = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let b = Rect::new(Point::new(1.0, 1.0), Point::new(3.0, 3.0));
        let c = Rect::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        // Touching edges intersect.
        let d = Rect::new(Point::new(2.0, 0.0), Point::new(4.0, 2.0));
        assert!(a.intersects(&d));
        let u = a.union(&c);
        assert_eq!(u.min, Point::new(0.0, 0.0));
        assert_eq!(u.max, Point::new(6.0, 6.0));
    }

    #[test]
    fn expansion_and_corners() {
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0)).expanded(1.0);
        assert_eq!(r.min, Point::new(-1.0, -1.0));
        assert_eq!(r.max, Point::new(3.0, 3.0));
        let cs = r.corners();
        assert_eq!(cs[0], r.min);
        assert_eq!(cs[2], r.max);
    }

    #[test]
    fn contains_rect_nested() {
        let outer = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let inner = Rect::new(Point::new(2.0, 2.0), Point::new(8.0, 8.0));
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
    }
}
