//! # meander-geom
//!
//! Computational-geometry substrate for the `meander` length-matching router.
//!
//! The DAC 2024 paper this workspace reproduces ("Obstacle-Aware Length-Matching
//! Routing for Any-Direction Traces in Printed Circuit Board") replaces gridded
//! track-based meandering with plain computational geometry so that traces routed
//! at *arbitrary* angles can be extended. This crate provides exactly the
//! primitives that approach needs:
//!
//! * [`Point`], [`Vector`], [`Angle`] — planar primitives with `f64` coordinates.
//! * [`Segment`], [`Polyline`] — trace centerlines and their pieces.
//! * [`Polygon`], [`Rect`] — obstacles, routable-area borders, URA rectangles.
//! * [`Frame`] — local coordinate frames; every segment is meandered in a frame
//!   where it lies on the +x axis, which is what makes the router any-direction.
//! * [`offset`] — polyline offsetting with miter joins (differential-pair
//!   restoration after MSDTW).
//! * [`miter`] — corner chamfering per the `dmiter` design rule.
//! * [`intersect`] / [`distance`] — the predicates the URA shrinking procedure
//!   (paper Alg. 2) is built from.
//! * [`batch`] — SoA candidate batches and lane-parallel kernels for the DRC
//!   scan and shrink stage 1, bit-identical to the scalar predicates.
//!
//! All comparisons run through the tolerance helpers in [`eps`]; geometry here is
//! floating-point with an explicit epsilon contract rather than exact arithmetic,
//! matching what PCB CAD kernels do in practice (coordinates are in mils/µm and
//! far from the subnormal range).
//!
//! ## Example
//!
//! ```
//! use meander_geom::{Point, Polyline, Segment};
//!
//! let trace = Polyline::new(vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(10.0, 0.0),
//!     Point::new(10.0, 5.0),
//! ]);
//! assert!((trace.length() - 15.0).abs() < 1e-12);
//! let first: Segment = trace.segment(0);
//! assert_eq!(first.length(), 10.0);
//! ```

pub mod angle;
pub mod batch;
pub mod distance;
pub mod eps;
pub mod frame;
pub mod intersect;
pub mod miter;
pub mod offset;
pub mod point;
pub mod polygon;
pub mod polyline;
pub mod rect;
pub mod segment;
pub mod vector;

pub use angle::Angle;
pub use batch::{BatchStats, PointBatch, SegBatch};
pub use eps::{approx_eq, approx_ge, approx_le, approx_zero, EPS};
pub use frame::Frame;
pub use intersect::{segment_intersection, SegmentIntersection};
pub use point::Point;
pub use polygon::Polygon;
pub use polyline::Polyline;
pub use rect::Rect;
pub use segment::Segment;
pub use vector::Vector;
