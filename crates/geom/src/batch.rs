//! SoA candidate batches and lane-parallel geometry kernels.
//!
//! The DRC scan and the URA shrinker's stage-1 side intersections evaluate
//! the same tiny predicates — point↔segment distance, segment↔segment
//! distance, vertical-side × edge intersection — against *sets* of
//! candidates gathered from a spatial index. Calling the scalar predicates
//! per candidate is the wrong shape for that: every call re-loads a
//! `Segment`, branches through an intersection early-out, and pays a `sqrt`
//! per partial distance even though only the *minimum* ever matters.
//!
//! This module restructures those hot paths around structure-of-arrays
//! batches ([`SegBatch`], [`PointBatch`]) whose kernels run a fixed-width
//! lane loop that rustc auto-vectorizes (plain `f64` arithmetic, no nightly
//! `std::simd`, no intrinsics — the scalar fallback *is* the portable
//! default and the batched code is portable too).
//!
//! ## The lane-exactness contract
//!
//! Every kernel here returns **bit-identical** results to the scalar
//! predicates in [`crate::segment`] / [`crate::intersect`]. That is a hard
//! contract (the DRC violation lists and router placements must not change
//! by a ULP when batching is toggled), maintained by three rules:
//!
//! 1. **Same operation sequence per lane.** Each lane executes the exact
//!    primitive sequence of the scalar code path — same operand order, same
//!    tolerance checks, same clamps (`f64` arithmetic is deterministic and
//!    Rust never contracts `a*b + c` into an FMA on its own). Where the
//!    scalar code multiplies by a coordinate difference that is identically
//!    zero (a vertical side's `x − x`), the kernel keeps the term so the
//!    float stream matches.
//! 2. **Squared-distance reduction, one terminal `sqrt`.** Distances are
//!    compared as squared values and only the reduced winner takes the
//!    `sqrt`. IEEE-754 `sqrt` is correctly rounded and monotone, so
//!    `sqrt(min(d²ᵢ)) == min(sqrt(d²ᵢ))` bit-for-bit, and strict-minimum
//!    argmins agree with the scalar scan as long as ties resolve to the
//!    first occurrence (they do: reductions here use strict `<`).
//! 3. **Conservative prefilters, exact confirmation.** Branchy sub-cases
//!    that resist vectorization (segment intersection, collinear overlaps,
//!    degenerate segments) are *prefiltered* with a provably conservative
//!    test (bounding boxes inflated by [`PREFILTER_SLACK`], plus a
//!    short-segment escape hatch) and the surviving lanes run the scalar
//!    predicate verbatim. A lane the prefilter rejects is one the scalar
//!    predicate provably answers `None` for, so skipping it cannot change
//!    the result.
//!
//! Property tests (`tests/props.rs` and the in-module suite) compare every
//! kernel against the scalar path on randomized candidate sets — including
//! degenerate zero-length segments and collinear overlaps — with
//! `f64::to_bits` equality.

use crate::eps::EPS;
use crate::intersect::{segment_intersection, segments_intersect, SegmentIntersection};
use crate::point::Point;
use crate::segment::Segment;

/// Lane width the SoA buffers pad to. The kernels are written as plain
/// slice loops, so this is a layout hint for the auto-vectorizer rather
/// than a hardware contract; 4×`f64` matches one AVX2 register.
pub const LANES: usize = 4;

/// Bounding-box inflation used by the intersection prefilters, in board
/// units.
///
/// Soundness: every `SegmentIntersection` outcome other than `None` implies
/// a point within ~[`EPS`] (1e-9) of both segments — endpoint touches and
/// collinear overlaps are accepted within `EPS` absolute distance, and the
/// crossing point of the generic branch lies exactly on `s1` and within
/// rounding of `s2`. `1e-6` dominates those tolerances by three orders of
/// magnitude, so two segments whose inflated boxes do not meet cannot
/// intersect. The one exception is a *very short* segment (length below
/// [`SHORT_SEG_LEN`]), whose collinearity test `|d₁ × Δ| ≤ EPS` tolerates a
/// lateral offset of up to `EPS / len` — such lanes bypass the prefilter
/// and always run the scalar predicate.
pub const PREFILTER_SLACK: f64 = 1e-6;

/// Segments shorter than this always take the scalar intersection path
/// (see [`PREFILTER_SLACK`]): `EPS / SHORT_SEG_LEN ≤ PREFILTER_SLACK`.
pub const SHORT_SEG_LEN: f64 = 1e-3;

/// Work counters for batched kernel call sites (bench observability).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BatchStats {
    /// Batched kernel invocations.
    pub calls: u64,
    /// Real candidates across all calls.
    pub active_lanes: u64,
    /// Lane slots after padding each call to a [`LANES`] multiple — the
    /// difference to `active_lanes` is tail-padding waste.
    pub padded_lanes: u64,
}

impl BatchStats {
    /// Records one kernel call over `n` candidates.
    #[inline]
    pub fn record(&mut self, n: usize) {
        self.calls += 1;
        self.active_lanes += n as u64;
        self.padded_lanes += n.div_ceil(LANES) as u64 * LANES as u64;
    }

    /// Accumulates `other` into `self`.
    pub fn absorb(&mut self, other: &BatchStats) {
        self.calls += other.calls;
        self.active_lanes += other.active_lanes;
        self.padded_lanes += other.padded_lanes;
    }

    /// Mean candidates per batched call (0 when nothing ran).
    pub fn candidates_per_call(&self) -> f64 {
        if self.calls == 0 {
            return 0.0;
        }
        self.active_lanes as f64 / self.calls as f64
    }

    /// Lane slots wasted on tail padding.
    pub fn wasted_lanes(&self) -> u64 {
        self.padded_lanes - self.active_lanes
    }
}

/// Structure-of-arrays segment buffer.
///
/// Endpoint coordinates live in four parallel `f64` arrays so kernels
/// stream them with unit stride. Buffers are reused across queries
/// ([`SegBatch::clear`] keeps the allocations).
#[derive(Debug, Clone, Default)]
pub struct SegBatch {
    ax: Vec<f64>,
    ay: Vec<f64>,
    bx: Vec<f64>,
    by: Vec<f64>,
}

impl SegBatch {
    /// Empty batch.
    pub fn new() -> Self {
        SegBatch::default()
    }

    /// Number of segments in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.ax.len()
    }

    /// `true` when the batch holds no segments.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ax.is_empty()
    }

    /// Clears the batch, keeping allocations.
    pub fn clear(&mut self) {
        self.ax.clear();
        self.ay.clear();
        self.bx.clear();
        self.by.clear();
    }

    /// Appends one segment.
    #[inline]
    pub fn push(&mut self, s: &Segment) {
        self.push_coords(s.a.x, s.a.y, s.b.x, s.b.y);
    }

    /// Appends one segment from raw coordinates.
    #[inline]
    pub fn push_coords(&mut self, ax: f64, ay: f64, bx: f64, by: f64) {
        self.ax.push(ax);
        self.ay.push(ay);
        self.bx.push(bx);
        self.by.push(by);
    }

    /// Appends every segment of `other`, preserving order — the gather
    /// primitive split indexes (`meander-index`'s overlay) concatenate
    /// their per-side slabs with.
    pub fn extend_from(&mut self, other: &SegBatch) {
        self.ax.extend_from_slice(&other.ax);
        self.ay.extend_from_slice(&other.ay);
        self.bx.extend_from_slice(&other.bx);
        self.by.extend_from_slice(&other.by);
    }

    /// Reconstructs segment `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Segment {
        Segment::new(
            Point::new(self.ax[i], self.ay[i]),
            Point::new(self.bx[i], self.by[i]),
        )
    }

    /// `a.x` lane array.
    #[inline]
    pub fn ax(&self) -> &[f64] {
        &self.ax
    }

    /// `a.y` lane array.
    #[inline]
    pub fn ay(&self) -> &[f64] {
        &self.ay
    }

    /// `b.x` lane array.
    #[inline]
    pub fn bx(&self) -> &[f64] {
        &self.bx
    }

    /// `b.y` lane array.
    #[inline]
    pub fn by(&self) -> &[f64] {
        &self.by
    }
}

/// Structure-of-arrays point buffer (companion to [`SegBatch`]).
#[derive(Debug, Clone, Default)]
pub struct PointBatch {
    px: Vec<f64>,
    py: Vec<f64>,
}

impl PointBatch {
    /// Empty batch.
    pub fn new() -> Self {
        PointBatch::default()
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.px.len()
    }

    /// `true` when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.px.is_empty()
    }

    /// Clears the batch, keeping allocations.
    pub fn clear(&mut self) {
        self.px.clear();
        self.py.clear();
    }

    /// Appends one point.
    #[inline]
    pub fn push(&mut self, p: Point) {
        self.px.push(p.x);
        self.py.push(p.y);
    }

    /// Reconstructs point `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Point {
        Point::new(self.px[i], self.py[i])
    }

    /// x lane array.
    #[inline]
    pub fn px(&self) -> &[f64] {
        &self.px
    }

    /// y lane array.
    #[inline]
    pub fn py(&self) -> &[f64] {
        &self.py
    }
}

/// Squared distance from point `(px, py)` to segment `(ax, ay) → (bx, by)`
/// — the exact operation sequence of [`Segment::distance_to_point`] (via
/// `project` → `clamp` → `point_at` → `Point::distance`) minus the terminal
/// `sqrt`, so `pt_seg_dsq(..).sqrt()` is bit-identical to the scalar call.
///
/// Public so sparse callers (the DRC's edge-indexed obstacle pass, which
/// visits only the few edges near each candidate) can accumulate the same
/// float stream the lane kernels produce without materializing a batch.
#[inline(always)]
#[allow(clippy::manual_clamp)] // mirrors `eps::clamp` (max-then-min), not `f64::clamp`
pub fn pt_seg_dsq(px: f64, py: f64, ax: f64, ay: f64, bx: f64, by: f64) -> f64 {
    let dx = bx - ax;
    let dy = by - ay;
    let len_sq = dx * dx + dy * dy;
    let t = if len_sq <= EPS * EPS {
        0.0
    } else {
        ((px - ax) * dx + (py - ay) * dy) / len_sq
    };
    let t = t.max(0.0).min(1.0);
    let cx = ax + dx * t;
    let cy = ay + dy * t;
    let ex = cx - px;
    let ey = cy - py;
    ex * ex + ey * ey
}

/// Squared distances from a fixed probe segment to each point of `pts`:
/// `out[i].sqrt()` is bit-identical to `probe.distance_to_point(pts[i])`.
#[allow(clippy::needless_range_loop)] // parallel-slice lane loops
pub fn distance_sq_to_point_batch(probe: &Segment, pts: &PointBatch, out: &mut Vec<f64>) {
    let n = pts.len();
    out.clear();
    out.resize(n, 0.0);
    let (px, py, o) = (&pts.px[..n], &pts.py[..n], &mut out[..n]);
    let (ax, ay, bx, by) = (probe.a.x, probe.a.y, probe.b.x, probe.b.y);
    for i in 0..n {
        o[i] = pt_seg_dsq(px[i], py[i], ax, ay, bx, by);
    }
}

/// Min-accumulates, per lane, the squared distance from the fixed segment
/// `seg` to the point `(px[i], py[i])`: `acc[i] = acc[i].min(d²)`.
///
/// Used by the batched DRC obstacle pass for the "obstacle edge ↔ candidate
/// endpoint" partials of the polygon distance.
#[allow(clippy::needless_range_loop)] // parallel-slice lane loops
pub fn accum_seg_to_points_dsq(seg: &Segment, px: &[f64], py: &[f64], acc: &mut [f64]) {
    let n = acc.len();
    let (px, py) = (&px[..n], &py[..n]);
    let (ax, ay, bx, by) = (seg.a.x, seg.a.y, seg.b.x, seg.b.y);
    for i in 0..n {
        let d = pt_seg_dsq(px[i], py[i], ax, ay, bx, by);
        if d < acc[i] {
            acc[i] = d;
        }
    }
}

/// Min-accumulates, per lane, the squared distance from the fixed point `p`
/// to batch segment `i`.
#[allow(clippy::needless_range_loop)] // parallel-slice lane loops
pub fn accum_point_to_segs_dsq(p: Point, batch: &SegBatch, acc: &mut [f64]) {
    let n = batch.len();
    let acc = &mut acc[..n];
    let (ax, ay, bx, by) = (
        &batch.ax[..n],
        &batch.ay[..n],
        &batch.bx[..n],
        &batch.by[..n],
    );
    for i in 0..n {
        let d = pt_seg_dsq(p.x, p.y, ax[i], ay[i], bx[i], by[i]);
        if d < acc[i] {
            acc[i] = d;
        }
    }
}

/// `true` when the two segments could possibly intersect under the scalar
/// predicate's tolerances — bbox overlap after [`PREFILTER_SLACK`]
/// inflation, with very short segments always passing (see the module docs
/// for the soundness argument).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn may_intersect(
    plox: f64,
    phix: f64,
    ploy: f64,
    phiy: f64,
    probe_short: bool,
    ax: f64,
    ay: f64,
    bx: f64,
    by: f64,
) -> bool {
    let clox = ax.min(bx) - PREFILTER_SLACK;
    let chix = ax.max(bx) + PREFILTER_SLACK;
    let cloy = ay.min(by) - PREFILTER_SLACK;
    let chiy = ay.max(by) + PREFILTER_SLACK;
    let bbox_hit = plox <= chix && clox <= phix && ploy <= chiy && cloy <= phiy;
    let dx = bx - ax;
    let dy = by - ay;
    let cand_short = dx * dx + dy * dy < SHORT_SEG_LEN * SHORT_SEG_LEN;
    bbox_hit || cand_short || probe_short
}

/// Marks `hit[i] = true` for batch segments that intersect `probe` (scalar
/// predicate [`segments_intersect`] with `probe` as the first argument, the
/// order the DRC scalar path uses). Lanes already marked are skipped;
/// lanes the conservative prefilter rejects are provably `None`.
#[allow(clippy::needless_range_loop)] // parallel-slice lane loops
pub fn mark_intersections(probe: &Segment, batch: &SegBatch, hit: &mut [bool]) {
    let n = batch.len();
    let hit = &mut hit[..n];
    let (ax, ay, bx, by) = (
        &batch.ax[..n],
        &batch.ay[..n],
        &batch.bx[..n],
        &batch.by[..n],
    );
    let (plox, phix) = (probe.a.x.min(probe.b.x), probe.a.x.max(probe.b.x));
    let (ploy, phiy) = (probe.a.y.min(probe.b.y), probe.a.y.max(probe.b.y));
    let pdx = probe.b.x - probe.a.x;
    let pdy = probe.b.y - probe.a.y;
    let probe_short = pdx * pdx + pdy * pdy < SHORT_SEG_LEN * SHORT_SEG_LEN;
    for i in 0..n {
        if hit[i] {
            continue;
        }
        if may_intersect(
            plox,
            phix,
            ploy,
            phiy,
            probe_short,
            ax[i],
            ay[i],
            bx[i],
            by[i],
        ) && segments_intersect(probe, &batch.get(i))
        {
            hit[i] = true;
        }
    }
}

/// Squared distance from `probe` to every batch segment:
/// `out[i].sqrt()` is bit-identical to
/// `probe.distance_to_segment(&batch.get(i))`.
///
/// The four endpoint↔segment partials run lane-parallel in the squared
/// domain; the intersection early-out of the scalar path becomes a
/// conservative prefilter plus an exact scalar confirmation on the few
/// surviving lanes (`d² = 0` exactly when the scalar predicate intersects).
#[allow(clippy::needless_range_loop)] // parallel-slice lane loops
pub fn distance_sq_to_segment_batch(probe: &Segment, batch: &SegBatch, out: &mut Vec<f64>) {
    let n = batch.len();
    out.clear();
    out.resize(n, f64::INFINITY);
    let o = &mut out[..n];
    let (ax, ay, bx, by) = (
        &batch.ax[..n],
        &batch.ay[..n],
        &batch.bx[..n],
        &batch.by[..n],
    );
    let (pax, pay, pbx, pby) = (probe.a.x, probe.a.y, probe.b.x, probe.b.y);
    let (plox, phix) = (pax.min(pbx), pax.max(pbx));
    let (ploy, phiy) = (pay.min(pby), pay.max(pby));
    let pdx = pbx - pax;
    let pdy = pby - pay;
    let probe_short = pdx * pdx + pdy * pdy < SHORT_SEG_LEN * SHORT_SEG_LEN;

    // Lane pass: straight-line arithmetic only (the intersection branch
    // moves to a second, sparse pass so this loop stays vectorizable).
    for i in 0..n {
        let (cax, cay, cbx, cby) = (ax[i], ay[i], bx[i], by[i]);
        // probe.distance_to_point(cand.a) / (cand.b): point vs probe.
        let d1 = pt_seg_dsq(cax, cay, pax, pay, pbx, pby);
        let d2 = pt_seg_dsq(cbx, cby, pax, pay, pbx, pby);
        // cand.distance_to_point(probe.a) / (probe.b): point vs candidate.
        let d3 = pt_seg_dsq(pax, pay, cax, cay, cbx, cby);
        let d4 = pt_seg_dsq(pbx, pby, cax, cay, cbx, cby);
        o[i] = d1.min(d2).min(d3).min(d4);
    }
    for i in 0..n {
        if o[i] > 0.0
            && may_intersect(
                plox,
                phix,
                ploy,
                phiy,
                probe_short,
                ax[i],
                ay[i],
                bx[i],
                by[i],
            )
            && segments_intersect(probe, &batch.get(i))
        {
            o[i] = 0.0;
        }
    }
}

/// First-occurrence strict minimum over `dsq`: `(index, value)`, or `None`
/// when empty. Matches a scalar `if d < best` scan, so witnesses selected
/// through it agree with the unbatched code.
pub fn min_argmin(dsq: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &d) in dsq.iter().enumerate() {
        if best.is_none_or(|(_, b)| d < b) {
            best = Some((i, d));
        }
    }
    best
}

/// Distance from `(px, py)` to the baseline segment `(0,0) → (seg_len, 0)`
/// — the operation sequence of `ShrinkContext::dist_seg` (which is
/// [`Segment::distance_to_point`] on that exact segment), terminal `sqrt`
/// included: stage-1 caps reduce in the distance domain because the
/// starting cap (`h_ob`) is not itself a squared distance.
#[inline(always)]
fn dist_to_baseline(px: f64, py: f64, seg_len: f64) -> f64 {
    pt_seg_dsq(px, py, 0.0, 0.0, seg_len, 0.0).sqrt()
}

/// Scalar contribution of one side × edge intersection, shared by both
/// vertical-side kernels' fallback lanes: exactly the
/// `segment_intersection` match of the scalar stage-1 loop.
#[inline]
fn side_edge_cap_scalar(side: &Segment, edge: &Segment, seg_len: f64) -> f64 {
    match segment_intersection(side, edge) {
        SegmentIntersection::None => f64::INFINITY,
        SegmentIntersection::Point(p) => dist_to_baseline(p.x, p.y, seg_len),
        SegmentIntersection::Overlap(o) => {
            dist_to_baseline(o.a.x, o.a.y, seg_len).min(dist_to_baseline(o.b.x, o.b.y, seg_len))
        }
    }
}

/// Intersects the vertical sides `(xs[i], ylo) → (xs[i], yhi)` with one
/// `edge`, lane-parallel over the `xs` positions, and min-accumulates each
/// crossing's distance-to-baseline into `caps[i]`.
///
/// This is the inner kernel of the batched `build_ub_profile` sweep: the
/// caller iterates candidate edges (outer) and hands each one the
/// contiguous span of foot positions whose grid column can see it. Every
/// lane reproduces the float stream of
/// `segment_intersection(&side, edge)` + `dist_seg` exactly (the `x − x`
/// and `0.0 ·` terms are kept on purpose — see the module docs); edges
/// parallel to the sides fall back to the scalar predicate per lane, which
/// also covers collinear overlaps.
#[allow(clippy::eq_op)]
pub fn intersect_x_range_batch(
    xs: &[f64],
    ylo: f64,
    yhi: f64,
    edge: &Segment,
    seg_len: f64,
    caps: &mut [f64],
) {
    debug_assert_eq!(xs.len(), caps.len());
    // d1 = side.delta() = (x − x, yhi − ylo): identical for every lane.
    let dy1 = yhi - ylo;
    let (ex, ey) = (edge.b.x - edge.a.x, edge.b.y - edge.a.y);
    // denom = d1 × d2, with d1.x ≡ 0.0 (kept in the expression so the
    // float stream matches the scalar cross product).
    let denom = 0.0 * ey - dy1 * ex;
    if denom.abs() <= EPS {
        // Parallel / degenerate branch of `segment_intersection`: run the
        // scalar predicate per lane (collinear overlaps live here).
        for (i, &x) in xs.iter().enumerate() {
            let side = Segment::new(Point::new(x, ylo), Point::new(x, yhi));
            let c = side_edge_cap_scalar(&side, edge, seg_len);
            if c < caps[i] {
                caps[i] = c;
            }
        }
        return;
    }
    // Generic branch: per-lane t/u with the scalar tolerances. The side's
    // norm is √(0² + dy1²) — computed that way, not `abs`, to mirror
    // `Vector::norm` exactly.
    let t_tol = EPS / (0.0 * 0.0 + dy1 * dy1).sqrt().max(EPS);
    let u_tol = EPS / (ex * ex + ey * ey).sqrt().max(EPS);
    for (i, &x) in xs.iter().enumerate() {
        // start_diff = edge.a − side.a
        let sdx = edge.a.x - x;
        let sdy = edge.a.y - ylo;
        let t = (sdx * ey - sdy * ex) / denom;
        let u = (sdx * dy1 - sdy * 0.0) / denom;
        if t >= -t_tol && t <= 1.0 + t_tol && u >= -u_tol && u <= 1.0 + u_tol {
            let tc = t.clamp(0.0, 1.0);
            // p = side.point_at(tc): px keeps the zero-width lerp term.
            let px = x + (x - x) * tc;
            let py = ylo + (yhi - ylo) * tc;
            let c = dist_to_baseline(px, py, seg_len);
            if c < caps[i] {
                caps[i] = c;
            }
        }
    }
}

/// Minimum distance-to-baseline cap of the vertical side
/// `(x, ylo) → (x, yhi)` over a batch of edges (lane-parallel over the
/// edges; `f64::INFINITY` when nothing crosses).
///
/// The transposed companion of [`intersect_x_range_batch`] for the shrink
/// stage-1 evaluation, where one side meets many candidate edges. Same
/// lane-exactness contract; near-vertical edges take the scalar fallback.
///
/// Edges whose x-extent (inflated by [`PREFILTER_SLACK`]) misses `x` are
/// skipped outright: any non-`None` outcome of
/// `segment_intersection(side, edge)` implies a point within ~[`EPS`] of
/// both segments, so the edge must reach within `EPS ≪ PREFILTER_SLACK` of
/// the side's x. (The collinearity tolerance scales as `EPS / |side|`, so
/// the reject is only applied when the side is at least [`SHORT_SEG_LEN`]
/// tall — shrink sides always are.)
#[allow(clippy::eq_op)]
pub fn vertical_side_min_cap(x: f64, ylo: f64, yhi: f64, edges: &SegBatch, seg_len: f64) -> f64 {
    let n = edges.len();
    let (axs, ays, bxs, bys) = (
        &edges.ax[..n],
        &edges.ay[..n],
        &edges.bx[..n],
        &edges.by[..n],
    );
    let dy1 = yhi - ylo;
    let tight = dy1 >= SHORT_SEG_LEN;
    let t_tol = EPS / (0.0 * 0.0 + dy1 * dy1).sqrt().max(EPS);
    let mut cap = f64::INFINITY;
    for i in 0..n {
        let (eax, eay, ebx, eby) = (axs[i], ays[i], bxs[i], bys[i]);
        if tight && (x < eax.min(ebx) - PREFILTER_SLACK || x > eax.max(ebx) + PREFILTER_SLACK) {
            continue;
        }
        let (ex, ey) = (ebx - eax, eby - eay);
        let denom = 0.0 * ey - dy1 * ex;
        let c = if denom.abs() <= EPS {
            let side = Segment::new(Point::new(x, ylo), Point::new(x, yhi));
            side_edge_cap_scalar(&side, &edges.get(i), seg_len)
        } else {
            let u_tol = EPS / (ex * ex + ey * ey).sqrt().max(EPS);
            let sdx = eax - x;
            let sdy = eay - ylo;
            let t = (sdx * ey - sdy * ex) / denom;
            let u = (sdx * dy1 - sdy * 0.0) / denom;
            if t >= -t_tol && t <= 1.0 + t_tol && u >= -u_tol && u <= 1.0 + u_tol {
                let tc = t.clamp(0.0, 1.0);
                let px = x + (x - x) * tc;
                let py = ylo + (yhi - ylo) * tc;
                dist_to_baseline(px, py, seg_len)
            } else {
                f64::INFINITY
            }
        };
        if c < cap {
            cap = c;
        }
    }
    cap
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // lane-indexed comparison loops
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    /// Deterministic pseudo-random stream (no external deps in this crate).
    struct Lcg(u64);
    impl Lcg {
        fn next_f64(&mut self, lo: f64, hi: f64) -> f64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (self.0 >> 11) as f64 / (1u64 << 53) as f64;
            lo + u * (hi - lo)
        }
    }

    fn random_batch(rng: &mut Lcg, n: usize) -> SegBatch {
        let mut b = SegBatch::new();
        for k in 0..n {
            if k % 17 == 5 {
                // Degenerate zero-length candidate.
                let x = rng.next_f64(-50.0, 50.0);
                let y = rng.next_f64(-50.0, 50.0);
                b.push(&seg(x, y, x, y));
            } else if k % 11 == 3 {
                // Exactly horizontal (collinear-overlap bait at y = 0).
                let x = rng.next_f64(-50.0, 50.0);
                b.push(&seg(x, 0.0, x + rng.next_f64(0.1, 20.0), 0.0));
            } else {
                b.push(&seg(
                    rng.next_f64(-50.0, 50.0),
                    rng.next_f64(-50.0, 50.0),
                    rng.next_f64(-50.0, 50.0),
                    rng.next_f64(-50.0, 50.0),
                ));
            }
        }
        b
    }

    #[test]
    fn segment_batch_matches_scalar_bitwise() {
        let mut rng = Lcg(7);
        let mut out = Vec::new();
        for round in 0..8 {
            let batch = random_batch(&mut rng, 64);
            let probe = if round % 3 == 0 {
                seg(-10.0, 0.0, 30.0, 0.0) // horizontal: hits the collinear bait
            } else {
                seg(
                    rng.next_f64(-50.0, 50.0),
                    rng.next_f64(-50.0, 50.0),
                    rng.next_f64(-50.0, 50.0),
                    rng.next_f64(-50.0, 50.0),
                )
            };
            distance_sq_to_segment_batch(&probe, &batch, &mut out);
            for i in 0..batch.len() {
                let scalar = probe.distance_to_segment(&batch.get(i));
                assert_eq!(
                    out[i].sqrt().to_bits(),
                    scalar.to_bits(),
                    "round {round} lane {i}: batched {} vs scalar {scalar}",
                    out[i].sqrt()
                );
            }
        }
    }

    #[test]
    fn point_batch_matches_scalar_bitwise() {
        let mut rng = Lcg(99);
        let probe = seg(0.0, 0.0, 37.0, 11.0);
        let degenerate = seg(5.0, 5.0, 5.0, 5.0);
        let mut pts = PointBatch::new();
        for _ in 0..300 {
            pts.push(Point::new(
                rng.next_f64(-40.0, 80.0),
                rng.next_f64(-40.0, 40.0),
            ));
        }
        let mut out = Vec::new();
        for p in [&probe, &degenerate] {
            distance_sq_to_point_batch(p, &pts, &mut out);
            for i in 0..pts.len() {
                let scalar = p.distance_to_point(pts.get(i));
                assert_eq!(out[i].sqrt().to_bits(), scalar.to_bits(), "lane {i}");
            }
        }
    }

    #[test]
    fn accumulators_match_scalar_min() {
        let mut rng = Lcg(3);
        let batch = random_batch(&mut rng, 48);
        let e = seg(1.0, 2.0, 9.0, -3.0);
        let mut acc = vec![f64::INFINITY; batch.len()];
        accum_seg_to_points_dsq(&e, batch.ax(), batch.ay(), &mut acc);
        accum_point_to_segs_dsq(e.a, &batch, &mut acc);
        for i in 0..batch.len() {
            let expect = e
                .distance_to_point(batch.get(i).a)
                .min(batch.get(i).distance_to_point(e.a));
            assert_eq!(acc[i].sqrt().to_bits(), expect.to_bits(), "lane {i}");
        }
    }

    #[test]
    fn mark_intersections_matches_predicate() {
        let mut rng = Lcg(42);
        for _ in 0..6 {
            let batch = random_batch(&mut rng, 80);
            let probe = seg(-20.0, -20.0, 20.0, 20.0);
            let mut hit = vec![false; batch.len()];
            mark_intersections(&probe, &batch, &mut hit);
            for i in 0..batch.len() {
                assert_eq!(
                    hit[i],
                    segments_intersect(&probe, &batch.get(i)),
                    "lane {i}"
                );
            }
        }
    }

    #[test]
    fn argmin_is_first_occurrence() {
        assert_eq!(min_argmin(&[]), None);
        assert_eq!(min_argmin(&[3.0, 1.0, 1.0, 2.0]), Some((1, 1.0)));
        assert_eq!(min_argmin(&[f64::INFINITY]), Some((0, f64::INFINITY)));
    }

    /// Reference: the scalar stage-1 contribution of one side × edge.
    fn scalar_cap(x: f64, ylo: f64, yhi: f64, e: &Segment, seg_len: f64) -> f64 {
        let side = seg(x, ylo, x, yhi);
        side_edge_cap_scalar(&side, e, seg_len)
    }

    #[test]
    fn x_range_kernel_matches_scalar_bitwise() {
        let mut rng = Lcg(1234);
        let (ylo, yhi, seg_len) = (1e-7, 40.0, 100.0);
        let xs: Vec<f64> = (0..=50).map(|p| p as f64 * 2.0 - 3.0).collect();
        for k in 0..60 {
            let e = match k % 5 {
                // Vertical edge (parallel branch) crossing some columns.
                0 => {
                    let x = rng.next_f64(-5.0, 100.0);
                    seg(x, rng.next_f64(-5.0, 50.0), x, rng.next_f64(-5.0, 50.0))
                }
                // Degenerate point edge.
                1 => {
                    let x = rng.next_f64(-5.0, 100.0);
                    let y = rng.next_f64(0.0, 45.0);
                    seg(x, y, x, y)
                }
                // Vertical collinear with a side: exactly at a lattice x.
                2 => seg(11.0, 5.0, 11.0, 25.0),
                _ => seg(
                    rng.next_f64(-10.0, 110.0),
                    rng.next_f64(-10.0, 50.0),
                    rng.next_f64(-10.0, 110.0),
                    rng.next_f64(-10.0, 50.0),
                ),
            };
            let mut caps = vec![f64::INFINITY; xs.len()];
            intersect_x_range_batch(&xs, ylo, yhi, &e, seg_len, &mut caps);
            for (i, &x) in xs.iter().enumerate() {
                let expect = scalar_cap(x, ylo, yhi, &e, seg_len);
                assert_eq!(
                    caps[i].to_bits(),
                    expect.to_bits(),
                    "edge {k} lane {i}: batched {} vs scalar {expect}",
                    caps[i]
                );
            }
            // Transposed kernel: one side vs an edge batch of this edge
            // plus noise must agree with the per-edge scalar minimum.
            let mut batch = random_batch(&mut rng, 31);
            batch.push(&e);
            for (i, &x) in xs.iter().enumerate().step_by(9) {
                let got = vertical_side_min_cap(x, ylo, yhi, &batch, seg_len);
                let mut expect = f64::INFINITY;
                for j in 0..batch.len() {
                    expect = expect.min(scalar_cap(x, ylo, yhi, &batch.get(j), seg_len));
                }
                assert_eq!(got.to_bits(), expect.to_bits(), "edge {k} x-lane {i}");
            }
        }
    }

    #[test]
    fn stats_record_and_waste() {
        let mut s = BatchStats::default();
        s.record(5);
        s.record(4);
        s.record(0);
        assert_eq!(s.calls, 3);
        assert_eq!(s.active_lanes, 9);
        assert_eq!(s.padded_lanes, 12);
        assert_eq!(s.wasted_lanes(), 3);
        assert!((s.candidates_per_call() - 3.0).abs() < 1e-12);
        let mut t = BatchStats::default();
        t.absorb(&s);
        assert_eq!(t, s);
    }

    #[test]
    fn batch_buffers_roundtrip() {
        let mut b = SegBatch::new();
        assert!(b.is_empty());
        b.push(&seg(1.0, 2.0, 3.0, 4.0));
        assert_eq!(b.len(), 1);
        assert_eq!(b.get(0), seg(1.0, 2.0, 3.0, 4.0));
        b.clear();
        assert!(b.is_empty());
        let mut p = PointBatch::new();
        assert!(p.is_empty());
        p.push(Point::new(7.0, 8.0));
        assert_eq!(p.len(), 1);
        assert_eq!(p.get(0), Point::new(7.0, 8.0));
        assert_eq!(p.px(), &[7.0]);
        assert_eq!(p.py(), &[8.0]);
        p.clear();
        assert!(p.is_empty());
    }
}
