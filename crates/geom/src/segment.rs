//! Line segments — the atoms traces are made of.

use crate::eps::{approx_zero, clamp, EPS};
use crate::point::Point;
use crate::rect::Rect;
use crate::vector::Vector;
use std::fmt;

/// A directed line segment from `a` to `b`.
///
/// Trace centerlines are polylines of segments; the DP extension (paper
/// Sec. IV) pops one `Segment` at a time off the work queue, meanders it in a
/// local frame, and replaces it with the meandered pieces.
///
/// ```
/// use meander_geom::{Point, Segment};
/// let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
/// assert_eq!(s.length(), 10.0);
/// assert_eq!(s.distance_to_point(Point::new(5.0, 3.0)), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Creates a segment between two points.
    #[inline]
    pub fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Segment length.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// `true` when the segment is degenerate (endpoints coincide within
    /// tolerance).
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        approx_zero(self.length())
    }

    /// Displacement from `a` to `b`.
    #[inline]
    pub fn delta(&self) -> Vector {
        self.b - self.a
    }

    /// Unit direction from `a` to `b`, or `None` when degenerate.
    #[inline]
    pub fn direction(&self) -> Option<Vector> {
        self.delta().normalized()
    }

    /// Unit left-hand normal (counter-clockwise perpendicular of the
    /// direction), or `None` when degenerate.
    ///
    /// Patterns in the paper are inserted perpendicular to the segment; the
    /// "positive"/"negative" pattern directions of the DP map to `+normal` /
    /// `-normal`.
    #[inline]
    pub fn normal(&self) -> Option<Vector> {
        self.direction().map(|d| d.perp())
    }

    /// Midpoint of the segment.
    #[inline]
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(self.b)
    }

    /// Point at parameter `t ∈ [0, 1]` along the segment.
    #[inline]
    pub fn point_at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// Point at arc-length `s` from `a` (clamped to the segment).
    pub fn point_at_length(&self, s: f64) -> Point {
        let len = self.length();
        if len <= EPS {
            return self.a;
        }
        self.point_at(clamp(s / len, 0.0, 1.0))
    }

    /// Parameter of the orthogonal projection of `p` onto the *line* through
    /// the segment (unclamped; 0 at `a`, 1 at `b`).
    pub fn project(&self, p: Point) -> f64 {
        let d = self.delta();
        let len_sq = d.norm_sq();
        if len_sq <= EPS * EPS {
            return 0.0;
        }
        (p - self.a).dot(d) / len_sq
    }

    /// Closest point on the segment to `p`.
    pub fn closest_point(&self, p: Point) -> Point {
        self.point_at(clamp(self.project(p), 0.0, 1.0))
    }

    /// Distance from the segment to a point.
    ///
    /// DRC clearance checks in this workspace are built from this predicate
    /// and [`Segment::distance_to_segment`] rather than from polygon
    /// offsetting (see DESIGN.md, "DRC as distance predicates").
    pub fn distance_to_point(&self, p: Point) -> f64 {
        self.closest_point(p).distance(p)
    }

    /// Signed perpendicular distance from the *line* through the segment to
    /// `p`; positive on the left of `a → b`.
    pub fn signed_line_distance(&self, p: Point) -> f64 {
        match self.direction() {
            Some(d) => d.cross(p - self.a),
            None => self.a.distance(p),
        }
    }

    /// Minimum distance between two segments (0 when they intersect).
    pub fn distance_to_segment(&self, other: &Segment) -> f64 {
        if crate::intersect::segments_intersect(self, other) {
            return 0.0;
        }
        self.distance_to_point(other.a)
            .min(self.distance_to_point(other.b))
            .min(other.distance_to_point(self.a))
            .min(other.distance_to_point(self.b))
    }

    /// `true` when `p` lies on the segment within tolerance.
    pub fn contains_point(&self, p: Point) -> bool {
        self.distance_to_point(p) <= EPS
    }

    /// The reversed segment `b → a`.
    #[inline]
    pub fn reversed(&self) -> Segment {
        Segment::new(self.b, self.a)
    }

    /// Axis-aligned bounding box.
    pub fn bbox(&self) -> Rect {
        Rect::from_points([self.a, self.b]).expect("segment has two points")
    }

    /// Translates the segment by `v`.
    pub fn translated(&self, v: Vector) -> Segment {
        Segment::new(self.a + v, self.b + v)
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} → {}]", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn length_direction_normal() {
        let s = seg(0.0, 0.0, 3.0, 4.0);
        assert_eq!(s.length(), 5.0);
        let d = s.direction().unwrap();
        assert!((d.norm() - 1.0).abs() < 1e-12);
        let n = s.normal().unwrap();
        assert!(approx_zero(d.dot(n)));
    }

    #[test]
    fn degenerate_segment() {
        let s = seg(1.0, 1.0, 1.0, 1.0);
        assert!(s.is_degenerate());
        assert!(s.direction().is_none());
        assert_eq!(s.point_at_length(5.0), Point::new(1.0, 1.0));
        assert_eq!(s.project(Point::new(9.0, 9.0)), 0.0);
    }

    #[test]
    fn projection_and_closest_point() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.project(Point::new(5.0, 7.0)), 0.5);
        assert_eq!(s.project(Point::new(-5.0, 0.0)), -0.5);
        assert_eq!(s.closest_point(Point::new(-5.0, 3.0)), Point::new(0.0, 0.0));
        assert_eq!(
            s.closest_point(Point::new(15.0, 3.0)),
            Point::new(10.0, 0.0)
        );
        assert_eq!(s.closest_point(Point::new(4.0, 3.0)), Point::new(4.0, 0.0));
    }

    #[test]
    fn point_distance_interior_and_endpoints() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.distance_to_point(Point::new(5.0, 2.0)), 2.0);
        assert_eq!(s.distance_to_point(Point::new(13.0, 4.0)), 5.0);
    }

    #[test]
    fn signed_distance_side() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert!(s.signed_line_distance(Point::new(5.0, 1.0)) > 0.0);
        assert!(s.signed_line_distance(Point::new(5.0, -1.0)) < 0.0);
        assert!(approx_zero(s.signed_line_distance(Point::new(20.0, 0.0))));
    }

    #[test]
    fn segment_to_segment_distance() {
        let s1 = seg(0.0, 0.0, 10.0, 0.0);
        let s2 = seg(0.0, 3.0, 10.0, 3.0);
        assert_eq!(s1.distance_to_segment(&s2), 3.0);
        // Crossing segments → 0.
        let s3 = seg(5.0, -1.0, 5.0, 1.0);
        assert_eq!(s1.distance_to_segment(&s3), 0.0);
        // Skew non-crossing: closest at endpoints.
        let s4 = seg(12.0, 1.0, 20.0, 5.0);
        assert!(
            (s1.distance_to_segment(&s4) - Point::new(10.0, 0.0).distance(Point::new(12.0, 1.0)))
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn contains_point_tolerance() {
        let s = seg(0.0, 0.0, 10.0, 10.0);
        assert!(s.contains_point(Point::new(5.0, 5.0)));
        assert!(!s.contains_point(Point::new(5.0, 5.1)));
    }

    #[test]
    fn bbox_and_translate() {
        let s = seg(1.0, 5.0, 3.0, -2.0);
        let r = s.bbox();
        assert_eq!(r.min, Point::new(1.0, -2.0));
        assert_eq!(r.max, Point::new(3.0, 5.0));
        let t = s.translated(Vector::new(1.0, 1.0));
        assert_eq!(t.a, Point::new(2.0, 6.0));
    }

    #[test]
    fn point_at_length_clamps() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.point_at_length(-5.0), Point::new(0.0, 0.0));
        assert_eq!(s.point_at_length(25.0), Point::new(10.0, 0.0));
        assert_eq!(s.point_at_length(4.0), Point::new(4.0, 0.0));
    }
}
