//! Segment intersection predicates and constructions.
//!
//! The URA shrinking procedure (paper Sec. IV-B) reduces DRC to
//! "intersection checking between the polygons that stand for URAs or the
//! routable area"; these are the primitives it is built on.

use crate::eps::{approx_zero, EPS};
use crate::point::Point;
use crate::segment::Segment;

/// Result of intersecting two segments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SegmentIntersection {
    /// The segments do not meet.
    None,
    /// The segments meet in a single point.
    Point(Point),
    /// The segments are collinear and share a sub-segment of positive
    /// length.
    Overlap(Segment),
}

/// Computes the intersection of two segments, treating touching endpoints as
/// intersections.
///
/// ```
/// use meander_geom::{Point, Segment, segment_intersection, SegmentIntersection};
/// let a = Segment::new(Point::new(0.0, 0.0), Point::new(4.0, 4.0));
/// let b = Segment::new(Point::new(0.0, 4.0), Point::new(4.0, 0.0));
/// match segment_intersection(&a, &b) {
///     SegmentIntersection::Point(p) => assert!(p.approx_eq(Point::new(2.0, 2.0))),
///     _ => panic!("expected point intersection"),
/// }
/// ```
pub fn segment_intersection(s1: &Segment, s2: &Segment) -> SegmentIntersection {
    let d1 = s1.delta();
    let d2 = s2.delta();
    let denom = d1.cross(d2);
    let start_diff = s2.a - s1.a;

    if approx_zero(denom) {
        // Parallel. Collinear iff start offset is also parallel to d1.
        if !approx_zero(d1.cross(start_diff)) && !d1.is_zero() {
            return SegmentIntersection::None;
        }
        // Degenerate cases: one or both segments are points.
        if d1.is_zero() && d2.is_zero() {
            return if s1.a.approx_eq(s2.a) {
                SegmentIntersection::Point(s1.a)
            } else {
                SegmentIntersection::None
            };
        }
        if d1.is_zero() {
            return if s2.contains_point(s1.a) {
                SegmentIntersection::Point(s1.a)
            } else {
                SegmentIntersection::None
            };
        }
        if d2.is_zero() {
            return if s1.contains_point(s2.a) {
                SegmentIntersection::Point(s2.a)
            } else {
                SegmentIntersection::None
            };
        }
        // Both have extent and are collinear: project onto d1.
        let len_sq = d1.norm_sq();
        let t0 = (s2.a - s1.a).dot(d1) / len_sq;
        let t1 = (s2.b - s1.a).dot(d1) / len_sq;
        let (lo, hi) = if t0 <= t1 { (t0, t1) } else { (t1, t0) };
        let lo = lo.max(0.0);
        let hi = hi.min(1.0);
        let tol = EPS / len_sq.sqrt();
        if hi < lo - tol {
            return SegmentIntersection::None;
        }
        if (hi - lo).abs() <= tol {
            return SegmentIntersection::Point(s1.point_at(lo.clamp(0.0, 1.0)));
        }
        return SegmentIntersection::Overlap(Segment::new(s1.point_at(lo), s1.point_at(hi)));
    }

    let t = start_diff.cross(d2) / denom;
    let u = start_diff.cross(d1) / denom;
    // Tolerances scaled into parameter space so that endpoint touches within
    // EPS board units count.
    let t_tol = EPS / d1.norm().max(EPS);
    let u_tol = EPS / d2.norm().max(EPS);
    if t >= -t_tol && t <= 1.0 + t_tol && u >= -u_tol && u <= 1.0 + u_tol {
        SegmentIntersection::Point(s1.point_at(t.clamp(0.0, 1.0)))
    } else {
        SegmentIntersection::None
    }
}

/// `true` when the two segments intersect or touch.
pub fn segments_intersect(s1: &Segment, s2: &Segment) -> bool {
    !matches!(segment_intersection(s1, s2), SegmentIntersection::None)
}

/// Collects intersection points of `seg` against a set of edges.
///
/// Overlap intersections contribute both overlap endpoints — the URA "sides"
/// shrinking (Eq. 11) only needs the point set `P_inters`.
pub fn segment_edge_intersections<'a, I>(seg: &Segment, edges: I) -> Vec<Point>
where
    I: IntoIterator<Item = &'a Segment>,
{
    let mut out = Vec::new();
    for e in edges {
        match segment_intersection(seg, e) {
            SegmentIntersection::None => {}
            SegmentIntersection::Point(p) => out.push(p),
            SegmentIntersection::Overlap(o) => {
                out.push(o.a);
                out.push(o.b);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn proper_crossing() {
        let r = segment_intersection(&seg(0.0, 0.0, 2.0, 2.0), &seg(0.0, 2.0, 2.0, 0.0));
        assert_eq!(r, SegmentIntersection::Point(Point::new(1.0, 1.0)));
    }

    #[test]
    fn miss_is_none() {
        let r = segment_intersection(&seg(0.0, 0.0, 1.0, 0.0), &seg(0.0, 1.0, 1.0, 1.0));
        assert_eq!(r, SegmentIntersection::None);
        let r = segment_intersection(&seg(0.0, 0.0, 1.0, 1.0), &seg(2.0, 0.0, 3.0, -5.0));
        assert_eq!(r, SegmentIntersection::None);
    }

    #[test]
    fn endpoint_touch_counts() {
        let r = segment_intersection(&seg(0.0, 0.0, 2.0, 0.0), &seg(2.0, 0.0, 2.0, 5.0));
        match r {
            SegmentIntersection::Point(p) => assert!(p.approx_eq(Point::new(2.0, 0.0))),
            other => panic!("expected point, got {other:?}"),
        }
        // T-junction in segment interior.
        let r = segment_intersection(&seg(0.0, 0.0, 4.0, 0.0), &seg(2.0, 0.0, 2.0, 3.0));
        match r {
            SegmentIntersection::Point(p) => assert!(p.approx_eq(Point::new(2.0, 0.0))),
            other => panic!("expected point, got {other:?}"),
        }
    }

    #[test]
    fn collinear_overlap() {
        let r = segment_intersection(&seg(0.0, 0.0, 4.0, 0.0), &seg(2.0, 0.0, 6.0, 0.0));
        match r {
            SegmentIntersection::Overlap(o) => {
                assert!(o.a.approx_eq(Point::new(2.0, 0.0)));
                assert!(o.b.approx_eq(Point::new(4.0, 0.0)));
            }
            other => panic!("expected overlap, got {other:?}"),
        }
    }

    #[test]
    fn collinear_touching_endpoints_is_point() {
        let r = segment_intersection(&seg(0.0, 0.0, 2.0, 0.0), &seg(2.0, 0.0, 4.0, 0.0));
        match r {
            SegmentIntersection::Point(p) => assert!(p.approx_eq(Point::new(2.0, 0.0))),
            other => panic!("expected point, got {other:?}"),
        }
    }

    #[test]
    fn collinear_disjoint_is_none() {
        let r = segment_intersection(&seg(0.0, 0.0, 1.0, 0.0), &seg(2.0, 0.0, 3.0, 0.0));
        assert_eq!(r, SegmentIntersection::None);
    }

    #[test]
    fn parallel_non_collinear_is_none() {
        let r = segment_intersection(&seg(0.0, 0.0, 4.0, 0.0), &seg(0.0, 1.0, 4.0, 1.0));
        assert_eq!(r, SegmentIntersection::None);
    }

    #[test]
    fn degenerate_segments() {
        // Point on segment.
        let r = segment_intersection(&seg(1.0, 0.0, 1.0, 0.0), &seg(0.0, 0.0, 2.0, 0.0));
        assert_eq!(r, SegmentIntersection::Point(Point::new(1.0, 0.0)));
        // Point off segment.
        let r = segment_intersection(&seg(1.0, 1.0, 1.0, 1.0), &seg(0.0, 0.0, 2.0, 0.0));
        assert_eq!(r, SegmentIntersection::None);
        // Two coincident points.
        let r = segment_intersection(&seg(1.0, 1.0, 1.0, 1.0), &seg(1.0, 1.0, 1.0, 1.0));
        assert_eq!(r, SegmentIntersection::Point(Point::new(1.0, 1.0)));
        // Two distinct points.
        let r = segment_intersection(&seg(1.0, 1.0, 1.0, 1.0), &seg(2.0, 2.0, 2.0, 2.0));
        assert_eq!(r, SegmentIntersection::None);
    }

    #[test]
    fn any_angle_crossing() {
        // Crossing at an arbitrary (non-45°) angle — the any-direction case.
        let s1 = seg(0.0, 0.0, 10.0, 3.0);
        let s2 = seg(3.0, 5.0, 6.0, -4.0);
        match segment_intersection(&s1, &s2) {
            SegmentIntersection::Point(p) => {
                assert!(s1.distance_to_point(p) < 1e-9);
                assert!(s2.distance_to_point(p) < 1e-9);
            }
            other => panic!("expected point, got {other:?}"),
        }
    }

    #[test]
    fn edge_collection_gathers_all() {
        let probe = seg(0.0, -1.0, 0.0, 10.0);
        let edges = [
            seg(-1.0, 0.0, 1.0, 0.0),
            seg(-1.0, 5.0, 1.0, 5.0),
            seg(3.0, 3.0, 4.0, 4.0),
        ];
        let pts = segment_edge_intersections(&probe, edges.iter());
        assert_eq!(pts.len(), 2);
    }
}
