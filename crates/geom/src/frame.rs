//! Local coordinate frames — the mechanism behind any-direction routing.

use crate::point::Point;
use crate::polygon::Polygon;
use crate::polyline::Polyline;
use crate::segment::Segment;
use crate::vector::Vector;

/// A rigid local coordinate frame (origin + orthonormal basis).
///
/// The paper's extension "is held by computational geometry so that it fits
/// any-direction routing" (Sec. IV): instead of assuming horizontal/45°
/// tracks, every segment is mapped into a frame where it runs along +x from
/// the origin. Pattern construction, URA building, and shrinking all happen
/// in that frame; results are mapped back with [`Frame::to_world`].
///
/// ```
/// use meander_geom::{Frame, Point, Segment};
/// let seg = Segment::new(Point::new(1.0, 1.0), Point::new(4.0, 5.0));
/// let f = Frame::from_segment(&seg).unwrap();
/// let local_b = f.to_local(seg.b);
/// assert!((local_b.y).abs() < 1e-12);        // b lies on the local x axis
/// assert!((local_b.x - 5.0).abs() < 1e-12);  // at distance |ab|
/// assert!(f.to_world(local_b).approx_eq(seg.b));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Frame {
    origin: Point,
    ux: Vector,
    uy: Vector,
}

impl Frame {
    /// Identity frame (world coordinates).
    pub fn identity() -> Self {
        Frame {
            origin: Point::ORIGIN,
            ux: Vector::UNIT_X,
            uy: Vector::UNIT_Y,
        }
    }

    /// Frame whose +x axis runs along `seg` starting at `seg.a`; `None` for
    /// a degenerate segment.
    pub fn from_segment(seg: &Segment) -> Option<Self> {
        let ux = seg.direction()?;
        Some(Frame {
            origin: seg.a,
            ux,
            uy: ux.perp(),
        })
    }

    /// Frame with a given origin and +x direction (`dir` need not be unit
    /// length); `None` when `dir` is (near-)zero.
    pub fn new(origin: Point, dir: Vector) -> Option<Self> {
        let ux = dir.normalized()?;
        Some(Frame {
            origin,
            ux,
            uy: ux.perp(),
        })
    }

    /// The frame origin in world coordinates.
    #[inline]
    pub fn origin(&self) -> Point {
        self.origin
    }

    /// Unit +x axis in world coordinates.
    #[inline]
    pub fn x_axis(&self) -> Vector {
        self.ux
    }

    /// Unit +y axis in world coordinates (counter-clockwise of x).
    #[inline]
    pub fn y_axis(&self) -> Vector {
        self.uy
    }

    /// World point → local coordinates.
    pub fn to_local(&self, p: Point) -> Point {
        let d = p - self.origin;
        Point::new(d.dot(self.ux), d.dot(self.uy))
    }

    /// Local coordinates → world point.
    pub fn to_world(&self, p: Point) -> Point {
        self.origin + self.ux * p.x + self.uy * p.y
    }

    /// World vector → local components.
    pub fn vector_to_local(&self, v: Vector) -> Vector {
        Vector::new(v.dot(self.ux), v.dot(self.uy))
    }

    /// Local components → world vector.
    pub fn vector_to_world(&self, v: Vector) -> Vector {
        self.ux * v.x + self.uy * v.y
    }

    /// Maps a whole segment into local coordinates.
    pub fn segment_to_local(&self, s: &Segment) -> Segment {
        Segment::new(self.to_local(s.a), self.to_local(s.b))
    }

    /// Maps a local-space segment back to world coordinates.
    pub fn segment_to_world(&self, s: &Segment) -> Segment {
        Segment::new(self.to_world(s.a), self.to_world(s.b))
    }

    /// Maps a polygon into local coordinates.
    pub fn polygon_to_local(&self, poly: &Polygon) -> Polygon {
        Polygon::new(poly.vertices().iter().map(|&p| self.to_local(p)).collect())
    }

    /// Maps a local-space polygon back to world coordinates.
    pub fn polygon_to_world(&self, poly: &Polygon) -> Polygon {
        Polygon::new(poly.vertices().iter().map(|&p| self.to_world(p)).collect())
    }

    /// Maps a polyline into local coordinates.
    pub fn polyline_to_local(&self, pl: &Polyline) -> Polyline {
        pl.points().iter().map(|&p| self.to_local(p)).collect()
    }

    /// Maps a local-space polyline back to world coordinates.
    pub fn polyline_to_world(&self, pl: &Polyline) -> Polyline {
        pl.points().iter().map(|&p| self.to_world(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::angle::Angle;

    #[test]
    fn identity_is_noop() {
        let f = Frame::identity();
        let p = Point::new(3.0, -2.0);
        assert!(f.to_local(p).approx_eq(p));
        assert!(f.to_world(p).approx_eq(p));
    }

    #[test]
    fn segment_frame_puts_segment_on_x_axis() {
        for deg in [0.0, 17.0, 45.0, 90.0, 133.7, 180.0, 251.0] {
            let dir = Vector::from_angle(Angle::from_degrees(deg));
            let seg = Segment::new(Point::new(2.0, 3.0), Point::new(2.0, 3.0) + dir * 7.0);
            let f = Frame::from_segment(&seg).unwrap();
            let a = f.to_local(seg.a);
            let b = f.to_local(seg.b);
            assert!(a.approx_eq(Point::ORIGIN), "deg={deg}");
            assert!((b.y).abs() < 1e-9 && (b.x - 7.0).abs() < 1e-9, "deg={deg}");
        }
    }

    #[test]
    fn round_trip_points_and_vectors() {
        let f = Frame::new(Point::new(5.0, -1.0), Vector::new(1.0, 2.0)).unwrap();
        for p in [
            Point::new(0.0, 0.0),
            Point::new(-3.5, 8.25),
            Point::new(100.0, 0.125),
        ] {
            assert!(f.to_world(f.to_local(p)).approx_eq(p));
            assert!(f.to_local(f.to_world(p)).approx_eq(p));
        }
        let v = Vector::new(2.0, -7.0);
        let rt = f.vector_to_world(f.vector_to_local(v));
        assert!((rt - v).is_zero());
    }

    #[test]
    fn frames_preserve_distance() {
        let f = Frame::new(Point::new(1.0, 1.0), Vector::new(3.0, 4.0)).unwrap();
        let p = Point::new(2.0, 9.0);
        let q = Point::new(-4.0, 0.5);
        let d_world = p.distance(q);
        let d_local = f.to_local(p).distance(f.to_local(q));
        assert!((d_world - d_local).abs() < 1e-9);
    }

    #[test]
    fn degenerate_direction_rejected() {
        assert!(Frame::new(Point::ORIGIN, Vector::ZERO).is_none());
        let seg = Segment::new(Point::new(1.0, 1.0), Point::new(1.0, 1.0));
        assert!(Frame::from_segment(&seg).is_none());
    }

    #[test]
    fn shape_round_trips() {
        let f = Frame::new(Point::new(2.0, 2.0), Vector::new(-1.0, 1.0)).unwrap();
        let poly = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(2.0, 1.0));
        let rt = f.polygon_to_world(&f.polygon_to_local(&poly));
        for (a, b) in rt.vertices().iter().zip(poly.vertices()) {
            assert!(a.approx_eq(*b));
        }
        assert!((rt.area() - poly.area()).abs() < 1e-9);

        let pl = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 4.0),
        ]);
        let rt = f.polyline_to_world(&f.polyline_to_local(&pl));
        assert!((rt.length() - pl.length()).abs() < 1e-9);
    }

    #[test]
    fn basis_is_orthonormal() {
        let f = Frame::new(Point::ORIGIN, Vector::new(0.3, 0.4)).unwrap();
        assert!((f.x_axis().norm() - 1.0).abs() < 1e-12);
        assert!((f.y_axis().norm() - 1.0).abs() < 1e-12);
        assert!(f.x_axis().dot(f.y_axis()).abs() < 1e-12);
        // Right-handed: y is ccw of x.
        assert!(f.x_axis().cross(f.y_axis()) > 0.0);
    }
}
