//! Distance helpers between heterogeneous entities.
//!
//! The URA shrinking equations of the paper (Eqs. 11–13) are phrased in terms
//! of `d(seg, p)` — distance from the extended segment to a point — and
//! `d(seg, P) = min_{p ∈ P} d(seg, p)` over point sets. These free functions
//! provide those forms directly.

use crate::point::Point;
use crate::polygon::Polygon;
use crate::segment::Segment;

/// `d(seg, p)`: distance from a segment to a point.
#[inline]
pub fn segment_point(seg: &Segment, p: Point) -> f64 {
    seg.distance_to_point(p)
}

/// `d(seg, P) = min_{p ∈ P} d(seg, p)`; `f64::INFINITY` for an empty set.
pub fn segment_point_set<'a, I>(seg: &Segment, points: I) -> f64
where
    I: IntoIterator<Item = &'a Point>,
{
    points
        .into_iter()
        .map(|&p| seg.distance_to_point(p))
        .fold(f64::INFINITY, f64::min)
}

/// Minimum distance between a segment and every vertex of a polygon
/// (vertex distance, not border distance — this is the `d(seg, Poly_k)`
/// used in Eq. 13 where `Poly_k` is the polygon's *node point set*).
pub fn segment_polygon_vertices(seg: &Segment, poly: &Polygon) -> f64 {
    segment_point_set(seg, poly.vertices().iter())
}

/// Minimum distance between two point sets; `f64::INFINITY` when either is
/// empty.
pub fn point_set_point_set(a: &[Point], b: &[Point]) -> f64 {
    let mut best = f64::INFINITY;
    for &p in a {
        for &q in b {
            best = best.min(p.distance(q));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_point_matches_method() {
        let seg = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert_eq!(segment_point(&seg, Point::new(5.0, 4.0)), 4.0);
    }

    #[test]
    fn point_set_minimum() {
        let seg = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let pts = [
            Point::new(0.0, 9.0),
            Point::new(5.0, 2.0),
            Point::new(20.0, 0.0),
        ];
        assert_eq!(segment_point_set(&seg, pts.iter()), 2.0);
        assert_eq!(segment_point_set(&seg, [].iter()), f64::INFINITY);
    }

    #[test]
    fn polygon_vertex_distance() {
        let seg = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let poly = Polygon::rectangle(Point::new(4.0, 3.0), Point::new(6.0, 5.0));
        assert_eq!(segment_polygon_vertices(&seg, &poly), 3.0);
    }

    #[test]
    fn set_to_set() {
        let a = [Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let b = [Point::new(4.0, 4.0), Point::new(1.0, 2.0)];
        assert_eq!(point_set_point_set(&a, &b), 2.0);
        assert_eq!(point_set_point_set(&a, &[]), f64::INFINITY);
    }
}
