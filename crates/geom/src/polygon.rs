//! Simple polygons — obstacles, routable-area borders, URA outlines.

use crate::eps::EPS;
use crate::intersect::segments_intersect;
use crate::point::Point;
use crate::rect::Rect;
use crate::segment::Segment;
use std::fmt;

/// A simple polygon given by its vertex ring (implicitly closed; the last
/// vertex connects back to the first).
///
/// In this workspace polygons model obstacles, routable-area borders (with
/// obstacles folded in as part of the border, per the paper's "Obstacle:
/// a polygon that the trace cannot pass, converted into a part of the
/// routable area"), and the rectangular URA outlines used during shrinking.
///
/// Vertices may wind either way; predicates are winding-agnostic except for
/// [`Polygon::signed_area`].
///
/// ```
/// use meander_geom::{Point, Polygon};
/// let square = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(4.0, 4.0));
/// assert!(square.contains(Point::new(2.0, 2.0)));
/// assert!(!square.contains(Point::new(5.0, 2.0)));
/// assert_eq!(square.area(), 16.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from a vertex ring.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 3 vertices are supplied.
    pub fn new(vertices: Vec<Point>) -> Self {
        assert!(vertices.len() >= 3, "polygon needs at least 3 vertices");
        Polygon { vertices }
    }

    /// Axis-aligned rectangle polygon between two corners.
    pub fn rectangle(a: Point, b: Point) -> Self {
        let r = Rect::new(a, b);
        Polygon::new(r.corners().to_vec())
    }

    /// Regular `n`-gon centered at `c` with circumradius `r`, first vertex at
    /// angle `phase` (radians). Handy for synthesizing vias/pads.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn regular(c: Point, r: f64, n: usize, phase: f64) -> Self {
        assert!(n >= 3, "regular polygon needs n >= 3");
        let verts = (0..n)
            .map(|i| {
                let ang = phase + i as f64 * std::f64::consts::TAU / n as f64;
                Point::new(c.x + r * ang.cos(), c.y + r * ang.sin())
            })
            .collect();
        Polygon::new(verts)
    }

    /// The vertex ring.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices (== number of edges).
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Always `false`: constructors enforce ≥ 3 vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterator over the edges, each as a [`Segment`] from vertex `i` to
    /// vertex `i+1` (wrapping).
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Signed area: positive for counter-clockwise winding.
    pub fn signed_area(&self) -> f64 {
        let mut s = 0.0;
        let n = self.vertices.len();
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            s += p.x * q.y - q.x * p.y;
        }
        s / 2.0
    }

    /// Absolute area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Perimeter length.
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|e| e.length()).sum()
    }

    /// `true` when wound counter-clockwise.
    #[inline]
    pub fn is_ccw(&self) -> bool {
        self.signed_area() > 0.0
    }

    /// Returns a copy wound counter-clockwise.
    pub fn ccw(&self) -> Polygon {
        if self.is_ccw() {
            self.clone()
        } else {
            let mut v = self.vertices.clone();
            v.reverse();
            Polygon { vertices: v }
        }
    }

    /// Axis-aligned bounding box.
    pub fn bbox(&self) -> Rect {
        Rect::from_points(self.vertices.iter().copied()).expect("polygon has vertices")
    }

    /// Point-in-polygon by ray casting, boundary-inclusive.
    ///
    /// The paper adopts exactly this test for the inner-border check of
    /// Alg. 2 ("We adopt the ray casting algorithm for this work").
    pub fn contains(&self, p: Point) -> bool {
        if self.on_boundary(p) {
            return true;
        }
        self.contains_by_parity(p)
    }

    /// Point-in-polygon, boundary-exclusive.
    pub fn contains_strict(&self, p: Point) -> bool {
        if self.on_boundary(p) {
            return false;
        }
        self.contains_by_parity(p)
    }

    /// `true` when `p` lies on the polygon border within tolerance.
    pub fn on_boundary(&self, p: Point) -> bool {
        self.edges().any(|e| e.distance_to_point(p) <= EPS)
    }

    fn contains_by_parity(&self, p: Point) -> bool {
        // Standard even-odd ray cast toward +x with the half-open edge rule,
        // which is robust against the ray passing through vertices.
        let mut inside = false;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let pi = self.vertices[i];
            let pj = self.vertices[j];
            if (pi.y > p.y) != (pj.y > p.y) {
                let x_cross = pj.x + (p.y - pj.y) / (pi.y - pj.y) * (pi.x - pj.x);
                if p.x < x_cross {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// `true` when `seg` intersects or touches the polygon border.
    pub fn intersects_segment(&self, seg: &Segment) -> bool {
        self.edges().any(|e| segments_intersect(&e, seg))
    }

    /// `true` when `other`'s border intersects this polygon's border.
    pub fn intersects_polygon(&self, other: &Polygon) -> bool {
        other.edges().any(|e| self.intersects_segment(&e))
    }

    /// Minimum distance from the polygon *border* to a point (0 on the
    /// border; interior points still measure to the border).
    pub fn border_distance_to_point(&self, p: Point) -> f64 {
        self.edges()
            .map(|e| e.distance_to_point(p))
            .fold(f64::INFINITY, f64::min)
    }

    /// Minimum distance from the polygon (as a filled region) to a segment:
    /// 0 when the segment touches or enters the polygon.
    pub fn distance_to_segment(&self, seg: &Segment) -> f64 {
        if self.intersects_segment(seg) {
            return 0.0;
        }
        if self.contains(seg.a) {
            // Fully inside (no border crossing + one endpoint inside).
            return 0.0;
        }
        let mut d = f64::INFINITY;
        for e in self.edges() {
            d = d.min(e.distance_to_segment(seg));
        }
        d
    }

    /// `true` when every vertex of `other` is inside this polygon and the
    /// borders do not cross — i.e. `other` is fully contained.
    pub fn contains_polygon(&self, other: &Polygon) -> bool {
        if self.intersects_polygon(other) {
            // Borders touching/crossing: not strict containment. Touching is
            // treated as not contained, which is the conservative choice for
            // clearance checks.
            return false;
        }
        other.vertices.iter().all(|&v| self.contains(v))
    }

    /// `true` when the polygon is convex (allowing collinear runs).
    pub fn is_convex(&self) -> bool {
        let n = self.vertices.len();
        let mut sign = 0.0_f64;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            let c = self.vertices[(i + 2) % n];
            let cr = (b - a).cross(c - b);
            if cr.abs() <= EPS {
                continue;
            }
            if sign == 0.0 {
                sign = cr.signum();
            } else if cr.signum() != sign {
                return false;
            }
        }
        true
    }

    /// Translates every vertex by `v`.
    pub fn translated(&self, v: crate::vector::Vector) -> Polygon {
        Polygon {
            vertices: self.vertices.iter().map(|&p| p + v).collect(),
        }
    }

    /// Vertex centroid (mean of vertices, not area centroid).
    pub fn vertex_centroid(&self) -> Point {
        Point::centroid(&self.vertices)
    }

    /// Outward offset of a *convex* polygon by `d` (miter joins).
    ///
    /// Each edge line is pushed `d` along its outward normal and
    /// consecutive lines re-intersected. Used to inflate obstacles by the
    /// difference between the obstacle clearance rule and the trace-gap
    /// clearance the URA construction already provides.
    ///
    /// For non-convex input the result may self-intersect; callers must
    /// ensure convexity (vias and keep-outs in this workspace are convex).
    ///
    /// # Panics
    ///
    /// Panics if `d` is negative.
    pub fn offset_convex(&self, d: f64) -> Polygon {
        assert!(d >= 0.0, "offset distance must be non-negative");
        if d == 0.0 {
            return self.clone();
        }
        let ring = self.ccw();
        let verts = ring.vertices();
        let n = verts.len();
        // Shifted edge lines as (point, direction).
        let mut lines: Vec<(Point, crate::vector::Vector)> = Vec::with_capacity(n);
        for i in 0..n {
            let a = verts[i];
            let b = verts[(i + 1) % n];
            if let Some(dir) = (b - a).normalized() {
                // CCW ring: interior on the left ⇒ outward = right = −perp.
                let out = -dir.perp();
                lines.push((a + out * d, dir));
            }
        }
        let m = lines.len();
        let mut out_pts = Vec::with_capacity(m);
        for i in 0..m {
            let (p1, d1) = lines[(i + m - 1) % m];
            let (p2, d2) = lines[i];
            let denom = d1.cross(d2);
            if denom.abs() <= EPS {
                // Collinear edges: the shifted lines coincide; keep the
                // shared point.
                out_pts.push(p2);
            } else {
                let t = (p2 - p1).cross(d2) / denom;
                out_pts.push(p1 + d1 * t);
            }
        }
        out_pts.dedup_by(|a, b| a.approx_eq(*b));
        if out_pts.len() < 3 {
            return ring;
        }
        Polygon::new(out_pts)
    }

    /// Clips the polygon to the half-plane `y ≥ ymin`
    /// (Sutherland–Hodgman against one horizontal line).
    ///
    /// Returns `None` when the polygon lies entirely below the line or the
    /// clipped remainder is degenerate. The URA shrinking context uses this
    /// to discard the half of the world behind the extended segment, which
    /// the paper exempts from checking ("The area below line AD need not be
    /// checked").
    pub fn clipped_above(&self, ymin: f64) -> Option<Polygon> {
        let mut out: Vec<Point> = Vec::with_capacity(self.vertices.len() + 4);
        let n = self.vertices.len();
        for i in 0..n {
            let cur = self.vertices[i];
            let next = self.vertices[(i + 1) % n];
            let cur_in = cur.y >= ymin;
            let next_in = next.y >= ymin;
            if cur_in {
                out.push(cur);
            }
            if cur_in != next_in {
                let t = (ymin - cur.y) / (next.y - cur.y);
                out.push(Point::new(cur.x + (next.x - cur.x) * t, ymin));
            }
        }
        out.dedup_by(|a, b| a.approx_eq(*b));
        if out.len() >= 2 && out[0].approx_eq(*out.last().expect("non-empty")) {
            out.pop();
        }
        if out.len() < 3 {
            return None;
        }
        let poly = Polygon::new(out);
        if poly.area() <= EPS {
            None
        } else {
            Some(poly)
        }
    }
}

impl fmt::Display for Polygon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Polygon[{} vertices]", self.vertices.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::Vector;

    fn square() -> Polygon {
        Polygon::rectangle(Point::new(0.0, 0.0), Point::new(4.0, 4.0))
    }

    #[test]
    fn area_and_winding() {
        let sq = square();
        assert_eq!(sq.area(), 16.0);
        assert!(sq.is_ccw());
        let cw = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 4.0),
            Point::new(4.0, 4.0),
            Point::new(4.0, 0.0),
        ]);
        assert!(!cw.is_ccw());
        assert!(cw.ccw().is_ccw());
        assert_eq!(cw.area(), 16.0);
    }

    #[test]
    fn perimeter_of_square() {
        assert_eq!(square().perimeter(), 16.0);
    }

    #[test]
    fn containment_interior_boundary_exterior() {
        let sq = square();
        assert!(sq.contains(Point::new(2.0, 2.0)));
        assert!(sq.contains(Point::new(0.0, 2.0))); // on edge
        assert!(sq.contains(Point::new(4.0, 4.0))); // on vertex
        assert!(!sq.contains(Point::new(4.1, 2.0)));
        assert!(sq.contains_strict(Point::new(2.0, 2.0)));
        assert!(!sq.contains_strict(Point::new(0.0, 2.0)));
    }

    #[test]
    fn ray_cast_through_vertex_is_robust() {
        // A diamond whose vertices are axis-aligned with the query point.
        let d = Polygon::new(vec![
            Point::new(0.0, 2.0),
            Point::new(2.0, 0.0),
            Point::new(4.0, 2.0),
            Point::new(2.0, 4.0),
        ]);
        assert!(d.contains(Point::new(2.0, 2.0)));
        assert!(!d.contains(Point::new(-1.0, 2.0)));
        assert!(!d.contains(Point::new(5.0, 2.0)));
    }

    #[test]
    fn concave_polygon_containment() {
        // A "C" shape.
        let c = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 3.0),
            Point::new(4.0, 3.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ]);
        assert!(c.contains(Point::new(0.5, 2.0)));
        assert!(!c.contains(Point::new(2.5, 2.0))); // inside the notch
        assert!(!c.is_convex());
    }

    #[test]
    fn segment_intersection_with_border() {
        let sq = square();
        let crossing = Segment::new(Point::new(-1.0, 2.0), Point::new(5.0, 2.0));
        assert!(sq.intersects_segment(&crossing));
        let outside = Segment::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        assert!(!sq.intersects_segment(&outside));
        // Fully interior segment does not cross the border...
        let interior = Segment::new(Point::new(1.0, 1.0), Point::new(3.0, 3.0));
        assert!(!sq.intersects_segment(&interior));
        // ...but region distance sees it as inside.
        assert_eq!(sq.distance_to_segment(&interior), 0.0);
    }

    #[test]
    fn distance_to_segment_outside() {
        let sq = square();
        let s = Segment::new(Point::new(6.0, 0.0), Point::new(6.0, 4.0));
        assert_eq!(sq.distance_to_segment(&s), 2.0);
    }

    #[test]
    fn polygon_containment() {
        let outer = square();
        let inner = Polygon::rectangle(Point::new(1.0, 1.0), Point::new(2.0, 2.0));
        assert!(outer.contains_polygon(&inner));
        assert!(!inner.contains_polygon(&outer));
        let overlapping = Polygon::rectangle(Point::new(3.0, 3.0), Point::new(5.0, 5.0));
        assert!(!outer.contains_polygon(&overlapping));
    }

    #[test]
    fn convexity() {
        assert!(square().is_convex());
        assert!(Polygon::regular(Point::ORIGIN, 2.0, 8, 0.0).is_convex());
    }

    #[test]
    fn regular_polygon_geometry() {
        let hex = Polygon::regular(Point::new(1.0, 1.0), 2.0, 6, 0.0);
        assert_eq!(hex.len(), 6);
        for v in hex.vertices() {
            assert!((v.distance(Point::new(1.0, 1.0)) - 2.0).abs() < 1e-12);
        }
        assert!(hex.contains(Point::new(1.0, 1.0)));
    }

    #[test]
    fn translate_moves_bbox() {
        let sq = square().translated(Vector::new(10.0, 0.0));
        assert_eq!(sq.bbox().min, Point::new(10.0, 0.0));
    }

    #[test]
    fn border_distance() {
        let sq = square();
        assert_eq!(sq.border_distance_to_point(Point::new(2.0, 2.0)), 2.0);
        assert_eq!(sq.border_distance_to_point(Point::new(6.0, 2.0)), 2.0);
        assert_eq!(sq.border_distance_to_point(Point::new(0.0, 2.0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn too_few_vertices_panics() {
        let _ = Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
    }

    #[test]
    fn clip_above_keeps_upper_part() {
        let sq = square(); // [0,4]²
        let clipped = sq.clipped_above(2.0).unwrap();
        assert!((clipped.area() - 8.0).abs() < 1e-9);
        assert!(clipped.vertices().iter().all(|p| p.y >= 2.0 - 1e-9));
        // Fully above: unchanged area.
        let same = sq.clipped_above(-1.0).unwrap();
        assert!((same.area() - 16.0).abs() < 1e-9);
        // Fully below: gone.
        assert!(sq.clipped_above(5.0).is_none());
        // Degenerate sliver: gone.
        assert!(sq.clipped_above(4.0 - 1e-12).is_none());
    }

    #[test]
    fn clip_above_concave() {
        // A "U" straddling the line: clipping yields the two prongs joined
        // along the line (single ring in Sutherland–Hodgman output).
        let u = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(6.0, 0.0),
            Point::new(6.0, 4.0),
            Point::new(4.0, 4.0),
            Point::new(4.0, 1.0),
            Point::new(2.0, 1.0),
            Point::new(2.0, 4.0),
            Point::new(0.0, 4.0),
        ]);
        let clipped = u.clipped_above(2.0).unwrap();
        // Upper area: two 2×2 prongs = 8.
        assert!((clipped.area() - 8.0).abs() < 1e-9);
        assert!(clipped.vertices().iter().all(|p| p.y >= 2.0 - 1e-9));
    }

    #[test]
    fn offset_convex_square() {
        let sq = square(); // [0,4]²
        let grown = sq.offset_convex(1.0);
        assert!((grown.area() - 36.0).abs() < 1e-9);
        let bb = grown.bbox();
        assert!(bb.min.approx_eq(Point::new(-1.0, -1.0)));
        assert!(bb.max.approx_eq(Point::new(5.0, 5.0)));
        // Zero offset is identity.
        assert_eq!(sq.offset_convex(0.0), sq);
    }

    #[test]
    fn offset_convex_octagon_keeps_distance() {
        let oct = Polygon::regular(Point::new(2.0, 3.0), 2.0, 8, 0.1);
        let grown = oct.offset_convex(0.5);
        // Every original edge is 0.5 inside the grown polygon border.
        for e in oct.edges() {
            let mid = e.midpoint();
            assert!((grown.border_distance_to_point(mid) - 0.5).abs() < 1e-9);
        }
        assert!(grown.is_convex());
    }

    #[test]
    fn offset_convex_cw_input_normalized() {
        let cw = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 2.0),
            Point::new(2.0, 2.0),
            Point::new(2.0, 0.0),
        ]);
        let grown = cw.offset_convex(1.0);
        assert!((grown.area() - 16.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn offset_negative_panics() {
        let _ = square().offset_convex(-1.0);
    }

    #[test]
    fn clip_above_triangle_tip() {
        let tri = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(2.0, 4.0),
        ]);
        let tip = tri.clipped_above(2.0).unwrap();
        assert!((tip.area() - 2.0).abs() < 1e-9);
    }
}
