//! Floating-point tolerance contract used by every predicate in this crate.
//!
//! PCB coordinates are expressed in board units (mils in the bundled
//! generators) and live comfortably inside `f64`'s exact range, but chained
//! constructions (frame transforms, intersections) accumulate rounding error.
//! All geometric comparisons therefore go through these helpers with a single
//! absolute tolerance [`EPS`].

/// Absolute tolerance for coordinate comparisons, in board units.
///
/// One nanometre when board units are millimetres; far below any design rule.
pub const EPS: f64 = 1e-9;

/// Returns `true` when `a` and `b` differ by at most [`EPS`].
///
/// ```
/// assert!(meander_geom::approx_eq(1.0, 1.0 + 1e-12));
/// assert!(!meander_geom::approx_eq(1.0, 1.0 + 1e-6));
/// ```
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS
}

/// Returns `true` when `a` is within [`EPS`] of zero.
#[inline]
pub fn approx_zero(a: f64) -> bool {
    a.abs() <= EPS
}

/// Tolerant `a >= b`.
#[inline]
pub fn approx_ge(a: f64, b: f64) -> bool {
    a >= b - EPS
}

/// Tolerant `a <= b`.
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b + EPS
}

/// Tolerant strict `a > b` (fails on approximate equality).
#[inline]
pub fn definitely_gt(a: f64, b: f64) -> bool {
    a > b + EPS
}

/// Tolerant strict `a < b` (fails on approximate equality).
#[inline]
pub fn definitely_lt(a: f64, b: f64) -> bool {
    a < b - EPS
}

/// Clamps a value into `[lo, hi]`.
#[inline]
pub fn clamp(v: f64, lo: f64, hi: f64) -> f64 {
    v.max(lo).min(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_within_tolerance() {
        assert!(approx_eq(0.0, 0.0));
        assert!(approx_eq(1.0, 1.0 + EPS * 0.5));
        assert!(!approx_eq(1.0, 1.0 + EPS * 10.0));
    }

    #[test]
    fn zero_within_tolerance() {
        assert!(approx_zero(EPS * 0.9));
        assert!(!approx_zero(EPS * 1.1));
    }

    #[test]
    fn ordering_helpers_are_tolerant() {
        assert!(approx_ge(1.0, 1.0 + EPS * 0.5));
        assert!(approx_le(1.0 + EPS * 0.5, 1.0));
        assert!(!definitely_gt(1.0 + EPS * 0.5, 1.0));
        assert!(definitely_gt(1.0 + EPS * 2.0, 1.0));
        assert!(!definitely_lt(1.0, 1.0 + EPS * 0.5));
        assert!(definitely_lt(1.0, 1.0 + EPS * 2.0));
    }

    #[test]
    fn clamp_bounds() {
        assert_eq!(clamp(5.0, 0.0, 1.0), 1.0);
        assert_eq!(clamp(-5.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(0.5, 0.0, 1.0), 0.5);
    }
}
