//! Polylines — trace centerlines.

use crate::eps::{approx_zero, EPS};
use crate::point::Point;
use crate::rect::Rect;
use crate::segment::Segment;
use crate::vector::Vector;
use std::fmt;

/// An open polyline: the centerline of a PCB trace.
///
/// The length-matching problem (paper Sec. II) extends a trace's polyline
/// until its [`Polyline::length`] reaches the matching group's `l_target`,
/// splicing rectangular detour patterns into segments while preserving the
/// original routing.
///
/// ```
/// use meander_geom::{Point, Polyline};
/// let mut pl = Polyline::new(vec![
///     Point::new(0.0, 0.0),
///     Point::new(5.0, 0.0),
///     Point::new(5.0, 5.0),
/// ]);
/// assert_eq!(pl.length(), 10.0);
/// assert_eq!(pl.segment_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Polyline {
    points: Vec<Point>,
}

impl Polyline {
    /// Creates a polyline from its vertex list.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 points are supplied.
    pub fn new(points: Vec<Point>) -> Self {
        assert!(points.len() >= 2, "polyline needs at least 2 points");
        Polyline { points }
    }

    /// The vertex list.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// First vertex.
    #[inline]
    pub fn start(&self) -> Point {
        self.points[0]
    }

    /// Last vertex.
    #[inline]
    pub fn end(&self) -> Point {
        *self.points.last().expect("polyline non-empty")
    }

    /// Number of vertices.
    #[inline]
    pub fn point_count(&self) -> usize {
        self.points.len()
    }

    /// Number of segments (`point_count() - 1`).
    #[inline]
    pub fn segment_count(&self) -> usize {
        self.points.len() - 1
    }

    /// The `i`-th segment.
    ///
    /// # Panics
    ///
    /// Panics if `i >= segment_count()`.
    pub fn segment(&self, i: usize) -> Segment {
        Segment::new(self.points[i], self.points[i + 1])
    }

    /// Iterator over all segments.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.points.windows(2).map(|w| Segment::new(w[0], w[1]))
    }

    /// Total arc length — the `l_trace` of the paper.
    pub fn length(&self) -> f64 {
        self.segments().map(|s| s.length()).sum()
    }

    /// Point at arc-length `s` from the start (clamped to the ends).
    pub fn point_at_length(&self, s: f64) -> Point {
        if s <= 0.0 {
            return self.start();
        }
        let mut remaining = s;
        for seg in self.segments() {
            let l = seg.length();
            if remaining <= l {
                return seg.point_at_length(remaining);
            }
            remaining -= l;
        }
        self.end()
    }

    /// Axis-aligned bounding box.
    pub fn bbox(&self) -> Rect {
        Rect::from_points(self.points.iter().copied()).expect("polyline non-empty")
    }

    /// Reverses the traversal direction in place.
    pub fn reverse(&mut self) {
        self.points.reverse();
    }

    /// Returns the polyline translated by `v`.
    pub fn translated(&self, v: Vector) -> Polyline {
        Polyline {
            points: self.points.iter().map(|&p| p + v).collect(),
        }
    }

    /// Removes zero-length segments and merges collinear runs, in place.
    ///
    /// Meander insertion can create vertices in the middle of straight runs;
    /// final outputs are simplified so the DRC `dprotect` check sees true
    /// segment lengths.
    pub fn simplify(&mut self) {
        if self.points.len() <= 2 {
            return;
        }
        let mut out: Vec<Point> = Vec::with_capacity(self.points.len());
        out.push(self.points[0]);
        for &p in &self.points[1..] {
            if p.approx_eq(*out.last().expect("non-empty")) {
                continue;
            }
            out.push(p);
        }
        if out.len() < 2 {
            // Entire polyline collapsed to one point: keep both endpoints to
            // maintain the ≥ 2 points invariant.
            out = vec![self.points[0], *self.points.last().expect("non-empty")];
        }
        // Merge collinear runs (same direction only; a 180° reversal is a
        // genuine geometric feature and is kept).
        let mut merged: Vec<Point> = Vec::with_capacity(out.len());
        for p in out {
            while merged.len() >= 2 {
                let a = merged[merged.len() - 2];
                let b = merged[merged.len() - 1];
                let ab = b - a;
                let bp = p - b;
                if ab.cross(bp).abs() <= EPS * ab.norm().max(1.0) * bp.norm().max(1.0)
                    && ab.dot(bp) >= 0.0
                {
                    merged.pop();
                } else {
                    break;
                }
            }
            merged.push(p);
        }
        self.points = merged;
    }

    /// Replaces the section between vertex indices `i..=j` (inclusive) with
    /// `replacement` (whose first/last points must coincide with the current
    /// vertices `i` and `j`).
    ///
    /// This is the splice primitive used when restoring DP patterns into a
    /// trace: the flat sub-run is swapped for the meandered run.
    ///
    /// # Panics
    ///
    /// Panics if `i >= j`, indices are out of range, or the replacement ends
    /// do not match the current vertices within tolerance.
    pub fn splice(&mut self, i: usize, j: usize, replacement: &[Point]) {
        assert!(i < j, "splice range must be non-empty");
        assert!(j < self.points.len(), "splice end out of range");
        assert!(
            replacement.len() >= 2,
            "replacement needs at least 2 points"
        );
        assert!(
            replacement[0].approx_eq(self.points[i]),
            "replacement must start at vertex {i}"
        );
        assert!(
            replacement[replacement.len() - 1].approx_eq(self.points[j]),
            "replacement must end at vertex {j}"
        );
        self.points.splice(i..=j, replacement.iter().copied());
    }

    /// `true` when any two non-adjacent segments intersect.
    ///
    /// Meander outputs must stay self-intersection-free; integration tests
    /// check this invariant on every routed result.
    pub fn is_self_intersecting(&self) -> bool {
        let segs: Vec<Segment> = self.segments().collect();
        for i in 0..segs.len() {
            for j in (i + 2)..segs.len() {
                // Skip the wrap-adjacency that does not exist for open
                // polylines; only consecutive segments share a point.
                if crate::intersect::segments_intersect(&segs[i], &segs[j]) {
                    return true;
                }
            }
        }
        false
    }

    /// Minimum distance from this polyline to a point.
    pub fn distance_to_point(&self, p: Point) -> f64 {
        self.segments()
            .map(|s| s.distance_to_point(p))
            .fold(f64::INFINITY, f64::min)
    }

    /// Minimum distance between two polylines (0 when they touch).
    pub fn distance_to_polyline(&self, other: &Polyline) -> f64 {
        let mut d = f64::INFINITY;
        for s in self.segments() {
            for t in other.segments() {
                d = d.min(s.distance_to_segment(&t));
                if approx_zero(d) {
                    return 0.0;
                }
            }
        }
        d
    }

    /// Shortest segment length present in the polyline.
    pub fn min_segment_length(&self) -> f64 {
        self.segments()
            .map(|s| s.length())
            .fold(f64::INFINITY, f64::min)
    }
}

impl FromIterator<Point> for Polyline {
    fn from_iter<T: IntoIterator<Item = Point>>(iter: T) -> Self {
        Polyline::new(iter.into_iter().collect())
    }
}

impl fmt::Display for Polyline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Polyline[{} pts, len {:.4}]",
            self.points.len(),
            self.length()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Polyline {
        Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(5.0, 5.0),
        ])
    }

    #[test]
    fn length_and_counts() {
        let pl = l_shape();
        assert_eq!(pl.length(), 10.0);
        assert_eq!(pl.point_count(), 3);
        assert_eq!(pl.segment_count(), 2);
        assert_eq!(pl.segment(1).a, Point::new(5.0, 0.0));
    }

    #[test]
    fn point_at_length_walks_corners() {
        let pl = l_shape();
        assert_eq!(pl.point_at_length(0.0), Point::new(0.0, 0.0));
        assert_eq!(pl.point_at_length(5.0), Point::new(5.0, 0.0));
        assert_eq!(pl.point_at_length(7.5), Point::new(5.0, 2.5));
        assert_eq!(pl.point_at_length(99.0), Point::new(5.0, 5.0));
        assert_eq!(pl.point_at_length(-1.0), Point::new(0.0, 0.0));
    }

    #[test]
    fn simplify_merges_collinear_and_dedups() {
        let mut pl = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 0.0), // duplicate
            Point::new(2.0, 0.0), // collinear
            Point::new(2.0, 3.0),
        ]);
        pl.simplify();
        assert_eq!(
            pl.points(),
            &[
                Point::new(0.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(2.0, 3.0)
            ]
        );
        assert_eq!(pl.length(), 5.0);
    }

    #[test]
    fn simplify_keeps_reversals() {
        // A degenerate "needle" retrace is geometry, not noise.
        let mut pl = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(2.0, 0.0),
        ]);
        pl.simplify();
        assert_eq!(pl.point_count(), 3);
    }

    #[test]
    fn splice_replaces_run() {
        let mut pl = l_shape();
        // Replace the first segment with a detour of height 2.
        pl.splice(
            0,
            1,
            &[
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(1.0, 2.0),
                Point::new(3.0, 2.0),
                Point::new(3.0, 0.0),
                Point::new(5.0, 0.0),
            ],
        );
        assert_eq!(pl.point_count(), 7);
        assert_eq!(pl.length(), 10.0 + 4.0);
        assert_eq!(pl.end(), Point::new(5.0, 5.0));
    }

    #[test]
    #[should_panic(expected = "must start at vertex")]
    fn splice_mismatched_ends_panics() {
        let mut pl = l_shape();
        pl.splice(0, 1, &[Point::new(9.0, 9.0), Point::new(5.0, 0.0)]);
    }

    #[test]
    fn self_intersection_detection() {
        let straight = l_shape();
        assert!(!straight.is_self_intersecting());
        let crossing = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 2.0),
            Point::new(2.0, 2.0),
            Point::new(2.0, -2.0),
        ]);
        assert!(crossing.is_self_intersecting());
    }

    #[test]
    fn distances() {
        let pl = l_shape();
        assert_eq!(pl.distance_to_point(Point::new(2.0, 3.0)), 3.0);
        let other = Polyline::new(vec![Point::new(0.0, 2.0), Point::new(3.0, 2.0)]);
        assert_eq!(pl.distance_to_polyline(&other), 2.0);
        let touching = Polyline::new(vec![Point::new(5.0, 2.0), Point::new(9.0, 2.0)]);
        assert_eq!(pl.distance_to_polyline(&touching), 0.0);
    }

    #[test]
    fn min_segment_length() {
        let pl = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(5.0, 0.5),
        ]);
        assert_eq!(pl.min_segment_length(), 0.5);
    }

    #[test]
    fn reverse_and_translate() {
        let mut pl = l_shape();
        pl.reverse();
        assert_eq!(pl.start(), Point::new(5.0, 5.0));
        let t = pl.translated(Vector::new(1.0, 1.0));
        assert_eq!(t.start(), Point::new(6.0, 6.0));
    }

    #[test]
    fn from_iterator() {
        let pl: Polyline = [Point::new(0.0, 0.0), Point::new(1.0, 1.0)]
            .into_iter()
            .collect();
        assert_eq!(pl.point_count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn single_point_panics() {
        let _ = Polyline::new(vec![Point::new(0.0, 0.0)]);
    }
}
