//! Polyline offsetting with miter joins.
//!
//! MSDTW (paper Sec. V) merges a differential pair into a single median
//! trace; after length matching, the pair is *restored* by offsetting the
//! meandered median trace by ± half the pair pitch. This module implements
//! that offset: each segment is displaced along its left normal, and
//! consecutive displaced segments are joined by intersecting their carrier
//! lines (miter join), falling back to a bevel when the turn is too sharp
//! for a bounded miter.

use crate::eps::{approx_zero, EPS};
use crate::point::Point;
use crate::polyline::Polyline;
use crate::vector::Vector;

/// Maximum ratio of miter length to offset distance before falling back to a
/// bevel join (mirrors the common CAD default).
pub const MITER_LIMIT: f64 = 4.0;

/// Offsets `pl` by signed distance `d` (positive = to the left of travel
/// direction).
///
/// Returns `None` if the polyline has no non-degenerate segments.
///
/// The construction keeps one output vertex per input vertex when miters are
/// used, so node correspondence is preserved — exactly what differential-pair
/// restoration needs (each median node maps back to a P-node and an N-node).
///
/// ```
/// use meander_geom::{offset::offset_polyline, Point, Polyline};
/// let pl = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)]);
/// let up = offset_polyline(&pl, 2.0).unwrap();
/// assert!(up.points()[0].approx_eq(Point::new(0.0, 2.0)));
/// assert!(up.points()[1].approx_eq(Point::new(10.0, 2.0)));
/// ```
pub fn offset_polyline(pl: &Polyline, d: f64) -> Option<Polyline> {
    // Collect non-degenerate segment directions.
    let pts = pl.points();
    let mut dirs: Vec<Option<Vector>> = Vec::with_capacity(pts.len() - 1);
    for w in pts.windows(2) {
        dirs.push((w[1] - w[0]).normalized());
    }
    if dirs.iter().all(|d| d.is_none()) {
        return None;
    }

    if approx_zero(d) {
        return Some(pl.clone());
    }

    let mut out: Vec<Point> = Vec::with_capacity(pts.len() + 4);

    // Start point: offset along the first valid segment's normal.
    let first_dir = dirs
        .iter()
        .flatten()
        .next()
        .copied()
        .expect("checked above");
    out.push(pts[0] + first_dir.perp() * d);

    for i in 1..pts.len() - 1 {
        let din = dirs[i - 1].or_else(|| prev_valid(&dirs, i - 1));
        let dout = dirs[i].or_else(|| next_valid(&dirs, i));
        match (din, dout) {
            (Some(a), Some(b)) => {
                join_at_vertex(&mut out, pts[i], a, b, d);
            }
            (Some(a), None) | (None, Some(a)) => {
                out.push(pts[i] + a.perp() * d);
            }
            (None, None) => {}
        }
    }

    let last_dir = dirs
        .iter()
        .rev()
        .flatten()
        .next()
        .copied()
        .expect("checked above");
    out.push(pts[pts.len() - 1] + last_dir.perp() * d);

    // Drop consecutive duplicates introduced by collinear joins.
    out.dedup_by(|a, b| a.approx_eq(*b));
    if out.len() < 2 {
        return None;
    }
    Some(Polyline::new(out))
}

fn prev_valid(dirs: &[Option<Vector>], from: usize) -> Option<Vector> {
    dirs[..=from].iter().rev().flatten().next().copied()
}

fn next_valid(dirs: &[Option<Vector>], from: usize) -> Option<Vector> {
    dirs[from..].iter().flatten().next().copied()
}

/// Emits join vertices at `corner` between incoming direction `a` and
/// outgoing direction `b`, both unit, offset distance `d`.
fn join_at_vertex(out: &mut Vec<Point>, corner: Point, a: Vector, b: Vector, d: f64) {
    let na = a.perp() * d;
    let nb = b.perp() * d;
    let cross = a.cross(b);

    if cross.abs() <= EPS {
        if a.dot(b) > 0.0 {
            // Straight-through: single offset vertex.
            out.push(corner + na);
        } else {
            // 180° reversal: square cap (offset out along both normals and
            // the shared tangent).
            out.push(corner + na);
            out.push(corner + na + a * d.abs());
            out.push(corner + nb + a * d.abs());
            out.push(corner + nb);
        }
        return;
    }

    // Miter point: intersection of the two offset carrier lines.
    // Solve corner + na + t*a == corner + nb + s*b  ⇒  t = (nb - na) × b / (a × b)
    let t = (nb - na).cross(b) / cross;
    let miter = corner + na + a * t;
    let miter_len = (miter - corner).norm();
    if miter_len <= MITER_LIMIT * d.abs() {
        out.push(miter);
    } else {
        // Bevel: keep both offset endpoints.
        out.push(corner + na);
        out.push(corner + nb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_offsets_parallel() {
        let pl = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)]);
        let up = offset_polyline(&pl, 3.0).unwrap();
        assert!(up.points()[0].approx_eq(Point::new(0.0, 3.0)));
        assert!(up.points()[1].approx_eq(Point::new(10.0, 3.0)));
        let down = offset_polyline(&pl, -3.0).unwrap();
        assert!(down.points()[0].approx_eq(Point::new(0.0, -3.0)));
    }

    #[test]
    fn right_angle_miter_join() {
        let pl = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
        ]);
        // Left offset of an up-turning corner: the miter lands inside.
        let left = offset_polyline(&pl, 1.0).unwrap();
        assert_eq!(left.point_count(), 3);
        assert!(left.points()[1].approx_eq(Point::new(9.0, 1.0)));
        // Right offset: outside corner, miter extends the corner.
        let right = offset_polyline(&pl, -1.0).unwrap();
        assert_eq!(right.point_count(), 3);
        assert!(right.points()[1].approx_eq(Point::new(11.0, -1.0)));
    }

    #[test]
    fn offset_preserves_node_count_on_gentle_path() {
        // 135° corners: miter join, one vertex per input vertex.
        let pl = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(17.0, 7.0),
            Point::new(30.0, 7.0),
        ]);
        let off = offset_polyline(&pl, 0.5).unwrap();
        assert_eq!(off.point_count(), pl.point_count());
        // Every offset vertex sits ~0.5 away from the original polyline.
        for &p in off.points() {
            let dmin = pl.distance_to_point(p);
            assert!((dmin - 0.5).abs() < 0.21, "vertex {p} at distance {dmin}");
        }
    }

    #[test]
    fn offsets_left_and_right_bracket_centerline() {
        let pl = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(8.0, 0.0),
            Point::new(8.0, 6.0),
        ]);
        let l = offset_polyline(&pl, 1.0).unwrap();
        let r = offset_polyline(&pl, -1.0).unwrap();
        // The two offsets never touch and stay ~2 apart near straight runs.
        assert!(l.distance_to_polyline(&r) > 1.9);
    }

    #[test]
    fn reversal_gets_square_cap() {
        let pl = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(2.0, 0.0),
        ]);
        let off = offset_polyline(&pl, 1.0).unwrap();
        // Cap adds vertices beyond the 3 inputs.
        assert!(off.point_count() > 3);
        assert!(!off.points().iter().any(|p| p.x.is_nan() || p.y.is_nan()));
    }

    #[test]
    fn zero_offset_is_identity() {
        let pl = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(3.0, 4.0)]);
        let off = offset_polyline(&pl, 0.0).unwrap();
        assert_eq!(off, pl);
    }

    #[test]
    fn degenerate_polyline_rejected() {
        let pl = Polyline::new(vec![Point::new(1.0, 1.0), Point::new(1.0, 1.0)]);
        assert!(offset_polyline(&pl, 1.0).is_none());
    }

    #[test]
    fn any_angle_offset_distance_correct() {
        // A 30°-ish slanted run: offset distance must hold at mid-segment.
        let pl = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 6.0)]);
        let off = offset_polyline(&pl, 2.0).unwrap();
        let mid = off.point_at_length(off.length() / 2.0);
        assert!((pl.distance_to_point(mid) - 2.0).abs() < 1e-9);
    }
}
