//! Planar points.

use crate::eps::approx_eq;
use crate::vector::Vector;
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in the board plane, in board units.
///
/// ```
/// use meander_geom::{Point, Vector};
/// let p = Point::new(1.0, 2.0) + Vector::new(3.0, -2.0);
/// assert_eq!(p, Point::new(4.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Abscissa.
    pub x: f64,
    /// Ordinate.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    ///
    /// This is the `d(a, b)` of the paper's problem formulation (Sec. IV-A).
    #[inline]
    pub fn distance(&self, other: Point) -> f64 {
        (*self - other).norm()
    }

    /// Squared Euclidean distance — cheaper when only comparing.
    #[inline]
    pub fn distance_sq(&self, other: Point) -> f64 {
        (*self - other).norm_sq()
    }

    /// Linear interpolation: `t = 0` gives `self`, `t = 1` gives `other`.
    #[inline]
    pub fn lerp(&self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: Point) -> Point {
        self.lerp(other, 0.5)
    }

    /// Vector from the origin to this point.
    #[inline]
    pub fn to_vector(&self) -> Vector {
        Vector::new(self.x, self.y)
    }

    /// Component-wise approximate equality within [`crate::EPS`].
    #[inline]
    pub fn approx_eq(&self, other: Point) -> bool {
        approx_eq(self.x, other.x) && approx_eq(self.y, other.y)
    }

    /// Centroid of a non-empty point collection.
    ///
    /// Used by MSDTW's median-point generation (paper Eq. 18), where the mean
    /// of each connected component's nodes forms the merged trace.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    pub fn centroid(points: &[Point]) -> Point {
        assert!(!points.is_empty(), "centroid of empty point set");
        let n = points.len() as f64;
        let (sx, sy) = points
            .iter()
            .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
        Point::new(sx / n, sy / n)
    }
}

impl Add<Vector> for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Vector) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign<Vector> for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Vector) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub<Vector> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Vector) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign<Vector> for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Vector) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Sub for Point {
    type Output = Vector;
    #[inline]
    fn sub(self, rhs: Point) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
    }

    #[test]
    fn lerp_endpoints_and_middle() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        assert!(a.lerp(b, 0.0).approx_eq(a));
        assert!(a.lerp(b, 1.0).approx_eq(b));
        assert!(a.lerp(b, 0.5).approx_eq(Point::new(1.0, 2.0)));
        assert!(a.midpoint(b).approx_eq(Point::new(1.0, 2.0)));
    }

    #[test]
    fn point_vector_arithmetic() {
        let p = Point::new(1.0, 1.0);
        let v = Vector::new(2.0, 3.0);
        assert_eq!(p + v, Point::new(3.0, 4.0));
        assert_eq!((p + v) - v, p);
        assert_eq!(Point::new(3.0, 4.0) - p, v);
        let mut q = p;
        q += v;
        q -= v;
        assert!(q.approx_eq(p));
    }

    #[test]
    fn centroid_of_square_is_center() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        assert!(Point::centroid(&pts).approx_eq(Point::new(1.0, 1.0)));
    }

    #[test]
    #[should_panic(expected = "centroid of empty")]
    fn centroid_empty_panics() {
        let _ = Point::centroid(&[]);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Point::new(1.0, 2.0)).is_empty());
    }

    #[test]
    fn from_tuple() {
        let p: Point = (1.5, -2.5).into();
        assert_eq!(p, Point::new(1.5, -2.5));
    }
}
