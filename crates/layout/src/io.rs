//! Plain-text board persistence.
//!
//! A deliberately simple line-oriented format (one entity per line,
//! whitespace-separated) so boards can be saved, diffed, and reloaded
//! without pulling a serialization dependency into the workspace:
//!
//! ```text
//! board   <minx> <miny> <maxx> <maxy>
//! trace   <name> <gap> <obs> <protect> <miter> <width> <n> <x1> <y1> …
//! obstacle <via|component|keepout> <n> <x1> <y1> …
//! area    <trace-index> <n> <x1> <y1> …
//! group   <name> <explicit-target|auto> <tolerance> <k> <id1> … <idk>
//! pair    <name> <sep> <breakout> <pid> <nid>
//! ```
//!
//! Names must not contain whitespace (enforced on save).

use crate::board::Board;
use crate::diffpair::DiffPair;
use crate::group::{MatchGroup, TargetLength};
use crate::obstacle::{Obstacle, ObstacleKind};
use crate::trace::{Trace, TraceId};
use crate::validate::{validate_board, ValidationError};
use meander_drc::DesignRules;
use meander_geom::{Point, Polygon, Polyline, Rect};
use std::fmt::Write as _;

/// Hard cap on entity counts (points, vertices, members) declared by a
/// single record. The format stores counts inline, so a hostile line like
/// `trace T … 99999999999 …` would otherwise drive a huge preallocation
/// before the truncated point list is even noticed.
const MAX_COUNT: usize = 1 << 20;

/// Error loading or saving a board.
#[derive(Debug, Clone, PartialEq)]
pub enum IoError {
    /// A line could not be parsed; carries line number (1-based) and reason.
    Parse(usize, String),
    /// A name contained whitespace on save.
    InvalidName(String),
    /// The file parsed, but the assembled board failed
    /// [`validate_board`] — e.g. a NaN coordinate
    /// or a group referencing a trace the file never declared.
    Invalid(ValidationError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Parse(line, why) => write!(f, "line {line}: {why}"),
            IoError::InvalidName(n) => write!(f, "name `{n}` contains whitespace"),
            IoError::Invalid(e) => write!(f, "invalid board: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

/// Serializes a board to the text format.
///
/// # Errors
///
/// Returns [`IoError::InvalidName`] when a trace/group/pair name contains
/// whitespace.
pub fn save_board(board: &Board) -> Result<String, IoError> {
    let mut s = String::new();
    if let Some(o) = board.outline() {
        let _ = writeln!(s, "board {} {} {} {}", o.min.x, o.min.y, o.max.x, o.max.y);
    }
    for (_, t) in board.traces() {
        check_name(t.name())?;
        let r = t.rules();
        let _ = write!(
            s,
            "trace {} {} {} {} {} {} {}",
            t.name(),
            r.gap,
            r.obstacle,
            r.protect,
            r.miter,
            r.width,
            t.centerline().point_count()
        );
        for p in t.centerline().points() {
            let _ = write!(s, " {} {}", p.x, p.y);
        }
        s.push('\n');
    }
    for o in board.obstacles() {
        let kind = match o.kind() {
            ObstacleKind::Via => "via",
            ObstacleKind::Component => "component",
            ObstacleKind::Keepout => "keepout",
        };
        let _ = write!(s, "obstacle {kind} {}", o.polygon().len());
        for p in o.polygon().vertices() {
            let _ = write!(s, " {} {}", p.x, p.y);
        }
        s.push('\n');
    }
    for (id, _) in board.traces() {
        if let Some(area) = board.area(id) {
            for poly in area.polygons() {
                let _ = write!(s, "area {} {}", id.0, poly.len());
                for p in poly.vertices() {
                    let _ = write!(s, " {} {}", p.x, p.y);
                }
                s.push('\n');
            }
        }
    }
    for g in board.groups() {
        check_name(g.name())?;
        let target = match g.target() {
            TargetLength::Explicit(t) => t.to_string(),
            TargetLength::LongestMember => "auto".to_string(),
        };
        let _ = write!(
            s,
            "group {} {} {} {}",
            g.name(),
            target,
            g.tolerance(),
            g.members().len()
        );
        for m in g.members() {
            let _ = write!(s, " {}", m.0);
        }
        s.push('\n');
    }
    for p in board.pairs() {
        check_name(p.name())?;
        let _ = writeln!(
            s,
            "pair {} {} {} {} {}",
            p.name(),
            p.sep(),
            p.breakout_nodes(),
            p.p().0,
            p.n().0
        );
    }
    Ok(s)
}

fn check_name(n: &str) -> Result<(), IoError> {
    if n.chars().any(char::is_whitespace) {
        Err(IoError::InvalidName(n.to_string()))
    } else {
        Ok(())
    }
}

/// Parses a board from the text format.
///
/// Untrusted input is the norm here, so the loader is strict twice over:
/// every record is parsed with typed errors (counts are integers with a
/// `MAX_COUNT` cap, never trusted for preallocation), and the assembled
/// board must pass [`validate_board`] before it is
/// returned — a file that parses but encodes NaN geometry or dangling
/// group members is rejected with [`IoError::Invalid`], not routed.
///
/// # Errors
///
/// Returns [`IoError::Parse`] with the offending line number on malformed
/// input, or [`IoError::Invalid`] when the parsed board fails validation.
pub fn load_board(text: &str) -> Result<Board, IoError> {
    let mut board = Board::default();
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tok = line.split_whitespace();
        let Some(kind) = tok.next() else {
            continue; // unreachable for non-empty trimmed lines; never panic on ingest
        };
        let next_f64 = |tok: &mut std::str::SplitWhitespace<'_>, what: &str| {
            tok.next()
                .ok_or_else(|| IoError::Parse(lineno, format!("missing {what}")))?
                .parse::<f64>()
                .map_err(|_| IoError::Parse(lineno, format!("bad {what}")))
        };
        let next_count = |tok: &mut std::str::SplitWhitespace<'_>, what: &str| {
            let n = tok
                .next()
                .ok_or_else(|| IoError::Parse(lineno, format!("missing {what}")))?
                .parse::<usize>()
                .map_err(|_| IoError::Parse(lineno, format!("bad {what}")))?;
            if n > MAX_COUNT {
                return Err(IoError::Parse(
                    lineno,
                    format!("{what} {n} exceeds limit {MAX_COUNT}"),
                ));
            }
            Ok(n)
        };
        let next_id = |tok: &mut std::str::SplitWhitespace<'_>, what: &str| {
            tok.next()
                .ok_or_else(|| IoError::Parse(lineno, format!("missing {what}")))?
                .parse::<u32>()
                .map_err(|_| IoError::Parse(lineno, format!("bad {what}")))
        };
        match kind {
            "board" => {
                let x0 = next_f64(&mut tok, "minx")?;
                let y0 = next_f64(&mut tok, "miny")?;
                let x1 = next_f64(&mut tok, "maxx")?;
                let y1 = next_f64(&mut tok, "maxy")?;
                board = Board::new(Rect::new(Point::new(x0, y0), Point::new(x1, y1)))
                    .merge_entities(board);
            }
            "trace" => {
                let name = tok
                    .next()
                    .ok_or_else(|| IoError::Parse(lineno, "missing name".into()))?
                    .to_string();
                let gap = next_f64(&mut tok, "gap")?;
                let obstacle = next_f64(&mut tok, "obstacle")?;
                let protect = next_f64(&mut tok, "protect")?;
                let miter = next_f64(&mut tok, "miter")?;
                let width = next_f64(&mut tok, "width")?;
                let n = next_count(&mut tok, "point count")?;
                let mut pts = Vec::with_capacity(n);
                for _ in 0..n {
                    let x = next_f64(&mut tok, "x")?;
                    let y = next_f64(&mut tok, "y")?;
                    pts.push(Point::new(x, y));
                }
                if pts.len() < 2 {
                    return Err(IoError::Parse(lineno, "trace needs ≥ 2 points".into()));
                }
                let rules = DesignRules {
                    gap,
                    obstacle,
                    protect,
                    miter,
                    width,
                };
                board.add_trace(Trace::with_rules(name, Polyline::new(pts), rules));
            }
            "obstacle" => {
                let okind = match tok.next() {
                    Some("via") => ObstacleKind::Via,
                    Some("component") => ObstacleKind::Component,
                    Some("keepout") => ObstacleKind::Keepout,
                    other => {
                        return Err(IoError::Parse(
                            lineno,
                            format!("bad obstacle kind {other:?}"),
                        ))
                    }
                };
                let n = next_count(&mut tok, "vertex count")?;
                let mut pts = Vec::with_capacity(n);
                for _ in 0..n {
                    let x = next_f64(&mut tok, "x")?;
                    let y = next_f64(&mut tok, "y")?;
                    pts.push(Point::new(x, y));
                }
                if pts.len() < 3 {
                    return Err(IoError::Parse(lineno, "polygon needs ≥ 3 vertices".into()));
                }
                board.add_obstacle(Obstacle::new(Polygon::new(pts), okind));
            }
            "area" => {
                let id = next_id(&mut tok, "trace index")?;
                let n = next_count(&mut tok, "vertex count")?;
                let mut pts = Vec::with_capacity(n);
                for _ in 0..n {
                    let x = next_f64(&mut tok, "x")?;
                    let y = next_f64(&mut tok, "y")?;
                    pts.push(Point::new(x, y));
                }
                if pts.len() < 3 {
                    return Err(IoError::Parse(lineno, "polygon needs ≥ 3 vertices".into()));
                }
                let tid = TraceId(id);
                let mut area = board.area(tid).cloned().unwrap_or_default();
                area.push(Polygon::new(pts));
                board.set_area(tid, area);
            }
            "group" => {
                let name = tok
                    .next()
                    .ok_or_else(|| IoError::Parse(lineno, "missing name".into()))?
                    .to_string();
                let target_tok = tok
                    .next()
                    .ok_or_else(|| IoError::Parse(lineno, "missing target".into()))?;
                let tol = next_f64(&mut tok, "tolerance")?;
                let k = next_count(&mut tok, "member count")?;
                let mut members = Vec::with_capacity(k);
                for _ in 0..k {
                    members.push(TraceId(next_id(&mut tok, "member id")?));
                }
                let mut g = if target_tok == "auto" {
                    MatchGroup::new(name, members)
                } else {
                    let t = target_tok
                        .parse::<f64>()
                        .map_err(|_| IoError::Parse(lineno, "bad target".into()))?;
                    MatchGroup::with_target(name, members, t)
                };
                g.set_tolerance(tol);
                board.add_group(g);
            }
            "pair" => {
                let name = tok
                    .next()
                    .ok_or_else(|| IoError::Parse(lineno, "missing name".into()))?
                    .to_string();
                let sep = next_f64(&mut tok, "sep")?;
                let breakout = next_count(&mut tok, "breakout")?;
                let pid = TraceId(next_id(&mut tok, "p id")?);
                let nid = TraceId(next_id(&mut tok, "n id")?);
                let mut pair = DiffPair::new(name, pid, nid, sep);
                pair.set_breakout_nodes(breakout);
                board.add_pair(pair);
            }
            other => {
                return Err(IoError::Parse(lineno, format!("unknown record `{other}`")));
            }
        }
    }
    validate_board(&board).map_err(IoError::Invalid)?;
    Ok(board)
}

impl Board {
    /// Moves all entities of `other` into `self` (used when a `board` record
    /// appears mid-file). Ids are preserved because entity order is kept.
    fn merge_entities(mut self, other: Board) -> Board {
        for (_, t) in other.traces() {
            self.add_trace(t.clone());
        }
        for o in other.obstacles() {
            self.add_obstacle(o.clone());
        }
        for g in other.groups() {
            self.add_group(g.clone());
        }
        for p in other.pairs() {
            self.add_pair(p.clone());
        }
        self
    }
}

/// Saves to, and loads from, a routable-area-less quick format in tests.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{decoupled_pair, table1_case};

    #[test]
    fn round_trip_table1_case() {
        let case = table1_case(1);
        let text = save_board(&case.board).unwrap();
        let loaded = load_board(&text).unwrap();
        assert_eq!(loaded.trace_count(), case.board.trace_count());
        assert_eq!(loaded.obstacles().len(), case.board.obstacles().len());
        assert_eq!(loaded.groups().len(), 1);
        for ((_, a), (_, b)) in loaded.traces().zip(case.board.traces()) {
            assert_eq!(a.name(), b.name());
            assert!((a.length() - b.length()).abs() < 1e-9);
            assert_eq!(a.rules(), b.rules());
        }
        // Areas survive.
        for (id, _) in case.board.traces() {
            assert_eq!(
                loaded.area(id).map(|a| a.polygons().len()),
                case.board.area(id).map(|a| a.polygons().len())
            );
        }
    }

    #[test]
    fn round_trip_pairs() {
        let case = decoupled_pair(false);
        let text = save_board(&case.board).unwrap();
        let loaded = load_board(&text).unwrap();
        assert_eq!(loaded.pairs().len(), 1);
        let p = &loaded.pairs()[0];
        assert_eq!(p.sep(), case.board.pairs()[0].sep());
        assert_eq!(p.p(), case.board.pairs()[0].p());
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            load_board("frobnicate 1 2 3"),
            Err(IoError::Parse(1, _))
        ));
        assert!(matches!(
            load_board("trace A 8 8 8 2 4 2 0 0"),
            Err(IoError::Parse(1, _)) // truncated point list
        ));
        assert!(matches!(
            load_board("obstacle via 2 0 0 1 1"),
            Err(IoError::Parse(1, _)) // degenerate polygon
        ));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let b = load_board("# a comment\n\n").unwrap();
        assert_eq!(b.trace_count(), 0);
    }

    #[test]
    fn whitespace_name_rejected_on_save() {
        let mut b = Board::default();
        b.add_trace(Trace::new(
            "bad name",
            Polyline::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]),
            1.0,
        ));
        assert!(matches!(save_board(&b), Err(IoError::InvalidName(_))));
    }

    #[test]
    fn error_display() {
        let e = IoError::Parse(3, "bad x".into());
        assert!(format!("{e}").contains("line 3"));
    }

    #[test]
    fn hostile_counts_rejected_before_allocation() {
        // A count beyond MAX_COUNT must fail fast with a Parse error.
        assert!(matches!(
            load_board("trace A 8 8 8 2 4 99999999999 0 0"),
            Err(IoError::Parse(1, _))
        ));
        // Fractional and negative counts are no longer silently truncated.
        assert!(matches!(
            load_board("obstacle via 3.5 0 0 1 1 2 2"),
            Err(IoError::Parse(1, _))
        ));
        assert!(matches!(
            load_board("group g auto 0.001 -1"),
            Err(IoError::Parse(1, _))
        ));
    }

    #[test]
    fn parsed_but_invalid_board_rejected() {
        // NaN coordinate parses as f64 but fails validation.
        let text = "trace A 8 8 8 2 4 2 0 0 NaN 1\ngroup g auto 0.001 1 0\n";
        match load_board(text) {
            Err(IoError::Invalid(crate::validate::ValidationError::NonFiniteCoordinate {
                ..
            })) => {}
            other => panic!("expected Invalid(NonFiniteCoordinate), got {other:?}"),
        }
        // Group referencing a trace the file never declared.
        let text = "trace A 8 8 8 2 4 2 0 0 50 0\ngroup g auto 0.001 1 7\n";
        assert!(matches!(
            load_board(text),
            Err(IoError::Invalid(
                crate::validate::ValidationError::UnknownGroupMember { member: 7, .. }
            ))
        ));
    }
}
