//! Obstacles: polygons traces cannot pass.

use meander_geom::{Point, Polygon};
use std::fmt;

/// What an obstacle models (affects rendering only; clearance rules treat
/// all kinds alike).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObstacleKind {
    /// A via barrel/pad.
    Via,
    /// A component body or pad field.
    Component,
    /// An explicit keep-out region.
    Keepout,
}

impl fmt::Display for ObstacleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ObstacleKind::Via => "via",
            ObstacleKind::Component => "component",
            ObstacleKind::Keepout => "keepout",
        };
        f.write_str(s)
    }
}

/// "Obstacle: a polygon that the trace cannot pass, converted into a part of
/// the routable area in this paper" (Sec. II). The router folds obstacle
/// borders into the polygon set the URA shrinking checks against.
#[derive(Debug, Clone)]
pub struct Obstacle {
    polygon: Polygon,
    kind: ObstacleKind,
}

impl Obstacle {
    /// Creates an obstacle from a polygon.
    pub fn new(polygon: Polygon, kind: ObstacleKind) -> Self {
        Obstacle { polygon, kind }
    }

    /// Octagonal via obstacle centered at `c` with circumradius `r` — the
    /// shape the Table II "dummy design with narrow space between dense
    /// vias" is built from.
    pub fn via(c: Point, r: f64) -> Self {
        Obstacle {
            polygon: Polygon::regular(c, r, 8, std::f64::consts::FRAC_PI_8),
            kind: ObstacleKind::Via,
        }
    }

    /// Rectangular keep-out.
    pub fn keepout(a: Point, b: Point) -> Self {
        Obstacle {
            polygon: Polygon::rectangle(a, b),
            kind: ObstacleKind::Keepout,
        }
    }

    /// The obstacle outline.
    #[inline]
    pub fn polygon(&self) -> &Polygon {
        &self.polygon
    }

    /// The obstacle translated by `v` (kind preserved) — the geometry of a
    /// "move" edit.
    pub fn translated(&self, v: meander_geom::Vector) -> Obstacle {
        Obstacle {
            polygon: self.polygon.translated(v),
            kind: self.kind,
        }
    }

    /// The obstacle kind.
    #[inline]
    pub fn kind(&self) -> ObstacleKind {
        self.kind
    }
}

impl fmt::Display for Obstacle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} vertices)", self.kind, self.polygon.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn via_is_octagon() {
        let v = Obstacle::via(Point::new(5.0, 5.0), 2.0);
        assert_eq!(v.polygon().len(), 8);
        assert_eq!(v.kind(), ObstacleKind::Via);
        assert!(v.polygon().contains(Point::new(5.0, 5.0)));
    }

    #[test]
    fn keepout_is_rectangle() {
        let k = Obstacle::keepout(Point::new(0.0, 0.0), Point::new(4.0, 2.0));
        assert_eq!(k.polygon().len(), 4);
        assert_eq!(k.kind(), ObstacleKind::Keepout);
        assert_eq!(k.polygon().area(), 8.0);
    }

    #[test]
    fn display_mentions_kind() {
        let v = Obstacle::via(Point::ORIGIN, 1.0);
        assert!(format!("{v}").contains("via"));
    }
}
