//! Traces (nets/wires).

use meander_drc::DesignRules;
use meander_geom::Polyline;
use std::fmt;

/// Stable identifier of a trace within a [`crate::Board`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u32);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A routed trace: named centerline with width and rules.
///
/// "Trace: trace of a signal consisting of connected segments in PCB layout,
/// also indicated by net or wire" (paper Sec. II). The centerline is the
/// geometry the router extends; `width` and `rules` feed clearance
/// arithmetic.
#[derive(Debug, Clone)]
pub struct Trace {
    name: String,
    centerline: Polyline,
    width: f64,
    rules: DesignRules,
}

impl Trace {
    /// Creates a trace with default rules (width given explicitly).
    pub fn new(name: impl Into<String>, centerline: Polyline, width: f64) -> Self {
        Trace {
            name: name.into(),
            centerline,
            width,
            rules: DesignRules {
                width,
                ..DesignRules::default()
            },
        }
    }

    /// Creates a trace with explicit rules (rule width wins over `width`).
    pub fn with_rules(name: impl Into<String>, centerline: Polyline, rules: DesignRules) -> Self {
        Trace {
            name: name.into(),
            centerline,
            width: rules.width,
            rules,
        }
    }

    /// Trace name (net name).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current centerline.
    #[inline]
    pub fn centerline(&self) -> &Polyline {
        &self.centerline
    }

    /// Replaces the centerline (used by the router when splicing patterns).
    pub fn set_centerline(&mut self, pl: Polyline) {
        self.centerline = pl;
    }

    /// Trace width.
    #[inline]
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Design rules for this trace.
    #[inline]
    pub fn rules(&self) -> &DesignRules {
        &self.rules
    }

    /// Overrides the rules (keeps width in sync).
    pub fn set_rules(&mut self, rules: DesignRules) {
        self.width = rules.width;
        self.rules = rules;
    }

    /// Current routed length.
    #[inline]
    pub fn length(&self) -> f64 {
        self.centerline.length()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (len {:.3}, w {:.3})",
            self.name,
            self.length(),
            self.width
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meander_geom::Point;

    #[test]
    fn construction_and_accessors() {
        let t = Trace::new(
            "CLK",
            Polyline::new(vec![Point::new(0.0, 0.0), Point::new(30.0, 40.0)]),
            5.0,
        );
        assert_eq!(t.name(), "CLK");
        assert_eq!(t.width(), 5.0);
        assert_eq!(t.length(), 50.0);
        assert_eq!(t.rules().width, 5.0);
    }

    #[test]
    fn rules_width_sync() {
        let mut t = Trace::new(
            "D0",
            Polyline::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]),
            4.0,
        );
        let r = DesignRules {
            width: 6.0,
            ..DesignRules::default()
        };
        t.set_rules(r);
        assert_eq!(t.width(), 6.0);
        let t2 = Trace::with_rules(
            "D1",
            Polyline::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]),
            r,
        );
        assert_eq!(t2.width(), 6.0);
    }

    #[test]
    fn centerline_replacement_changes_length() {
        let mut t = Trace::new(
            "D2",
            Polyline::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)]),
            4.0,
        );
        t.set_centerline(Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
        ]));
        assert_eq!(t.length(), 20.0);
    }

    #[test]
    fn id_display() {
        assert_eq!(format!("{}", TraceId(4)), "t4");
    }
}
