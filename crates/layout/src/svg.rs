//! SVG rendering — regenerates the paper's display figures (14–16).

use crate::board::Board;
use crate::obstacle::ObstacleKind;
use meander_geom::{Point, Polygon, Polyline, Rect};
use std::fmt::Write as _;

/// Style options for [`render_board`].
#[derive(Debug, Clone)]
pub struct SvgStyle {
    /// Pixel width of the output image (height follows aspect ratio).
    pub width_px: f64,
    /// Background color.
    pub background: String,
    /// Cycle of trace colors.
    pub trace_colors: Vec<String>,
    /// Obstacle fill color.
    pub obstacle_fill: String,
    /// Draw routable-area outlines.
    pub show_areas: bool,
}

impl Default for SvgStyle {
    fn default() -> Self {
        SvgStyle {
            width_px: 1000.0,
            background: "#10141a".to_string(),
            trace_colors: vec![
                "#4fc3f7".into(),
                "#aed581".into(),
                "#ffb74d".into(),
                "#f06292".into(),
                "#ba68c8".into(),
                "#4db6ac".into(),
                "#fff176".into(),
                "#90a4ae".into(),
            ],
            obstacle_fill: "#54606e".into(),
            show_areas: true,
        }
    }
}

fn view_box(board: &Board) -> Rect {
    board.outline().unwrap_or_else(|| {
        let mut r: Option<Rect> = None;
        for (_, t) in board.traces() {
            let bb = t.centerline().bbox();
            r = Some(r.map_or(bb, |acc| acc.union(&bb)));
        }
        r.unwrap_or(Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)))
    })
}

fn fmt_points(points: &[Point]) -> String {
    let mut s = String::new();
    for p in points {
        let _ = write!(s, "{:.3},{:.3} ", p.x, -p.y); // flip y: SVG is y-down
    }
    s.trim_end().to_string()
}

/// Renders the board as an SVG document string.
///
/// Traces are drawn at their real width, obstacles as filled polygons, and
/// (optionally) routable areas as dashed outlines — the same visual language
/// as the paper's Figs. 14–16.
///
/// ```
/// use meander_layout::{svg::render_board, Board};
/// use meander_geom::{Point, Rect};
/// let board = Board::new(Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)));
/// let doc = render_board(&board, &Default::default());
/// assert!(doc.starts_with("<svg"));
/// assert!(doc.ends_with("</svg>\n"));
/// ```
pub fn render_board(board: &Board, style: &SvgStyle) -> String {
    let vb = view_box(board).expanded(5.0);
    let scale = style.width_px / vb.width().max(1e-9);
    let height_px = vb.height() * scale;

    let mut s = String::new();
    let _ = writeln!(
        s,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"{:.3} {:.3} {:.3} {:.3}\">",
        style.width_px,
        height_px,
        vb.min.x,
        -vb.max.y,
        vb.width(),
        vb.height()
    );
    let _ = writeln!(
        s,
        "<rect x=\"{:.3}\" y=\"{:.3}\" width=\"{:.3}\" height=\"{:.3}\" fill=\"{}\"/>",
        vb.min.x,
        -vb.max.y,
        vb.width(),
        vb.height(),
        style.background
    );

    if style.show_areas {
        for (id, _) in board.traces() {
            if let Some(area) = board.area(id) {
                for poly in area.polygons() {
                    let _ = writeln!(
                        s,
                        "<polygon points=\"{}\" fill=\"none\" stroke=\"#2e3b4a\" stroke-width=\"0.6\" stroke-dasharray=\"3 2\"/>",
                        fmt_points(poly.vertices())
                    );
                }
            }
        }
    }

    for obs in board.obstacles() {
        let stroke = match obs.kind() {
            ObstacleKind::Via => "#76838f",
            _ => "#465261",
        };
        let _ = writeln!(
            s,
            "<polygon points=\"{}\" fill=\"{}\" stroke=\"{}\" stroke-width=\"0.4\"/>",
            fmt_points(obs.polygon().vertices()),
            style.obstacle_fill,
            stroke
        );
    }

    for (id, t) in board.traces() {
        let color = &style.trace_colors[(id.0 as usize) % style.trace_colors.len()];
        let _ = writeln!(
            s,
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{}\" stroke-width=\"{:.3}\" stroke-linejoin=\"round\" stroke-linecap=\"round\"/>",
            fmt_points(t.centerline().points()),
            color,
            t.width()
        );
    }

    s.push_str("</svg>\n");
    s
}

/// Renders loose geometry (polylines + polygons) without a [`Board`] —
/// used by the illustrative figures (URAs, DTW matchings).
pub fn render_scene(
    polylines: &[(Polyline, &str, f64)],
    polygons: &[(Polygon, &str)],
    width_px: f64,
) -> String {
    let mut bb: Option<Rect> = None;
    for (pl, _, _) in polylines {
        let b = pl.bbox();
        bb = Some(bb.map_or(b, |acc| acc.union(&b)));
    }
    for (pg, _) in polygons {
        let b = pg.bbox();
        bb = Some(bb.map_or(b, |acc| acc.union(&b)));
    }
    let vb = bb
        .unwrap_or(Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)))
        .expanded(3.0);
    let scale = width_px / vb.width().max(1e-9);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"{:.3} {:.3} {:.3} {:.3}\">",
        width_px,
        vb.height() * scale,
        vb.min.x,
        -vb.max.y,
        vb.width(),
        vb.height()
    );
    let _ = writeln!(
        s,
        "<rect x=\"{:.3}\" y=\"{:.3}\" width=\"{:.3}\" height=\"{:.3}\" fill=\"#10141a\"/>",
        vb.min.x,
        -vb.max.y,
        vb.width(),
        vb.height()
    );
    for (pg, color) in polygons {
        let _ = writeln!(
            s,
            "<polygon points=\"{}\" fill=\"{}\" fill-opacity=\"0.6\" stroke=\"{}\"/>",
            fmt_points(pg.vertices()),
            color,
            color
        );
    }
    for (pl, color, w) in polylines {
        let _ = writeln!(
            s,
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{}\" stroke-width=\"{:.3}\" stroke-linejoin=\"round\"/>",
            fmt_points(pl.points()),
            color,
            w
        );
    }
    s.push_str("</svg>\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::table1_case;

    #[test]
    fn renders_valid_svg_skeleton() {
        let case = table1_case(1);
        let doc = render_board(&case.board, &SvgStyle::default());
        assert!(doc.starts_with("<svg"));
        assert!(doc.ends_with("</svg>\n"));
        // 8 traces → 8 polylines.
        assert_eq!(doc.matches("<polyline").count(), 8);
        // Obstacles rendered.
        assert!(doc.matches("<polygon").count() >= case.board.obstacles().len());
    }

    #[test]
    fn trace_width_appears_in_stroke() {
        let case = table1_case(1);
        let doc = render_board(&case.board, &SvgStyle::default());
        assert!(doc.contains("stroke-width=\"4.000\""));
    }

    #[test]
    fn scene_renderer_handles_empty() {
        let doc = render_scene(&[], &[], 400.0);
        assert!(doc.starts_with("<svg"));
    }

    #[test]
    fn areas_toggle() {
        let case = table1_case(1);
        let on = render_board(&case.board, &SvgStyle::default());
        let off = render_board(
            &case.board,
            &SvgStyle {
                show_areas: false,
                ..Default::default()
            },
        );
        assert!(on.len() > off.len());
    }
}
