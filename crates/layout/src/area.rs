//! Routable areas.

use meander_geom::{Point, Polygon, Rect, Segment};

/// The space assigned to one trace for meandering.
///
/// "Routable area: the union of non-overlapping routing regions assigned to
/// a trace, represented as some irregular polygons" (paper Sec. II). The
/// union is kept as a *list* of polygons — a pattern must fit inside one of
/// them (multiple DRAs "will be separated into independent rouTable areas
/// and handled independently", Sec. IV-B).
#[derive(Debug, Clone, Default)]
pub struct RoutableArea {
    polygons: Vec<Polygon>,
}

impl RoutableArea {
    /// Empty area (meandering impossible; original routing only).
    pub fn new() -> Self {
        RoutableArea::default()
    }

    /// Area consisting of a single polygon.
    pub fn from_polygon(p: Polygon) -> Self {
        RoutableArea { polygons: vec![p] }
    }

    /// Area from several polygons.
    pub fn from_polygons(polygons: Vec<Polygon>) -> Self {
        RoutableArea { polygons }
    }

    /// Corridor area: a rectangle of `half_width` on each side of an
    /// axis-aligned bounding box around `spine`, the common shape handed to
    /// bus traces.
    pub fn corridor(spine: &Segment, half_width: f64) -> Self {
        // Build in the spine's local frame so any-direction corridors work.
        let frame = meander_geom::Frame::from_segment(spine)
            .expect("corridor spine must be non-degenerate");
        let len = spine.length();
        let local = Polygon::rectangle(Point::new(0.0, -half_width), Point::new(len, half_width));
        RoutableArea {
            polygons: vec![frame.polygon_to_world(&local)],
        }
    }

    /// The polygons forming the area.
    #[inline]
    pub fn polygons(&self) -> &[Polygon] {
        &self.polygons
    }

    /// Adds a polygon to the union.
    pub fn push(&mut self, p: Polygon) {
        self.polygons.push(p);
    }

    /// `true` when no space is assigned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.polygons.is_empty()
    }

    /// `true` when `p` lies inside some polygon of the area.
    pub fn contains(&self, p: Point) -> bool {
        self.polygons.iter().any(|poly| poly.contains(p))
    }

    /// Total area (counts overlaps twice; assignment keeps regions
    /// non-overlapping so in practice this is exact).
    pub fn total_area(&self) -> f64 {
        self.polygons.iter().map(|p| p.area()).sum()
    }

    /// Bounding box of the whole area, `None` when empty.
    pub fn bbox(&self) -> Option<Rect> {
        let mut it = self.polygons.iter();
        let first = it.next()?.bbox();
        Some(it.fold(first, |acc, p| acc.union(&p.bbox())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_area() {
        let a = RoutableArea::new();
        assert!(a.is_empty());
        assert!(!a.contains(Point::ORIGIN));
        assert!(a.bbox().is_none());
        assert_eq!(a.total_area(), 0.0);
    }

    #[test]
    fn union_membership() {
        let mut a = RoutableArea::from_polygon(Polygon::rectangle(
            Point::new(0.0, 0.0),
            Point::new(10.0, 10.0),
        ));
        a.push(Polygon::rectangle(
            Point::new(20.0, 0.0),
            Point::new(30.0, 10.0),
        ));
        assert!(a.contains(Point::new(5.0, 5.0)));
        assert!(a.contains(Point::new(25.0, 5.0)));
        assert!(!a.contains(Point::new(15.0, 5.0)));
        assert_eq!(a.total_area(), 200.0);
        let bb = a.bbox().unwrap();
        assert_eq!(bb.min, Point::new(0.0, 0.0));
        assert_eq!(bb.max, Point::new(30.0, 10.0));
    }

    #[test]
    fn corridor_any_direction() {
        // A 45° corridor must contain points beside the spine.
        let spine = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let a = RoutableArea::corridor(&spine, 2.0);
        assert!(a.contains(Point::new(5.0, 5.0)));
        // 1.0 perpendicular off the spine: inside (|offset| < 2).
        assert!(a.contains(Point::new(4.0, 6.0)));
        // 3·√2/... clearly beyond the half width: outside.
        assert!(!a.contains(Point::new(2.0, 8.0)));
        assert!((a.total_area() - spine.length() * 4.0).abs() < 1e-9);
    }
}
