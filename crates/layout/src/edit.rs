//! Typed edits over a fleet of library-sharing boards.
//!
//! A serving workload is a stream of small changes — an obstacle moves, a
//! rule tweaks, one board of a large set is swapped out. [`Edit`] is the
//! closed vocabulary of those changes; `meander-fleet`'s `FleetSession`
//! applies them with damage tracking so a re-route touches only what an
//! edit could have affected.
//!
//! Two invariants the edit vocabulary is designed around:
//!
//! * **Order stability.** Obstacle edits never permute the surviving
//!   obstacles: a move replaces in place, an add appends, a remove closes
//!   the gap. Candidate ids may *shift* under adds/removes, but their
//!   relative order — and therefore the geometry sequence any unrelated
//!   unit's queries resolve to — is preserved, which is what keeps skipped
//!   units bit-identical.
//! * **Robustness.** Applying an edit is total: indices are taken modulo
//!   the current collection length (a remove on an empty collection is a
//!   no-op). Generated edit streams stay applicable after any prefix.

use crate::board::Board;
use crate::obstacle::Obstacle;
use meander_drc::DesignRules;
use meander_geom::Vector;
use std::fmt;

/// What an obstacle edit targets: a shared library (all boards referencing
/// it see the change) or one board's local obstacles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditScope {
    /// Library by fleet-session library slot (identity-grouped).
    Library(usize),
    /// Board by index in the fleet's board list.
    Board(usize),
}

impl fmt::Display for EditScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditScope::Library(i) => write!(f, "library {i}"),
            EditScope::Board(i) => write!(f, "board {i}"),
        }
    }
}

/// One edit against a routed fleet.
#[derive(Debug, Clone)]
pub enum Edit {
    /// Translates the obstacle at `index` (mod count) by `by`, in place.
    MoveObstacle {
        /// Library or board obstacle list.
        scope: EditScope,
        /// Obstacle slot, taken modulo the current count.
        index: usize,
        /// Translation vector.
        by: Vector,
    },
    /// Appends an obstacle.
    AddObstacle {
        /// Library or board obstacle list.
        scope: EditScope,
        /// The new obstacle (appended, so existing ids are unchanged).
        obstacle: Obstacle,
    },
    /// Removes the obstacle at `index` (mod count), preserving the order of
    /// the rest. No-op on an empty collection.
    RemoveObstacle {
        /// Library or board obstacle list.
        scope: EditScope,
        /// Obstacle slot, taken modulo the current count.
        index: usize,
    },
    /// Overrides the design rules of every trace on one board (a rule
    /// tweak re-derives the clearance floats, so the whole board re-routes
    /// and its `WorldBase` cache key changes).
    SetRules {
        /// Board index.
        board: usize,
        /// The new rules.
        rules: DesignRules,
    },
    /// Swaps out one board's local part (traces, groups, areas, local
    /// obstacles) wholesale; the board keeps its current library binding.
    ReplaceBoard {
        /// Board index.
        board: usize,
        /// The replacement local part.
        replacement: Box<Board>,
    },
}

impl Edit {
    /// Whether this edit is *structural*: it changes what gets planned
    /// (units, rules, targets), not just obstacle geometry, so the whole
    /// board re-routes regardless of touched cells.
    pub fn is_structural(&self) -> bool {
        matches!(self, Edit::SetRules { .. } | Edit::ReplaceBoard { .. })
    }

    /// The scope the edit damages.
    pub fn scope(&self) -> EditScope {
        match self {
            Edit::MoveObstacle { scope, .. }
            | Edit::AddObstacle { scope, .. }
            | Edit::RemoveObstacle { scope, .. } => *scope,
            Edit::SetRules { board, .. } | Edit::ReplaceBoard { board, .. } => {
                EditScope::Board(*board)
            }
        }
    }
}

impl fmt::Display for Edit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Edit::MoveObstacle { scope, index, by } => {
                write!(
                    f,
                    "move obstacle {index} of {scope} by ({}, {})",
                    by.x, by.y
                )
            }
            Edit::AddObstacle { scope, obstacle } => {
                write!(f, "add {obstacle} to {scope}")
            }
            Edit::RemoveObstacle { scope, index } => {
                write!(f, "remove obstacle {index} of {scope}")
            }
            Edit::SetRules { board, rules } => {
                write!(f, "set rules of board {board} (gap {})", rules.gap)
            }
            Edit::ReplaceBoard { board, .. } => write!(f, "replace board {board}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meander_geom::Point;

    #[test]
    fn structural_classification() {
        let mv = Edit::MoveObstacle {
            scope: EditScope::Library(0),
            index: 3,
            by: Vector::new(1.0, 0.0),
        };
        assert!(!mv.is_structural());
        assert_eq!(mv.scope(), EditScope::Library(0));
        let sr = Edit::SetRules {
            board: 2,
            rules: DesignRules::default(),
        };
        assert!(sr.is_structural());
        assert_eq!(sr.scope(), EditScope::Board(2));
    }

    #[test]
    fn display_names_the_target() {
        let e = Edit::AddObstacle {
            scope: EditScope::Board(1),
            obstacle: Obstacle::via(Point::new(0.0, 0.0), 2.0),
        };
        assert!(format!("{e}").contains("board 1"));
    }
}
