//! The board: the aggregate layout object.

use crate::area::RoutableArea;
use crate::diffpair::DiffPair;
use crate::group::MatchGroup;
use crate::obstacle::Obstacle;
use crate::trace::{Trace, TraceId};
use meander_drc::{CheckInput, DesignRuleArea, TraceGeometry, Violation};
use meander_geom::Rect;
use std::collections::HashMap;
use std::fmt;

/// A PCB layout: outline, obstacles, traces, matching groups, differential
/// pairs, design-rule areas, and per-trace routable areas.
///
/// `Board` owns all entities and hands out ids; the router mutates traces
/// through [`Board::trace_mut`] and validates results with
/// [`Board::check`].
#[derive(Debug, Clone, Default)]
pub struct Board {
    outline: Option<Rect>,
    traces: Vec<Trace>,
    obstacles: Vec<Obstacle>,
    groups: Vec<MatchGroup>,
    pairs: Vec<DiffPair>,
    rule_areas: Vec<DesignRuleArea>,
    areas: HashMap<TraceId, RoutableArea>,
}

impl Board {
    /// Creates an empty board with the given outline.
    pub fn new(outline: Rect) -> Self {
        Board {
            outline: Some(outline),
            ..Board::default()
        }
    }

    /// Board outline, if set.
    #[inline]
    pub fn outline(&self) -> Option<Rect> {
        self.outline
    }

    /// Adds a trace, returning its id.
    pub fn add_trace(&mut self, trace: Trace) -> TraceId {
        let id = TraceId(self.traces.len() as u32);
        self.traces.push(trace);
        id
    }

    /// Looks up a trace.
    pub fn trace(&self, id: TraceId) -> Option<&Trace> {
        self.traces.get(id.0 as usize)
    }

    /// Mutable trace access.
    pub fn trace_mut(&mut self, id: TraceId) -> Option<&mut Trace> {
        self.traces.get_mut(id.0 as usize)
    }

    /// All traces with their ids.
    pub fn traces(&self) -> impl Iterator<Item = (TraceId, &Trace)> {
        self.traces
            .iter()
            .enumerate()
            .map(|(i, t)| (TraceId(i as u32), t))
    }

    /// Number of traces.
    pub fn trace_count(&self) -> usize {
        self.traces.len()
    }

    /// Adds an obstacle.
    pub fn add_obstacle(&mut self, o: Obstacle) {
        self.obstacles.push(o);
    }

    /// Inserts obstacles *before* the existing ones, preserving both
    /// relative orders. [`crate::library::LibraryBoard::to_board`] uses
    /// this to materialize a library-referencing board with the library's
    /// obstacles in the leading positions — the order the shared routing
    /// path's polygon id space assumes.
    pub fn prepend_obstacles(&mut self, obstacles: impl IntoIterator<Item = Obstacle>) {
        let mut all: Vec<Obstacle> = obstacles.into_iter().collect();
        all.append(&mut self.obstacles);
        self.obstacles = all;
    }

    /// All obstacles.
    #[inline]
    pub fn obstacles(&self) -> &[Obstacle] {
        &self.obstacles
    }

    /// Replaces the obstacle at `idx` in place (position — and therefore
    /// the polygon id every routed trace saw it under — is preserved).
    /// Returns the old obstacle, or `None` when `idx` is out of range.
    pub fn replace_obstacle(&mut self, idx: usize, o: Obstacle) -> Option<Obstacle> {
        let slot = self.obstacles.get_mut(idx)?;
        Some(std::mem::replace(slot, o))
    }

    /// Removes and returns the obstacle at `idx`, preserving the relative
    /// order of the rest (edits must keep id order stable for the
    /// incremental serving loop's candidacy argument). `None` when out of
    /// range.
    pub fn remove_obstacle(&mut self, idx: usize) -> Option<Obstacle> {
        if idx < self.obstacles.len() {
            Some(self.obstacles.remove(idx))
        } else {
            None
        }
    }

    /// Adds a matching group.
    pub fn add_group(&mut self, g: MatchGroup) {
        self.groups.push(g);
    }

    /// All matching groups.
    #[inline]
    pub fn groups(&self) -> &[MatchGroup] {
        &self.groups
    }

    /// Adds a differential pair.
    pub fn add_pair(&mut self, p: DiffPair) {
        self.pairs.push(p);
    }

    /// All differential pairs.
    #[inline]
    pub fn pairs(&self) -> &[DiffPair] {
        &self.pairs
    }

    /// The differential pair containing `id`, if any.
    pub fn pair_of(&self, id: TraceId) -> Option<&DiffPair> {
        self.pairs.iter().find(|p| p.involves(id))
    }

    /// Adds a design-rule area.
    pub fn add_rule_area(&mut self, a: DesignRuleArea) {
        self.rule_areas.push(a);
    }

    /// All design-rule areas.
    #[inline]
    pub fn rule_areas(&self) -> &[DesignRuleArea] {
        &self.rule_areas
    }

    /// Assigns a routable area to a trace (replacing any previous one).
    pub fn set_area(&mut self, id: TraceId, area: RoutableArea) {
        self.areas.insert(id, area);
    }

    /// The routable area assigned to `id`, if any.
    pub fn area(&self, id: TraceId) -> Option<&RoutableArea> {
        self.areas.get(&id)
    }

    /// Group lengths: current length of each member of `group`.
    pub fn group_lengths(&self, group: &MatchGroup) -> Vec<f64> {
        group
            .members()
            .iter()
            .map(|&id| self.trace(id).map(|t| t.length()).unwrap_or(0.0))
            .collect()
    }

    /// Runs the full DRC scan over the board.
    pub fn check(&self) -> Vec<Violation> {
        let input = CheckInput {
            traces: self
                .traces()
                .map(|(id, t)| TraceGeometry {
                    id: id.0,
                    centerline: t.centerline().clone(),
                    width: t.width(),
                    rules: *t.rules(),
                    area: self
                        .area(id)
                        .map(|a| a.polygons().to_vec())
                        .unwrap_or_default(),
                    coupled_with: self
                        .pair_of(id)
                        .and_then(|p| p.partner(id))
                        .map(|pid| vec![pid.0])
                        .unwrap_or_default(),
                })
                .collect(),
            obstacles: self.obstacles.iter().map(|o| o.polygon().clone()).collect(),
        };
        meander_drc::check_layout(&input)
    }
}

impl fmt::Display for Board {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "board: {} traces, {} obstacles, {} groups, {} pairs",
            self.traces.len(),
            self.obstacles.len(),
            self.groups.len(),
            self.pairs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obstacle::ObstacleKind;
    use meander_geom::{Point, Polygon, Polyline};

    fn board_with_two_traces() -> (Board, TraceId, TraceId) {
        let mut b = Board::new(Rect::new(Point::new(0.0, 0.0), Point::new(200.0, 100.0)));
        let a = b.add_trace(Trace::new(
            "A",
            Polyline::new(vec![Point::new(0.0, 20.0), Point::new(200.0, 20.0)]),
            4.0,
        ));
        let c = b.add_trace(Trace::new(
            "B",
            Polyline::new(vec![Point::new(0.0, 70.0), Point::new(150.0, 70.0)]),
            4.0,
        ));
        (b, a, c)
    }

    #[test]
    fn ids_are_stable() {
        let (b, a, c) = board_with_two_traces();
        assert_eq!(a, TraceId(0));
        assert_eq!(c, TraceId(1));
        assert_eq!(b.trace(a).unwrap().name(), "A");
        assert_eq!(b.trace(c).unwrap().name(), "B");
        assert!(b.trace(TraceId(5)).is_none());
        assert_eq!(b.trace_count(), 2);
    }

    #[test]
    fn group_lengths_follow_members() {
        let (mut b, a, c) = board_with_two_traces();
        let g = MatchGroup::new("g", vec![a, c]);
        assert_eq!(b.group_lengths(&g), vec![200.0, 150.0]);
        assert_eq!(g.resolve_target(&b.group_lengths(&g)), 200.0);
        // Mutating a trace changes the group view.
        b.trace_mut(c).unwrap().set_centerline(Polyline::new(vec![
            Point::new(0.0, 70.0),
            Point::new(200.0, 70.0),
        ]));
        assert_eq!(b.group_lengths(&g), vec![200.0, 200.0]);
    }

    #[test]
    fn pair_lookup() {
        let (mut b, a, c) = board_with_two_traces();
        b.add_pair(DiffPair::new("P", a, c, 6.0));
        assert!(b.pair_of(a).is_some());
        assert_eq!(b.pair_of(a).unwrap().partner(a), Some(c));
        assert!(b.pair_of(TraceId(7)).is_none());
    }

    #[test]
    fn check_integrates_areas_and_obstacles() {
        let (mut b, a, _) = board_with_two_traces();
        // Clean board passes.
        assert!(b.check().is_empty());
        // Shrink trace A's area so it escapes → violation.
        b.set_area(
            a,
            RoutableArea::from_polygon(Polygon::rectangle(
                Point::new(0.0, 0.0),
                Point::new(50.0, 40.0),
            )),
        );
        let v = b.check();
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::OutsideRoutableArea { .. }));
    }

    #[test]
    fn obstacle_violation_through_board() {
        let (mut b, _, _) = board_with_two_traces();
        b.add_obstacle(Obstacle::new(
            Polygon::rectangle(Point::new(90.0, 22.0), Point::new(110.0, 30.0)),
            ObstacleKind::Keepout,
        ));
        let v = b.check();
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::TraceObstacleClearance { .. })));
    }
}
