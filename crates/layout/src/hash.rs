//! Canonical content hashing: stable 64-bit digests of layout entities,
//! plus a Merkle commitment over an obstacle library.
//!
//! These digests key the fleet's content-addressed result cache
//! (`meander_fleet::cache`): two boards with equal digests are — by
//! construction of the serialization below — *identical inputs to the
//! router*, so a deterministic engine must route them identically, bit
//! for bit. That implication is the cache's entire correctness argument,
//! which makes the serialization contract here load-bearing:
//!
//! ## Serialization contract
//!
//! Every entity is folded word-by-word into a splitmix64 chain
//! ([`ContentHasher`]), with a domain tag up front and a length prefix
//! before every variable-length sequence (so `[[a], [b]]` and `[[a, b]]`
//! cannot collide structurally). Floats contribute their IEEE-754 bit
//! patterns — the same bits the router computes with — never a rounded or
//! formatted form.
//!
//! What is hashed is exactly the router's input surface:
//!
//! * **Order-sensitive where order is semantic.** Trace ids are insertion
//!   indices ([`crate::Board::add_trace`]), so trace order *is* identity:
//!   reordering traces renumbers every group member and changes the hash.
//!   Obstacle, group, pair, and rule-area declaration order likewise
//!   (obstacle position is the polygon id routed traces saw it under).
//! * **Order-insensitive where order is incidental.** Per-trace routable
//!   areas live in a `HashMap`; they are folded in ascending [`TraceId`]
//!   order, so map iteration order can never leak into the digest.
//! * **Names are excluded.** Trace, group, and pair names are labels for
//!   humans and reports; no router decision reads them. Excluding them is
//!   what lets generated near-duplicate boards (named per board index)
//!   share cache entries. Property-tested in this module and in
//!   `meander-fleet/tests/cache.rs`.
//!
//! ## Merkle commitment
//!
//! [`LibraryCommitment`] commits a [`crate::ObstacleLibrary`] as a Merkle
//! tree over its per-obstacle digests (the ministark
//! `MerkleTree`/`Queries` shape: commit once, update and prove subsets in
//! `O(log n)`). A single-obstacle edit recomputes only the leaf-to-root
//! path ([`MerkleTree::update_leaf`]); the serving session uses the root
//! as the library's cache-key component and the old/new root pair as the
//! invalidation edge for entries keyed under the edited library.

use crate::area::RoutableArea;
use crate::board::Board;
use crate::group::{MatchGroup, TargetLength};
use crate::library::ObstacleLibrary;
use crate::obstacle::{Obstacle, ObstacleKind};
use crate::trace::{Trace, TraceId};
use meander_drc::{DesignRuleArea, DesignRules};
use meander_geom::{Polygon, Polyline, Rect};

/// splitmix64 finalizer: the bijective mixer every digest chains through.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// Domain tags: distinct entity kinds start from distinct chain states, so
// a polygon can never collide with a polyline of the same coordinates.
const TAG_POLYGON: u64 = 0x706f_6c79_676f_6e00; // "polygon"
const TAG_POLYLINE: u64 = 0x706f_6c79_6c69_6e65; // "polyline"
const TAG_RULES: u64 = 0x7275_6c65_7300_0000; // "rules"
const TAG_OBSTACLE: u64 = 0x6f62_7374_6163_6c65; // "obstacle"
const TAG_TRACE: u64 = 0x7472_6163_6500_0000; // "trace"
const TAG_GROUP: u64 = 0x6772_6f75_7000_0000; // "group"
const TAG_BOARD: u64 = 0x626f_6172_6400_0000; // "board"
const TAG_NODE: u64 = 0x6d65_726b_6c65_0000; // "merkle" (interior node)
const TAG_EMPTY: u64 = 0x656d_7074_7900_0000; // "empty" (zero-leaf tree)

/// Word-at-a-time splitmix64 fold. Not a cryptographic hash — a stable,
/// documented digest for content addressing within one trusted process.
#[derive(Debug, Clone)]
pub struct ContentHasher {
    state: u64,
}

impl ContentHasher {
    /// Starts a chain in the `tag` domain.
    #[inline]
    pub fn new(tag: u64) -> Self {
        ContentHasher { state: mix64(tag) }
    }

    /// Folds one word.
    #[inline]
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.state = mix64(self.state ^ v);
        self
    }

    /// Folds a float's IEEE-754 bit pattern.
    #[inline]
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Folds a sequence length (the structural prefix before elements).
    #[inline]
    pub fn len(&mut self, n: usize) -> &mut Self {
        self.u64(n as u64)
    }

    /// The digest.
    #[inline]
    pub fn finish(&self) -> u64 {
        // One extra mix so a chain's last written word is also diffused.
        mix64(self.state)
    }
}

#[inline]
fn fold_points(h: &mut ContentHasher, pts: &[meander_geom::Point]) {
    h.len(pts.len());
    for p in pts {
        h.f64(p.x).f64(p.y);
    }
}

/// Digest of a polygon: vertex list in declaration order.
pub fn hash_polygon(p: &Polygon) -> u64 {
    let mut h = ContentHasher::new(TAG_POLYGON);
    fold_points(&mut h, p.vertices());
    h.finish()
}

/// Digest of a polyline: point list in order.
pub fn hash_polyline(p: &Polyline) -> u64 {
    let mut h = ContentHasher::new(TAG_POLYLINE);
    fold_points(&mut h, p.points());
    h.finish()
}

/// Digest of a rule set: the five floats, fixed order.
pub fn hash_rules(r: &DesignRules) -> u64 {
    let mut h = ContentHasher::new(TAG_RULES);
    h.f64(r.gap)
        .f64(r.obstacle)
        .f64(r.protect)
        .f64(r.miter)
        .f64(r.width);
    h.finish()
}

/// Digest of an obstacle: kind discriminant + polygon.
pub fn hash_obstacle(o: &Obstacle) -> u64 {
    let kind = match o.kind() {
        ObstacleKind::Via => 1u64,
        ObstacleKind::Component => 2,
        ObstacleKind::Keepout => 3,
    };
    let mut h = ContentHasher::new(TAG_OBSTACLE);
    h.u64(kind).u64(hash_polygon(o.polygon()));
    h.finish()
}

/// Digest of a trace's routing-relevant content: centerline, width,
/// rules. The name is deliberately excluded (module docs).
pub fn hash_trace(t: &Trace) -> u64 {
    let mut h = ContentHasher::new(TAG_TRACE);
    h.u64(hash_polyline(t.centerline()))
        .f64(t.width())
        .u64(hash_rules(t.rules()));
    h.finish()
}

/// Digest of a matching group: members (in declaration order — member
/// order is the unit planning order), target policy, tolerance. The name
/// is deliberately excluded (module docs).
pub fn hash_group(g: &MatchGroup) -> u64 {
    let mut h = ContentHasher::new(TAG_GROUP);
    h.len(g.members().len());
    for m in g.members() {
        h.u64(u64::from(m.0));
    }
    match g.target() {
        TargetLength::LongestMember => {
            h.u64(1);
        }
        TargetLength::Explicit(t) => {
            h.u64(2).f64(t);
        }
    }
    h.f64(g.tolerance());
    h.finish()
}

fn fold_area(h: &mut ContentHasher, area: &RoutableArea) {
    h.len(area.polygons().len());
    for p in area.polygons() {
        h.u64(hash_polygon(p));
    }
}

fn fold_rule_area(h: &mut ContentHasher, a: &DesignRuleArea) {
    h.u64(u64::from(a.id()))
        .u64(hash_polygon(a.region()))
        .u64(hash_rules(a.rules()));
}

fn fold_outline(h: &mut ContentHasher, outline: Option<Rect>) {
    match outline {
        None => {
            h.u64(0);
        }
        Some(r) => {
            h.u64(1).f64(r.min.x).f64(r.min.y).f64(r.max.x).f64(r.max.y);
        }
    }
}

/// Digest of a board's **local** routing-relevant content: outline,
/// traces (in id order — ids are insertion indices, so equal digests
/// imply an identical id space), local obstacles, groups, pairs, and
/// rule areas in declaration order, and per-trace routable areas in
/// ascending [`TraceId`] order (map iteration order never leaks in).
///
/// A referenced obstacle library is *not* folded in — the library is
/// committed separately ([`LibraryCommitment`]) so a library edit moves
/// one key component instead of rewriting every board's digest.
pub fn hash_board_local(b: &Board) -> u64 {
    let mut h = ContentHasher::new(TAG_BOARD);
    fold_outline(&mut h, b.outline());
    h.len(b.trace_count());
    for (_, t) in b.traces() {
        h.u64(hash_trace(t));
    }
    h.len(b.obstacles().len());
    for o in b.obstacles() {
        h.u64(hash_obstacle(o));
    }
    h.len(b.groups().len());
    for g in b.groups() {
        h.u64(hash_group(g));
    }
    h.len(b.pairs().len());
    for p in b.pairs() {
        h.u64(u64::from(p.p().0))
            .u64(u64::from(p.n().0))
            .f64(p.sep())
            .u64(p.breakout_nodes() as u64);
    }
    h.len(b.rule_areas().len());
    for a in b.rule_areas() {
        fold_rule_area(&mut h, a);
    }
    // Areas: keyed by TraceId in a HashMap — fold in ascending id order,
    // with a presence flag per trace id, so insertion order is invisible.
    let with_area = (0..b.trace_count() as u32)
        .filter(|&i| b.area(TraceId(i)).is_some())
        .count();
    h.len(with_area);
    for i in 0..b.trace_count() as u32 {
        if let Some(area) = b.area(TraceId(i)) {
            h.u64(u64::from(i));
            fold_area(&mut h, area);
        }
    }
    h.finish()
}

/// A binary Merkle tree over `u64` leaf digests.
///
/// Interior nodes are `mix(TAG_NODE, left, right)`; an odd node at any
/// level is paired with itself (the ministark padding shape). The root
/// commits the whole leaf list — order included — and
/// [`MerkleTree::update_leaf`] recomputes only the `O(log n)` path from
/// the edited leaf to the root.
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// `levels[0]` are the leaves; `levels.last()` is `[root]`.
    levels: Vec<Vec<u64>>,
}

fn hash_node(left: u64, right: u64) -> u64 {
    let mut h = ContentHasher::new(TAG_NODE);
    h.u64(left).u64(right);
    h.finish()
}

fn parent_level(level: &[u64]) -> Vec<u64> {
    level
        .chunks(2)
        .map(|pair| hash_node(pair[0], *pair.last().expect("non-empty chunk")))
        .collect()
}

impl MerkleTree {
    /// Builds the tree bottom-up from `leaves`.
    pub fn build(leaves: Vec<u64>) -> Self {
        let mut levels = vec![leaves];
        while levels.last().is_some_and(|l| l.len() > 1) {
            let next = parent_level(levels.last().expect("non-empty levels"));
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// Leaf count.
    pub fn len(&self) -> usize {
        self.levels[0].len()
    }

    /// `true` for a zero-leaf tree.
    pub fn is_empty(&self) -> bool {
        self.levels[0].is_empty()
    }

    /// The root digest (a fixed empty-domain digest for a zero-leaf
    /// tree, so "no library" still has a stable key component).
    pub fn root(&self) -> u64 {
        match self.levels.last().and_then(|l| l.first()) {
            Some(&r) => r,
            None => mix64(TAG_EMPTY),
        }
    }

    /// The leaf digests.
    pub fn leaves(&self) -> &[u64] {
        &self.levels[0]
    }

    /// Replaces leaf `i` and recomputes only its path to the root —
    /// `O(log n)` node hashes. Returns the new root.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn update_leaf(&mut self, i: usize, leaf: u64) -> u64 {
        assert!(i < self.len(), "leaf {i} out of range ({})", self.len());
        self.levels[0][i] = leaf;
        let mut idx = i;
        for lvl in 0..self.levels.len() - 1 {
            let parent = idx / 2;
            let left = self.levels[lvl][parent * 2];
            let right = *self.levels[lvl]
                .get(parent * 2 + 1)
                .unwrap_or(&self.levels[lvl][parent * 2]);
            self.levels[lvl + 1][parent] = hash_node(left, right);
            idx = parent;
        }
        self.root()
    }

    /// The authentication path of leaf `i`: the sibling digest at each
    /// level, leaf-to-root order. [`MerkleTree::verify_path`] checks it.
    pub fn path(&self, i: usize) -> Vec<u64> {
        assert!(i < self.len(), "leaf {i} out of range ({})", self.len());
        let mut out = Vec::new();
        let mut idx = i;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = idx ^ 1;
            out.push(*level.get(sibling).unwrap_or(&level[idx]));
            idx /= 2;
        }
        out
    }

    /// Verifies that `leaf` at index `i` under `path` reaches `root`.
    pub fn verify_path(root: u64, mut i: usize, leaf: u64, path: &[u64]) -> bool {
        let mut acc = leaf;
        for &sibling in path {
            acc = if i.is_multiple_of(2) {
                hash_node(acc, sibling)
            } else {
                hash_node(sibling, acc)
            };
            i /= 2;
        }
        acc == root
    }
}

/// A Merkle commitment over an obstacle library: one leaf per obstacle,
/// in library order. The root is the library's cache-key component; a
/// single-obstacle edit refreshes it in `O(log n)`
/// ([`LibraryCommitment::update_obstacle`]).
#[derive(Debug, Clone)]
pub struct LibraryCommitment {
    tree: MerkleTree,
}

impl LibraryCommitment {
    /// Commits `library` (hashes every obstacle, builds the tree).
    pub fn new(library: &ObstacleLibrary) -> Self {
        LibraryCommitment {
            tree: MerkleTree::build(library.obstacles().iter().map(hash_obstacle).collect()),
        }
    }

    /// The committed root.
    pub fn root(&self) -> u64 {
        self.tree.root()
    }

    /// Committed obstacle count.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// `true` when the committed library is empty.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Re-commits obstacle `i` after an in-place edit (a move): only the
    /// affected Merkle path is recomputed. Returns the new root.
    pub fn update_obstacle(&mut self, i: usize, o: &Obstacle) -> u64 {
        self.tree.update_leaf(i, hash_obstacle(o))
    }

    /// The underlying tree (authentication paths, leaves).
    pub fn tree(&self) -> &MerkleTree {
        &self.tree
    }
}

/// Convenience: the Merkle root of `library` (builds a throwaway
/// commitment — callers that edit libraries keep a [`LibraryCommitment`]
/// and pay `O(log n)` per edit instead).
pub fn library_root(library: &ObstacleLibrary) -> u64 {
    LibraryCommitment::new(library).root()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::fleet_boards_small;
    use crate::Trace;
    use meander_geom::{Point, Polyline, Vector};

    fn small_board() -> Board {
        fleet_boards_small(2, 7, 11).boards[1].board().clone()
    }

    #[test]
    fn digests_are_deterministic() {
        let b = small_board();
        assert_eq!(hash_board_local(&b), hash_board_local(&b.clone()));
        let lib = fleet_boards_small(2, 7, 11).library;
        assert_eq!(library_root(&lib), library_root(&lib));
    }

    /// Names are labels, not router inputs: renaming must not move the
    /// digest (this is what lets per-board-named duplicates share keys).
    #[test]
    fn names_are_excluded() {
        let b = small_board();
        let mut renamed = b.clone();
        let id = renamed.traces().next().map(|(id, _)| id).unwrap();
        let t = renamed.trace(id).unwrap();
        let clone = Trace::with_rules("renamed", t.centerline().clone(), *t.rules());
        *renamed.trace_mut(id).unwrap() = clone;
        assert_eq!(hash_board_local(&b), hash_board_local(&renamed));
    }

    /// Trace order is semantic (ids are insertion indices): swapping two
    /// traces must move the digest even though the trace *set* is equal.
    #[test]
    fn trace_order_is_semantic() {
        let mut a = Board::new(meander_geom::Rect::new(
            Point::new(0.0, 0.0),
            Point::new(100.0, 100.0),
        ));
        let t1 = Trace::new(
            "x",
            Polyline::new(vec![Point::new(0.0, 10.0), Point::new(90.0, 10.0)]),
            2.0,
        );
        let t2 = Trace::new(
            "y",
            Polyline::new(vec![Point::new(0.0, 40.0), Point::new(90.0, 40.0)]),
            2.0,
        );
        let mut b = a.clone();
        a.add_trace(t1.clone());
        a.add_trace(t2.clone());
        b.add_trace(t2);
        b.add_trace(t1);
        assert_ne!(hash_board_local(&a), hash_board_local(&b));
    }

    /// Geometry and rules changes move the digest.
    #[test]
    fn content_changes_move_the_digest() {
        let b = small_board();
        let h0 = hash_board_local(&b);
        // Obstacle nudge.
        if !b.obstacles().is_empty() {
            let mut edited = b.clone();
            let moved = edited.obstacles()[0].translated(Vector::new(0.25, 0.0));
            edited.replace_obstacle(0, moved);
            assert_ne!(h0, hash_board_local(&edited));
        }
        // Rules tweak.
        let mut edited = b.clone();
        let id = edited.traces().next().map(|(id, _)| id).unwrap();
        let mut rules = *edited.trace(id).unwrap().rules();
        rules.gap += 0.5;
        edited.trace_mut(id).unwrap().set_rules(rules);
        assert_ne!(h0, hash_board_local(&edited));
    }

    /// Merkle: update_leaf must equal a full rebuild, for every leaf
    /// index, at sizes covering odd/even shapes.
    #[test]
    fn update_leaf_matches_rebuild() {
        for n in [1usize, 2, 3, 5, 8, 13] {
            let leaves: Vec<u64> = (0..n as u64).map(mix64).collect();
            for i in 0..n {
                let mut tree = MerkleTree::build(leaves.clone());
                let new_leaf = mix64(0xdead_beef ^ i as u64);
                let incremental = tree.update_leaf(i, new_leaf);
                let mut rebuilt = leaves.clone();
                rebuilt[i] = new_leaf;
                assert_eq!(
                    incremental,
                    MerkleTree::build(rebuilt).root(),
                    "n={n} i={i}"
                );
            }
        }
    }

    #[test]
    fn authentication_paths_verify() {
        let leaves: Vec<u64> = (0..7u64).map(mix64).collect();
        let tree = MerkleTree::build(leaves.clone());
        for (i, &leaf) in leaves.iter().enumerate() {
            let path = tree.path(i);
            assert!(MerkleTree::verify_path(tree.root(), i, leaf, &path));
            assert!(!MerkleTree::verify_path(tree.root(), i, leaf ^ 1, &path));
        }
        // Empty tree has a stable root.
        assert_eq!(MerkleTree::build(vec![]).root(), mix64(TAG_EMPTY));
    }

    /// Library commitment: an O(log n) obstacle update reaches the same
    /// root as recommitting the edited library from scratch.
    #[test]
    fn commitment_update_matches_recommit() {
        let lib = fleet_boards_small(2, 7, 11).library;
        let mut commit = LibraryCommitment::new(&lib);
        assert_eq!(commit.root(), library_root(&lib));
        let mut obs = lib.obstacles().to_vec();
        let idx = obs.len() / 2;
        let moved = obs[idx].translated(Vector::new(1.0, -0.5));
        obs[idx] = moved.clone();
        let incremental = commit.update_obstacle(idx, &moved);
        assert_eq!(
            incremental,
            library_root(&ObstacleLibrary::new(obs)),
            "path update must equal recommit"
        );
        assert_ne!(incremental, library_root(&lib));
    }
}
