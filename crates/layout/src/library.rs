//! Shared obstacle libraries: the multi-board serving regime's unit of
//! reuse.
//!
//! A fab panel, a memory-channel family, or a set of revisions of one
//! design all share the bulk of their obstacle geometry — the via fields,
//! plane cutouts, and keepouts of the common footprint. [`ObstacleLibrary`]
//! captures that shared geometry once, immutably; [`LibraryBoard`] is a
//! board that *references* a library instead of owning copies of its
//! obstacles. The batch engine (`crates/fleet`) exploits the reference:
//! the library's world geometry is inflated and spatially indexed **once**
//! and overlaid by every trace of every board, instead of rebuilt per
//! trace.
//!
//! The representation is equivalence-preserving by construction:
//! [`LibraryBoard::to_board`] materializes a plain [`Board`] with the
//! library obstacles listed *first* (then the board-local ones), which is
//! exactly the polygon order the shared path's combined id space uses — so
//! routing a `LibraryBoard` through the shared path and its materialized
//! twin through the ordinary path produce bit-identical results
//! (property-tested in `crates/fleet`).

use crate::board::Board;
use crate::obstacle::Obstacle;
use meander_geom::Polygon;
use std::fmt;
use std::sync::Arc;

/// An immutable, shareable set of obstacles. Cheap to reference from many
/// boards via [`Arc`]; never mutated after construction.
#[derive(Debug, Clone, Default)]
pub struct ObstacleLibrary {
    obstacles: Vec<Obstacle>,
}

impl ObstacleLibrary {
    /// Wraps a finished obstacle set.
    pub fn new(obstacles: Vec<Obstacle>) -> Self {
        ObstacleLibrary { obstacles }
    }

    /// The library's obstacles, in their fixed order (the order the
    /// materialized board lists them in — load-bearing for bit-identity).
    #[inline]
    pub fn obstacles(&self) -> &[Obstacle] {
        &self.obstacles
    }

    /// The obstacle outlines, in library order.
    pub fn polygons(&self) -> Vec<Polygon> {
        self.obstacles.iter().map(|o| o.polygon().clone()).collect()
    }

    /// Number of obstacles.
    #[inline]
    pub fn len(&self) -> usize {
        self.obstacles.len()
    }

    /// `true` when the library holds no obstacles.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.obstacles.is_empty()
    }
}

impl fmt::Display for ObstacleLibrary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "library: {} obstacles", self.obstacles.len())
    }
}

/// A board referencing a shared [`ObstacleLibrary`]: the inner [`Board`]
/// holds only the *board-local* obstacles (plus traces, groups, areas);
/// the library's geometry is shared by reference.
#[derive(Debug, Clone)]
pub struct LibraryBoard {
    library: Arc<ObstacleLibrary>,
    board: Board,
}

impl LibraryBoard {
    /// Binds `board` (local obstacles only) to `library`.
    pub fn new(library: Arc<ObstacleLibrary>, board: Board) -> Self {
        LibraryBoard { library, board }
    }

    /// The shared library.
    #[inline]
    pub fn library(&self) -> &Arc<ObstacleLibrary> {
        &self.library
    }

    /// The board-local part (traces, groups, areas, local obstacles).
    #[inline]
    pub fn board(&self) -> &Board {
        &self.board
    }

    /// Mutable access to the board-local part.
    #[inline]
    pub fn board_mut(&mut self) -> &mut Board {
        &mut self.board
    }

    /// Rebinds the board to a different (typically edited) library. The
    /// serving loop's library edits build a fresh `Arc` and swing every
    /// referencing board over to it.
    pub fn set_library(&mut self, library: Arc<ObstacleLibrary>) {
        self.library = library;
    }

    /// Materializes a standalone [`Board`]: the library's obstacles first,
    /// then the board-local ones — the reference order the shared routing
    /// path is bit-identical to.
    pub fn to_board(&self) -> Board {
        let mut board = self.board.clone();
        board.prepend_obstacles(self.library.obstacles().iter().cloned());
        board
    }
}

impl fmt::Display for LibraryBoard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} + {} library obstacles",
            self.board,
            self.library.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obstacle::ObstacleKind;
    use crate::trace::Trace;
    use meander_geom::{Point, Polyline, Rect};

    fn small_board() -> Board {
        let mut b = Board::new(Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 50.0)));
        b.add_trace(Trace::new(
            "T",
            Polyline::new(vec![Point::new(0.0, 25.0), Point::new(100.0, 25.0)]),
            4.0,
        ));
        b.add_obstacle(Obstacle::keepout(
            Point::new(40.0, 40.0),
            Point::new(50.0, 45.0),
        ));
        b
    }

    #[test]
    fn to_board_lists_library_first() {
        let lib = Arc::new(ObstacleLibrary::new(vec![
            Obstacle::via(Point::new(10.0, 10.0), 2.0),
            Obstacle::via(Point::new(20.0, 10.0), 2.0),
        ]));
        let lb = LibraryBoard::new(Arc::clone(&lib), small_board());
        assert_eq!(lb.board().obstacles().len(), 1);
        let mat = lb.to_board();
        assert_eq!(mat.obstacles().len(), 3);
        // Library obstacles first, in library order; locals after.
        assert_eq!(mat.obstacles()[0].kind(), ObstacleKind::Via);
        assert_eq!(mat.obstacles()[1].kind(), ObstacleKind::Via);
        assert_eq!(mat.obstacles()[2].kind(), ObstacleKind::Keepout);
        assert!(mat.obstacles()[0]
            .polygon()
            .contains(Point::new(10.0, 10.0)));
        // Materialization does not disturb the original.
        assert_eq!(lb.board().obstacles().len(), 1);
        assert_eq!(lb.library().len(), 2);
    }

    #[test]
    fn library_is_cheap_to_share() {
        let lib = Arc::new(ObstacleLibrary::new(vec![Obstacle::via(
            Point::new(5.0, 5.0),
            1.0,
        )]));
        let boards: Vec<LibraryBoard> = (0..8)
            .map(|_| LibraryBoard::new(Arc::clone(&lib), small_board()))
            .collect();
        assert_eq!(Arc::strong_count(&lib), 9);
        for b in &boards {
            assert_eq!(b.library().len(), 1);
        }
        let polys = lib.polygons();
        assert_eq!(polys.len(), 1);
        assert_eq!(polys[0].len(), 8);
    }
}
