//! Differential pairs.

use crate::trace::TraceId;
use std::fmt;

/// A differential pair: two coupled sub-traces and their distance rule.
///
/// The paper's Sec. V is devoted to these: "A differential pair is commonly
/// regarded as a wide single-ended trace during length matching, but this
/// scheme meets many difficulties in practice, especially when the
/// differential pair is not strictly coupled." MSDTW merges the `p`/`n`
/// sub-traces into a median trace via node matching.
#[derive(Debug, Clone)]
pub struct DiffPair {
    name: String,
    /// Positive sub-trace (`traceP` in the paper).
    p: TraceId,
    /// Negative sub-trace (`traceN`).
    n: TraceId,
    /// Distance rule `r`: nominal centerline pitch between the sub-traces.
    sep: f64,
    /// Number of leading nodes on each sub-trace forming the breakout
    /// (pad escape), excluded from DTW matching ("the preserved breakout
    /// part", Sec. V-A).
    breakout_nodes: usize,
}

impl DiffPair {
    /// Creates a differential pair.
    ///
    /// # Panics
    ///
    /// Panics when `p == n` or `sep` is not strictly positive.
    pub fn new(name: impl Into<String>, p: TraceId, n: TraceId, sep: f64) -> Self {
        assert!(p != n, "differential pair needs two distinct traces");
        assert!(
            sep.is_finite() && sep > 0.0,
            "pair separation must be positive"
        );
        DiffPair {
            name: name.into(),
            p,
            n,
            sep,
            breakout_nodes: 1,
        }
    }

    /// Pair name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Positive sub-trace id.
    #[inline]
    pub fn p(&self) -> TraceId {
        self.p
    }

    /// Negative sub-trace id.
    #[inline]
    pub fn n(&self) -> TraceId {
        self.n
    }

    /// Distance rule (centerline pitch).
    #[inline]
    pub fn sep(&self) -> f64 {
        self.sep
    }

    /// Breakout node count excluded from matching at each trace end.
    #[inline]
    pub fn breakout_nodes(&self) -> usize {
        self.breakout_nodes
    }

    /// Sets the breakout node count.
    pub fn set_breakout_nodes(&mut self, n: usize) {
        self.breakout_nodes = n;
    }

    /// `true` when `id` is one of the sub-traces.
    pub fn involves(&self, id: TraceId) -> bool {
        self.p == id || self.n == id
    }

    /// The partner of `id` within the pair, if `id` belongs to it.
    pub fn partner(&self, id: TraceId) -> Option<TraceId> {
        if id == self.p {
            Some(self.n)
        } else if id == self.n {
            Some(self.p)
        } else {
            None
        }
    }
}

impl fmt::Display for DiffPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pair {} ({} / {}, sep {:.3})",
            self.name, self.p, self.n, self.sep
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_partner() {
        let dp = DiffPair::new("USB", TraceId(0), TraceId(1), 6.0);
        assert_eq!(dp.partner(TraceId(0)), Some(TraceId(1)));
        assert_eq!(dp.partner(TraceId(1)), Some(TraceId(0)));
        assert_eq!(dp.partner(TraceId(2)), None);
        assert!(dp.involves(TraceId(0)));
        assert!(!dp.involves(TraceId(9)));
        assert_eq!(dp.sep(), 6.0);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn same_trace_panics() {
        let _ = DiffPair::new("X", TraceId(0), TraceId(0), 6.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_sep_panics() {
        let _ = DiffPair::new("X", TraceId(0), TraceId(1), 0.0);
    }

    #[test]
    fn breakout_nodes_settable() {
        let mut dp = DiffPair::new("Y", TraceId(0), TraceId(1), 6.0);
        assert_eq!(dp.breakout_nodes(), 1);
        dp.set_breakout_nodes(3);
        assert_eq!(dp.breakout_nodes(), 3);
    }
}
