//! # meander-layout
//!
//! Board model for the `meander` length-matching router: traces, matching
//! groups, differential pairs, obstacles, routable areas, plus the synthetic
//! benchmark generators and SVG rendering used to reproduce the paper's
//! tables and figures.
//!
//! The model mirrors the paper's problem statement (Sec. II): a PCB layout
//! holds already-routed traces; *matching groups* demand every member reach
//! a common target length `l_target`; obstacles are polygons a trace cannot
//! pass; each trace owns a *routable area* (a union of polygons) inside
//! which its meandering must stay.
//!
//! ```
//! use meander_layout::{Board, Trace, TraceId};
//! use meander_geom::{Point, Polyline};
//!
//! let mut board = Board::new(meander_geom::Rect::new(
//!     Point::new(0.0, 0.0),
//!     Point::new(200.0, 100.0),
//! ));
//! let id = board.add_trace(Trace::new(
//!     "DQ0",
//!     Polyline::new(vec![Point::new(0.0, 50.0), Point::new(200.0, 50.0)]),
//!     4.0,
//! ));
//! assert_eq!(board.trace(id).unwrap().name(), "DQ0");
//! ```
//!
//! Boards arriving from outside the process (files, fleet submissions)
//! should pass through [`validate::validate_board`] first: it rejects
//! NaN/infinite coordinates, degenerate polygons, empty or dangling
//! groups, and malformed rule floats with a typed
//! [`validate::ValidationError`] instead of a panic inside the router.

// Library-facing ingest must never panic on untrusted input: unwraps are
// linted against (tests keep their unwraps — a failing test panics by
// design).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod area;
pub mod board;
pub mod diffpair;
pub mod edit;
pub mod gen;
pub mod group;
pub mod hash;
pub mod io;
pub mod library;
pub mod obstacle;
pub mod svg;
pub mod trace;
pub mod validate;

pub use area::RoutableArea;
pub use board::Board;
pub use diffpair::DiffPair;
pub use edit::{Edit, EditScope};
pub use group::{MatchGroup, TargetLength};
pub use hash::{hash_board_local, library_root, LibraryCommitment, MerkleTree};
pub use library::{LibraryBoard, ObstacleLibrary};
pub use obstacle::{Obstacle, ObstacleKind};
pub use trace::{Trace, TraceId};
pub use validate::{
    validate_board, validate_library, validate_library_board, Entity, ValidationError,
};
