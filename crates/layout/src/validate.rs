//! Typed input validation: reject malformed boards *before* they reach the
//! router.
//!
//! The routing engine trusts its inputs — a NaN coordinate poisons every
//! distance comparison it touches, an empty matching group panics target
//! resolution, a degenerate obstacle polygon breaks the shrink sweep's
//! edge math. In a serving system those inputs arrive from the outside
//! world, so the contract is: **bad boards are rejected, never routed.**
//! [`validate_board`] / [`validate_library`] walk every entity and return a
//! structured [`ValidationError`] carrying the offending entity's
//! provenance ([`Entity`]) instead of a panic deep inside a kernel.
//!
//! The fleet engine (`crates/fleet`) runs this pass up front and maps a
//! failure to `BoardOutcome::Rejected`, leaving the board untouched; the
//! text loader ([`crate::io::load_board`]) runs it after parsing so a file
//! that *parses* but encodes garbage geometry still comes back as a typed
//! error. Validation never mutates and accepts every board the generators
//! in [`crate::gen`] produce (property-tested in the fleet chaos suite).

use crate::board::Board;
use crate::group::TargetLength;
use crate::library::{LibraryBoard, ObstacleLibrary};
use meander_drc::{DesignRules, RulesError};
use meander_geom::{Point, Polygon};
use std::fmt;

/// Which entity of a board (or library) a [`ValidationError`] points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Entity {
    /// The board outline rectangle.
    Outline,
    /// Trace by id.
    Trace(u32),
    /// Board-local obstacle by index in declaration order.
    Obstacle(usize),
    /// Shared-library obstacle by index in library order.
    LibraryObstacle(usize),
    /// Routable-area polygon `polygon` of trace `trace`.
    Area {
        /// Owning trace id.
        trace: u32,
        /// Polygon index within the area.
        polygon: usize,
    },
}

impl fmt::Display for Entity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Entity::Outline => write!(f, "outline"),
            Entity::Trace(id) => write!(f, "trace {id}"),
            Entity::Obstacle(i) => write!(f, "obstacle {i}"),
            Entity::LibraryObstacle(i) => write!(f, "library obstacle {i}"),
            Entity::Area { trace, polygon } => {
                write!(f, "area polygon {polygon} of trace {trace}")
            }
        }
    }
}

/// A board (or library) failed validation. Every variant carries enough
/// provenance to point the submitter at the offending entity.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// A coordinate is NaN or infinite.
    NonFiniteCoordinate {
        /// The entity holding the coordinate.
        entity: Entity,
        /// Point/vertex index within the entity.
        index: usize,
        /// The offending point.
        point: Point,
    },
    /// The outline rectangle has `min > max` on an axis (constructed
    /// directly rather than through the normalizing [`meander_geom::Rect::new`]).
    InvertedOutline {
        /// Stored min corner.
        min: Point,
        /// Stored max corner.
        max: Point,
    },
    /// A polygon has (numerically) zero area — all vertices collinear or
    /// coincident — and cannot act as an obstacle or routable region.
    DegeneratePolygon {
        /// The entity holding the polygon.
        entity: Entity,
        /// Vertex count of the degenerate polygon.
        vertices: usize,
    },
    /// A trace centerline has zero total length.
    ZeroLengthTrace {
        /// Trace id.
        trace: u32,
    },
    /// A trace's design rules are rejected by [`DesignRules::new`]
    /// (non-finite or negative distances, non-positive width).
    BadRules {
        /// Trace id.
        trace: u32,
        /// The underlying rules error.
        error: RulesError,
    },
    /// A matching group has no members (target resolution is undefined).
    EmptyGroup {
        /// Group name.
        group: String,
    },
    /// A matching group references a trace id the board does not hold.
    UnknownGroupMember {
        /// Group name.
        group: String,
        /// The dangling member id.
        member: u32,
    },
    /// A group's explicit target length is non-finite or non-positive.
    BadTarget {
        /// Group name.
        group: String,
        /// The offending target value.
        value: f64,
    },
    /// A group's tolerance is non-finite or negative.
    BadTolerance {
        /// Group name.
        group: String,
        /// The offending tolerance.
        value: f64,
    },
    /// A differential pair references a trace id the board does not hold.
    UnknownPairTrace {
        /// Pair name.
        pair: String,
        /// The dangling trace id.
        member: u32,
    },
    /// A differential pair couples a trace with itself.
    SelfCoupledPair {
        /// Pair name.
        pair: String,
    },
    /// A differential pair's separation is non-finite or non-positive.
    BadSeparation {
        /// Pair name.
        pair: String,
        /// The offending separation.
        value: f64,
    },
    /// A fault-injection trip (fleet `fault` feature): the board was
    /// artificially rejected by a seeded
    /// `FaultPlan` to exercise the rejection path end to end.
    Injected {
        /// Why the trip fired.
        reason: String,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::NonFiniteCoordinate {
                entity,
                index,
                point,
            } => write!(
                f,
                "{entity}: point {index} has non-finite coordinate ({}, {})",
                point.x, point.y
            ),
            ValidationError::InvertedOutline { min, max } => write!(
                f,
                "outline inverted: min ({}, {}) exceeds max ({}, {})",
                min.x, min.y, max.x, max.y
            ),
            ValidationError::DegeneratePolygon { entity, vertices } => {
                write!(
                    f,
                    "{entity}: degenerate polygon ({vertices} vertices, zero area)"
                )
            }
            ValidationError::ZeroLengthTrace { trace } => {
                write!(f, "trace {trace}: centerline has zero length")
            }
            ValidationError::BadRules { trace, error } => {
                write!(f, "trace {trace}: {error}")
            }
            ValidationError::EmptyGroup { group } => {
                write!(f, "group `{group}` has no members")
            }
            ValidationError::UnknownGroupMember { group, member } => {
                write!(f, "group `{group}` references unknown trace {member}")
            }
            ValidationError::BadTarget { group, value } => {
                write!(
                    f,
                    "group `{group}`: target {value} must be finite and positive"
                )
            }
            ValidationError::BadTolerance { group, value } => {
                write!(
                    f,
                    "group `{group}`: tolerance {value} must be finite and non-negative"
                )
            }
            ValidationError::UnknownPairTrace { pair, member } => {
                write!(f, "pair `{pair}` references unknown trace {member}")
            }
            ValidationError::SelfCoupledPair { pair } => {
                write!(f, "pair `{pair}` couples a trace with itself")
            }
            ValidationError::BadSeparation { pair, value } => {
                write!(
                    f,
                    "pair `{pair}`: separation {value} must be finite and positive"
                )
            }
            ValidationError::Injected { reason } => write!(f, "injected fault: {reason}"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Area below which a polygon counts as degenerate (collinear/coincident
/// vertices). Deliberately tiny: real obstacles are orders of magnitude
/// larger, and shoelace round-off on legitimate polygons stays far above
/// this.
const MIN_POLYGON_AREA: f64 = 1e-12;

fn check_points(entity: Entity, points: &[Point]) -> Result<(), ValidationError> {
    for (index, p) in points.iter().enumerate() {
        if !p.x.is_finite() || !p.y.is_finite() {
            return Err(ValidationError::NonFiniteCoordinate {
                entity,
                index,
                point: *p,
            });
        }
    }
    Ok(())
}

fn check_polygon(entity: Entity, polygon: &Polygon) -> Result<(), ValidationError> {
    check_points(entity, polygon.vertices())?;
    if polygon.area() < MIN_POLYGON_AREA {
        return Err(ValidationError::DegeneratePolygon {
            entity,
            vertices: polygon.len(),
        });
    }
    Ok(())
}

fn check_rules(trace: u32, rules: &DesignRules) -> Result<(), ValidationError> {
    DesignRules::new(
        rules.gap,
        rules.obstacle,
        rules.protect,
        rules.miter,
        rules.width,
    )
    .map(|_| ())
    .map_err(|error| ValidationError::BadRules { trace, error })
}

/// Validates every entity of `board`, returning the first error in a
/// deterministic walk order (outline, traces, obstacles, areas, groups,
/// pairs).
///
/// # Errors
///
/// Returns the first [`ValidationError`] encountered; `Ok(())` means the
/// board is safe to hand to the router.
pub fn validate_board(board: &Board) -> Result<(), ValidationError> {
    if let Some(o) = board.outline() {
        check_points(Entity::Outline, &[o.min, o.max])?;
        if o.min.x > o.max.x || o.min.y > o.max.y {
            return Err(ValidationError::InvertedOutline {
                min: o.min,
                max: o.max,
            });
        }
    }
    for (id, trace) in board.traces() {
        check_points(Entity::Trace(id.0), trace.centerline().points())?;
        if trace.length() <= 0.0 {
            return Err(ValidationError::ZeroLengthTrace { trace: id.0 });
        }
        check_rules(id.0, trace.rules())?;
    }
    for (i, o) in board.obstacles().iter().enumerate() {
        check_polygon(Entity::Obstacle(i), o.polygon())?;
    }
    for (id, _) in board.traces() {
        if let Some(area) = board.area(id) {
            for (pi, poly) in area.polygons().iter().enumerate() {
                check_polygon(
                    Entity::Area {
                        trace: id.0,
                        polygon: pi,
                    },
                    poly,
                )?;
            }
        }
    }
    for g in board.groups() {
        if g.members().is_empty() {
            return Err(ValidationError::EmptyGroup {
                group: g.name().to_string(),
            });
        }
        for &m in g.members() {
            if board.trace(m).is_none() {
                return Err(ValidationError::UnknownGroupMember {
                    group: g.name().to_string(),
                    member: m.0,
                });
            }
        }
        if let TargetLength::Explicit(t) = g.target() {
            if !t.is_finite() || t <= 0.0 {
                return Err(ValidationError::BadTarget {
                    group: g.name().to_string(),
                    value: t,
                });
            }
        }
        if !g.tolerance().is_finite() || g.tolerance() < 0.0 {
            return Err(ValidationError::BadTolerance {
                group: g.name().to_string(),
                value: g.tolerance(),
            });
        }
    }
    for p in board.pairs() {
        for id in [p.p(), p.n()] {
            if board.trace(id).is_none() {
                return Err(ValidationError::UnknownPairTrace {
                    pair: p.name().to_string(),
                    member: id.0,
                });
            }
        }
        if p.p() == p.n() {
            return Err(ValidationError::SelfCoupledPair {
                pair: p.name().to_string(),
            });
        }
        if !p.sep().is_finite() || p.sep() <= 0.0 {
            return Err(ValidationError::BadSeparation {
                pair: p.name().to_string(),
                value: p.sep(),
            });
        }
    }
    Ok(())
}

/// Validates a shared obstacle library: every polygon must have finite
/// vertices and positive area.
///
/// # Errors
///
/// Returns the first [`ValidationError`], with
/// [`Entity::LibraryObstacle`] provenance.
pub fn validate_library(library: &ObstacleLibrary) -> Result<(), ValidationError> {
    for (i, o) in library.obstacles().iter().enumerate() {
        check_polygon(Entity::LibraryObstacle(i), o.polygon())?;
    }
    Ok(())
}

/// Validates a library-referencing board: the library first, then the
/// board-local part.
///
/// # Errors
///
/// Returns the first [`ValidationError`] from either half.
pub fn validate_library_board(board: &LibraryBoard) -> Result<(), ValidationError> {
    validate_library(board.library())?;
    validate_board(board.board())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::MatchGroup;
    use crate::obstacle::Obstacle;
    use crate::trace::{Trace, TraceId};
    use crate::DiffPair;
    use meander_geom::{Polyline, Rect};

    fn clean_board() -> Board {
        let mut b = Board::new(Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 50.0)));
        let id = b.add_trace(Trace::new(
            "T",
            Polyline::new(vec![Point::new(0.0, 25.0), Point::new(100.0, 25.0)]),
            4.0,
        ));
        b.add_obstacle(Obstacle::keepout(
            Point::new(40.0, 40.0),
            Point::new(50.0, 45.0),
        ));
        b.add_group(MatchGroup::with_target("g", vec![id], 150.0));
        b
    }

    #[test]
    fn clean_board_passes() {
        assert_eq!(validate_board(&clean_board()), Ok(()));
    }

    #[test]
    fn generated_cases_pass() {
        for case_no in 1..=5 {
            let case = crate::gen::table1_case(case_no);
            assert_eq!(validate_board(&case.board), Ok(()), "table1 case {case_no}");
        }
        let fleet = crate::gen::fleet_boards_small(4, 3, 7);
        for (b, lb) in fleet.boards.iter().enumerate() {
            assert_eq!(validate_library_board(lb), Ok(()), "fleet board {b}");
        }
    }

    #[test]
    fn nan_coordinate_rejected_with_provenance() {
        let mut b = clean_board();
        b.trace_mut(TraceId(0))
            .unwrap()
            .set_centerline(Polyline::new(vec![
                Point::new(0.0, 25.0),
                Point::new(f64::NAN, 25.0),
            ]));
        match validate_board(&b) {
            Err(ValidationError::NonFiniteCoordinate { entity, index, .. }) => {
                assert_eq!(entity, Entity::Trace(0));
                assert_eq!(index, 1);
            }
            other => panic!("expected NonFiniteCoordinate, got {other:?}"),
        }
    }

    #[test]
    fn inverted_outline_rejected() {
        let mut r = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        r.max.x = -5.0; // bypass the normalizing constructor
        let b = Board::new(r);
        assert!(matches!(
            validate_board(&b),
            Err(ValidationError::InvertedOutline { .. })
        ));
    }

    #[test]
    fn degenerate_polygon_rejected() {
        let mut b = clean_board();
        b.add_obstacle(Obstacle::new(
            Polygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 1.0),
                Point::new(2.0, 2.0),
            ]),
            crate::obstacle::ObstacleKind::Keepout,
        ));
        match validate_board(&b) {
            Err(ValidationError::DegeneratePolygon { entity, vertices }) => {
                assert_eq!(entity, Entity::Obstacle(1));
                assert_eq!(vertices, 3);
            }
            other => panic!("expected DegeneratePolygon, got {other:?}"),
        }
    }

    #[test]
    fn empty_and_dangling_groups_rejected() {
        let mut b = clean_board();
        b.add_group(MatchGroup::new("empty", vec![]));
        assert!(matches!(
            validate_board(&b),
            Err(ValidationError::EmptyGroup { .. })
        ));
        let mut b = clean_board();
        b.add_group(MatchGroup::new("dangling", vec![TraceId(99)]));
        assert!(matches!(
            validate_board(&b),
            Err(ValidationError::UnknownGroupMember { member: 99, .. })
        ));
    }

    #[test]
    fn bad_rules_and_targets_rejected() {
        let mut b = clean_board();
        let bad = meander_drc::DesignRules {
            gap: f64::NAN,
            ..*b.trace(TraceId(0)).unwrap().rules()
        };
        b.trace_mut(TraceId(0)).unwrap().set_rules(bad);
        assert!(matches!(
            validate_board(&b),
            Err(ValidationError::BadRules { trace: 0, .. })
        ));
        let mut b = clean_board();
        b.add_group(MatchGroup::with_target("neg", vec![TraceId(0)], -3.0));
        assert!(matches!(
            validate_board(&b),
            Err(ValidationError::BadTarget { .. })
        ));
    }

    #[test]
    fn pair_checks() {
        // Self-coupling and non-positive separation are unrepresentable
        // through `DiffPair::new` (constructor asserts), so the reachable
        // pair failure is a dangling trace reference.
        let mut b = clean_board();
        b.add_pair(DiffPair::new("P", TraceId(0), TraceId(44), 6.0));
        assert!(matches!(
            validate_board(&b),
            Err(ValidationError::UnknownPairTrace { member: 44, .. })
        ));
    }

    #[test]
    fn library_provenance() {
        let lib = ObstacleLibrary::new(vec![
            Obstacle::via(Point::new(5.0, 5.0), 1.0),
            Obstacle::new(
                Polygon::new(vec![
                    Point::new(0.0, 0.0),
                    Point::new(f64::INFINITY, 0.0),
                    Point::new(1.0, 1.0),
                ]),
                crate::obstacle::ObstacleKind::Via,
            ),
        ]);
        match validate_library(&lib) {
            Err(ValidationError::NonFiniteCoordinate { entity, .. }) => {
                assert_eq!(entity, Entity::LibraryObstacle(1));
            }
            other => panic!("expected NonFiniteCoordinate, got {other:?}"),
        }
    }

    #[test]
    fn errors_display() {
        let e = ValidationError::UnknownGroupMember {
            group: "g".into(),
            member: 7,
        };
        assert!(format!("{e}").contains("unknown trace 7"));
        let e = ValidationError::DegeneratePolygon {
            entity: Entity::Area {
                trace: 2,
                polygon: 1,
            },
            vertices: 4,
        };
        assert!(format!("{e}").contains("area polygon 1 of trace 2"));
    }
}
