//! Matching groups.

use crate::trace::TraceId;
use std::fmt;

/// How a group's target length is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TargetLength {
    /// Match everyone to the longest member's current length.
    ///
    /// The paper requires `l_target` to be "no less than the original length
    /// of the trace" for every member; the longest member is the smallest
    /// such target.
    LongestMember,
    /// Match everyone to an explicit length.
    Explicit(f64),
}

/// A set of traces whose lengths must match (paper Sec. II: "matching
/// groups").
///
/// Each trace is meandered independently toward the group target, which also
/// supports per-trace targets when delays other than propagation must be
/// compensated — model those by putting traces in singleton groups with
/// [`TargetLength::Explicit`].
#[derive(Debug, Clone)]
pub struct MatchGroup {
    name: String,
    members: Vec<TraceId>,
    target: TargetLength,
    /// Relative error tolerance (fraction of target) at which a member
    /// counts as matched.
    tolerance: f64,
}

impl MatchGroup {
    /// Default relative tolerance: 0.1 % of the target length.
    pub const DEFAULT_TOLERANCE: f64 = 1e-3;

    /// Creates a group matching to the longest member.
    pub fn new(name: impl Into<String>, members: Vec<TraceId>) -> Self {
        MatchGroup {
            name: name.into(),
            members,
            target: TargetLength::LongestMember,
            tolerance: Self::DEFAULT_TOLERANCE,
        }
    }

    /// Creates a group with an explicit target length.
    pub fn with_target(name: impl Into<String>, members: Vec<TraceId>, target: f64) -> Self {
        MatchGroup {
            name: name.into(),
            members,
            target: TargetLength::Explicit(target),
            tolerance: Self::DEFAULT_TOLERANCE,
        }
    }

    /// Group name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Member trace ids.
    #[inline]
    pub fn members(&self) -> &[TraceId] {
        &self.members
    }

    /// Target policy.
    #[inline]
    pub fn target(&self) -> TargetLength {
        self.target
    }

    /// Relative tolerance.
    #[inline]
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Sets the relative tolerance.
    pub fn set_tolerance(&mut self, tol: f64) {
        self.tolerance = tol.max(0.0);
    }

    /// Resolves the concrete target given the members' current lengths
    /// (`lengths[i]` corresponds to `members()[i]`).
    ///
    /// # Panics
    ///
    /// Panics if `lengths` is empty for [`TargetLength::LongestMember`].
    pub fn resolve_target(&self, lengths: &[f64]) -> f64 {
        match self.target {
            TargetLength::Explicit(t) => t,
            TargetLength::LongestMember => {
                assert!(!lengths.is_empty(), "group has no members");
                lengths.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            }
        }
    }

    /// Maximum matching error over the group per the paper's metric
    /// (Eq. 19): `max_i (l_target − l_i) / l_target`.
    pub fn max_error(target: f64, lengths: &[f64]) -> f64 {
        lengths
            .iter()
            .map(|&l| (target - l) / target)
            .fold(0.0, f64::max)
    }

    /// Average matching error per the paper's metric (Eq. 19):
    /// `Σ_i (l_target − l_i) / (n · l_target)`.
    pub fn avg_error(target: f64, lengths: &[f64]) -> f64 {
        if lengths.is_empty() {
            return 0.0;
        }
        lengths.iter().map(|&l| (target - l) / target).sum::<f64>() / lengths.len() as f64
    }
}

impl fmt::Display for MatchGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "group {} ({} traces)", self.name, self.members.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_resolution() {
        let g = MatchGroup::new("ddr", vec![TraceId(0), TraceId(1)]);
        assert_eq!(g.resolve_target(&[100.0, 140.0]), 140.0);
        let g = MatchGroup::with_target("ddr", vec![TraceId(0)], 200.0);
        assert_eq!(g.resolve_target(&[100.0]), 200.0);
    }

    #[test]
    fn error_metrics_match_paper_eq19() {
        let target = 200.0;
        let lengths = [150.0, 180.0, 200.0];
        // Max: (200-150)/200 = 0.25
        assert!((MatchGroup::max_error(target, &lengths) - 0.25).abs() < 1e-12);
        // Avg: (50+20+0)/(3*200) = 70/600
        assert!((MatchGroup::avg_error(target, &lengths) - 70.0 / 600.0).abs() < 1e-12);
    }

    #[test]
    fn tolerance_clamped_non_negative() {
        let mut g = MatchGroup::new("g", vec![TraceId(0)]);
        g.set_tolerance(-1.0);
        assert_eq!(g.tolerance(), 0.0);
        g.set_tolerance(0.01);
        assert_eq!(g.tolerance(), 0.01);
    }

    #[test]
    #[should_panic(expected = "no members")]
    fn empty_group_target_panics() {
        let g = MatchGroup::new("g", vec![]);
        let _ = g.resolve_target(&[]);
    }
}
