//! Synthetic benchmark generators.
//!
//! The paper evaluates on (a) a sample design shipped with Allegro PCB
//! Designer and (b) private/dummy designs — none of which are
//! redistributable. These generators synthesize layouts with the same
//! geometric regimes (see DESIGN.md "Substitutions"): dense bus corridors
//! with staggered initial lengths for Table I, a narrow via field with a
//! 135° mid-segment for Table II, an any-angle rotated bus for Fig. 14b,
//! and decoupled differential pairs for the MSDTW experiments (Figs. 9/16).

pub mod anyangle;
pub mod diffpair;
pub mod dup;
pub mod edits;
pub mod fleet;
pub mod stress;
pub mod table1;
pub mod table2;

pub use anyangle::any_angle_bus;
pub use diffpair::{decoupled_pair, DecoupledPairCase};
pub use dup::{dup_fleet_boards, dup_fleet_boards_small};
pub use edits::{edit_stream, nth_edit};
pub use fleet::{fleet_boards, fleet_boards_small, FleetCase};
pub use stress::{stress_board, stress_mixed_board, StressCase};
pub use table1::{table1_case, Table1Case};
pub use table2::{table2_case, Table2Case};

/// Trace-type tag used in Table I reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceType {
    /// Ordinary single-ended traces.
    SingleEnded,
    /// Differential pairs (MSDTW path).
    Differential,
}

impl std::fmt::Display for TraceType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceType::SingleEnded => f.write_str("single-ended"),
            TraceType::Differential => f.write_str("differential"),
        }
    }
}

/// Spacing regime tag used in Table I reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Spacing {
    /// Corridors barely wider than the meander needs.
    Dense,
    /// Generous corridors.
    Sparse,
}

impl std::fmt::Display for Spacing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Spacing::Dense => f.write_str("dense"),
            Spacing::Sparse => f.write_str("sparse"),
        }
    }
}
