//! Decoupled differential-pair generator (paper Figs. 9, 10, 12, 16).
//!
//! Real-world differential pairs are rarely perfectly coupled: corners carry
//! redundant nodes ("short segments", Fig. 10a), one sub-trace carries tiny
//! length-compensation patterns (Fig. 10b), and the pair pitch changes when
//! the pair crosses into another DRA (Fig. 12). This generator synthesizes
//! an L-shaped pair exhibiting all three, which is the input MSDTW exists to
//! handle.

use crate::area::RoutableArea;
use crate::board::Board;
use crate::diffpair::DiffPair;
use crate::group::MatchGroup;
use crate::trace::{Trace, TraceId};
use meander_drc::{DesignRuleArea, DesignRules};
use meander_geom::{Point, Polygon, Polyline, Rect};

/// A generated decoupled-pair case.
#[derive(Debug, Clone)]
pub struct DecoupledPairCase {
    /// The layout (one pair, one group).
    pub board: Board,
    /// Positive sub-trace.
    pub p: TraceId,
    /// Negative sub-trace.
    pub n: TraceId,
    /// Pair pitch in the first (horizontal) leg.
    pub sep0: f64,
    /// Pair pitch in the second (vertical) leg when `multi_dra` was set.
    pub sep1: Option<f64>,
}

/// Generates the decoupled L-shaped pair.
///
/// * `multi_dra = false`: constant pitch `sep0 = 6`; the vertical leg stays
///   in the board's default rule area.
/// * `multi_dra = true`: the vertical leg lies in a second DRA where the
///   pitch doubles (`sep1 = 12`), the paper's Fig. 12 scenario.
///
/// Decoupling features baked in:
/// * redundant corner nodes on `P` (three nodes within ~1 unit),
/// * a tiny compensation pattern on `N` in the vertical leg, tall enough
///   that its nodes exceed the `√2·r` match-cost filter,
/// * node-count mismatch between `P` and `N` throughout.
pub fn decoupled_pair(multi_dra: bool) -> DecoupledPairCase {
    let sep0 = 6.0;
    let sep1 = if multi_dra { 12.0 } else { sep0 };
    let s0 = sep0 / 2.0;
    let s1 = sep1 / 2.0;
    let width = 3.0;
    let dgap = 6.0;
    let rules = DesignRules {
        gap: dgap,
        obstacle: dgap,
        protect: width,
        miter: 1.0,
        width,
    };

    let xc = 120.0; // corner x of the median path
    let ytop = 120.0;

    // P: left/upper sub-trace. Corner carries redundant nodes.
    let p_points = vec![
        Point::new(0.0, s0),
        Point::new(xc - s0 - 1.0, s0),
        // Redundant corner cluster (machine-precision corner, Fig. 10a).
        Point::new(xc - s0 - 0.4, s0 + 0.1),
        Point::new(xc - s1, s0 + 1.0),
        // Vertical leg at pitch s1.
        Point::new(xc - s1, ytop),
    ];

    // N: right/lower sub-trace with a tiny pattern in the vertical leg.
    let tiny_h = sep1 * 0.55; // exceeds (√2−1)·sep ⇒ filtered by MSDTW
    let tiny_w = 2.0;
    let ty = ytop * 0.6;
    let n_points = vec![
        Point::new(0.0, -s0),
        Point::new(xc + s0, -s0),
        Point::new(xc + s1, -s0 + 1.0),
        Point::new(xc + s1, ty),
        // Tiny pattern (outward bump).
        Point::new(xc + s1 + tiny_h, ty),
        Point::new(xc + s1 + tiny_h, ty + tiny_w),
        Point::new(xc + s1, ty + tiny_w),
        Point::new(xc + s1, ytop),
    ];

    let mut board = Board::new(Rect::new(
        Point::new(-20.0, -60.0),
        Point::new(xc + 80.0, ytop + 40.0),
    ));
    let p = board.add_trace(Trace::with_rules("DP_P", Polyline::new(p_points), rules));
    let n = board.add_trace(Trace::with_rules("DP_N", Polyline::new(n_points), rules));
    let mut pair = DiffPair::new("DP", p, n, sep0);
    pair.set_breakout_nodes(1);
    board.add_pair(pair);

    if multi_dra {
        // Vertical leg DRA with the doubled pitch rule.
        let dra_rules = DesignRules {
            gap: sep1, // rule ladder key used by MSDTW's multi-scale pass
            ..rules
        };
        board.add_rule_area(DesignRuleArea::new(
            1,
            Polygon::rectangle(
                Point::new(xc - 40.0, 20.0),
                Point::new(xc + 60.0, ytop + 20.0),
            ),
            dra_rules,
        ));
    }

    // Shared corridor area around the whole pair.
    let area = RoutableArea::from_polygons(vec![
        Polygon::rectangle(Point::new(-10.0, -40.0), Point::new(xc + 50.0, 40.0)),
        Polygon::rectangle(
            Point::new(xc - 50.0, -40.0),
            Point::new(xc + 50.0, ytop + 20.0),
        ),
    ]);
    board.set_area(p, area.clone());
    board.set_area(n, area);

    let plen = board.trace(p).expect("trace added above").length();
    let nlen = board.trace(n).expect("trace added above").length();
    board.add_group(MatchGroup::with_target(
        "pair",
        vec![p, n],
        plen.max(nlen) * 1.15,
    ));

    DecoupledPairCase {
        board,
        p,
        n,
        sep0,
        sep1: multi_dra.then_some(sep1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_counts_differ() {
        let c = decoupled_pair(false);
        let np = c.board.trace(c.p).unwrap().centerline().point_count();
        let nn = c.board.trace(c.n).unwrap().centerline().point_count();
        assert_ne!(np, nn, "decoupling requires node-count mismatch");
    }

    #[test]
    fn tiny_pattern_exceeds_filter_threshold() {
        let c = decoupled_pair(false);
        // Bump height must exceed (√2−1)·sep so its nodes cost > √2·r.
        let bump = c.sep0 * 0.55;
        assert!(c.sep0 + bump > std::f64::consts::SQRT_2 * c.sep0);
    }

    #[test]
    fn multi_dra_registers_rule_area() {
        let c = decoupled_pair(true);
        assert_eq!(c.board.rule_areas().len(), 1);
        assert_eq!(c.sep1, Some(12.0));
        let c = decoupled_pair(false);
        assert!(c.board.rule_areas().is_empty());
        assert_eq!(c.sep1, None);
    }

    #[test]
    fn pair_is_registered_and_coupled() {
        let c = decoupled_pair(false);
        let pair = c.board.pair_of(c.p).expect("pair registered");
        assert_eq!(pair.partner(c.p), Some(c.n));
    }

    #[test]
    fn board_has_no_hard_violations() {
        // The pair touches sub-gap distances by design (they are coupled);
        // the checker must not flag pair-internal gaps, and the geometry
        // must not self-intersect.
        let c = decoupled_pair(false);
        let v = c.board.check();
        let hard: Vec<_> = v
            .iter()
            .filter(|v| !matches!(v, meander_drc::Violation::ShortSegment { .. }))
            .collect();
        assert!(hard.is_empty(), "{hard:?}");
    }

    #[test]
    fn group_target_above_both_lengths() {
        let c = decoupled_pair(false);
        let g = &c.board.groups()[0];
        let target = g.resolve_target(&c.board.group_lengths(g));
        for (_, t) in c.board.traces() {
            assert!(target > t.length());
        }
    }
}
