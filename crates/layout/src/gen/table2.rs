//! Table II ablation design: a trace through a dense via field.
//!
//! The paper's DP ablation runs on "a dummy design with narrow space between
//! dense vias": one trace with a 135° middle segment, `w_trace` fixed, and
//! `d_gap` swept from 2.5 to 5.0 trace-widths. Both algorithms extend the
//! trace as far as possible (`l_target = ∞`); the metric is the extension
//! upper bound `(l_ext − l_orig)/l_orig`.

use crate::area::RoutableArea;
use crate::board::Board;
use crate::group::MatchGroup;
use crate::obstacle::Obstacle;
use crate::trace::{Trace, TraceId};
use meander_drc::DesignRules;
use meander_geom::{Point, Polygon, Polyline, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated Table II case.
#[derive(Debug, Clone)]
pub struct Table2Case {
    /// Case number (1-based; 1 ⇒ dgap = 2.5·w, 6 ⇒ dgap = 5.0·w).
    pub case_no: usize,
    /// The layout: one trace, one group, via obstacles.
    pub board: Board,
    /// The trace under extension.
    pub trace: TraceId,
    /// `dgap / w_trace` ratio for reporting.
    pub dgap_ratio: f64,
    /// `l_original / d_gap` ratio for reporting.
    pub loriginal_ratio: f64,
    /// `dgap` in force.
    pub dgap: f64,
}

/// `dgap/wtrace` ratios of the six paper cases.
pub const DGAP_RATIOS: [f64; 6] = [2.5, 3.0, 3.5, 4.0, 4.5, 5.0];

/// Generates Table II case `case_no` (1–6).
///
/// Geometry (units of `w_trace = 1`):
/// * routable region ≈ 130 × 90 centred on the trace,
/// * trace: left horizontal run, 135° diagonal middle segment, right
///   horizontal run, `l_original ≈ 65`,
/// * via field: a perturbed grid of octagonal vias leaving narrow slots;
///   spacing tuned so small-`dgap` runs thread between vias while large
///   `dgap` makes fixed tracks collide (the regime where DP wins).
///
/// # Panics
///
/// Panics if `case_no` is outside `1..=6`.
pub fn table2_case(case_no: usize) -> Table2Case {
    assert!(
        (1..=6).contains(&case_no),
        "Table II has cases 1–6, got {case_no}"
    );
    let ratio = DGAP_RATIOS[case_no - 1];
    let w = 1.0;
    let dgap = ratio * w;

    let rules = DesignRules {
        gap: dgap,
        obstacle: dgap,
        protect: w,
        miter: dgap / 4.0,
        width: w,
    };

    // Trace: 25 left, 135° diagonal (10·√2 ≈ 14.14), 25.86 right ⇒ ≈ 65.
    let y0 = 0.0;
    let rise = 10.0;
    let pl = Polyline::new(vec![
        Point::new(0.0, y0),
        Point::new(25.0, y0),
        Point::new(35.0, y0 + rise),
        Point::new(61.0, y0 + rise),
    ]);
    let loriginal = pl.length();

    // "Narrow space": the routable region is tight enough that the DP's
    // extension upper bound saturates it (paper-scale percentages) rather
    // than growing unboundedly.
    let region = Polygon::rectangle(Point::new(-15.0, y0 - 20.0), Point::new(76.0, y0 + 30.0));
    let mut board = Board::new(Rect::new(
        Point::new(-20.0, y0 - 25.0),
        Point::new(81.0, y0 + 35.0),
    ));

    let trace = board.add_trace(Trace::with_rules("U1", pl, rules));
    board.set_area(trace, RoutableArea::from_polygon(region.clone()));

    // Dense via field across the region, with a clear lane along the trace
    // so the original routing is legal. Slot pitch between vias is sized in
    // absolute units, so growing dgap strangles the slots.
    let mut rng = StdRng::seed_from_u64(0x7AB1E2);
    let rvia = 1.2;
    // Slot arithmetic at w = 1: a fixed-track slot needs 2·(dgap + 1) of
    // clear column width; the inter-column channel offers
    // pitch − (2.4 + dgap) after clearance inflation. With pitch 13 the
    // channels host fixed-track serpentines up to dgap ≈ 3–3.5 and pinch
    // off beyond — the crossover regime of the paper's Table II, where
    // only the DP's adaptive feet/widths (and obstacle enclosure) keep
    // extending.
    let pitch = 13.0;
    let clear = rules.centerline_obstacle() + rvia;
    // Vias sit on a regular grid (columns aligned, tiny jitter): between
    // columns run full-height channels whose clear width shrinks as dgap
    // (hence clearance inflation) grows — the paper's regime where fixed
    // tracks thread the channels at loose DRC but pinch off at tight DRC.
    let bbox = region.bbox();
    let trace_probe = board
        .trace(trace)
        .expect("trace added above")
        .centerline()
        .clone();
    let mut gy = bbox.min.y + pitch / 2.0;
    while gy < bbox.max.y {
        let mut gx = bbox.min.x + pitch / 2.0;
        while gx < bbox.max.x {
            let c = Point::new(gx + rng.gen_range(-0.1..0.1), gy + rng.gen_range(-0.1..0.1));
            // Keep the original routing legal.
            if trace_probe.distance_to_point(c) > clear && region.contains(c) {
                board.add_obstacle(Obstacle::via(c, rvia));
            }
            gx += pitch;
        }
        gy += pitch;
    }

    // Unbounded target modeled as a huge explicit target.
    board.add_group(MatchGroup::with_target(
        "table2",
        vec![trace],
        loriginal * 50.0,
    ));

    Table2Case {
        case_no,
        board,
        trace,
        dgap_ratio: ratio,
        loriginal_ratio: loriginal / dgap,
        dgap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cases_generate_clean() {
        for case_no in 1..=6 {
            let c = table2_case(case_no);
            let v = c.board.check();
            assert!(v.is_empty(), "case {case_no} dirty: {v:?}");
        }
    }

    #[test]
    fn ratios_match_paper_regime() {
        // Paper: loriginal/dgap from ~24.9 (case 1) down to ~13.6 (case 6).
        let c1 = table2_case(1);
        assert!((c1.dgap_ratio - 2.5).abs() < 1e-12);
        assert!(c1.loriginal_ratio > 20.0 && c1.loriginal_ratio < 30.0);
        let c6 = table2_case(6);
        assert!((c6.dgap_ratio - 5.0).abs() < 1e-12);
        assert!(c6.loriginal_ratio > 10.0 && c6.loriginal_ratio < 16.0);
    }

    #[test]
    fn trace_has_135_degree_segment() {
        let c = table2_case(1);
        let t = c.board.trace(c.trace).unwrap();
        let diag = t.centerline().segment(1);
        let dir = diag.direction().unwrap();
        // 45° rise = 135° corner with the horizontal runs.
        assert!((dir.x - dir.y).abs() < 1e-9);
    }

    #[test]
    fn via_field_is_dense() {
        let c = table2_case(3);
        assert!(
            c.board.obstacles().len() > 15,
            "only {} vias",
            c.board.obstacles().len()
        );
    }

    #[test]
    fn deterministic() {
        let a = table2_case(2);
        let b = table2_case(2);
        assert_eq!(a.board.obstacles().len(), b.board.obstacles().len());
    }

    #[test]
    #[should_panic(expected = "cases 1–6")]
    fn case_out_of_range_panics() {
        let _ = table2_case(7);
    }
}
