//! Table I benchmark cases.
//!
//! Five cases mirroring the paper's Table I statistics: four dense
//! single-ended groups of eight and one sparse differential group of four
//! pairs, with the paper's `l_target`/`d_gap` values and initial-error
//! profiles (the "Initial" columns of the table). The layouts stand in for
//! the Allegro sample design (see DESIGN.md "Substitutions").

use crate::area::RoutableArea;
use crate::board::Board;
use crate::diffpair::DiffPair;
use crate::gen::{Spacing, TraceType};
use crate::group::MatchGroup;
use crate::obstacle::Obstacle;
use crate::trace::{Trace, TraceId};
use meander_drc::DesignRules;
use meander_geom::{Point, Polyline, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated Table I case: board plus reporting metadata.
#[derive(Debug, Clone)]
pub struct Table1Case {
    /// Case number (1-based, as in the paper).
    pub case_no: usize,
    /// The synthesized layout. Group 0 is the matching group under test.
    pub board: Board,
    /// Group target length.
    pub ltarget: f64,
    /// `dgap` in force.
    pub dgap: f64,
    /// Member count reported in the table (pairs count once).
    pub group_size: usize,
    /// Trace type tag.
    pub trace_type: TraceType,
    /// Spacing regime tag.
    pub spacing: Spacing,
}

struct Spec {
    ltarget: f64,
    dgap: f64,
    group_size: usize,
    trace_type: TraceType,
    spacing: Spacing,
    /// Paper's "Initial" max error (fraction).
    init_max_err: f64,
    /// Paper's "Initial" avg error (fraction).
    init_avg_err: f64,
}

fn spec(case_no: usize) -> Spec {
    match case_no {
        1 => Spec {
            ltarget: 205.88,
            dgap: 8.0,
            group_size: 8,
            trace_type: TraceType::SingleEnded,
            spacing: Spacing::Dense,
            init_max_err: 0.3738,
            init_avg_err: 0.1902,
        },
        2 => Spec {
            ltarget: 199.02,
            dgap: 8.0,
            group_size: 8,
            trace_type: TraceType::SingleEnded,
            spacing: Spacing::Dense,
            init_max_err: 0.3599,
            init_avg_err: 0.1941,
        },
        3 => Spec {
            ltarget: 187.25,
            dgap: 8.0,
            group_size: 8,
            trace_type: TraceType::SingleEnded,
            spacing: Spacing::Dense,
            init_max_err: 0.3591,
            init_avg_err: 0.2006,
        },
        4 => Spec {
            ltarget: 186.27,
            dgap: 8.0,
            group_size: 8,
            trace_type: TraceType::SingleEnded,
            spacing: Spacing::Dense,
            init_max_err: 0.3099,
            init_avg_err: 0.1722,
        },
        5 => Spec {
            ltarget: 217.32,
            dgap: 4.0,
            group_size: 4,
            trace_type: TraceType::Differential,
            spacing: Spacing::Sparse,
            init_max_err: 0.2655,
            init_avg_err: 0.1518,
        },
        other => panic!("Table I has cases 1–5, got {other}"),
    }
}

/// Per-member initial errors: linear ramp whose max and mean match the
/// paper's Initial columns.
fn initial_errors(s: &Spec) -> Vec<f64> {
    let n = s.group_size;
    let min_err = (2.0 * s.init_avg_err - s.init_max_err).max(0.0);
    (0..n)
        .map(|i| {
            if n == 1 {
                s.init_max_err
            } else {
                s.init_max_err + (min_err - s.init_max_err) * i as f64 / (n - 1) as f64
            }
        })
        .collect()
}

/// Generates Table I case `case_no` (1–5).
///
/// Dense single-ended cases: 8 parallel traces in tight corridors with via
/// obstacles intruding into the meander space. Sparse differential case: 4
/// pairs in wide corridors, one pair decoupled by a tiny pattern and one by
/// redundant corner nodes, so the MSDTW path is exercised.
///
/// # Panics
///
/// Panics if `case_no` is outside `1..=5`.
pub fn table1_case(case_no: usize) -> Table1Case {
    let s = spec(case_no);
    let mut rng = StdRng::seed_from_u64(0xDAC2024 + case_no as u64);
    let errs = initial_errors(&s);

    let width = s.dgap / 2.0;
    // dprotect at trace-width scale: the paper's designs legally contain
    // "tiny patterns" far below dgap, so dprotect must be ≪ dgap for the
    // reported sub-percent matching errors to be reachable.
    let rules = DesignRules {
        gap: s.dgap,
        obstacle: s.dgap,
        protect: width,
        miter: s.dgap / 4.0,
        width,
    };
    // Corridor pitch: dense barely fits the needed meander; sparse is roomy.
    let pitch = match s.spacing {
        Spacing::Dense => 5.0 * s.dgap,
        Spacing::Sparse => 10.0 * s.dgap,
    };

    match s.trace_type {
        TraceType::SingleEnded => single_ended_case(case_no, s, errs, rules, pitch, &mut rng),
        TraceType::Differential => differential_case(case_no, s, errs, rules, pitch, &mut rng),
    }
}

fn single_ended_case(
    case_no: usize,
    s: Spec,
    errs: Vec<f64>,
    rules: DesignRules,
    pitch: f64,
    rng: &mut StdRng,
) -> Table1Case {
    let n = s.group_size;
    let height = pitch * n as f64;
    let mut board = Board::new(Rect::new(
        Point::new(-10.0, -pitch),
        Point::new(s.ltarget + 10.0, height),
    ));

    let mut members: Vec<TraceId> = Vec::with_capacity(n);
    for (i, &err) in errs.iter().enumerate() {
        let y = i as f64 * pitch;
        let start_x = s.ltarget * err;
        let pl = Polyline::new(vec![Point::new(start_x, y), Point::new(s.ltarget, y)]);
        let id = board.add_trace(Trace::with_rules(format!("DQ{i}"), pl, rules));
        board.set_area(
            id,
            RoutableArea::from_polygon(meander_geom::Polygon::rectangle(
                Point::new(start_x - s.dgap, y - pitch / 2.0),
                Point::new(s.ltarget + s.dgap, y + pitch / 2.0),
            )),
        );
        members.push(id);
    }

    // Via obstacles poking into each corridor from its edges: legal w.r.t.
    // the original routing but stealing meander space.
    let rvia = s.dgap / 2.0;
    let clear = rules.centerline_obstacle(); // min distance border→centerline
    for (i, &err) in errs.iter().enumerate() {
        let y = i as f64 * pitch;
        let start_x = s.ltarget * err;
        let span = s.ltarget - start_x;
        let vias = 3 + (i % 2);
        for k in 0..vias {
            let x = start_x
                + span * (0.2 + 0.6 * k as f64 / vias as f64)
                + rng.gen_range(-0.03..0.03) * span;
            let side = if (k + i) % 2 == 0 { 1.0 } else { -1.0 };
            // Center offset: outside the clearance of the straight trace but
            // inside the corridor, so it intrudes on pattern space.
            let dy = clear + rvia + 0.5 + rng.gen_range(0.0..s.dgap / 2.0);
            board.add_obstacle(Obstacle::via(Point::new(x, y + side * dy), rvia));
        }
    }

    let group = MatchGroup::with_target("table1", members, s.ltarget);
    board.add_group(group);

    Table1Case {
        case_no,
        board,
        ltarget: s.ltarget,
        dgap: s.dgap,
        group_size: s.group_size,
        trace_type: s.trace_type,
        spacing: s.spacing,
    }
}

fn differential_case(
    case_no: usize,
    s: Spec,
    errs: Vec<f64>,
    rules: DesignRules,
    pitch: f64,
    rng: &mut StdRng,
) -> Table1Case {
    let n_pairs = s.group_size;
    let sep = rules.width + s.dgap; // centerline pitch inside a pair
    let mut board = Board::new(Rect::new(
        Point::new(-10.0, -pitch),
        Point::new(s.ltarget + 10.0, pitch * n_pairs as f64),
    ));

    let mut members: Vec<TraceId> = Vec::new();
    for (i, &err) in errs.iter().enumerate() {
        let y = i as f64 * pitch;
        let start_x = s.ltarget * err;
        let (yp, yn) = (y + sep / 2.0, y - sep / 2.0);

        // P sub-trace; pair 1 gets redundant collinear corner nodes (the
        // short-segment decoupling of paper Fig. 10a).
        let p_points = if i == 1 {
            let xm = start_x + (s.ltarget - start_x) / 2.0;
            vec![
                Point::new(start_x, yp),
                Point::new(xm - 0.4, yp),
                Point::new(xm, yp),
                Point::new(xm + 0.3, yp),
                Point::new(s.ltarget, yp),
            ]
        } else {
            vec![Point::new(start_x, yp), Point::new(s.ltarget, yp)]
        };
        // N sub-trace; pair 0 gets a tiny length-compensation pattern (the
        // decoupling of paper Fig. 10b) tall enough to exceed the √2·r
        // filter threshold.
        let n_points = if i == 0 {
            let xm = start_x + (s.ltarget - start_x) * 0.6;
            // Tall enough to pass the √2·r filter (h > 0.414·sep) yet legal
            // w.r.t. dprotect.
            let h = (sep * 0.55).max(rules.protect);
            let w = s.dgap.max(rules.protect);
            vec![
                Point::new(start_x, yn),
                Point::new(xm, yn),
                Point::new(xm, yn - h),
                Point::new(xm + w, yn - h),
                Point::new(xm + w, yn),
                Point::new(s.ltarget, yn),
            ]
        } else {
            vec![Point::new(start_x, yn), Point::new(s.ltarget, yn)]
        };

        let pid = board.add_trace(Trace::with_rules(
            format!("PAIR{i}_P"),
            Polyline::new(p_points),
            rules,
        ));
        let nid = board.add_trace(Trace::with_rules(
            format!("PAIR{i}_N"),
            Polyline::new(n_points),
            rules,
        ));
        board.add_pair(DiffPair::new(format!("PAIR{i}"), pid, nid, sep));

        let area = RoutableArea::from_polygon(meander_geom::Polygon::rectangle(
            Point::new(start_x - s.dgap, y - pitch / 2.0),
            Point::new(s.ltarget + s.dgap, y + pitch / 2.0),
        ));
        board.set_area(pid, area.clone());
        board.set_area(nid, area);
        members.push(pid);
        members.push(nid);
    }

    // Sparse scattering of vias well away from the pairs.
    let rvia = s.dgap / 2.0;
    for i in 0..n_pairs {
        let y = i as f64 * pitch;
        let x = s.ltarget * (0.3 + 0.4 * rng.gen_range(0.0..1.0f64));
        let dy = pitch / 2.0 - rvia - 1.0;
        board.add_obstacle(Obstacle::via(Point::new(x, y + dy), rvia));
    }

    let group = MatchGroup::with_target("table1", members, s.ltarget);
    board.add_group(group);

    Table1Case {
        case_no,
        board,
        ltarget: s.ltarget,
        dgap: s.dgap,
        group_size: s.group_size,
        trace_type: s.trace_type,
        spacing: s.spacing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_errors_match_paper_profile() {
        for case_no in 1..=5 {
            let s = spec(case_no);
            let errs = initial_errors(&s);
            let max = errs.iter().copied().fold(0.0, f64::max);
            let avg = errs.iter().sum::<f64>() / errs.len() as f64;
            assert!((max - s.init_max_err).abs() < 1e-9, "case {case_no} max");
            assert!((avg - s.init_avg_err).abs() < 1e-3, "case {case_no} avg");
        }
    }

    #[test]
    fn generated_boards_are_drc_clean() {
        for case_no in 1..=5 {
            let case = table1_case(case_no);
            let violations = case.board.check();
            assert!(
                violations.is_empty(),
                "case {case_no} starts dirty: {:?}",
                violations
            );
        }
    }

    #[test]
    fn case_metadata_matches_table() {
        let c1 = table1_case(1);
        assert_eq!(c1.group_size, 8);
        assert_eq!(c1.dgap, 8.0);
        assert_eq!(c1.trace_type, TraceType::SingleEnded);
        assert_eq!(c1.board.groups().len(), 1);
        assert_eq!(c1.board.trace_count(), 8);

        let c5 = table1_case(5);
        assert_eq!(c5.group_size, 4);
        assert_eq!(c5.dgap, 4.0);
        assert_eq!(c5.trace_type, TraceType::Differential);
        assert_eq!(c5.board.pairs().len(), 4);
        assert_eq!(c5.board.trace_count(), 8);
    }

    #[test]
    fn initial_group_error_matches_initial_columns() {
        for case_no in [1usize, 4] {
            let case = table1_case(case_no);
            let s = spec(case_no);
            let group = &case.board.groups()[0];
            // For the single-ended cases every member is one trace.
            let lengths = case.board.group_lengths(group);
            let max_err = MatchGroup::max_error(case.ltarget, &lengths);
            assert!(
                (max_err - s.init_max_err).abs() < 0.01,
                "case {case_no}: {max_err} vs {}",
                s.init_max_err
            );
        }
    }

    #[test]
    fn traces_have_routable_areas_containing_them() {
        let case = table1_case(2);
        for (id, t) in case.board.traces() {
            let area = case.board.area(id).expect("area assigned");
            for &p in t.centerline().points() {
                assert!(area.contains(p), "trace {id} point {p} outside area");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = table1_case(3);
        let b = table1_case(3);
        let la: Vec<f64> = a.board.traces().map(|(_, t)| t.length()).collect();
        let lb: Vec<f64> = b.board.traces().map(|(_, t)| t.length()).collect();
        assert_eq!(la, lb);
        assert_eq!(a.board.obstacles().len(), b.board.obstacles().len());
    }

    #[test]
    #[should_panic(expected = "cases 1–5")]
    fn case_zero_panics() {
        let _ = table1_case(0);
    }
}
