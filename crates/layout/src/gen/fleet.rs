//! Fleet workload generator: many boards sharing one obstacle library.
//!
//! The serving regime the ROADMAP's "multi-board batching" item targets is
//! a *fleet*: boards that reference a common obstacle library (a panel's
//! via fields and plane keepouts) while differing in everything per-design
//! — how many traces they route, how much board-local via clutter they
//! add, and what lengths their groups must reach. This generator
//! synthesizes exactly that: a fixed corridor template whose library
//! obstacles are safe for *every* board by construction, plus per-board
//! trace sets, local via densities, and targets drawn from a per-board
//! seed.
//!
//! ## Why library obstacles are safe for every board
//!
//! Each corridor's traces are staircases that differ only in a jittered
//! start offset — every realized centerline is a *subpath* of the
//! corridor's full template staircase (the one starting at `x = 0`).
//! Library vias are rejection-sampled against the template, so their
//! clearance to any realized trace is at least their clearance to the
//! template: every generated board starts DRC-clean, whatever its seed.

use crate::area::RoutableArea;
use crate::board::Board;
use crate::group::MatchGroup;
use crate::library::{LibraryBoard, ObstacleLibrary};
use crate::obstacle::Obstacle;
use crate::trace::Trace;
use meander_drc::DesignRules;
use meander_geom::{Point, Polygon, Polyline, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A generated fleet: one shared library, many boards referencing it.
#[derive(Debug, Clone)]
pub struct FleetCase {
    /// The shared obstacle library (vias in every corridor, plane slabs
    /// between corridors, flanking columns — the mixed-size regime).
    pub library: Arc<ObstacleLibrary>,
    /// The boards, each holding only its local obstacles.
    pub boards: Vec<LibraryBoard>,
}

/// Geometry shared with the stress generators (`d_gap`, stair run, riser).
/// `pub(super)` so the edit-stream generator perturbs on the same scale.
pub(super) const DGAP: f64 = 8.0;
const RUN: f64 = 56.0;
const RISE: f64 = 10.0;

/// Dimensions of one generated fleet, bundled so the standard, the
/// test-sized, and the duplicate-heavy entry points share every
/// derivation.
pub(super) struct FleetDims {
    pub(super) corridors: usize,
    pub(super) n_steps: usize,
    pub(super) lib_vias_per_corridor: usize,
    pub(super) max_local_vias: usize,
}

/// [`build_fleet`] under caller-chosen dims — the duplicate-heavy
/// generator draws its distinct-board pool through this.
pub(super) fn fleet_boards_with_dims(
    n_boards: usize,
    library_seed: u64,
    per_board_seed: u64,
    dims: FleetDims,
) -> FleetCase {
    build_fleet(n_boards, library_seed, per_board_seed, dims)
}

pub(super) fn fleet_rules() -> DesignRules {
    let width = DGAP / 2.0;
    DesignRules {
        gap: DGAP,
        obstacle: DGAP,
        protect: width,
        miter: DGAP / 4.0,
        width,
    }
}

/// The corridor template staircase starting at `x = 0` — every realized
/// trace of corridor `i` is a subpath of this polyline.
fn template_staircase(y0: f64, n_steps: usize) -> Polyline {
    let mut pts = vec![Point::new(0.0, y0)];
    for k in 0..n_steps {
        let x1 = RUN * (k + 1) as f64;
        let yk = y0 + RISE * k as f64;
        pts.push(Point::new(x1, yk));
        if k + 1 < n_steps {
            pts.push(Point::new(x1, yk + RISE));
        }
    }
    Polyline::new(pts)
}

/// Rejection-samples `count` vias near `centerline` (offset from the stair
/// runs like the stress generator), all at clearance `≥ clear + 0.25`.
fn sample_vias(
    rng: &mut StdRng,
    centerline: &Polyline,
    y0: f64,
    n_steps: usize,
    count: usize,
    clear: f64,
) -> Vec<Obstacle> {
    let span = RUN * n_steps as f64;
    let rvia = DGAP / 2.0;
    let mut out = Vec::with_capacity(count);
    let mut attempts = 0;
    while out.len() < count && attempts < count * 40 {
        attempts += 1;
        let x = rng.gen_range(0.05..0.95) * span;
        let k = ((x / RUN).floor() as usize).min(n_steps - 1);
        let y_run = y0 + RISE * k as f64;
        let side = if rng.gen_range(0.0..1.0) < 0.5 {
            1.0
        } else {
            -1.0
        };
        let dy = clear + rvia + 0.5 + rng.gen_range(0.0..DGAP);
        let via = Obstacle::via(Point::new(x, y_run + side * dy), rvia);
        let ok = centerline
            .segments()
            .all(|s| via.polygon().distance_to_segment(&s) >= clear + 0.25);
        if ok {
            out.push(via);
        }
    }
    out
}

/// Mixes a board index into the per-board seed stream (splitmix-style), so
/// board `b` of a fleet is the same whatever `n_boards` is. The edit-stream
/// generator reuses the same mixer for per-edit seeds (prefix stability).
pub(super) fn board_seed(per_board_seed: u64, b: usize) -> u64 {
    let mut z = per_board_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(b as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn build_fleet(
    n_boards: usize,
    library_seed: u64,
    per_board_seed: u64,
    dims: FleetDims,
) -> FleetCase {
    assert!(n_boards >= 1 && dims.corridors >= 1 && dims.n_steps >= 1);
    let rules = fleet_rules();
    let clear = rules.centerline_obstacle();
    let span = RUN * dims.n_steps as f64;
    let pitch = 7.0 * DGAP + RISE * dims.n_steps as f64;
    let height = pitch * dims.corridors as f64;

    // ---- Shared library: per-corridor template vias + plane geometry. ----
    let mut lib_rng = StdRng::seed_from_u64(library_seed);
    let mut lib = Vec::new();
    for i in 0..dims.corridors {
        let y0 = i as f64 * pitch;
        let template = template_staircase(y0, dims.n_steps);
        lib.extend(sample_vias(
            &mut lib_rng,
            &template,
            y0,
            dims.n_steps,
            dims.lib_vias_per_corridor,
            clear,
        ));
    }
    // Full-width plane slabs between corridors and below the first one,
    // plus flanking columns — outside every routable area, but smearing
    // across the world index (the regime where sharing the prebuilt index
    // pays the most).
    for i in 0..dims.corridors {
        let corridor_top = i as f64 * pitch + RISE * dims.n_steps as f64 + 2.0 * DGAP;
        lib.push(Obstacle::keepout(
            Point::new(-DGAP, corridor_top + DGAP),
            Point::new(span + DGAP, corridor_top + 2.0 * DGAP),
        ));
    }
    lib.push(Obstacle::keepout(
        Point::new(-DGAP, -3.0 * DGAP),
        Point::new(span + DGAP, -2.0 * DGAP),
    ));
    for x0 in [-2.5 * DGAP, span + 1.75 * DGAP] {
        lib.push(Obstacle::keepout(
            Point::new(x0, -pitch),
            Point::new(x0 + 0.75 * DGAP, height),
        ));
    }
    let library = Arc::new(ObstacleLibrary::new(lib));

    // ---- Boards: per-board trace counts, local vias, targets. ----
    let boards = (0..n_boards)
        .map(|b| {
            let mut rng = StdRng::seed_from_u64(board_seed(per_board_seed, b));
            let n_traces = rng
                .gen_range(2..dims.corridors.max(2) + 1)
                .min(dims.corridors);
            let mut board = Board::new(Rect::new(
                Point::new(-20.0, -pitch),
                Point::new(span + 20.0, height),
            ));
            let mut members = Vec::with_capacity(n_traces);
            for i in 0..n_traces {
                let y0 = i as f64 * pitch;
                // Jittered start: a strict subpath of the template, so the
                // library's template-sampled vias stay clear.
                let start_x = rng.gen_range(0.0..RUN * 0.3);
                let template = template_staircase(y0, dims.n_steps);
                let mut pts = vec![Point::new(start_x, y0)];
                pts.extend(template.points().iter().skip(1).copied());
                let id = board.add_trace(Trace::with_rules(
                    format!("F{b}T{i}"),
                    Polyline::new(pts),
                    rules,
                ));
                board.set_area(
                    id,
                    RoutableArea::from_polygon(Polygon::rectangle(
                        Point::new(-DGAP, y0 - 2.0 * DGAP),
                        Point::new(span + DGAP, y0 + RISE * dims.n_steps as f64 + 2.0 * DGAP),
                    )),
                );
                members.push(id);
            }

            // Board-local via clutter: density varies per board (including
            // none), sampled against this board's realized centerlines.
            let local_density = rng.gen_range(0..dims.max_local_vias + 1);
            for (i, &id) in members.iter().enumerate() {
                let y0 = i as f64 * pitch;
                let centerline = board.trace(id).expect("member").centerline().clone();
                let vias = sample_vias(
                    &mut rng,
                    &centerline,
                    y0,
                    dims.n_steps,
                    local_density,
                    clear,
                );
                for v in vias {
                    board.add_obstacle(v);
                }
            }

            // Targets: every board demands a different extension. Boards
            // with ≥ 4 traces sometimes split into two groups with their
            // own targets — (board, group) is the fleet's job unit, so
            // multi-group boards exercise the flattening.
            let lengths: Vec<f64> = members
                .iter()
                .map(|&id| board.trace(id).expect("member").length())
                .collect();
            let lmax = lengths.iter().fold(0.0f64, |a, &b| a.max(b));
            let split = members.len() >= 4 && rng.gen_range(0.0..1.0) < 0.5;
            if split {
                let half = members.len() / 2;
                let t1 = lmax * rng.gen_range(1.15..1.45);
                let t2 = lmax * rng.gen_range(1.15..1.45);
                board.add_group(MatchGroup::with_target(
                    format!("fleet{b}a"),
                    members[..half].to_vec(),
                    t1,
                ));
                board.add_group(MatchGroup::with_target(
                    format!("fleet{b}b"),
                    members[half..].to_vec(),
                    t2,
                ));
            } else {
                let t = lmax * rng.gen_range(1.15..1.5);
                board.add_group(MatchGroup::with_target(
                    format!("fleet{b}"),
                    members.clone(),
                    t,
                ));
            }
            LibraryBoard::new(Arc::clone(&library), board)
        })
        .collect();

    FleetCase { library, boards }
}

/// Generates a fleet of `n_boards` boards sharing one obstacle library:
/// standard serving-size corridors (6 corridors × 5 stair steps, a dense
/// 24-via library field per corridor) with per-board trace counts, local
/// via density, and group targets drawn from `per_board_seed`. The library
/// is a pure function of `library_seed`; board `b` is a pure function of
/// `(per_board_seed, b)` — growing the fleet never changes earlier boards.
pub fn fleet_boards(n_boards: usize, library_seed: u64, per_board_seed: u64) -> FleetCase {
    build_fleet(
        n_boards,
        library_seed,
        per_board_seed,
        FleetDims {
            corridors: 6,
            n_steps: 5,
            lib_vias_per_corridor: 24,
            max_local_vias: 8,
        },
    )
}

/// [`fleet_boards`] at test size: 3 corridors × `n_steps` steps and a light
/// via load, so property suites can route hundreds of fleet boards in
/// debug builds.
pub fn fleet_boards_small(n_boards: usize, library_seed: u64, per_board_seed: u64) -> FleetCase {
    build_fleet(
        n_boards,
        library_seed,
        per_board_seed,
        FleetDims {
            corridors: 3,
            n_steps: 2,
            lib_vias_per_corridor: 3,
            max_local_vias: 2,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_prefix_stable() {
        let a = fleet_boards_small(4, 7, 11);
        let b = fleet_boards_small(4, 7, 11);
        assert_eq!(a.library.len(), b.library.len());
        assert_eq!(a.boards.len(), 4);
        for (x, y) in a.boards.iter().zip(&b.boards) {
            assert_eq!(x.board().trace_count(), y.board().trace_count());
            for (id, t) in x.board().traces() {
                assert_eq!(t.centerline(), y.board().trace(id).unwrap().centerline());
            }
        }
        // Growing the fleet preserves earlier boards.
        let bigger = fleet_boards_small(6, 7, 11);
        for (x, y) in a.boards.iter().zip(&bigger.boards) {
            assert_eq!(x.board().trace_count(), y.board().trace_count());
            assert_eq!(x.board().obstacles().len(), y.board().obstacles().len());
        }
    }

    #[test]
    fn boards_share_one_library_and_vary() {
        let fleet = fleet_boards_small(8, 3, 5);
        // One Arc shared by the case + every board.
        assert_eq!(Arc::strong_count(&fleet.library), 9);
        assert!(!fleet.library.is_empty());
        // Scenario diversity: trace counts and local obstacle counts vary
        // across the fleet, and targets differ.
        let counts: std::collections::HashSet<usize> = fleet
            .boards
            .iter()
            .map(|b| b.board().trace_count())
            .collect();
        assert!(counts.len() > 1, "trace counts should vary: {counts:?}");
        let locals: std::collections::HashSet<usize> = fleet
            .boards
            .iter()
            .map(|b| b.board().obstacles().len())
            .collect();
        assert!(locals.len() > 1, "local via density should vary");
    }

    #[test]
    fn every_board_starts_drc_clean() {
        let fleet = fleet_boards_small(6, 1, 2);
        for (b, lb) in fleet.boards.iter().enumerate() {
            let mat = lb.to_board();
            let violations = mat.check();
            assert!(violations.is_empty(), "board {b}: {violations:?}");
            assert!(!mat.groups().is_empty(), "board {b} has no groups");
            // Every member needs real extension headroom.
            for g in mat.groups() {
                let lengths = mat.group_lengths(g);
                let target = g.resolve_target(&lengths);
                for l in lengths {
                    assert!(target > l * 1.05, "board {b}: target {target} vs {l}");
                }
            }
        }
        // The standard size is clean too (spot-check two boards; the full
        // serving-size fleet is exercised by the bench).
        let big = fleet_boards(2, 1, 2);
        for lb in &big.boards {
            assert!(lb.to_board().check().is_empty());
        }
    }
}
