//! Large synthetic stress board for performance baselines.
//!
//! Table I/II cases are paper-sized; this generator scales the same regime
//! up — long staircase traces with big extension demands in via-littered
//! corridors — so the hot loops run thousands of iterations and indexing
//! wins become measurable. `BENCH_PR1.json` (and every future perf
//! trajectory entry) is measured on these boards.

use crate::area::RoutableArea;
use crate::board::Board;
use crate::group::MatchGroup;
use crate::obstacle::Obstacle;
use crate::trace::{Trace, TraceId};
use meander_drc::DesignRules;
use meander_geom::{Point, Polygon, Polyline, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated stress case.
#[derive(Debug, Clone)]
pub struct StressCase {
    /// The synthesized layout. Group 0 is the matching group under test.
    pub board: Board,
    /// Group target length.
    pub ltarget: f64,
    /// Member ids in corridor order.
    pub members: Vec<TraceId>,
}

/// Clearance rule used by every stress trace (`d_gap`).
const DGAP: f64 = 8.0;
/// Length of one horizontal stair run — deliberately short, so the board
/// is *segment-rich*: per-iteration DP problems stay small and per-pop
/// overheads dominate, which is the degradation regime these generators
/// exist to measure.
const RUN: f64 = 56.0;
/// Riser height between runs.
const RISE: f64 = 10.0;

/// Generates a stress board: `n_traces` staircase traces (each `n_steps`
/// horizontal runs joined by short risers) stacked in private corridors,
/// `vias_per_trace` via obstacles intruding into each corridor, and one
/// matching group whose target demands roughly 60 % extension from the
/// longest member.
///
/// Deterministic for a given `seed`.
pub fn stress_board(
    n_traces: usize,
    n_steps: usize,
    vias_per_trace: usize,
    seed: u64,
) -> StressCase {
    assert!(n_traces >= 1 && n_steps >= 1);
    let mut rng = StdRng::seed_from_u64(seed);

    let dgap = DGAP;
    let width = dgap / 2.0;
    let rules = DesignRules {
        gap: dgap,
        obstacle: dgap,
        protect: width,
        miter: dgap / 4.0,
        width,
    };

    let run = RUN;
    let rise = RISE;
    let span = run * n_steps as f64;
    let pitch = 7.0 * dgap + rise * n_steps as f64;
    let height = pitch * n_traces as f64;
    let mut board = Board::new(Rect::new(
        Point::new(-20.0, -pitch),
        Point::new(span + 20.0, height),
    ));

    let mut members = Vec::with_capacity(n_traces);
    let mut min_len = f64::INFINITY;
    for i in 0..n_traces {
        let y0 = i as f64 * pitch;
        // Staircase centerline with a jittered start offset, so members
        // begin at different lengths like a real bus.
        let start_x = rng.gen_range(0.0..run * 0.3);
        let mut pts = vec![Point::new(start_x, y0)];
        for k in 0..n_steps {
            let x1 = run * (k + 1) as f64;
            let yk = y0 + rise * k as f64;
            pts.push(Point::new(x1, yk));
            if k + 1 < n_steps {
                pts.push(Point::new(x1, yk + rise));
            }
        }
        let pl = Polyline::new(pts);
        min_len = min_len.min(pl.length());
        let id = board.add_trace(Trace::with_rules(format!("S{i}"), pl, rules));
        // Tight corridor: pattern amplitude caps at ~dgap, so hitting the
        // target takes *many* short patterns — maximizing iteration count
        // per unit of added length.
        board.set_area(
            id,
            RoutableArea::from_polygon(Polygon::rectangle(
                Point::new(-dgap, y0 - 2.0 * dgap),
                Point::new(span + dgap, y0 + rise * n_steps as f64 + 2.0 * dgap),
            )),
        );
        members.push(id);
    }

    // Vias sprinkled through each corridor, clear of the original routing
    // (rejection-sampled against the centerline — staircase risers make
    // fixed offsets unsafe) but squarely inside the meander space.
    let rvia = dgap / 2.0;
    let clear = rules.centerline_obstacle();
    for (i, &id) in members.iter().enumerate() {
        let y0 = i as f64 * pitch;
        let centerline = board.trace(id).expect("member").centerline().clone();
        let mut placed = 0;
        let mut attempts = 0;
        while placed < vias_per_trace && attempts < vias_per_trace * 40 {
            attempts += 1;
            let x = rng.gen_range(0.05..0.95) * span;
            let k = ((x / run).floor() as usize).min(n_steps - 1);
            let y_run = y0 + rise * k as f64;
            let side = if rng.gen_range(0.0..1.0) < 0.5 {
                1.0
            } else {
                -1.0
            };
            let dy = clear + rvia + 0.5 + rng.gen_range(0.0..dgap);
            let via = Obstacle::via(Point::new(x, y_run + side * dy), rvia);
            let ok = centerline
                .segments()
                .all(|s| via.polygon().distance_to_segment(&s) >= clear + 0.25);
            if ok {
                board.add_obstacle(via);
                placed += 1;
            }
        }
    }

    // Target: longest member needs ~55 % extension, the shortest more.
    let lengths: Vec<f64> = members
        .iter()
        .map(|&id| board.trace(id).expect("member").length())
        .collect();
    let lmax = lengths.iter().fold(0.0f64, |a, &b| a.max(b));
    let ltarget = lmax * 1.55;
    board.add_group(MatchGroup::with_target("stress", members.clone(), ltarget));

    StressCase {
        board,
        ltarget,
        members,
    }
}

/// [`stress_board`] plus *mixed-size* obstacles: a few huge plane polygons
/// (full-width slabs between the corridors and full-height columns flanking
/// the board) on top of the dense via field.
///
/// This is the regime the ROADMAP flags as the uniform `SegmentGrid`'s weak
/// spot — one big polygon smears across many cells, so its edges show up in
/// a large fraction of candidate windows during both group matching and the
/// DRC scan. The generator exists so grid alternatives (STR-packed R-tree,
/// hierarchical grid) and the batched kernels have a measured baseline on
/// boards with both planes and vias.
///
/// The initial layout stays DRC-clean: slabs sit `3·d_gap` under the next
/// corridor's traces and `RISE + 3·d_gap` above their own corridor's top
/// run; columns keep `≥ 14 > d_gap + w/2` from every centerline. Slabs and
/// columns lie outside the routable areas, so they cap candidate windows
/// without blocking the meander space itself.
///
/// Deterministic for a given `seed`.
pub fn stress_mixed_board(
    n_traces: usize,
    n_steps: usize,
    vias_per_trace: usize,
    seed: u64,
) -> StressCase {
    let mut case = stress_board(n_traces, n_steps, vias_per_trace, seed);
    let span = RUN * n_steps as f64;
    let pitch = 7.0 * DGAP + RISE * n_steps as f64;
    let height = pitch * n_traces as f64;

    // Full-width plane slabs in every inter-corridor gap (and one below the
    // first corridor): x-extent ~span/DGAP grid cells wide each.
    for i in 0..n_traces {
        let corridor_top = i as f64 * pitch + RISE * n_steps as f64 + 2.0 * DGAP;
        case.board.add_obstacle(Obstacle::keepout(
            Point::new(-DGAP, corridor_top + DGAP),
            Point::new(span + DGAP, corridor_top + 2.0 * DGAP),
        ));
    }
    case.board.add_obstacle(Obstacle::keepout(
        Point::new(-DGAP, -3.0 * DGAP),
        Point::new(span + DGAP, -2.0 * DGAP),
    ));

    // Full-height plane columns flanking the board: ~height/DGAP cells tall.
    for x0 in [-2.5 * DGAP, span + 1.75 * DGAP] {
        case.board.add_obstacle(Obstacle::keepout(
            Point::new(x0, -pitch),
            Point::new(x0 + 0.75 * DGAP, height),
        ));
    }
    case
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = stress_board(4, 3, 6, 7);
        let b = stress_board(4, 3, 6, 7);
        assert_eq!(a.board.trace_count(), b.board.trace_count());
        for (&ia, &ib) in a.members.iter().zip(&b.members) {
            assert_eq!(
                a.board.trace(ia).unwrap().centerline(),
                b.board.trace(ib).unwrap().centerline()
            );
        }
        assert_eq!(a.board.obstacles().len(), b.board.obstacles().len());
    }

    #[test]
    fn starts_drc_clean_with_headroom() {
        let case = stress_board(6, 4, 8, 1);
        assert!(case.board.check().is_empty(), "{:?}", case.board.check());
        assert_eq!(case.board.groups().len(), 1);
        // Every member needs substantial extension.
        for &id in &case.members {
            let l = case.board.trace(id).unwrap().length();
            assert!(
                case.ltarget > l * 1.3,
                "target {} vs length {l}",
                case.ltarget
            );
        }
    }

    #[test]
    fn mixed_board_adds_planes_and_stays_clean() {
        let base = stress_board(5, 4, 8, 3);
        let mixed = stress_mixed_board(5, 4, 8, 3);
        // Same traces + vias, plus n_traces + 1 slabs and 2 columns.
        assert_eq!(mixed.board.trace_count(), base.board.trace_count());
        assert_eq!(
            mixed.board.obstacles().len(),
            base.board.obstacles().len() + 5 + 1 + 2
        );
        assert!(mixed.board.check().is_empty(), "{:?}", mixed.board.check());
        // The planes really are mixed-size: at least one obstacle spans the
        // whole trace extent in x, and one spans every corridor in y.
        let span = 56.0 * 4.0;
        assert!(mixed
            .board
            .obstacles()
            .iter()
            .any(|o| o.polygon().bbox().width() > span));
        let tall = mixed
            .board
            .obstacles()
            .iter()
            .map(|o| o.polygon().bbox().height())
            .fold(0.0f64, f64::max);
        assert!(tall > 5.0 * (7.0 * 8.0 + 10.0 * 4.0) * 0.9, "tall={tall}");
        // Determinism.
        let again = stress_mixed_board(5, 4, 8, 3);
        assert_eq!(again.board.obstacles().len(), mixed.board.obstacles().len());
    }
}
