//! Duplicate-heavy fleet generator: the content-addressed cache's target
//! workload.
//!
//! At panel scale most boards are *clones* — the same local geometry
//! stamped many times against one shared library (the dense, repetitive
//! instance regime of the VLSI global-routing literature). The result
//! cache turns every repeat into a lookup, so its bench and property
//! suites need fleets with a controlled duplicate fraction:
//! [`dup_fleet_boards`] emits `n_boards` boards of which an expected
//! `dup_rate` fraction are exact clones of earlier boards (same `Arc`'d
//! library, byte-identical local content ⇒ equal
//! [`crate::hash::hash_board_local`] digests), the rest fresh draws from
//! the standard fleet generator.
//!
//! Like every generator here the output is a pure function of its
//! arguments, and prefix-stable: the dup/fresh decision and the clone
//! source for board `b` depend only on `(seed, b)`.

use super::fleet::{board_seed, fleet_boards_with_dims, FleetDims};
use super::FleetCase;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Serving-size dims for duplicate-heavy sets: the standard six corridors
/// (so library damage stays corridor-local — what the invalidation
/// precision bench measures) with short stairs and a light via load, so a
/// 1000-board set routes in bench time.
fn dup_dims() -> FleetDims {
    FleetDims {
        corridors: 6,
        n_steps: 2,
        lib_vias_per_corridor: 4,
        max_local_vias: 2,
    }
}

fn build_dup_fleet(n_boards: usize, dup_rate: f64, seed: u64, dims: FleetDims) -> FleetCase {
    assert!((0.0..=1.0).contains(&dup_rate), "dup_rate in [0, 1]");
    // Pass 1: decide dup/fresh per board — a pure function of (seed, b).
    // Board 0 is always fresh (a duplicate needs a predecessor).
    let choices: Vec<Option<usize>> = (0..n_boards)
        .map(|b| {
            let mut rng = StdRng::seed_from_u64(board_seed(seed, b));
            let dup = b > 0 && rng.gen_range(0.0..1.0) < dup_rate;
            dup.then(|| rng.gen_range(0..b))
        })
        .collect();
    let fresh = choices.iter().filter(|c| c.is_none()).count();

    // Pass 2: draw the distinct boards, then assemble — a duplicate is an
    // exact clone of an earlier *assembled* board (which may itself be a
    // clone; the chain bottoms out at a fresh draw).
    let pool = fleet_boards_with_dims(fresh.max(1), seed ^ 0x6475_706c, seed, dims);
    let mut next_fresh = 0usize;
    let mut boards: Vec<crate::LibraryBoard> = Vec::with_capacity(n_boards);
    for choice in choices {
        match choice {
            Some(src) => boards.push(boards[src].clone()),
            None => {
                boards.push(pool.boards[next_fresh].clone());
                next_fresh += 1;
            }
        }
    }
    FleetCase {
        library: pool.library,
        boards,
    }
}

/// Generates `n_boards` boards sharing one library, an expected
/// `dup_rate` fraction of them exact clones of earlier boards. Clones
/// share the library `Arc` and have byte-identical local content, so
/// their content digests — and therefore their result-cache keys —
/// coincide. Deterministic and prefix-stable in `(seed, b)`.
pub fn dup_fleet_boards(n_boards: usize, dup_rate: f64, seed: u64) -> FleetCase {
    build_dup_fleet(n_boards, dup_rate, seed, dup_dims())
}

/// [`dup_fleet_boards`] at property-suite size (three light corridors, as
/// [`super::fleet_boards_small`]), so randomized cache-equality suites
/// can route dozens of fleets in debug builds.
pub fn dup_fleet_boards_small(n_boards: usize, dup_rate: f64, seed: u64) -> FleetCase {
    build_dup_fleet(
        n_boards,
        dup_rate,
        seed,
        FleetDims {
            corridors: 3,
            n_steps: 2,
            lib_vias_per_corridor: 3,
            max_local_vias: 2,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash_board_local;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn deterministic_and_prefix_stable() {
        let a = dup_fleet_boards_small(8, 0.6, 5);
        let b = dup_fleet_boards_small(8, 0.6, 5);
        for (x, y) in a.boards.iter().zip(&b.boards) {
            assert_eq!(hash_board_local(x.board()), hash_board_local(y.board()));
        }
        // Growing the set preserves the prefix.
        let bigger = dup_fleet_boards_small(12, 0.6, 5);
        for (x, y) in a.boards.iter().zip(&bigger.boards) {
            assert_eq!(hash_board_local(x.board()), hash_board_local(y.board()));
        }
    }

    #[test]
    fn dup_rate_controls_distinct_content() {
        let heavy = dup_fleet_boards_small(32, 0.9, 7);
        let distinct: HashSet<u64> = heavy
            .boards
            .iter()
            .map(|lb| hash_board_local(lb.board()))
            .collect();
        assert!(
            distinct.len() <= 8,
            "dup_rate=0.9 should leave few distinct boards, got {}",
            distinct.len()
        );
        // All boards share one library Arc.
        assert!(heavy
            .boards
            .iter()
            .all(|lb| Arc::ptr_eq(lb.library(), &heavy.library)));
        // dup_rate = 0 yields all-distinct content.
        let none = dup_fleet_boards_small(8, 0.0, 7);
        let distinct: HashSet<u64> = none
            .boards
            .iter()
            .map(|lb| hash_board_local(lb.board()))
            .collect();
        assert_eq!(distinct.len(), 8);
    }

    #[test]
    fn serving_size_has_six_corridors_and_is_clean() {
        let fleet = dup_fleet_boards(4, 0.5, 3);
        for lb in &fleet.boards {
            let mat = lb.to_board();
            assert!(mat.check().is_empty());
            assert!(!mat.groups().is_empty());
        }
    }
}
