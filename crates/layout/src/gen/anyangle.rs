//! Any-angle bus generator (paper Fig. 14b).
//!
//! The headline capability — meandering traces routed at arbitrary angles —
//! is demonstrated on a bus rotated to a non-octilinear angle with obstacles
//! sprinkled along the corridors.

use crate::area::RoutableArea;
use crate::board::Board;
use crate::group::MatchGroup;
use crate::obstacle::Obstacle;
use crate::trace::Trace;
use meander_drc::DesignRules;
use meander_geom::{Angle, Point, Rect, Segment, Vector};

/// Generates a bus of `n` parallel traces rotated by `angle` from the
/// x-axis, with staggered initial lengths and one via obstacle per corridor.
///
/// Returns the board; group 0 matches all traces to the longest member.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn any_angle_bus(n: usize, angle: Angle) -> Board {
    assert!(n > 0, "bus needs at least one trace");
    let dgap = 6.0;
    let width = 3.0;
    let rules = DesignRules {
        gap: dgap,
        obstacle: dgap,
        protect: width,
        miter: dgap / 4.0,
        width,
    };
    let pitch = 5.0 * dgap;
    let run = 300.0;

    let dir = Vector::from_angle(angle);
    let normal = dir.perp();
    let origin = Point::new(40.0, 40.0);

    let extent = run + pitch * n as f64 + 120.0;
    let mut board = Board::new(Rect::new(
        Point::new(-extent, -extent),
        Point::new(extent, extent),
    ));

    let mut members = Vec::with_capacity(n);
    for i in 0..n {
        // Staggered start: trace i is shorter by i · 8% of the run.
        let shortfall = run * 0.08 * i as f64;
        let base = origin + normal * (pitch * i as f64);
        let a = base + dir * shortfall;
        let b = base + dir * run;
        let pl = meander_geom::Polyline::new(vec![a, b]);
        let id = board.add_trace(Trace::with_rules(format!("BUS{i}"), pl, rules));
        board.set_area(
            id,
            RoutableArea::corridor(
                &Segment::new(base - dir * dgap, b + dir * dgap),
                pitch / 2.0,
            ),
        );
        members.push(id);

        // One via intruding into each corridor, clear of the raw trace.
        let rvia = dgap / 2.0;
        let off = rules.centerline_obstacle() + rvia + 0.5;
        let along = 0.35 + 0.3 * ((i % 3) as f64 / 3.0);
        let c = base + dir * (run * along) + normal * off;
        board.add_obstacle(Obstacle::via(c, rvia));
    }

    board.add_group(MatchGroup::new("bus", members));
    board
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_rotated() {
        let b = any_angle_bus(4, Angle::from_degrees(17.0));
        for (_, t) in b.traces() {
            let d = t.centerline().segment(0).direction().unwrap();
            let ang = d.angle().degrees();
            assert!((ang - 17.0).abs() < 1e-9, "angle {ang}");
        }
    }

    #[test]
    fn generated_board_is_clean() {
        for deg in [0.0, 17.0, 45.0, 73.0, 120.0] {
            let b = any_angle_bus(4, Angle::from_degrees(deg));
            let v = b.check();
            assert!(v.is_empty(), "angle {deg}: {v:?}");
        }
    }

    #[test]
    fn lengths_are_staggered() {
        let b = any_angle_bus(4, Angle::from_degrees(30.0));
        let lengths: Vec<f64> = b.traces().map(|(_, t)| t.length()).collect();
        for w in lengths.windows(2) {
            assert!(w[0] > w[1], "lengths must decrease: {lengths:?}");
        }
        // Group resolves to the longest.
        let g = &b.groups()[0];
        let target = g.resolve_target(&b.group_lengths(g));
        assert!((target - lengths[0]).abs() < 1e-9);
    }

    #[test]
    fn areas_contain_traces() {
        let b = any_angle_bus(3, Angle::from_degrees(63.0));
        for (id, t) in b.traces() {
            let area = b.area(id).unwrap();
            for &p in t.centerline().points() {
                assert!(area.contains(p));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_traces_panics() {
        let _ = any_angle_bus(0, Angle::ZERO);
    }
}
