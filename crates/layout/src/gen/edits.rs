//! Deterministic edit streams over generated fleets.
//!
//! [`edit_stream`] synthesizes the serving workload the incremental
//! re-routing loop is built for: a stream of obstacle moves / adds /
//! removes, rule tweaks, and board swaps against a [`FleetCase`]. Two
//! properties the tests and the bench rely on:
//!
//! * **Deterministic** — a pure function of `(case, seed, k)`.
//! * **Prefix-stable** — edit `k` never depends on `n_edits` (each edit
//!   draws from its own splitmix-derived rng), so
//!   `edit_stream(case, s, n)[..k] == edit_stream(case, s, k)`.
//!
//! Edits are generated against the *original* case; indices stay valid
//! after any prefix because applying an edit is total (indices are taken
//! modulo the current collection length — see [`crate::edit`]).

use crate::edit::{Edit, EditScope};
use crate::obstacle::Obstacle;
use meander_geom::{Point, Vector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::fleet::{board_seed, fleet_rules, FleetCase, DGAP};

/// Generates `n_edits` edits over `case` (see the module docs).
///
/// The mix leans toward board-local obstacle churn — the serving regime
/// where damage should stay narrow — with occasional shared-library edits
/// (wide damage), rule tweaks, and board swaps (structural).
pub fn edit_stream(case: &FleetCase, seed: u64, n_edits: usize) -> Vec<Edit> {
    (0..n_edits).map(|k| nth_edit(case, seed, k)).collect()
}

/// The `k`-th edit of the stream — prefix stability is this signature.
pub fn nth_edit(case: &FleetCase, seed: u64, k: usize) -> Edit {
    let mut rng = StdRng::seed_from_u64(board_seed(seed, k));
    let n_boards = case.boards.len().max(1);
    let b = rng.gen_range(0..n_boards);
    let roll = rng.gen_range(0..100u32);
    match roll {
        // Board-local obstacle move: the narrow-damage common case.
        0..=39 => Edit::MoveObstacle {
            scope: EditScope::Board(b),
            index: rng.gen_range(0..64),
            by: jitter(&mut rng),
        },
        // Shared-library obstacle move: damage every referencing board.
        40..=49 => Edit::MoveObstacle {
            scope: EditScope::Library(0),
            index: rng.gen_range(0..1024),
            by: jitter(&mut rng),
        },
        // Add a via near the targeted board's outline.
        50..=64 => Edit::AddObstacle {
            scope: EditScope::Board(b),
            obstacle: random_via(&mut rng, case, b),
        },
        65..=74 => Edit::RemoveObstacle {
            scope: EditScope::Board(b),
            index: rng.gen_range(0..64),
        },
        // Rule tweak: widen the gap a notch — re-derives every clearance
        // float on the board (structural).
        75..=84 => {
            let mut rules = fleet_rules();
            rules.gap += (rng.gen_range(1..3) as f64) * DGAP / 8.0;
            Edit::SetRules { board: b, rules }
        }
        // Board swap: clone another original board's local part.
        _ => {
            let donor = (b + 1 + rng.gen_range(0..n_boards)) % n_boards;
            Edit::ReplaceBoard {
                board: b,
                replacement: Box::new(case.boards[donor].board().clone()),
            }
        }
    }
}

fn jitter(rng: &mut StdRng) -> Vector {
    let r = DGAP * rng.gen_range(0.1..0.8);
    let s = if rng.gen_range(0.0..1.0) < 0.5 {
        -1.0
    } else {
        1.0
    };
    let t = if rng.gen_range(0.0..1.0) < 0.5 {
        -1.0
    } else {
        1.0
    };
    Vector::new(s * r, t * rng.gen_range(0.1..0.8) * DGAP)
}

fn random_via(rng: &mut StdRng, case: &FleetCase, b: usize) -> Obstacle {
    let outline = case.boards[b % case.boards.len().max(1)]
        .board()
        .outline()
        .unwrap_or_else(|| meander_geom::Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)));
    let x = outline.min.x + rng.gen_range(0.05..0.95) * outline.width();
    let y = outline.min.y + rng.gen_range(0.05..0.95) * outline.height();
    Obstacle::via(Point::new(x, y), DGAP / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::fleet_boards_small;

    #[test]
    fn prefix_stable_and_deterministic() {
        let case = fleet_boards_small(4, 7, 11);
        let long = edit_stream(&case, 42, 32);
        let short = edit_stream(&case, 42, 10);
        for (a, b) in short.iter().zip(long.iter()) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        let again = edit_stream(&case, 42, 32);
        assert_eq!(format!("{long:?}"), format!("{again:?}"));
        // A different seed actually changes the stream.
        let other = edit_stream(&case, 43, 32);
        assert_ne!(format!("{long:?}"), format!("{other:?}"));
    }

    #[test]
    fn mix_covers_every_edit_kind() {
        let case = fleet_boards_small(4, 7, 11);
        let stream = edit_stream(&case, 1, 200);
        let count = |pred: fn(&Edit) -> bool| stream.iter().filter(|e| pred(e)).count();
        assert!(count(|e| matches!(e, Edit::MoveObstacle { .. })) > 0);
        assert!(count(|e| matches!(e, Edit::AddObstacle { .. })) > 0);
        assert!(count(|e| matches!(e, Edit::RemoveObstacle { .. })) > 0);
        assert!(count(|e| matches!(e, Edit::SetRules { .. })) > 0);
        assert!(count(|e| matches!(e, Edit::ReplaceBoard { .. })) > 0);
        // Library-scope edits present but the minority.
        let lib = count(|e| matches!(e.scope(), EditScope::Library(_)));
        assert!(lib > 0 && lib < stream.len() / 2);
    }
}
