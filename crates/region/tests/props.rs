//! Property tests for the simplex solver and the assignment stage.

use meander_region::{solve_lp_for_bench, Constraint, LinearProgram, LpOutcome, Relation};
use proptest::prelude::*;

/// Checks that a claimed-optimal solution satisfies every constraint.
fn feasible(lp: &LinearProgram, x: &[f64]) -> bool {
    if x.iter().any(|&v| v < -1e-7) {
        return false;
    }
    lp.constraints.iter().all(|c| {
        let lhs: f64 = c.coeffs.iter().zip(x).map(|(a, v)| a * v).sum();
        match c.rel {
            Relation::Le => lhs <= c.rhs + 1e-6,
            Relation::Ge => lhs >= c.rhs - 1e-6,
            Relation::Eq => (lhs - c.rhs).abs() <= 1e-6,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn optimal_solutions_are_feasible(
        n in 1usize..5,
        rows in proptest::collection::vec(
            (proptest::collection::vec(-3.0..3.0f64, 5), 0.0..20.0f64),
            1..6
        ),
        obj in proptest::collection::vec(-2.0..2.0f64, 5),
    ) {
        // Random ≤-constraints with non-negative rhs are always feasible
        // (x = 0 works); the solver must agree and return a feasible point.
        let lp = LinearProgram {
            n_vars: n,
            objective: obj[..n].to_vec(),
            minimize: true,
            constraints: rows
                .iter()
                .map(|(coeffs, rhs)| Constraint {
                    coeffs: coeffs[..n].to_vec(),
                    rel: Relation::Le,
                    rhs: *rhs,
                })
                .collect(),
        };
        match meander_region::simplex::solve(&lp) {
            LpOutcome::Optimal { x, value } => {
                prop_assert!(feasible(&lp, &x));
                let recomputed: f64 =
                    lp.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
                prop_assert!((recomputed - value).abs() < 1e-6);
                // Minimization with x = 0 feasible ⇒ optimum ≤ 0.
                prop_assert!(value <= 1e-6);
            }
            LpOutcome::Unbounded => {
                // Possible when some objective coefficient is negative and
                // that variable is unconstrained upward.
            }
            LpOutcome::Infeasible => {
                prop_assert!(false, "x = 0 is feasible; solver said infeasible");
            }
        }
    }

    #[test]
    fn demand_supply_lps_solve_consistently(size in 2usize..7) {
        match solve_lp_for_bench(size) {
            LpOutcome::Optimal { x, value } => {
                prop_assert!(x.iter().all(|&v| v >= -1e-7));
                // Total granted equals total demanded at the optimum of a
                // min-total-grant assignment.
                let demand = 3.0 * size as f64 * size as f64;
                prop_assert!((value - demand).abs() < 1e-4, "value {value} vs demand {demand}");
            }
            other => prop_assert!(false, "fixture must be optimal, got {other:?}"),
        }
    }

    #[test]
    fn tightened_ge_eventually_infeasible(cap in 1.0..10.0f64, demand in 0.1..30.0f64) {
        // One resource of `cap` shared by two consumers demanding `demand`
        // each: feasible iff 2·demand ≤ cap.
        let lp = LinearProgram {
            n_vars: 2,
            objective: vec![1.0, 1.0],
            minimize: true,
            constraints: vec![
                Constraint { coeffs: vec![1.0, 1.0], rel: Relation::Le, rhs: cap },
                Constraint { coeffs: vec![1.0, 0.0], rel: Relation::Ge, rhs: demand },
                Constraint { coeffs: vec![0.0, 1.0], rel: Relation::Ge, rhs: demand },
            ],
        };
        let out = meander_region::simplex::solve(&lp);
        if 2.0 * demand <= cap - 1e-6 {
            prop_assert!(matches!(out, LpOutcome::Optimal { .. }), "{out:?}");
        } else if 2.0 * demand > cap + 1e-6 {
            prop_assert!(matches!(out, LpOutcome::Infeasible), "{out:?}");
        }
    }
}
