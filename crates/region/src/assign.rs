//! The assignment LP (paper Sec. III, problem (4)).

use crate::capacity::requirements;
use crate::regions::{decompose, Region};
use crate::simplex::{solve, Constraint, LinearProgram, LpOutcome, Relation};
use meander_layout::{Board, MatchGroup, RoutableArea, TraceId};
use std::collections::HashMap;

/// Successful region assignment.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// Space grant `x_ij > 0` per (region, trace).
    pub grants: Vec<(usize, TraceId, f64)>,
    /// Routable area per trace: corridor around the original routing plus
    /// every region granted (winner-take-all per region to keep areas
    /// non-overlapping).
    pub areas: HashMap<TraceId, RoutableArea>,
}

/// Assignment failure.
#[derive(Debug, Clone, PartialEq)]
pub enum AssignError {
    /// The LP is infeasible: some trace cannot get enough space. Carries
    /// the per-trace shortfall diagnostics (trace, required, reachable).
    Insufficient(Vec<(TraceId, f64, f64)>),
    /// The board has no outline to decompose.
    NoOutline,
}

impl std::fmt::Display for AssignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssignError::Insufficient(v) => {
                write!(f, "insufficient space for {} trace(s)", v.len())
            }
            AssignError::NoOutline => write!(f, "board has no outline"),
        }
    }
}

impl std::error::Error for AssignError {}

/// Solves the paper's assignment problem for `group`:
///
/// * variables `x_ij` exist only for neighbor pairs (constraint 1),
/// * `Σ_j x_ij ≤ Cap_i` (constraint 2),
/// * `Σ_i x_ij ≥ Req_j` (constraint 3),
/// * objective: minimize total granted space (the feasibility problem made
///   deterministic).
///
/// `cell` is the decomposition pitch; `reach` is the neighbor radius — a
/// region is a neighbor of a trace when its cell center is within `reach`
/// of the trace centerline.
///
/// # Errors
///
/// [`AssignError::Insufficient`] when the LP is infeasible (with per-trace
/// shortfall diagnostics), [`AssignError::NoOutline`] when the board cannot
/// be decomposed.
pub fn assign(
    board: &Board,
    group: &MatchGroup,
    cell: f64,
    reach: f64,
) -> Result<Assignment, AssignError> {
    if board.outline().is_none() {
        return Err(AssignError::NoOutline);
    }
    let regions = decompose(board, cell);
    let reqs = requirements(board, group);

    // Neighbor sets.
    let mut vars: Vec<(usize, usize)> = Vec::new(); // (region idx, member idx)
    for (ri, region) in regions.iter().enumerate() {
        let center = region.polygon.bbox().center();
        for (mi, (tid, _)) in reqs.iter().enumerate() {
            let t = board.trace(*tid).expect("group member exists");
            if t.centerline().distance_to_point(center) <= reach {
                vars.push((ri, mi));
            }
        }
    }

    let n = vars.len();
    let mut constraints = Vec::new();

    // Capacity rows (only for regions that have variables).
    let mut region_vars: HashMap<usize, Vec<usize>> = HashMap::new();
    for (vi, (ri, _)) in vars.iter().enumerate() {
        region_vars.entry(*ri).or_default().push(vi);
    }
    for (ri, vis) in &region_vars {
        let mut coeffs = vec![0.0; n];
        for &vi in vis {
            coeffs[vi] = 1.0;
        }
        constraints.push(Constraint {
            coeffs,
            rel: Relation::Le,
            rhs: regions[*ri].capacity,
        });
    }

    // Sufficiency rows.
    let mut member_vars: HashMap<usize, Vec<usize>> = HashMap::new();
    for (vi, (_, mi)) in vars.iter().enumerate() {
        member_vars.entry(*mi).or_default().push(vi);
    }
    for (mi, (_, req)) in reqs.iter().enumerate() {
        if *req <= 0.0 {
            continue;
        }
        let mut coeffs = vec![0.0; n];
        for &vi in member_vars.get(&mi).map(|v| v.as_slice()).unwrap_or(&[]) {
            coeffs[vi] = 1.0;
        }
        constraints.push(Constraint {
            coeffs,
            rel: Relation::Ge,
            rhs: *req,
        });
    }

    let lp = LinearProgram {
        n_vars: n,
        objective: vec![1.0; n],
        minimize: true,
        constraints,
    };

    match solve(&lp) {
        LpOutcome::Optimal { x, .. } => {
            let mut grants = Vec::new();
            for (vi, &(ri, mi)) in vars.iter().enumerate() {
                if x[vi] > 1e-9 {
                    grants.push((regions[ri].id, reqs[mi].0, x[vi]));
                }
            }
            let areas = build_areas(board, group, &regions, &vars, &x, &reqs);
            Ok(Assignment { grants, areas })
        }
        LpOutcome::Infeasible => {
            // Diagnostics: reachable capacity vs requirement per member.
            let mut diag = Vec::new();
            for (mi, (tid, req)) in reqs.iter().enumerate() {
                let reachable: f64 = member_vars
                    .get(&mi)
                    .map(|vis| vis.iter().map(|&vi| regions[vars[vi].0].capacity).sum())
                    .unwrap_or(0.0);
                if reachable < *req {
                    diag.push((*tid, *req, reachable));
                }
            }
            if diag.is_empty() {
                // Contention between traces rather than absolute shortage.
                diag = reqs.iter().map(|&(t, r)| (t, r, f64::NAN)).collect();
            }
            Err(AssignError::Insufficient(diag))
        }
        LpOutcome::Unbounded => unreachable!("minimization over x ≥ 0 with finite rhs"),
    }
}

/// Best-effort variant of [`assign`]: when the LP is infeasible, demands
/// are scaled down uniformly until it becomes feasible (binary search over
/// the scale), so every trace gets a proportional share of the contested
/// space instead of nothing.
///
/// The paper notes that "some techniques of existing works can help to
/// figure out a better routing if the LP is infeasible" — proportional
/// relaxation is the simplest such technique and keeps the pipeline
/// running on overcommitted boards (the meandering stage then reports the
/// residual matching error honestly).
///
/// Returns the assignment plus the demand scale that was actually used
/// (1.0 when the original LP was feasible).
///
/// # Errors
///
/// Only [`AssignError::NoOutline`]; infeasibility is relaxed away.
pub fn assign_best_effort(
    board: &Board,
    group: &MatchGroup,
    cell: f64,
    reach: f64,
) -> Result<(Assignment, f64), AssignError> {
    match assign(board, group, cell, reach) {
        Ok(a) => Ok((a, 1.0)),
        Err(AssignError::NoOutline) => Err(AssignError::NoOutline),
        Err(AssignError::Insufficient(_)) => {
            // Binary search the largest feasible demand scale by shrinking
            // the group's *target* toward the current lengths.
            let lengths = board.group_lengths(group);
            let target = group.resolve_target(&lengths);
            let mut lo = 0.0f64;
            let mut hi = 1.0f64;
            let mut best: Option<(Assignment, f64)> = None;
            for _ in 0..12 {
                let mid = (lo + hi) / 2.0;
                let scaled = scaled_group(group, &lengths, target, mid);
                match assign(board, &scaled, cell, reach) {
                    Ok(a) => {
                        best = Some((a, mid));
                        lo = mid;
                    }
                    Err(_) => {
                        hi = mid;
                    }
                }
            }
            match best {
                Some(b) => Ok(b),
                None => {
                    // Even zero extra demand failed — only corridors are
                    // produced by a zero-demand assignment.
                    let scaled = scaled_group(group, &lengths, target, 0.0);
                    assign(board, &scaled, cell, reach).map(|a| (a, 0.0))
                }
            }
        }
    }
}

/// A copy of `group` whose target interpolates between the longest current
/// length (`scale = 0`, zero extra demand) and the true target
/// (`scale = 1`).
fn scaled_group(group: &MatchGroup, lengths: &[f64], target: f64, scale: f64) -> MatchGroup {
    let longest = lengths.iter().copied().fold(0.0, f64::max);
    let scaled_target = longest + (target - longest) * scale;
    MatchGroup::with_target(group.name(), group.members().to_vec(), scaled_target)
}

/// Folds LP grants into per-trace routable areas. Each region goes entirely
/// to the member holding its largest grant (areas must not overlap); every
/// trace additionally keeps a corridor around its original routing so the
/// preserved routing is always inside its area.
fn build_areas(
    board: &Board,
    _group: &MatchGroup,
    regions: &[Region],
    vars: &[(usize, usize)],
    x: &[f64],
    reqs: &[(TraceId, f64)],
) -> HashMap<TraceId, RoutableArea> {
    let mut winner: HashMap<usize, (usize, f64)> = HashMap::new();
    for (vi, &(ri, mi)) in vars.iter().enumerate() {
        if x[vi] > 1e-9 {
            let e = winner.entry(ri).or_insert((mi, x[vi]));
            if x[vi] > e.1 {
                *e = (mi, x[vi]);
            }
        }
    }
    let mut areas: HashMap<TraceId, RoutableArea> = HashMap::new();
    for (ri, (mi, _)) in winner {
        let tid = reqs[mi].0;
        areas
            .entry(tid)
            .or_default()
            .push(regions[ri].polygon.clone());
    }
    // Corridors around the original routing.
    for (tid, _) in reqs {
        let t = board.trace(*tid).expect("member exists");
        let hw = t.rules().centerline_obstacle().max(t.width());
        let entry = areas.entry(*tid).or_default();
        for seg in t.centerline().segments() {
            if let Some(frame) = meander_geom::Frame::from_segment(&seg) {
                let local = meander_geom::Polygon::rectangle(
                    meander_geom::Point::new(-hw, -hw),
                    meander_geom::Point::new(seg.length() + hw, hw),
                );
                entry.push(frame.polygon_to_world(&local));
            }
        }
    }
    areas
}

#[cfg(test)]
mod tests {
    use super::*;
    use meander_drc::DesignRules;
    use meander_geom::{Point, Polyline, Rect};
    use meander_layout::{Obstacle, Trace};

    fn two_trace_board(board_w: f64) -> (Board, MatchGroup) {
        let mut board = Board::new(Rect::new(Point::new(0.0, 0.0), Point::new(board_w, 100.0)));
        let rules = DesignRules {
            gap: 8.0,
            width: 4.0,
            ..DesignRules::default()
        };
        let a = board.add_trace(Trace::with_rules(
            "A",
            Polyline::new(vec![Point::new(0.0, 30.0), Point::new(board_w * 0.6, 30.0)]),
            rules,
        ));
        let b = board.add_trace(Trace::with_rules(
            "B",
            Polyline::new(vec![Point::new(0.0, 70.0), Point::new(board_w, 70.0)]),
            rules,
        ));
        let g = MatchGroup::new("g", vec![a, b]);
        (board, g)
    }

    #[test]
    fn feasible_assignment_grants_enough() {
        let (board, g) = two_trace_board(200.0);
        let asg = assign(&board, &g, 20.0, 30.0).expect("feasible");
        // Trace A (short one) needs space; total grants must cover it.
        let reqs = requirements(&board, &g);
        let need_a = reqs[0].1;
        let granted_a: f64 = asg
            .grants
            .iter()
            .filter(|(_, t, _)| *t == reqs[0].0)
            .map(|(_, _, v)| v)
            .sum();
        assert!(granted_a >= need_a - 1e-6, "{granted_a} < {need_a}");
        // Areas exist and contain the original routing.
        let area = &asg.areas[&reqs[0].0];
        for &p in board.trace(reqs[0].0).unwrap().centerline().points() {
            assert!(area.contains(p));
        }
    }

    #[test]
    fn areas_do_not_overlap_between_traces() {
        let (board, g) = two_trace_board(200.0);
        let asg = assign(&board, &g, 20.0, 25.0).expect("feasible");
        let ids: Vec<TraceId> = g.members().to_vec();
        // Region polygons (cells) granted to different traces are disjoint
        // sets of cells (corridors may touch, so test only cell centers).
        let a_cells: Vec<Point> = asg.areas[&ids[0]]
            .polygons()
            .iter()
            .map(|p| p.bbox().center())
            .collect();
        for c in asg.areas[&ids[1]]
            .polygons()
            .iter()
            .map(|p| p.bbox().center())
        {
            for a in &a_cells {
                assert!(a.distance(c) > 1e-9, "shared cell at {c}");
            }
        }
    }

    #[test]
    fn infeasible_when_board_too_small() {
        // A cramped board with a big via field leaves too little space.
        let (mut board, g) = two_trace_board(60.0);
        // Blanket obstacles covering most free space.
        for ix in 0..6 {
            for iy in 0..10 {
                board.add_obstacle(Obstacle::via(
                    Point::new(ix as f64 * 10.0 + 5.0, iy as f64 * 10.0 + 5.0),
                    4.5,
                ));
            }
        }
        // Demand far more than available.
        let g2 = MatchGroup::with_target("g", g.members().to_vec(), 2000.0);
        let err = assign(&board, &g2, 10.0, 15.0).unwrap_err();
        assert!(matches!(err, AssignError::Insufficient(_)));
    }

    #[test]
    fn best_effort_matches_assign_when_feasible() {
        let (board, g) = two_trace_board(200.0);
        let (a, scale) = assign_best_effort(&board, &g, 20.0, 30.0).expect("feasible");
        assert_eq!(scale, 1.0);
        assert!(!a.areas.is_empty());
    }

    #[test]
    fn best_effort_relaxes_infeasible_demand() {
        let (mut board, g) = two_trace_board(60.0);
        for ix in 0..6 {
            for iy in 0..10 {
                board.add_obstacle(Obstacle::via(
                    Point::new(ix as f64 * 10.0 + 5.0, iy as f64 * 10.0 + 5.0),
                    4.5,
                ));
            }
        }
        let g2 = MatchGroup::with_target("g", g.members().to_vec(), 2000.0);
        assert!(matches!(
            assign(&board, &g2, 10.0, 15.0),
            Err(AssignError::Insufficient(_))
        ));
        let (a, scale) = assign_best_effort(&board, &g2, 10.0, 15.0).expect("relaxed");
        assert!(scale < 1.0, "scale {scale}");
        // Corridors still exist for every member.
        for id in g2.members() {
            assert!(a.areas.contains_key(id), "no area for {id}");
        }
    }

    #[test]
    fn no_outline_error() {
        let board = Board::default();
        let g = MatchGroup::new("g", vec![]);
        assert_eq!(
            assign(&board, &g, 10.0, 10.0).unwrap_err(),
            AssignError::NoOutline
        );
    }

    #[test]
    fn zero_deficit_group_trivially_feasible() {
        let (board, _) = two_trace_board(200.0);
        // Group of one trace matched to itself: zero requirement.
        let ids: Vec<TraceId> = board.traces().map(|(id, _)| id).collect();
        let g = MatchGroup::new("solo", vec![ids[0]]);
        let asg = assign(&board, &g, 20.0, 25.0).expect("feasible");
        // Corridor still produced.
        assert!(asg.areas.contains_key(&ids[0]));
    }
}
