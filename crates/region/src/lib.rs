//! # meander-region
//!
//! Region assignment — the first of the paper's two orthogonal stages
//! (Sec. III): give every trace in a matching group enough *non-overlapping*
//! space to meander in, before any meandering happens.
//!
//! The paper formulates this as a pure feasibility Linear Program over
//! variables `x_ij` (space of region `i` granted to trace `j`) under three
//! constraint families:
//!
//! 1. **Neighbor validity** — `x_ij = 0` unless region `i` borders trace `j`,
//! 2. **Feasibility** — `Σ_j x_ij ≤ Cap_i`, `x_ij ≥ 0`,
//! 3. **Sufficiency** — `Σ_i x_ij ≥ Req_j`,
//!
//! where `Req_j` comes from the length–space relation of BSG-route \[8\]:
//! meandering `Δl` of extra length consumes ≈ `Δl · (d_gap + w)` of area.
//!
//! Pipeline: [`decompose`] grids the free space into capacity-carrying
//! regions → [`requirements`] sizes each trace's demand → [`assign()`]
//! builds and solves the LP with the from-scratch two-phase [`simplex`]
//! solver → winners are folded into per-trace
//! [`meander_layout::RoutableArea`]s.

pub mod assign;
pub mod capacity;
pub mod regions;
pub mod simplex;

pub use assign::{assign, assign_best_effort, AssignError, Assignment};
pub use capacity::requirements;
pub use regions::{decompose, Region};
pub use simplex::{Constraint, LinearProgram, LpOutcome, Relation};

/// Builds and solves a deterministic assignment-shaped LP with
/// `size²` regions and `size` traces — the fixture behind the solver
/// micro-benchmark (`meander-bench`, `micro::simplex`).
pub fn solve_lp_for_bench(size: usize) -> LpOutcome {
    let n_regions = size * size;
    let n_traces = size;
    // Variable x_ij exists for every (region, trace) with j ≡ i mod 3 — a
    // sparse-ish neighbor structure.
    let mut vars = Vec::new();
    for i in 0..n_regions {
        for j in 0..n_traces {
            if (i + j) % 3 != 0 {
                vars.push((i, j));
            }
        }
    }
    let n = vars.len();
    let mut constraints = Vec::new();
    for i in 0..n_regions {
        let mut coeffs = vec![0.0; n];
        let mut any = false;
        for (v, &(ri, _)) in vars.iter().enumerate() {
            if ri == i {
                coeffs[v] = 1.0;
                any = true;
            }
        }
        if any {
            constraints.push(Constraint {
                coeffs,
                rel: Relation::Le,
                rhs: 10.0,
            });
        }
    }
    for j in 0..n_traces {
        let mut coeffs = vec![0.0; n];
        for (v, &(_, tj)) in vars.iter().enumerate() {
            if tj == j {
                coeffs[v] = 1.0;
            }
        }
        constraints.push(Constraint {
            coeffs,
            rel: Relation::Ge,
            rhs: 3.0 * size as f64,
        });
    }
    simplex::solve(&LinearProgram {
        n_vars: n,
        objective: vec![1.0; n],
        minimize: true,
        constraints,
    })
}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn bench_fixture_is_feasible() {
        for size in [2, 4, 8] {
            assert!(matches!(
                solve_lp_for_bench(size),
                LpOutcome::Optimal { .. }
            ));
        }
    }
}
