//! Space-requirement estimation (`Req_j`).

use meander_layout::{Board, MatchGroup, TraceId};

/// Per-trace space requirement for a matching group, from the length–space
/// relation the paper inherits from BSG-route \[8\]: adding `Δl` of meander
/// at gap `d_gap` and width `w` consumes about `Δl · (d_gap + w)` of area
/// (each unit of added length must keep `d_gap` of air plus its own copper).
///
/// A 1.5× safety factor covers corner losses and space fragmented below the
/// minimum pattern size.
///
/// Returns `(trace, requirement)` pairs for every member of `group`.
pub fn requirements(board: &Board, group: &MatchGroup) -> Vec<(TraceId, f64)> {
    let lengths = board.group_lengths(group);
    let target = group.resolve_target(&lengths);
    group
        .members()
        .iter()
        .zip(&lengths)
        .map(|(&id, &len)| {
            let deficit = (target - len).max(0.0);
            let (gap, width) = board
                .trace(id)
                .map(|t| (t.rules().gap, t.width()))
                .unwrap_or((0.0, 0.0));
            (id, 1.5 * deficit * (gap + width))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use meander_drc::DesignRules;
    use meander_geom::{Point, Polyline, Rect};
    use meander_layout::Trace;

    #[test]
    fn requirement_scales_with_deficit_and_rules() {
        let mut board = Board::new(Rect::new(Point::new(0.0, 0.0), Point::new(300.0, 100.0)));
        let rules = DesignRules {
            gap: 8.0,
            width: 4.0,
            ..DesignRules::default()
        };
        let a = board.add_trace(Trace::with_rules(
            "A",
            Polyline::new(vec![Point::new(0.0, 10.0), Point::new(100.0, 10.0)]),
            rules,
        ));
        let b = board.add_trace(Trace::with_rules(
            "B",
            Polyline::new(vec![Point::new(0.0, 50.0), Point::new(200.0, 50.0)]),
            rules,
        ));
        let g = MatchGroup::new("g", vec![a, b]);
        let reqs = requirements(&board, &g);
        // Target = 200; A needs 100 × (8+4) × 1.5 = 1800, B needs 0.
        assert_eq!(reqs.len(), 2);
        assert!((reqs[0].1 - 1800.0).abs() < 1e-9);
        assert_eq!(reqs[1].1, 0.0);
    }

    #[test]
    fn explicit_target_respected() {
        let mut board = Board::new(Rect::new(Point::new(0.0, 0.0), Point::new(300.0, 100.0)));
        let a = board.add_trace(Trace::new(
            "A",
            Polyline::new(vec![Point::new(0.0, 10.0), Point::new(100.0, 10.0)]),
            4.0,
        ));
        let g = MatchGroup::with_target("g", vec![a], 150.0);
        let reqs = requirements(&board, &g);
        let gap = board.trace(a).unwrap().rules().gap;
        assert!((reqs[0].1 - 1.5 * 50.0 * (gap + 4.0)).abs() < 1e-9);
    }
}
