//! Dense two-phase simplex solver.
//!
//! The assignment LPs this crate builds are small (regions × traces
//! variables, tens to a few thousand), so a dense tableau with Bland's rule
//! is simple, exact enough, and fast. Implemented from scratch — no external
//! solver dependency.

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `coeffs · x ≤ rhs`
    Le,
    /// `coeffs · x ≥ rhs`
    Ge,
    /// `coeffs · x = rhs`
    Eq,
}

/// One linear constraint over the LP's variables.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Dense coefficient row (length = number of variables).
    pub coeffs: Vec<f64>,
    /// Relation to the right-hand side.
    pub rel: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program over non-negative variables.
#[derive(Debug, Clone)]
pub struct LinearProgram {
    /// Number of decision variables (all constrained `≥ 0`).
    pub n_vars: usize,
    /// Objective coefficients (length = `n_vars`).
    pub objective: Vec<f64>,
    /// `true` to minimize the objective, `false` to maximize.
    pub minimize: bool,
    /// Constraint rows.
    pub constraints: Vec<Constraint>,
}

/// Result of [`solve`].
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal {
        /// Optimal variable assignment.
        x: Vec<f64>,
        /// Objective value at `x`.
        value: f64,
    },
    /// The constraints admit no solution.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

const EPS: f64 = 1e-9;

/// Solves `lp` with the two-phase simplex method (Bland's anti-cycling
/// rule).
///
/// # Panics
///
/// Panics if a constraint row's length differs from `lp.n_vars` or the
/// objective length differs from `lp.n_vars`.
///
/// ```
/// use meander_region::{Constraint, LinearProgram, LpOutcome, Relation};
/// // maximize x + y  s.t.  x + 2y ≤ 4,  3x + y ≤ 6
/// let lp = LinearProgram {
///     n_vars: 2,
///     objective: vec![1.0, 1.0],
///     minimize: false,
///     constraints: vec![
///         Constraint { coeffs: vec![1.0, 2.0], rel: Relation::Le, rhs: 4.0 },
///         Constraint { coeffs: vec![3.0, 1.0], rel: Relation::Le, rhs: 6.0 },
///     ],
/// };
/// match meander_region::simplex::solve(&lp) {
///     LpOutcome::Optimal { value, .. } => assert!((value - 2.8).abs() < 1e-6),
///     other => panic!("{other:?}"),
/// }
/// ```
pub fn solve(lp: &LinearProgram) -> LpOutcome {
    assert_eq!(lp.objective.len(), lp.n_vars, "objective length mismatch");
    for c in &lp.constraints {
        assert_eq!(c.coeffs.len(), lp.n_vars, "constraint length mismatch");
    }

    let m = lp.constraints.len();
    let n = lp.n_vars;

    // Normalize to rhs ≥ 0.
    let rows: Vec<Constraint> = lp
        .constraints
        .iter()
        .map(|c| {
            if c.rhs < 0.0 {
                Constraint {
                    coeffs: c.coeffs.iter().map(|v| -v).collect(),
                    rel: match c.rel {
                        Relation::Le => Relation::Ge,
                        Relation::Ge => Relation::Le,
                        Relation::Eq => Relation::Eq,
                    },
                    rhs: -c.rhs,
                }
            } else {
                c.clone()
            }
        })
        .collect();

    // Column layout: [decision | slack/surplus | artificial | rhs].
    let n_slack = rows
        .iter()
        .filter(|c| matches!(c.rel, Relation::Le | Relation::Ge))
        .count();
    let n_art = rows
        .iter()
        .filter(|c| matches!(c.rel, Relation::Ge | Relation::Eq))
        .count();
    let total = n + n_slack + n_art;

    let mut t = vec![vec![0.0f64; total + 1]; m];
    let mut basis = vec![0usize; m];
    let mut s_idx = n;
    let mut a_idx = n + n_slack;
    let mut art_cols = Vec::with_capacity(n_art);

    for (r, c) in rows.iter().enumerate() {
        t[r][..n].copy_from_slice(&c.coeffs);
        t[r][total] = c.rhs;
        match c.rel {
            Relation::Le => {
                t[r][s_idx] = 1.0;
                basis[r] = s_idx;
                s_idx += 1;
            }
            Relation::Ge => {
                t[r][s_idx] = -1.0;
                s_idx += 1;
                t[r][a_idx] = 1.0;
                basis[r] = a_idx;
                art_cols.push(a_idx);
                a_idx += 1;
            }
            Relation::Eq => {
                t[r][a_idx] = 1.0;
                basis[r] = a_idx;
                art_cols.push(a_idx);
                a_idx += 1;
            }
        }
    }

    // Phase 1: minimize sum of artificials.
    if !art_cols.is_empty() {
        let mut cost = vec![0.0f64; total + 1];
        for &ac in &art_cols {
            cost[ac] = 1.0;
        }
        // Reduced costs: subtract rows whose basis is artificial.
        let mut z = vec![0.0f64; total + 1];
        for (r, &b) in basis.iter().enumerate() {
            if cost[b] != 0.0 {
                for k in 0..=total {
                    z[k] += cost[b] * t[r][k];
                }
            }
        }
        let mut red: Vec<f64> = (0..=total).map(|k| cost[k] - z[k]).collect();
        if !pivot_loop(&mut t, &mut basis, &mut red, total) {
            return LpOutcome::Unbounded; // cannot happen in phase 1
        }
        let phase1_obj = -red[total];
        if phase1_obj > 1e-7 {
            return LpOutcome::Infeasible;
        }
        // Drive any artificial variables out of the basis.
        for r in 0..m {
            if art_cols.contains(&basis[r]) {
                if let Some(j) = (0..n + n_slack).find(|&j| t[r][j].abs() > EPS) {
                    pivot(&mut t, &mut basis, &mut red, r, j, total);
                } else {
                    // Redundant row; leave the artificial at value 0.
                }
            }
        }
    }

    // Phase 2: optimize the real objective (as minimization).
    let sign = if lp.minimize { 1.0 } else { -1.0 };
    let mut cost = vec![0.0f64; total + 1];
    for (c, obj) in cost.iter_mut().zip(&lp.objective[..n]) {
        *c = sign * obj;
    }
    // Forbid re-entry of artificials.
    for &ac in &art_cols {
        cost[ac] = f64::INFINITY;
    }
    let mut z = vec![0.0f64; total + 1];
    for (r, &b) in basis.iter().enumerate() {
        let cb = if cost[b].is_finite() { cost[b] } else { 0.0 };
        if cb != 0.0 {
            for k in 0..=total {
                z[k] += cb * t[r][k];
            }
        }
    }
    let mut red: Vec<f64> = (0..=total)
        .map(|k| {
            if cost[k].is_finite() {
                cost[k] - z[k]
            } else {
                f64::INFINITY
            }
        })
        .collect();
    if !pivot_loop(&mut t, &mut basis, &mut red, total) {
        return LpOutcome::Unbounded;
    }

    let mut x = vec![0.0f64; n];
    for (r, &b) in basis.iter().enumerate() {
        if b < n {
            x[b] = t[r][total];
        }
    }
    let value: f64 = lp.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
    LpOutcome::Optimal { x, value }
}

/// Runs simplex pivots until optimal (returns `true`) or unbounded
/// (`false`). `red` is the reduced-cost row; minimization convention.
fn pivot_loop(t: &mut [Vec<f64>], basis: &mut [usize], red: &mut [f64], total: usize) -> bool {
    let m = t.len();
    let mut iters = 0usize;
    let max_iters = 50_000 + 100 * (m + total);
    loop {
        iters += 1;
        if iters > max_iters {
            // Numerical stall fallback: treat as optimal at current vertex.
            return true;
        }
        // Bland's rule: smallest index with negative reduced cost.
        let Some(j) = (0..total).find(|&j| red[j] < -EPS) else {
            return true;
        };
        // Ratio test.
        let mut best: Option<(usize, f64)> = None;
        for r in 0..m {
            if t[r][j] > EPS {
                let ratio = t[r][total] / t[r][j];
                match best {
                    None => best = Some((r, ratio)),
                    Some((br, bratio)) => {
                        if ratio < bratio - EPS
                            || ((ratio - bratio).abs() <= EPS && basis[r] < basis[br])
                        {
                            best = Some((r, ratio));
                        }
                    }
                }
            }
        }
        let Some((r, _)) = best else {
            return false; // unbounded
        };
        pivot(t, basis, red, r, j, total);
    }
}

fn pivot(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    red: &mut [f64],
    r: usize,
    j: usize,
    total: usize,
) {
    let m = t.len();
    let piv = t[r][j];
    for v in t[r][..=total].iter_mut() {
        *v /= piv;
    }
    for rr in 0..m {
        if rr != r && t[rr][j].abs() > EPS {
            let f = t[rr][j];
            // Two rows of `t` are read/written at once; index form is the
            // clearest way to express that.
            #[allow(clippy::needless_range_loop)]
            for k in 0..=total {
                t[rr][k] -= f * t[r][k];
            }
        }
    }
    if red[j].is_finite() && red[j].abs() > 0.0 || red[j] == 0.0 {
        let f = red[j];
        if f.is_finite() && f != 0.0 {
            for k in 0..=total {
                if red[k].is_finite() {
                    red[k] -= f * t[r][k];
                }
            }
        }
    }
    basis[r] = j;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn le(coeffs: Vec<f64>, rhs: f64) -> Constraint {
        Constraint {
            coeffs,
            rel: Relation::Le,
            rhs,
        }
    }
    fn ge(coeffs: Vec<f64>, rhs: f64) -> Constraint {
        Constraint {
            coeffs,
            rel: Relation::Ge,
            rhs,
        }
    }
    fn eq(coeffs: Vec<f64>, rhs: f64) -> Constraint {
        Constraint {
            coeffs,
            rel: Relation::Eq,
            rhs,
        }
    }

    fn optimal(lp: &LinearProgram) -> (Vec<f64>, f64) {
        match solve(lp) {
            LpOutcome::Optimal { x, value } => (x, value),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), 36.
        let lp = LinearProgram {
            n_vars: 2,
            objective: vec![3.0, 5.0],
            minimize: false,
            constraints: vec![
                le(vec![1.0, 0.0], 4.0),
                le(vec![0.0, 2.0], 12.0),
                le(vec![3.0, 2.0], 18.0),
            ],
        };
        let (x, v) = optimal(&lp);
        assert!((v - 36.0).abs() < 1e-6);
        assert!((x[0] - 2.0).abs() < 1e-6);
        assert!((x[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn minimization_with_ge() {
        // min 2x + 3y s.t. x + y ≥ 4, x ≥ 1 → (4, 0) value 8.
        let lp = LinearProgram {
            n_vars: 2,
            objective: vec![2.0, 3.0],
            minimize: true,
            constraints: vec![ge(vec![1.0, 1.0], 4.0), ge(vec![1.0, 0.0], 1.0)],
        };
        let (x, v) = optimal(&lp);
        assert!((v - 8.0).abs() < 1e-6, "x={x:?} v={v}");
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 6, x ≤ 4 → y=(6-x)/2, obj x + 3 - x/2 = 3 + x/2 → x=0,y=3.
        let lp = LinearProgram {
            n_vars: 2,
            objective: vec![1.0, 1.0],
            minimize: true,
            constraints: vec![eq(vec![1.0, 2.0], 6.0), le(vec![1.0, 0.0], 4.0)],
        };
        let (x, v) = optimal(&lp);
        assert!((v - 3.0).abs() < 1e-6);
        assert!((x[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        // x ≤ 1 and x ≥ 2.
        let lp = LinearProgram {
            n_vars: 1,
            objective: vec![1.0],
            minimize: true,
            constraints: vec![le(vec![1.0], 1.0), ge(vec![1.0], 2.0)],
        };
        assert_eq!(solve(&lp), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // max x with x ≥ 0 only.
        let lp = LinearProgram {
            n_vars: 1,
            objective: vec![1.0],
            minimize: false,
            constraints: vec![ge(vec![1.0], 0.0)],
        };
        assert_eq!(solve(&lp), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        // x - y ≤ -2  ⇔  y - x ≥ 2; min y s.t. that and x ≥ 0 → x=0, y=2.
        let lp = LinearProgram {
            n_vars: 2,
            objective: vec![0.0, 1.0],
            minimize: true,
            constraints: vec![le(vec![1.0, -1.0], -2.0)],
        };
        let (x, v) = optimal(&lp);
        assert!((v - 2.0).abs() < 1e-6, "x={x:?}");
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Degenerate vertex (classic cycling example structure).
        let lp = LinearProgram {
            n_vars: 4,
            objective: vec![-0.75, 150.0, -0.02, 6.0],
            minimize: true,
            constraints: vec![
                le(vec![0.25, -60.0, -0.04, 9.0], 0.0),
                le(vec![0.5, -90.0, -0.02, 3.0], 0.0),
                le(vec![0.0, 0.0, 1.0, 0.0], 1.0),
            ],
        };
        let (_, v) = optimal(&lp);
        assert!((v - (-0.05)).abs() < 1e-6);
    }

    #[test]
    fn assignment_shaped_feasibility() {
        // 2 regions × 2 traces, cap = [10, 10], req = [8, 8];
        // region 0 neighbors both, region 1 neighbors trace 1 only.
        // x00 + x01 ≤ 10, x11 ≤ 10, x00 ≥ 8, x01 + x11 ≥ 8.
        let lp = LinearProgram {
            n_vars: 3, // x00, x01, x11
            objective: vec![1.0, 1.0, 1.0],
            minimize: true,
            constraints: vec![
                le(vec![1.0, 1.0, 0.0], 10.0),
                le(vec![0.0, 0.0, 1.0], 10.0),
                ge(vec![1.0, 0.0, 0.0], 8.0),
                ge(vec![0.0, 1.0, 1.0], 8.0),
            ],
        };
        let (x, v) = optimal(&lp);
        assert!((v - 16.0).abs() < 1e-6);
        assert!(x[0] >= 8.0 - 1e-9);
        assert!(x[0] + x[1] <= 10.0 + 1e-9);
    }

    #[test]
    fn infeasible_assignment() {
        // cap 10 shared by two traces needing 8 each with no alternative.
        let lp = LinearProgram {
            n_vars: 2,
            objective: vec![0.0, 0.0],
            minimize: true,
            constraints: vec![
                le(vec![1.0, 1.0], 10.0),
                ge(vec![1.0, 0.0], 8.0),
                ge(vec![0.0, 1.0], 8.0),
            ],
        };
        assert_eq!(solve(&lp), LpOutcome::Infeasible);
    }

    #[test]
    fn zero_objective_feasibility_mode() {
        let lp = LinearProgram {
            n_vars: 2,
            objective: vec![0.0, 0.0],
            minimize: true,
            constraints: vec![
                ge(vec![1.0, 1.0], 3.0),
                le(vec![1.0, 0.0], 5.0),
                le(vec![0.0, 1.0], 5.0),
            ],
        };
        let (x, _) = optimal(&lp);
        assert!(x[0] + x[1] >= 3.0 - 1e-9);
    }
}
