//! Free-space decomposition into capacity-carrying regions.

use meander_geom::{Point, Polygon, Rect};
use meander_layout::Board;

/// A candidate routing region with its space capacity.
///
/// "we divide the design according to its layout to compose several regions"
/// (paper Sec. III). We grid the board at a pitch proportional to `d_gap`
/// and keep cells whose free area is positive; `Cap_i` is the cell's free
/// area (cell minus overlapping obstacles, estimated by sampling).
#[derive(Debug, Clone)]
pub struct Region {
    /// Region id (index into the decomposition).
    pub id: usize,
    /// Cell polygon.
    pub polygon: Polygon,
    /// Usable area (`Cap_i`).
    pub capacity: f64,
}

/// Grids the board into regions of size `cell`, measuring each cell's free
/// capacity against the board's obstacles.
///
/// Capacity is estimated with a 4×4 sample grid per cell — adequate because
/// assignment only needs capacities at the granularity the requirement
/// estimate (also an approximation) works at.
pub fn decompose(board: &Board, cell: f64) -> Vec<Region> {
    assert!(cell > 0.0, "cell size must be positive");
    let Some(outline) = board.outline() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let nx = (outline.width() / cell).ceil() as usize;
    let ny = (outline.height() / cell).ceil() as usize;
    for iy in 0..ny {
        for ix in 0..nx {
            let min = Point::new(
                outline.min.x + ix as f64 * cell,
                outline.min.y + iy as f64 * cell,
            );
            let max = Point::new(
                (min.x + cell).min(outline.max.x),
                (min.y + cell).min(outline.max.y),
            );
            if max.x - min.x < 1e-9 || max.y - min.y < 1e-9 {
                continue;
            }
            let rect = Rect::new(min, max);
            let free = free_fraction(board, &rect);
            if free <= 0.0 {
                continue;
            }
            let id = out.len();
            out.push(Region {
                id,
                polygon: Polygon::rectangle(min, max),
                capacity: rect.area() * free,
            });
        }
    }
    out
}

/// Fraction of `rect` not covered by obstacles, by 4×4 point sampling.
fn free_fraction(board: &Board, rect: &Rect) -> f64 {
    let mut free = 0usize;
    let n = 4;
    for iy in 0..n {
        for ix in 0..n {
            let p = Point::new(
                rect.min.x + rect.width() * (ix as f64 + 0.5) / n as f64,
                rect.min.y + rect.height() * (iy as f64 + 0.5) / n as f64,
            );
            let blocked = board
                .obstacles()
                .iter()
                .any(|o| o.polygon().bbox().contains(p) && o.polygon().contains(p));
            if !blocked {
                free += 1;
            }
        }
    }
    free as f64 / (n * n) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use meander_layout::{Obstacle, ObstacleKind};

    #[test]
    fn empty_board_decomposes_to_full_cells() {
        let board = Board::new(Rect::new(Point::new(0.0, 0.0), Point::new(40.0, 20.0)));
        let regions = decompose(&board, 10.0);
        assert_eq!(regions.len(), 8);
        for r in &regions {
            assert!((r.capacity - 100.0).abs() < 1e-9);
        }
        // Total capacity = board area.
        let total: f64 = regions.iter().map(|r| r.capacity).sum();
        assert!((total - 800.0).abs() < 1e-9);
    }

    #[test]
    fn obstacles_reduce_capacity() {
        let mut board = Board::new(Rect::new(Point::new(0.0, 0.0), Point::new(20.0, 20.0)));
        board.add_obstacle(Obstacle::new(
            Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            ObstacleKind::Keepout,
        ));
        let regions = decompose(&board, 10.0);
        // The fully-covered cell is dropped.
        assert_eq!(regions.len(), 3);
        let total: f64 = regions.iter().map(|r| r.capacity).sum();
        assert!((total - 300.0).abs() < 1e-9);
    }

    #[test]
    fn ragged_edges_get_partial_cells() {
        let board = Board::new(Rect::new(Point::new(0.0, 0.0), Point::new(25.0, 10.0)));
        let regions = decompose(&board, 10.0);
        // 3 columns (last 5 wide) × 1 row.
        assert_eq!(regions.len(), 3);
        let total: f64 = regions.iter().map(|r| r.capacity).sum();
        assert!((total - 250.0).abs() < 1e-9);
    }

    #[test]
    fn region_ids_are_dense() {
        let board = Board::new(Rect::new(Point::new(0.0, 0.0), Point::new(30.0, 30.0)));
        let regions = decompose(&board, 10.0);
        for (i, r) in regions.iter().enumerate() {
            assert_eq!(r.id, i);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_panics() {
        let board = Board::new(Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)));
        let _ = decompose(&board, 0.0);
    }
}
