//! Violation reports produced by the checker.

use meander_geom::Point;
use std::fmt;

/// A single design-rule violation found by [`crate::check_layout`].
///
/// Every variant carries enough context to locate and explain the problem;
/// the `Display` impl renders a one-line report.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// Two traces run closer than `dgap` (edge-to-edge).
    TraceTraceClearance {
        /// First trace id.
        a: u32,
        /// Second trace id.
        b: u32,
        /// Measured edge-to-edge distance.
        actual: f64,
        /// Required clearance.
        required: f64,
        /// A witness location near the violation.
        near: Point,
    },
    /// A trace runs closer than `dobs` to an obstacle.
    TraceObstacleClearance {
        /// Trace id.
        trace: u32,
        /// Obstacle index.
        obstacle: u32,
        /// Measured edge-to-border distance.
        actual: f64,
        /// Required clearance.
        required: f64,
        /// A witness location near the violation.
        near: Point,
    },
    /// A segment is shorter than `dprotect`.
    ShortSegment {
        /// Trace id.
        trace: u32,
        /// Segment index within the trace.
        segment: usize,
        /// Measured length.
        actual: f64,
        /// Required minimum length.
        required: f64,
    },
    /// A trace crosses itself.
    SelfIntersection {
        /// Trace id.
        trace: u32,
    },
    /// A trace leaves its assigned routable area.
    OutsideRoutableArea {
        /// Trace id.
        trace: u32,
        /// A witness point outside the area.
        near: Point,
    },
}

impl Violation {
    /// The id of the primary trace involved.
    pub fn trace_id(&self) -> u32 {
        match self {
            Violation::TraceTraceClearance { a, .. } => *a,
            Violation::TraceObstacleClearance { trace, .. } => *trace,
            Violation::ShortSegment { trace, .. } => *trace,
            Violation::SelfIntersection { trace } => *trace,
            Violation::OutsideRoutableArea { trace, .. } => *trace,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::TraceTraceClearance {
                a,
                b,
                actual,
                required,
                near,
            } => write!(
                f,
                "trace {a} / trace {b} clearance {actual:.4} < {required:.4} near {near}"
            ),
            Violation::TraceObstacleClearance {
                trace,
                obstacle,
                actual,
                required,
                near,
            } => write!(
                f,
                "trace {trace} / obstacle {obstacle} clearance {actual:.4} < {required:.4} near {near}"
            ),
            Violation::ShortSegment {
                trace,
                segment,
                actual,
                required,
            } => write!(
                f,
                "trace {trace} segment {segment} length {actual:.4} < dprotect {required:.4}"
            ),
            Violation::SelfIntersection { trace } => {
                write!(f, "trace {trace} intersects itself")
            }
            Violation::OutsideRoutableArea { trace, near } => {
                write!(f, "trace {trace} leaves its routable area near {near}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let v = Violation::ShortSegment {
            trace: 3,
            segment: 7,
            actual: 1.0,
            required: 8.0,
        };
        let s = format!("{v}");
        assert!(s.contains("trace 3"));
        assert!(s.contains("segment 7"));
        assert!(s.contains("dprotect"));
        assert_eq!(v.trace_id(), 3);
    }

    #[test]
    fn trace_ids_extracted() {
        let v = Violation::TraceTraceClearance {
            a: 1,
            b: 2,
            actual: 0.5,
            required: 8.0,
            near: Point::ORIGIN,
        };
        assert_eq!(v.trace_id(), 1);
        let v = Violation::SelfIntersection { trace: 9 };
        assert_eq!(v.trace_id(), 9);
    }
}
