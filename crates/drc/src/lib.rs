//! # meander-drc
//!
//! Design-rule model and checking engine.
//!
//! The paper's problem formulation (Sec. II, Fig. 1) restricts length
//! matching by four primary distances:
//!
//! * `dgap` — trace-to-trace clearance (self-inductance / crosstalk),
//! * `dobs` — trace-to-obstacle clearance,
//! * `dprotect` — minimum segment length (no extremely short segments),
//! * `dmiter` — corner chamfer for convex patterns.
//!
//! A trace may pass several **Design Rule Areas** (DRAs), each with its own
//! rule values; the router must respect whichever area a pattern lands in,
//! and MSDTW's multi-scale recursion exists precisely because differential
//! pairs cross DRAs.
//!
//! This crate provides:
//!
//! * [`DesignRules`] — a validated rule record,
//! * [`DesignRuleArea`] / [`RuleResolver`] — per-region rules and their
//!   resolution at points/segments,
//! * [`virtual_drc`] — the rule conversion that lets a merged median trace
//!   stand in for a differential pair (paper Sec. V-A),
//! * [`checker`] — a full violation scan used by tests and examples to prove
//!   router outputs legal.
//!
//! The indexed scans answer their window queries through the
//! [`meander_index::SpatialIndex`] contract: [`IndexKind`] selects the
//! uniform grid or the STR-packed R-tree
//! ([`checker::check_layout_indexed_with`] /
//! [`checker::check_layout_batched_with`]), and because both structures
//! return identical candidate sets, the violation list — order, values,
//! witnesses — is the same for every selection (property-tested against
//! the brute-force reference).

pub mod checker;
pub mod dra;
pub mod resolve;
pub mod rules;
pub mod violation;
pub mod virtual_drc;

pub use checker::{
    check_layout, check_layout_batched, check_layout_batched_stats,
    check_layout_batched_stats_with, check_layout_batched_with, check_layout_brute,
    check_layout_indexed, check_layout_indexed_with, CheckInput, TraceGeometry,
};
pub use dra::DesignRuleArea;
pub use meander_index::IndexKind;
pub use resolve::RuleResolver;
pub use rules::{DesignRules, RulesError};
pub use violation::Violation;
pub use virtual_drc::{restore_rules, virtualize_rules};
