//! Rule resolution: which rules apply at a given place.

use crate::dra::DesignRuleArea;
use crate::rules::DesignRules;
use meander_geom::{Point, Segment};

/// Resolves the design rules in force at points and segments.
///
/// Board-wide default rules apply everywhere; [`DesignRuleArea`]s override
/// them inside their regions. When areas nest, the smallest containing area
/// wins (the CAD convention for rule areas). When a segment spans areas, the
/// conservative component-wise maximum is used, matching the paper's note
/// that `dgap`/`dprotect` may be "slightly increased" to keep the
/// discretization sound.
///
/// ```
/// use meander_drc::{DesignRuleArea, DesignRules, RuleResolver};
/// use meander_geom::{Point, Polygon};
///
/// let strict = DesignRules { gap: 16.0, ..DesignRules::default() };
/// let resolver = RuleResolver::new(
///     DesignRules::default(),
///     vec![DesignRuleArea::new(
///         1,
///         Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
///         strict,
///     )],
/// );
/// assert_eq!(resolver.at_point(Point::new(5.0, 5.0)).gap, 16.0);
/// assert_eq!(resolver.at_point(Point::new(50.0, 5.0)).gap, 8.0);
/// ```
#[derive(Debug, Clone)]
pub struct RuleResolver {
    default: DesignRules,
    areas: Vec<DesignRuleArea>,
}

impl RuleResolver {
    /// Creates a resolver from board defaults and rule areas.
    pub fn new(default: DesignRules, areas: Vec<DesignRuleArea>) -> Self {
        RuleResolver { default, areas }
    }

    /// Board default rules.
    #[inline]
    pub fn default_rules(&self) -> &DesignRules {
        &self.default
    }

    /// All registered areas.
    #[inline]
    pub fn areas(&self) -> &[DesignRuleArea] {
        &self.areas
    }

    /// Rules at a single point: smallest containing DRA, else defaults.
    pub fn at_point(&self, p: Point) -> DesignRules {
        self.areas
            .iter()
            .filter(|a| a.contains(p))
            .min_by(|a, b| {
                a.area()
                    .partial_cmp(&b.area())
                    .expect("finite polygon areas")
            })
            .map(|a| *a.rules())
            .unwrap_or(self.default)
    }

    /// Conservative rules over a whole segment: the component-wise max of
    /// the rules at its endpoints and midpoint.
    pub fn along_segment(&self, seg: &Segment) -> DesignRules {
        let a = self.at_point(seg.a);
        let b = self.at_point(seg.b);
        let m = self.at_point(seg.midpoint());
        a.max(&b).max(&m)
    }

    /// Distinct rule values sorted ascending by `gap` — the rule ladder that
    /// MSDTW's multi-scale recursion iterates over (`R = {r0, r1, …, rm}` in
    /// paper Alg. 3).
    pub fn rule_scales(&self) -> Vec<DesignRules> {
        let mut all: Vec<DesignRules> = std::iter::once(self.default)
            .chain(self.areas.iter().map(|a| *a.rules()))
            .collect();
        all.sort_by(|a, b| a.gap.partial_cmp(&b.gap).expect("finite gaps"));
        all.dedup_by(|a, b| a == b);
        all
    }

    /// The id of the smallest DRA containing `p`, if any.
    pub fn area_at(&self, p: Point) -> Option<u32> {
        self.areas
            .iter()
            .filter(|a| a.contains(p))
            .min_by(|a, b| {
                a.area()
                    .partial_cmp(&b.area())
                    .expect("finite polygon areas")
            })
            .map(|a| a.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meander_geom::Polygon;

    fn resolver() -> RuleResolver {
        let outer = DesignRules {
            gap: 10.0,
            ..DesignRules::default()
        };
        let inner = DesignRules {
            gap: 20.0,
            protect: 16.0,
            ..DesignRules::default()
        };
        RuleResolver::new(
            DesignRules::default(),
            vec![
                DesignRuleArea::new(
                    1,
                    Polygon::rectangle(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
                    outer,
                ),
                DesignRuleArea::new(
                    2,
                    Polygon::rectangle(Point::new(40.0, 40.0), Point::new(60.0, 60.0)),
                    inner,
                ),
            ],
        )
    }

    #[test]
    fn innermost_area_wins() {
        let r = resolver();
        assert_eq!(r.at_point(Point::new(50.0, 50.0)).gap, 20.0);
        assert_eq!(r.at_point(Point::new(10.0, 10.0)).gap, 10.0);
        assert_eq!(r.at_point(Point::new(500.0, 500.0)).gap, 8.0);
        assert_eq!(r.area_at(Point::new(50.0, 50.0)), Some(2));
        assert_eq!(r.area_at(Point::new(10.0, 10.0)), Some(1));
        assert_eq!(r.area_at(Point::new(500.0, 500.0)), None);
    }

    #[test]
    fn segment_resolution_is_conservative() {
        let r = resolver();
        // Segment from the outer area into the inner one → max rules.
        let seg = Segment::new(Point::new(10.0, 50.0), Point::new(50.0, 50.0));
        let rules = r.along_segment(&seg);
        assert_eq!(rules.gap, 20.0);
        assert_eq!(rules.protect, 16.0);
    }

    #[test]
    fn rule_scales_sorted_and_deduped() {
        let r = resolver();
        let scales = r.rule_scales();
        assert_eq!(scales.len(), 3);
        assert!(scales.windows(2).all(|w| w[0].gap <= w[1].gap));
        assert_eq!(scales[0].gap, 8.0);
        assert_eq!(scales[2].gap, 20.0);
    }

    #[test]
    fn no_areas_gives_defaults() {
        let r = RuleResolver::new(DesignRules::default(), vec![]);
        assert_eq!(r.at_point(Point::new(1.0, 1.0)), DesignRules::default());
        assert_eq!(r.rule_scales().len(), 1);
    }
}
