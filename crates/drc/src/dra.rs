//! Design Rule Areas.

use crate::rules::DesignRules;
use meander_geom::{Point, Polygon, Segment};

/// A region of the board with its own design-rule values.
///
/// "A trace usually passes different Design Rule Areas (DRA), demanding the
/// length matching approaches to consider multiple Design Rules Checking"
/// (paper Sec. I-B). The meandering engine handles each DRA independently
/// ("Multiple DRAs will be separated into independent rouTable areas and
/// handled independently", Sec. IV-B), and MSDTW's multi-scale pass exists
/// to cope with pair-distance rules that differ per DRA.
///
/// ```
/// use meander_drc::{DesignRuleArea, DesignRules};
/// use meander_geom::{Point, Polygon};
///
/// let dra = DesignRuleArea::new(
///     1,
///     Polygon::rectangle(Point::new(0.0, 0.0), Point::new(100.0, 50.0)),
///     DesignRules::default(),
/// );
/// assert!(dra.contains(Point::new(10.0, 10.0)));
/// ```
#[derive(Debug, Clone)]
pub struct DesignRuleArea {
    id: u32,
    region: Polygon,
    rules: DesignRules,
}

impl DesignRuleArea {
    /// Creates a rule area over `region`.
    pub fn new(id: u32, region: Polygon, rules: DesignRules) -> Self {
        DesignRuleArea { id, region, rules }
    }

    /// The area id.
    #[inline]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The covered region.
    #[inline]
    pub fn region(&self) -> &Polygon {
        &self.region
    }

    /// The rules in force inside the region.
    #[inline]
    pub fn rules(&self) -> &DesignRules {
        &self.rules
    }

    /// `true` when `p` lies in the area (border inclusive).
    pub fn contains(&self, p: Point) -> bool {
        self.region.contains(p)
    }

    /// `true` when the whole segment lies in the area (both endpoints inside
    /// and no border crossing).
    pub fn contains_segment(&self, seg: &Segment) -> bool {
        self.contains(seg.a)
            && self.contains(seg.b)
            && {
                // A chord of a concave region can exit and re-enter; a midpoint
                // sample plus border-crossing check covers router needs.
                !self.region.intersects_segment(seg)
                    || self.region.on_boundary(seg.a)
                    || self.region.on_boundary(seg.b)
            }
            && self.contains(seg.midpoint())
    }

    /// Area in board units².
    pub fn area(&self) -> f64 {
        self.region.area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dra() -> DesignRuleArea {
        DesignRuleArea::new(
            3,
            Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            DesignRules::default(),
        )
    }

    #[test]
    fn accessors() {
        let d = dra();
        assert_eq!(d.id(), 3);
        assert_eq!(d.area(), 100.0);
        assert_eq!(d.rules().gap, DesignRules::default().gap);
    }

    #[test]
    fn point_containment() {
        let d = dra();
        assert!(d.contains(Point::new(5.0, 5.0)));
        assert!(d.contains(Point::new(0.0, 0.0)));
        assert!(!d.contains(Point::new(-1.0, 5.0)));
    }

    #[test]
    fn segment_containment() {
        let d = dra();
        assert!(d.contains_segment(&Segment::new(Point::new(1.0, 1.0), Point::new(9.0, 9.0))));
        assert!(!d.contains_segment(&Segment::new(Point::new(5.0, 5.0), Point::new(15.0, 5.0))));
    }
}
