//! Full-layout violation scan.
//!
//! The router must never *introduce* violations: integration tests run this
//! checker on every meandered output and assert the violation set is empty
//! (or no worse than the input's, for imported layouts that already violate).

use crate::rules::DesignRules;
use crate::violation::Violation;
use meander_geom::batch::{
    accum_point_to_segs_dsq, accum_seg_to_points_dsq, distance_sq_to_segment_batch,
    mark_intersections, pt_seg_dsq, BatchStats, SegBatch, PREFILTER_SLACK,
};
use meander_geom::intersect::segments_intersect;
use meander_geom::{Point, Polygon, Polyline, Segment};
use meander_index::{GridScratch, IndexKind, SegIndex, SegmentGrid, SpatialIndex};
use std::collections::HashMap;

/// The index structure the un-suffixed entry points build: the grid unless
/// the `rtree` cargo feature flips the default (mirroring how the `batch`
/// feature flips the kernel default). The `_with` variants select
/// explicitly; all combinations report identical violation lists.
fn default_kind() -> IndexKind {
    if cfg!(feature = "rtree") {
        IndexKind::RTree
    } else {
        IndexKind::Grid
    }
}

/// Geometry of one trace as the checker sees it.
#[derive(Debug, Clone)]
pub struct TraceGeometry {
    /// Stable id used in violation reports.
    pub id: u32,
    /// Centerline.
    pub centerline: Polyline,
    /// Trace width.
    pub width: f64,
    /// Rules in force for this trace.
    pub rules: DesignRules,
    /// Optional routable-area polygons this trace must stay inside
    /// (checked only when non-empty; a point must be inside *some* polygon).
    pub area: Vec<Polygon>,
    /// Trace ids this trace is allowed to touch (e.g. its differential-pair
    /// partner); gap checks against them are skipped.
    pub coupled_with: Vec<u32>,
}

/// Checker input: traces plus obstacle polygons.
#[derive(Debug, Clone, Default)]
pub struct CheckInput {
    /// All traces to check.
    pub traces: Vec<TraceGeometry>,
    /// All obstacles.
    pub obstacles: Vec<Polygon>,
}

/// Scans the input for design-rule violations.
///
/// Checks performed:
///
/// 1. **Trace–trace clearance** — min centerline distance between every
///    trace pair must be ≥ `gap + w₁/2 + w₂/2` (the stricter trace's gap).
/// 2. **Trace–obstacle clearance** — centerline-to-obstacle distance ≥
///    `dobs + w/2`.
/// 3. **`dprotect`** — every segment of a (simplified) centerline at least
///    `dprotect` long.
/// 4. **Self-intersection**.
/// 5. **Routable-area containment** — every vertex inside the union of the
///    trace's assigned polygons (when provided).
///
/// ```
/// use meander_drc::{check_layout, CheckInput, DesignRules, TraceGeometry};
/// use meander_geom::{Point, Polyline};
///
/// let input = CheckInput {
///     traces: vec![TraceGeometry {
///         id: 0,
///         centerline: Polyline::new(vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)]),
///         width: 4.0,
///         rules: DesignRules::default(),
///         area: vec![],
///         coupled_with: vec![],
///     }],
///     obstacles: vec![],
/// };
/// assert!(check_layout(&input).is_empty());
/// ```
pub fn check_layout(input: &CheckInput) -> Vec<Violation> {
    // The scalar indexed scan is the portable default; the `batch` feature
    // flips the default to the SoA-batched kernels. Both paths are always
    // compiled (and property-tested equal), so neither can rot.
    if cfg!(feature = "batch") {
        check_layout_batched(input)
    } else {
        check_layout_indexed(input)
    }
}

/// The original all-pairs scan, kept as the reference implementation: the
/// indexed checker must report the exact same violation list (see the
/// property suite), and the perf baseline measures one against the other.
pub fn check_layout_brute(input: &CheckInput) -> Vec<Violation> {
    let mut out = Vec::new();

    for (i, t) in input.traces.iter().enumerate() {
        // 3. dprotect on simplified centerline (mitering may deliberately
        // split segments; collinear runs are not real corners). Chamfer
        // segments produced by the `dmiter` rule are exempt: they are
        // intentional corner cuts, not the manufacturing stubs dprotect
        // exists to prevent.
        let mut simplified = t.centerline.clone();
        simplified.simplify();
        for (si, seg) in simplified.segments().enumerate() {
            let len = seg.length();
            if len < t.rules.protect - 1e-9 && !is_chamfer(&simplified, si) {
                out.push(Violation::ShortSegment {
                    trace: t.id,
                    segment: si,
                    actual: len,
                    required: t.rules.protect,
                });
            }
        }

        // 4. Self-intersection.
        if t.centerline.is_self_intersecting() {
            out.push(Violation::SelfIntersection { trace: t.id });
        }

        // 5. Containment.
        if !t.area.is_empty() {
            for &p in t.centerline.points() {
                if !t.area.iter().any(|poly| poly.contains(p)) {
                    out.push(Violation::OutsideRoutableArea {
                        trace: t.id,
                        near: p,
                    });
                    break;
                }
            }
        }

        // 2. Obstacles.
        for (oi, obs) in input.obstacles.iter().enumerate() {
            let required = t.rules.centerline_obstacle();
            let mut worst: Option<(f64, meander_geom::Point)> = None;
            for seg in t.centerline.segments() {
                let d = obs.distance_to_segment(&seg);
                if d < required - 1e-9 {
                    let witness = seg.midpoint();
                    if worst.is_none_or(|(w, _)| d < w) {
                        worst = Some((d, witness));
                    }
                }
            }
            if let Some((actual, near)) = worst {
                out.push(Violation::TraceObstacleClearance {
                    trace: t.id,
                    obstacle: oi as u32,
                    actual,
                    required,
                    near,
                });
            }
        }

        // 1. Trace-trace.
        for u in input.traces.iter().skip(i + 1) {
            if t.coupled_with.contains(&u.id) || u.coupled_with.contains(&t.id) {
                continue;
            }
            let gap = t.rules.gap.max(u.rules.gap);
            let required = gap + t.width / 2.0 + u.width / 2.0;
            let d = t.centerline.distance_to_polyline(&u.centerline);
            if d < required - 1e-9 {
                // Witness: the closest sample point found by re-scanning.
                let near = closest_witness(&t.centerline, &u.centerline);
                out.push(Violation::TraceTraceClearance {
                    a: t.id,
                    b: u.id,
                    actual: d,
                    required,
                    near,
                });
            }
        }
    }

    out
}

/// Output-sensitive violation scan over a [`SegmentGrid`] of all trace
/// segments.
///
/// Reports **exactly** the same violation list as [`check_layout_brute`]
/// (same order, same values, same witnesses) — the property suite asserts
/// equality on randomized boards — but replaces the `O(T²·S²)` trace–trace
/// and `O(T·O·S)` trace–obstacle scans with windowed candidate queries:
///
/// * every segment is registered once in a uniform world grid keyed by a
///   global id that ascends in `(trace, segment)` order, so candidate
///   iteration visits pairs in the same order as the brute-force scan and
///   strict-minimum witness selection agrees bit-for-bit;
/// * an obstacle only tests segments inside its bbox inflated by the
///   largest clearance any trace demands;
/// * a trace segment only tests other-trace segments within the largest
///   pair clearance, and the closest-pair search returns its witness
///   directly instead of re-scanning (`closest_witness` is gone);
/// * self-intersection uses a per-trace grid, which matters once meandered
///   traces carry hundreds of segments.
pub fn check_layout_indexed(input: &CheckInput) -> Vec<Violation> {
    check_layout_indexed_with(input, default_kind())
}

/// [`check_layout_indexed`] with the scan index structure selected by
/// `kind` (grid, STR R-tree, or `Auto`). Both structures return identical
/// candidate sets, so the violation list — order, values, witnesses — is
/// the same for every kind (property-tested); choose by the board's shape
/// (the R-tree wins when plane-sized obstacles meet dense traces).
///
/// ```
/// use meander_drc::{check_layout_indexed_with, CheckInput, DesignRules, TraceGeometry};
/// use meander_geom::{Point, Polygon, Polyline};
/// use meander_index::IndexKind;
///
/// let input = CheckInput {
///     traces: vec![TraceGeometry {
///         id: 0,
///         centerline: Polyline::new(vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)]),
///         width: 4.0,
///         rules: DesignRules::default(),
///         area: vec![],
///         coupled_with: vec![],
///     }],
///     // A plane-sized obstacle too close to the trace: required
///     // clearance is 8 + 4/2 = 10 but the slab sits at distance 5.
///     obstacles: vec![Polygon::rectangle(Point::new(-50.0, 5.0), Point::new(150.0, 30.0))],
/// };
/// let grid = check_layout_indexed_with(&input, IndexKind::Grid);
/// let rtree = check_layout_indexed_with(&input, IndexKind::RTree);
/// assert_eq!(grid.len(), 1);
/// assert_eq!(grid, rtree); // identical list, witnesses included
/// ```
pub fn check_layout_indexed_with(input: &CheckInput, kind: IndexKind) -> Vec<Violation> {
    let idx = ScanIndex::build(input, kind);
    let (obs_worst, pair_best) = gather_scalar(input, &idx);
    emit(input, &idx, &obs_worst, &pair_best)
}

/// [`check_layout_indexed`] with the clearance passes running on the SoA
/// batch kernels of [`meander_geom::batch`]: candidates are materialized
/// into a reused [`SegBatch`] straight from the grid slab and evaluated
/// lane-parallel in the squared-distance domain, with one `sqrt` at each
/// reduced winner. Reports **exactly** the same violation list as
/// [`check_layout_brute`] / [`check_layout_indexed`] (the lane-exactness
/// contract; see `meander_geom::batch` and the property suite).
pub fn check_layout_batched(input: &CheckInput) -> Vec<Violation> {
    check_layout_batched_stats(input).0
}

/// [`check_layout_batched`] with the scan index structure selected by
/// `kind` (see [`check_layout_indexed_with`]; output is identical for
/// every kind).
pub fn check_layout_batched_with(input: &CheckInput, kind: IndexKind) -> Vec<Violation> {
    check_layout_batched_stats_with(input, kind).0
}

/// [`check_layout_batched`] that also reports the batch-kernel work
/// counters (for the perf baseline's observability section).
pub fn check_layout_batched_stats(input: &CheckInput) -> (Vec<Violation>, BatchStats) {
    check_layout_batched_stats_with(input, default_kind())
}

/// [`check_layout_batched_stats`] with the scan index structure selected
/// by `kind`.
pub fn check_layout_batched_stats_with(
    input: &CheckInput,
    kind: IndexKind,
) -> (Vec<Violation>, BatchStats) {
    let idx = ScanIndex::build(input, kind);
    let (obs_worst, pair_best, stats) = gather_batched(input, &idx);
    (emit(input, &idx, &obs_worst, &pair_best), stats)
}

/// Shared scan state: per-trace segment lists, the global segment index
/// (ids ascend in `(trace, segment)` order), and the clearance windows.
struct ScanIndex {
    segs: Vec<Vec<Segment>>,
    offsets: Vec<usize>,
    trace_of: Vec<u32>,
    max_obs_required: f64,
    max_pair_required: f64,
    mean_seg_len: f64,
    grid: SegIndex,
    /// The caller's selection, passed through unresolved so `Auto` gets
    /// re-judged per population: the scan index resolves it on the trace
    /// segments, each per-obstacle edge index on that obstacle's edges.
    kind: IndexKind,
}

impl ScanIndex {
    fn build(input: &CheckInput, kind: IndexKind) -> Self {
        let traces = &input.traces;
        let segs: Vec<Vec<Segment>> = traces
            .iter()
            .map(|t| t.centerline.segments().collect())
            .collect();
        let total_segs: usize = segs.iter().map(Vec::len).sum();
        let offsets: Vec<usize> = segs
            .iter()
            .scan(0usize, |acc, s| {
                let o = *acc;
                *acc += s.len();
                Some(o)
            })
            .collect();
        let trace_of: Vec<u32> = segs
            .iter()
            .enumerate()
            .flat_map(|(i, s)| std::iter::repeat_n(i as u32, s.len()))
            .collect();

        let max_obs_required = traces
            .iter()
            .map(|t| t.rules.centerline_obstacle())
            .fold(0.0f64, f64::max);
        let max_gap = traces.iter().map(|t| t.rules.gap).fold(0.0f64, f64::max);
        let max_width = traces.iter().map(|t| t.width).fold(0.0f64, f64::max);
        let max_pair_required = max_gap + max_width;
        let mean_seg_len = if total_segs == 0 {
            1.0
        } else {
            segs.iter()
                .flat_map(|s| s.iter())
                .map(Segment::length)
                .sum::<f64>()
                / total_segs as f64
        };
        let cell = mean_seg_len
            .max(max_obs_required)
            .max(max_pair_required)
            .max(1e-6);

        let flat: Vec<Segment> = segs.iter().flatten().copied().collect();
        let grid = SegIndex::from_segments(kind, cell, &flat);
        ScanIndex {
            segs,
            offsets,
            trace_of,
            max_obs_required,
            max_pair_required,
            mean_seg_len,
            grid,
            kind,
        }
    }

    #[inline]
    fn seg_of(&self, gid: u32) -> (usize, &Segment) {
        let i = self.trace_of[gid as usize] as usize;
        (i, &self.segs[i][gid as usize - self.offsets[i]])
    }
}

/// Worst sub-threshold clearance per `(trace, obstacle)` and closest
/// approach per trace pair — the scalar candidate loops.
type ObsWorst = HashMap<(usize, usize), (f64, Point)>;
type PairBest = HashMap<(usize, usize), (f64, Point)>;

fn gather_scalar(input: &CheckInput, idx: &ScanIndex) -> (ObsWorst, PairBest) {
    let traces = &input.traces;
    let mut scratch = GridScratch::new();
    let mut candidates: Vec<u32> = Vec::new();

    // --- Trace–obstacle pass (grouped per obstacle, emitted per trace). ---
    let mut obs_worst: ObsWorst = HashMap::new();
    for (oi, obs) in input.obstacles.iter().enumerate() {
        let window = obs.bbox().expanded(idx.max_obs_required);
        idx.grid
            .query_scratch(&window, &mut scratch, &mut candidates);
        for &gid in &candidates {
            let (i, seg) = idx.seg_of(gid);
            let required = traces[i].rules.centerline_obstacle();
            let d = obs.distance_to_segment(seg);
            if d < required - 1e-9 {
                let e = obs_worst.entry((i, oi)).or_insert((f64::INFINITY, seg.a));
                if d < e.0 {
                    *e = (d, seg.midpoint());
                }
            }
        }
    }

    // --- Trace–trace pass (grouped per pair, emitted per first trace). ----
    let mut pair_best: PairBest = HashMap::new();
    for (i, t) in traces.iter().enumerate() {
        for seg in &idx.segs[i] {
            let window = seg.bbox().expanded(idx.max_pair_required);
            idx.grid
                .query_scratch(&window, &mut scratch, &mut candidates);
            for &gid in &candidates {
                let j = idx.trace_of[gid as usize] as usize;
                if j <= i {
                    continue;
                }
                let u = &traces[j];
                if t.coupled_with.contains(&u.id) || u.coupled_with.contains(&t.id) {
                    continue;
                }
                let other = &idx.segs[j][gid as usize - idx.offsets[j]];
                let d = seg.distance_to_segment(other);
                let e = pair_best.entry((i, j)).or_insert((f64::INFINITY, seg.a));
                if d < e.0 {
                    *e = (d, seg.midpoint());
                }
            }
        }
    }
    (obs_worst, pair_best)
}

/// Obstacles with at least this many edges *and* at least
/// [`EDGE_INDEX_MIN_CANDIDATES`] candidate segments in their window take
/// the edge-indexed accumulation path; below the thresholds the dense
/// edge-outer lane loops win (a rectangle's four edges are cheaper to
/// stream than to index).
const EDGE_INDEX_MIN_EDGES: usize = 8;
/// Candidate-count floor for the edge-indexed obstacle path.
const EDGE_INDEX_MIN_CANDIDATES: usize = 16;

/// The batched clearance passes. Per probe window, one [`SegBatch`] holds
/// every candidate; distances reduce in the squared domain; witnesses come
/// from first-occurrence strict argmins, which is exactly the scalar
/// `d < best` update order. Equality with [`gather_scalar`] is bit-for-bit:
///
/// * a candidate group's minimum over violating candidates equals its
///   global minimum whenever any candidate violates (the threshold test
///   moves after the reduction, on the single `sqrt`-ed winner);
/// * pair updates prefilter in `d²` and confirm with the scalar strict `<`
///   on the `sqrt`-ed value, so a rounding tie that the scalar scan would
///   ignore is ignored here too;
/// * polygon containment ("segment swallowed whole") only runs for
///   candidates whose start lies within the obstacle bbox inflated by
///   [`PREFILTER_SLACK`] — a superset of where it can hold.
///
/// ## The edge-indexed obstacle pass
///
/// The dense obstacle accumulation is edge-outer: every obstacle edge
/// streams partials across *every* candidate lane — `O(edges ×
/// candidates)` even though a candidate far from an edge contributes
/// nothing. For many-edged obstacles with big windows (plane polygons on
/// the `stress:mixed` regime) the pass flips candidate-outer: a
/// per-obstacle edge index (same [`IndexKind`] as the scan index) hands
/// each candidate only the edges within the clearance radius `R =
/// max_obs_required`, and the partials accumulate through the same
/// [`pt_seg_dsq`] float stream the lane kernels run.
///
/// Skipping far edges is exact, not approximate: every omitted partial is
/// `> R²` (an edge at distance `> R` from the candidate keeps all four of
/// its endpoint/vertex partials above `R`, and cannot intersect it), so
/// `dsq[k]` is computed exactly whenever its true value is `< R²` — and a
/// violation needs `d < required ≤ R`. Values at or above `R²` may be
/// inflated, but the per-trace winner is then `≥ required` on both paths
/// and nothing is emitted either way.
fn gather_batched(input: &CheckInput, idx: &ScanIndex) -> (ObsWorst, PairBest, BatchStats) {
    let traces = &input.traces;
    let mut scratch = GridScratch::new();
    let mut candidates: Vec<u32> = Vec::new();
    let mut batch = SegBatch::new();
    let mut stats = BatchStats::default();
    let mut dsq: Vec<f64> = Vec::new();
    let mut hit: Vec<bool> = Vec::new();
    let mut edge_scratch = GridScratch::new();
    let mut near_edges: Vec<u32> = Vec::new();
    let mut edges: Vec<Segment> = Vec::new();

    // --- Trace–obstacle pass. --------------------------------------------
    // d(obstacle, seg) decomposes into "obstacle edge ↔ seg endpoint" and
    // "obstacle vertex ↔ seg" partials plus the intersection/containment
    // zero cases; the partials run lane-parallel across the candidates
    // (dense path) or candidate-outer over the nearby-edge subsets
    // (edge-indexed path — see above; both are exact).
    let mut obs_worst: ObsWorst = HashMap::new();
    for (oi, obs) in input.obstacles.iter().enumerate() {
        let window = obs.bbox().expanded(idx.max_obs_required);
        idx.grid
            .query_batch(&window, &mut scratch, &mut candidates, &mut batch);
        if candidates.is_empty() {
            continue;
        }
        stats.record(candidates.len());
        let n = candidates.len();
        dsq.clear();
        dsq.resize(n, f64::INFINITY);
        hit.clear();
        hit.resize(n, false);
        edges.clear();
        edges.extend(obs.edges());
        if edges.len() >= EDGE_INDEX_MIN_EDGES && n >= EDGE_INDEX_MIN_CANDIDATES {
            let mean_edge = edges.iter().map(Segment::length).sum::<f64>() / edges.len() as f64;
            let cell = mean_edge.max(idx.max_obs_required).max(1e-6);
            let eidx = SegIndex::from_segments(idx.kind, cell, &edges);
            for k in 0..n {
                let (sax, say) = (batch.ax()[k], batch.ay()[k]);
                let (sbx, sby) = (batch.bx()[k], batch.by()[k]);
                let cand_window = batch.get(k).bbox().expanded(idx.max_obs_required);
                eidx.query_scratch(&cand_window, &mut edge_scratch, &mut near_edges);
                let mut acc = dsq[k];
                for &eid in &near_edges {
                    let e = &edges[eid as usize];
                    // Edge ↔ candidate-endpoint partials…
                    let d = pt_seg_dsq(sax, say, e.a.x, e.a.y, e.b.x, e.b.y);
                    if d < acc {
                        acc = d;
                    }
                    let d = pt_seg_dsq(sbx, sby, e.a.x, e.a.y, e.b.x, e.b.y);
                    if d < acc {
                        acc = d;
                    }
                    // …and vertex ↔ candidate partials (each polygon vertex
                    // is an endpoint of its two adjacent edges; the repeat
                    // accumulation is an idempotent `min` of equal bits).
                    let d = pt_seg_dsq(e.a.x, e.a.y, sax, say, sbx, sby);
                    if d < acc {
                        acc = d;
                    }
                    let d = pt_seg_dsq(e.b.x, e.b.y, sax, say, sbx, sby);
                    if d < acc {
                        acc = d;
                    }
                    if !hit[k] && segments_intersect(e, &batch.get(k)) {
                        hit[k] = true;
                    }
                }
                dsq[k] = acc;
            }
        } else {
            for e in &edges {
                accum_seg_to_points_dsq(e, batch.ax(), batch.ay(), &mut dsq);
                accum_seg_to_points_dsq(e, batch.bx(), batch.by(), &mut dsq);
                mark_intersections(e, &batch, &mut hit);
            }
            for &v in obs.vertices() {
                accum_point_to_segs_dsq(v, &batch, &mut dsq);
            }
        }
        let near = obs.bbox().expanded(PREFILTER_SLACK);
        for k in 0..n {
            if hit[k] || (near.contains(batch.get(k).a) && obs.contains(batch.get(k).a)) {
                dsq[k] = 0.0;
            }
        }
        // Candidates arrive in ascending gid order, so each trace's run is
        // contiguous: reduce per run with the scalar `d < best` update rule
        // (`d²` only prefilters, so `sqrt` runs on improvements alone and
        // rounding ties resolve exactly as the scalar scan resolves them),
        // then test the per-trace threshold once on the winner.
        let mut k = 0;
        while k < n {
            let i = idx.trace_of[candidates[k] as usize] as usize;
            let start = k;
            while k < n && idx.trace_of[candidates[k] as usize] as usize == i {
                k += 1;
            }
            let (mut best_d, mut best_dsq, mut win) = (f64::INFINITY, f64::INFINITY, start);
            for (kk, &v) in dsq.iter().enumerate().take(k).skip(start) {
                if v < best_dsq {
                    let d = v.sqrt();
                    if d < best_d {
                        (best_d, best_dsq, win) = (d, v, kk);
                    }
                }
            }
            let required = traces[i].rules.centerline_obstacle();
            if best_d < required - 1e-9 {
                let (_, seg) = idx.seg_of(candidates[win]);
                obs_worst.insert((i, oi), (best_d, seg.midpoint()));
            }
        }
    }

    // --- Trace–trace pass. ------------------------------------------------
    // `(d, d²)` ride together per pair so the prefilter never misses an
    // update the scalar scan would make (sqrt is monotone) and never takes
    // one it would skip (the inner strict `<` re-checks on `d`).
    let mut pair_best2: HashMap<(usize, usize), (f64, f64, Point)> = HashMap::new();
    let mut eligible: Vec<u32> = Vec::new();
    for (i, t) in traces.iter().enumerate() {
        for seg in &idx.segs[i] {
            let window = seg.bbox().expanded(idx.max_pair_required);
            idx.grid
                .query_scratch(&window, &mut scratch, &mut candidates);
            // Ownership filters run before any lane is materialized: the
            // scalar path also skips `j <= i` / coupled candidates before
            // computing a distance, and dropping them from the batch only
            // removes lanes whose results would be discarded.
            eligible.clear();
            eligible.extend(candidates.iter().copied().filter(|&gid| {
                let j = idx.trace_of[gid as usize] as usize;
                j > i && {
                    let u = &traces[j];
                    !t.coupled_with.contains(&u.id) && !u.coupled_with.contains(&t.id)
                }
            }));
            if eligible.is_empty() {
                continue;
            }
            idx.grid.fill_batch(&eligible, &mut batch);
            stats.record(eligible.len());
            distance_sq_to_segment_batch(seg, &batch, &mut dsq);
            for (k, &gid) in eligible.iter().enumerate() {
                let j = idx.trace_of[gid as usize] as usize;
                let e = pair_best2
                    .entry((i, j))
                    .or_insert((f64::INFINITY, f64::INFINITY, seg.a));
                if dsq[k] < e.1 {
                    let d = dsq[k].sqrt();
                    if d < e.0 {
                        *e = (d, dsq[k], seg.midpoint());
                    }
                }
            }
        }
    }
    let pair_best: PairBest = pair_best2
        .into_iter()
        .map(|(key, (d, _, p))| (key, (d, p)))
        .collect();
    (obs_worst, pair_best, stats)
}

/// Emission, in the brute-force nesting order (shared by the scalar and
/// batched gathers).
fn emit(
    input: &CheckInput,
    idx: &ScanIndex,
    obs_worst: &ObsWorst,
    pair_best: &PairBest,
) -> Vec<Violation> {
    let traces = &input.traces;
    let (segs, mean_seg_len) = (&idx.segs, idx.mean_seg_len);
    let mut out = Vec::new();
    for (i, t) in traces.iter().enumerate() {
        // 3. dprotect on simplified centerline.
        let mut simplified = t.centerline.clone();
        simplified.simplify();
        for (si, seg) in simplified.segments().enumerate() {
            let len = seg.length();
            if len < t.rules.protect - 1e-9 && !is_chamfer(&simplified, si) {
                out.push(Violation::ShortSegment {
                    trace: t.id,
                    segment: si,
                    actual: len,
                    required: t.rules.protect,
                });
            }
        }

        // 4. Self-intersection (indexed; same predicate as
        //    `Polyline::is_self_intersecting`).
        if self_intersects_indexed(&segs[i], mean_seg_len.max(1e-6)) {
            out.push(Violation::SelfIntersection { trace: t.id });
        }

        // 5. Containment.
        if !t.area.is_empty() {
            for &p in t.centerline.points() {
                if !t.area.iter().any(|poly| poly.contains(p)) {
                    out.push(Violation::OutsideRoutableArea {
                        trace: t.id,
                        near: p,
                    });
                    break;
                }
            }
        }

        // 2. Obstacles.
        for oi in 0..input.obstacles.len() {
            if let Some(&(actual, near)) = obs_worst.get(&(i, oi)) {
                out.push(Violation::TraceObstacleClearance {
                    trace: t.id,
                    obstacle: oi as u32,
                    actual,
                    required: t.rules.centerline_obstacle(),
                    near,
                });
            }
        }

        // 1. Trace–trace.
        for (j, u) in traces.iter().enumerate().skip(i + 1) {
            let Some(&(raw, near)) = pair_best.get(&(i, j)) else {
                continue;
            };
            let gap = t.rules.gap.max(u.rules.gap);
            let required = gap + t.width / 2.0 + u.width / 2.0;
            if raw < required - 1e-9 {
                // `distance_to_polyline` snaps touching traces to exactly 0.
                let actual = if meander_geom::approx_zero(raw) {
                    0.0
                } else {
                    raw
                };
                out.push(Violation::TraceTraceClearance {
                    a: t.id,
                    b: u.id,
                    actual,
                    required,
                    near,
                });
            }
        }
    }

    out
}

/// Grid-accelerated equivalent of [`Polyline::is_self_intersecting`]: any
/// two non-adjacent segments intersecting.
fn self_intersects_indexed(segs: &[Segment], cell: f64) -> bool {
    if segs.len() < 3 {
        return false;
    }
    let grid = SegmentGrid::from_segments(cell, segs);
    let mut scratch = GridScratch::new();
    let mut candidates: Vec<u32> = Vec::new();
    for (i, seg) in segs.iter().enumerate() {
        grid.query_scratch(&seg.bbox(), &mut scratch, &mut candidates);
        for &j in &candidates {
            if j as usize > i + 1
                && meander_geom::intersect::segments_intersect(seg, &segs[j as usize])
            {
                return true;
            }
        }
    }
    false
}

/// `true` when segment `si` of `pl` is a miter chamfer: both of its corners
/// turn 30°–60° in the same rotational direction (a 90° corner cut into two
/// obtuse ones, paper Sec. II's `dmiter`).
fn is_chamfer(pl: &Polyline, si: usize) -> bool {
    if si == 0 || si + 1 >= pl.segment_count() {
        return false;
    }
    let turn = |a: meander_geom::Segment, b: meander_geom::Segment| -> Option<f64> {
        let da = a.direction()?;
        let db = b.direction()?;
        Some(da.cross(db).atan2(da.dot(db)))
    };
    let (Some(t_in), Some(t_out)) = (
        turn(pl.segment(si - 1), pl.segment(si)),
        turn(pl.segment(si), pl.segment(si + 1)),
    ) else {
        return false;
    };
    let lo = 30f64.to_radians();
    let hi = 60f64.to_radians();
    t_in.signum() == t_out.signum()
        && t_in.abs() >= lo
        && t_in.abs() <= hi
        && t_out.abs() >= lo
        && t_out.abs() <= hi
}

fn closest_witness(a: &Polyline, b: &Polyline) -> meander_geom::Point {
    let mut best = (f64::INFINITY, a.start());
    for s in a.segments() {
        for t in b.segments() {
            let d = s.distance_to_segment(&t);
            if d < best.0 {
                best = (d, s.midpoint());
            }
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use meander_geom::Point;

    fn trace(id: u32, pts: Vec<Point>) -> TraceGeometry {
        TraceGeometry {
            id,
            centerline: Polyline::new(pts),
            width: 4.0,
            rules: DesignRules::default(),
            area: vec![],
            coupled_with: vec![],
        }
    }

    #[test]
    fn clean_layout_passes() {
        let input = CheckInput {
            traces: vec![
                trace(0, vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)]),
                trace(1, vec![Point::new(0.0, 50.0), Point::new(100.0, 50.0)]),
            ],
            obstacles: vec![Polygon::rectangle(
                Point::new(40.0, 20.0),
                Point::new(60.0, 30.0),
            )],
        };
        assert!(check_layout(&input).is_empty());
    }

    #[test]
    fn detects_trace_trace_violation() {
        // Centerline distance 10 < required 8 + 2 + 2 = 12.
        let input = CheckInput {
            traces: vec![
                trace(0, vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)]),
                trace(1, vec![Point::new(0.0, 10.0), Point::new(100.0, 10.0)]),
            ],
            obstacles: vec![],
        };
        let v = check_layout(&input);
        assert_eq!(v.len(), 1);
        match &v[0] {
            Violation::TraceTraceClearance {
                actual, required, ..
            } => {
                assert!((actual - 10.0).abs() < 1e-9);
                assert!((required - 12.0).abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn coupled_traces_skip_gap_check() {
        let mut a = trace(0, vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)]);
        let b = trace(1, vec![Point::new(0.0, 6.0), Point::new(100.0, 6.0)]);
        a.coupled_with = vec![1];
        let input = CheckInput {
            traces: vec![a, b],
            obstacles: vec![],
        };
        assert!(check_layout(&input).is_empty());
    }

    #[test]
    fn detects_obstacle_violation() {
        // Obstacle 5 from centerline < required 8 + 2 = 10.
        let input = CheckInput {
            traces: vec![trace(0, vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)])],
            obstacles: vec![Polygon::rectangle(
                Point::new(40.0, 5.0),
                Point::new(60.0, 15.0),
            )],
        };
        let v = check_layout(&input);
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::TraceObstacleClearance { .. }));
    }

    #[test]
    fn detects_short_segment() {
        let input = CheckInput {
            traces: vec![trace(
                0,
                vec![
                    Point::new(0.0, 0.0),
                    Point::new(100.0, 0.0),
                    Point::new(100.0, 2.0), // 2 < dprotect 8
                    Point::new(200.0, 2.0),
                ],
            )],
            obstacles: vec![],
        };
        let v = check_layout(&input);
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::ShortSegment { segment: 1, .. }));
    }

    #[test]
    fn chamfer_segments_exempt_from_protect() {
        // A mitered right-angle corner: the 45° chamfer bridge is shorter
        // than dprotect but intentional.
        let pl = meander_geom::miter::miter_polyline(
            &Polyline::new(vec![
                Point::new(0.0, 0.0),
                Point::new(50.0, 0.0),
                Point::new(50.0, 50.0),
            ]),
            2.0, // chamfer length 2√2 ≈ 2.83 < dprotect 8
        );
        let input = CheckInput {
            traces: vec![TraceGeometry {
                id: 0,
                centerline: pl,
                width: 4.0,
                rules: DesignRules::default(),
                area: vec![],
                coupled_with: vec![],
            }],
            obstacles: vec![],
        };
        assert!(check_layout(&input).is_empty());
    }

    #[test]
    fn genuine_stub_still_flagged() {
        // A short jog between two same-direction right angles is a real
        // dprotect stub, not a chamfer (turns have opposite signs).
        let input = CheckInput {
            traces: vec![trace(
                0,
                vec![
                    Point::new(0.0, 0.0),
                    Point::new(50.0, 0.0),
                    Point::new(50.0, 2.0),
                    Point::new(100.0, 2.0),
                ],
            )],
            obstacles: vec![],
        };
        let v = check_layout(&input);
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::ShortSegment { .. }));
    }

    #[test]
    fn collinear_split_is_not_short() {
        // Two collinear 5-unit pieces form one 10-unit segment after
        // simplification — no dprotect violation.
        let input = CheckInput {
            traces: vec![trace(
                0,
                vec![
                    Point::new(0.0, 0.0),
                    Point::new(5.0, 0.0),
                    Point::new(10.0, 0.0),
                ],
            )],
            obstacles: vec![],
        };
        assert!(check_layout(&input).is_empty());
    }

    #[test]
    fn detects_self_intersection() {
        let input = CheckInput {
            traces: vec![trace(
                0,
                vec![
                    Point::new(0.0, 0.0),
                    Point::new(100.0, 0.0),
                    Point::new(100.0, 50.0),
                    Point::new(50.0, 50.0),
                    Point::new(50.0, -50.0),
                ],
            )],
            obstacles: vec![],
        };
        let v = check_layout(&input);
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::SelfIntersection { .. })));
    }

    #[test]
    fn detects_area_escape() {
        let mut t = trace(0, vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)]);
        t.area = vec![Polygon::rectangle(
            Point::new(-10.0, -10.0),
            Point::new(50.0, 10.0),
        )];
        let input = CheckInput {
            traces: vec![t],
            obstacles: vec![],
        };
        let v = check_layout(&input);
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::OutsideRoutableArea { .. }));
    }

    #[test]
    fn edge_indexed_obstacle_pass_matches_dense() {
        // A many-edged plane polygon (24-gon, radius big enough to smear
        // across the whole board) over dozens of short trace segments:
        // crosses both edge-index thresholds, so the batched gather takes
        // the candidate-outer path — and must agree with the brute scan
        // exactly, under every index kind.
        let mut traces = Vec::new();
        for t in 0..6u32 {
            let y = t as f64 * 30.0;
            let pts: Vec<Point> = (0..12)
                .map(|i| Point::new(i as f64 * 10.0, y + if i % 2 == 0 { 0.0 } else { 3.0 }))
                .collect();
            traces.push(trace(t, pts));
        }
        let input = CheckInput {
            traces,
            obstacles: vec![
                Polygon::regular(Point::new(60.0, 80.0), 70.0, 24, 0.1),
                Polygon::regular(Point::new(30.0, 10.0), 4.0, 24, 0.0),
            ],
        };
        let brute = check_layout_brute(&input);
        assert!(!brute.is_empty(), "the plane must clip several traces");
        for kind in [IndexKind::Grid, IndexKind::RTree, IndexKind::Auto] {
            assert_eq!(check_layout_batched_with(&input, kind), brute, "{kind:?}");
            assert_eq!(check_layout_indexed_with(&input, kind), brute, "{kind:?}");
        }
    }

    #[test]
    fn area_union_containment() {
        // Trace spans two polygons that together cover it.
        let mut t = trace(0, vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)]);
        t.area = vec![
            Polygon::rectangle(Point::new(-10.0, -10.0), Point::new(50.0, 10.0)),
            Polygon::rectangle(Point::new(50.0, -10.0), Point::new(110.0, 10.0)),
        ];
        let input = CheckInput {
            traces: vec![t],
            obstacles: vec![],
        };
        assert!(check_layout(&input).is_empty());
    }
}
