//! The design-rule record.

use std::fmt;

/// A set of design-rule distances, in board units (paper Sec. II, Fig. 1).
///
/// Construct with [`DesignRules::new`] (validating) or tweak a default:
///
/// ```
/// use meander_drc::DesignRules;
/// let rules = DesignRules::new(8.0, 8.0, 8.0, 2.0, 4.0).unwrap();
/// assert_eq!(rules.gap, 8.0);
/// let loose = DesignRules { gap: 12.0, ..rules };
/// assert_eq!(loose.protect, 8.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignRules {
    /// `dgap`: minimum clearance between trace edges.
    pub gap: f64,
    /// `dobs`: minimum clearance between a trace edge and an obstacle.
    pub obstacle: f64,
    /// `dprotect`: minimum legal segment length.
    pub protect: f64,
    /// `dmiter`: chamfer distance applied to right/acute pattern corners.
    pub miter: f64,
    /// Trace width (uniform per rule area in this model).
    pub width: f64,
}

/// Error constructing [`DesignRules`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RulesError {
    /// A rule value was negative or non-finite.
    InvalidValue(&'static str),
    /// Width must be strictly positive.
    NonPositiveWidth,
}

impl fmt::Display for RulesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RulesError::InvalidValue(which) => {
                write!(f, "design rule `{which}` must be finite and non-negative")
            }
            RulesError::NonPositiveWidth => write!(f, "trace width must be positive"),
        }
    }
}

impl std::error::Error for RulesError {}

impl DesignRules {
    /// Creates a validated rule set.
    ///
    /// # Errors
    ///
    /// Returns [`RulesError`] when any distance is negative or non-finite,
    /// or when `width` is not strictly positive.
    pub fn new(
        gap: f64,
        obstacle: f64,
        protect: f64,
        miter: f64,
        width: f64,
    ) -> Result<Self, RulesError> {
        for (v, name) in [
            (gap, "gap"),
            (obstacle, "obstacle"),
            (protect, "protect"),
            (miter, "miter"),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(RulesError::InvalidValue(name));
            }
        }
        if !width.is_finite() || width <= 0.0 {
            return Err(RulesError::NonPositiveWidth);
        }
        Ok(DesignRules {
            gap,
            obstacle,
            protect,
            miter,
            width,
        })
    }

    /// Center-line clearance required between two traces with widths
    /// `self.width` and `other_width`: edge gap plus both half-widths.
    #[inline]
    pub fn centerline_gap(&self, other_width: f64) -> f64 {
        self.gap + self.width / 2.0 + other_width / 2.0
    }

    /// Center-line clearance required between this trace and an obstacle
    /// border.
    #[inline]
    pub fn centerline_obstacle(&self) -> f64 {
        self.obstacle + self.width / 2.0
    }

    /// Component-wise maximum of two rule sets — the conservative resolution
    /// when an entity spans two rule areas.
    pub fn max(&self, other: &DesignRules) -> DesignRules {
        DesignRules {
            gap: self.gap.max(other.gap),
            obstacle: self.obstacle.max(other.obstacle),
            protect: self.protect.max(other.protect),
            miter: self.miter.max(other.miter),
            width: self.width.max(other.width),
        }
    }
}

impl Default for DesignRules {
    /// Defaults loosely modeled on a mils-unit high-speed board: 8 mil gap
    /// and obstacle clearance, 8 mil protect, 2 mil miter, 4 mil width.
    fn default() -> Self {
        DesignRules {
            gap: 8.0,
            obstacle: 8.0,
            protect: 8.0,
            miter: 2.0,
            width: 4.0,
        }
    }
}

impl fmt::Display for DesignRules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rules{{gap {:.3}, obs {:.3}, protect {:.3}, miter {:.3}, w {:.3}}}",
            self.gap, self.obstacle, self.protect, self.miter, self.width
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_construction() {
        let r = DesignRules::new(8.0, 6.0, 8.0, 2.0, 4.0).unwrap();
        assert_eq!(r.obstacle, 6.0);
    }

    #[test]
    fn rejects_bad_values() {
        assert_eq!(
            DesignRules::new(-1.0, 6.0, 8.0, 2.0, 4.0),
            Err(RulesError::InvalidValue("gap"))
        );
        assert_eq!(
            DesignRules::new(8.0, f64::NAN, 8.0, 2.0, 4.0),
            Err(RulesError::InvalidValue("obstacle"))
        );
        assert_eq!(
            DesignRules::new(8.0, 6.0, 8.0, 2.0, 0.0),
            Err(RulesError::NonPositiveWidth)
        );
    }

    #[test]
    fn centerline_clearances() {
        let r = DesignRules::new(8.0, 6.0, 8.0, 2.0, 4.0).unwrap();
        assert_eq!(r.centerline_gap(4.0), 12.0);
        assert_eq!(r.centerline_gap(2.0), 11.0);
        assert_eq!(r.centerline_obstacle(), 8.0);
    }

    #[test]
    fn max_is_componentwise() {
        let a = DesignRules::new(8.0, 6.0, 8.0, 2.0, 4.0).unwrap();
        let b = DesignRules::new(4.0, 10.0, 12.0, 1.0, 5.0).unwrap();
        let m = a.max(&b);
        assert_eq!(m.gap, 8.0);
        assert_eq!(m.obstacle, 10.0);
        assert_eq!(m.protect, 12.0);
        assert_eq!(m.miter, 2.0);
        assert_eq!(m.width, 5.0);
    }

    #[test]
    fn display_and_error_messages() {
        let r = DesignRules::default();
        assert!(format!("{r}").contains("gap"));
        assert!(format!("{}", RulesError::NonPositiveWidth).contains("width"));
    }
}
