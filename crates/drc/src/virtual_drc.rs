//! Virtual DRC for merged median traces (paper Sec. V-A).
//!
//! After MSDTW merges a differential pair into a median trace, length
//! matching runs on that single trace. "To guarantee the differential pair
//! can be legally restored after length matching, we also attach a virtual
//! DRC to its merged median trace … converted from its distance rule and the
//! original DRC of its sub-traces. Thereby, the restored differential pair
//! will not violate the original DRC as long as the merged median trace does
//! not violate the virtual DRC."

use crate::rules::DesignRules;

/// Converts the sub-trace rules of a differential pair into the virtual
/// rules its median trace must obey.
///
/// With pair pitch `pair_sep` (center-to-center distance between the
/// sub-traces), each restored sub-trace runs `pair_sep / 2` to the side of
/// the median. The median therefore behaves like a fat trace of width
/// `pair_sep + width`:
///
/// * virtual `width` = `pair_sep + width` — clearances measured from the
///   median centerline automatically protect the outer sub-trace edges,
/// * `gap`/`obstacle` stay the sub-trace values (they apply edge-to-edge),
/// * `protect` is inherited (each median segment restores to equally long
///   sub-trace segments on gentle geometry, shorter on the inner side of a
///   corner — the `√2` safety factor below absorbs that),
/// * `miter` is inherited.
///
/// To be safe on mitered inner corners, `protect` is scaled by `√2`.
///
/// ```
/// use meander_drc::{virtualize_rules, DesignRules};
/// let sub = DesignRules::new(8.0, 8.0, 8.0, 2.0, 4.0).unwrap();
/// let v = virtualize_rules(&sub, 6.0);
/// assert_eq!(v.width, 10.0);
/// assert_eq!(v.gap, 8.0);
/// ```
pub fn virtualize_rules(sub_rules: &DesignRules, pair_sep: f64) -> DesignRules {
    DesignRules {
        gap: sub_rules.gap,
        obstacle: sub_rules.obstacle,
        protect: sub_rules.protect * std::f64::consts::SQRT_2,
        miter: sub_rules.miter,
        width: pair_sep + sub_rules.width,
    }
}

/// Inverse of [`virtualize_rules`]: recovers the sub-trace rules from the
/// virtual rules and the pair pitch.
pub fn restore_rules(virtual_rules: &DesignRules, pair_sep: f64) -> DesignRules {
    DesignRules {
        gap: virtual_rules.gap,
        obstacle: virtual_rules.obstacle,
        protect: virtual_rules.protect / std::f64::consts::SQRT_2,
        miter: virtual_rules.miter,
        width: (virtual_rules.width - pair_sep).max(f64::MIN_POSITIVE),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_width_covers_pair_extent() {
        let sub = DesignRules::new(8.0, 8.0, 8.0, 2.0, 4.0).unwrap();
        let v = virtualize_rules(&sub, 6.0);
        // Pair outer extent: sep + width = 6 + 4 = 10.
        assert_eq!(v.width, 10.0);
        // Edge clearances are preserved.
        assert_eq!(v.gap, sub.gap);
        assert_eq!(v.obstacle, sub.obstacle);
        // Centerline obstacle clearance now covers the outer sub-trace.
        let sub_outer = sub.centerline_obstacle() + 6.0 / 2.0;
        assert_eq!(v.centerline_obstacle(), sub_outer);
    }

    #[test]
    fn protect_gains_safety_factor() {
        let sub = DesignRules::default();
        let v = virtualize_rules(&sub, 6.0);
        assert!(v.protect > sub.protect);
        assert!((v.protect / sub.protect - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn round_trip() {
        let sub = DesignRules::new(8.0, 7.0, 9.0, 2.0, 4.0).unwrap();
        let rt = restore_rules(&virtualize_rules(&sub, 6.0), 6.0);
        assert!((rt.gap - sub.gap).abs() < 1e-12);
        assert!((rt.obstacle - sub.obstacle).abs() < 1e-12);
        assert!((rt.protect - sub.protect).abs() < 1e-12);
        assert!((rt.width - sub.width).abs() < 1e-12);
    }
}
