//! Property tests for the DRC layer.

use meander_drc::{check_layout, CheckInput, DesignRules, IndexKind, TraceGeometry};
use meander_drc::{
    check_layout_batched, check_layout_batched_with, check_layout_brute, check_layout_indexed,
    check_layout_indexed_with,
};
use meander_drc::{restore_rules, virtualize_rules};
use meander_geom::{Point, Polygon, Polyline, Vector};
use proptest::prelude::*;

fn two_trace_input(y_sep: f64, widths: (f64, f64)) -> CheckInput {
    let rules = DesignRules::default();
    CheckInput {
        traces: vec![
            TraceGeometry {
                id: 0,
                centerline: Polyline::new(vec![Point::new(0.0, 0.0), Point::new(120.0, 0.0)]),
                width: widths.0,
                rules: DesignRules {
                    width: widths.0,
                    ..rules
                },
                area: vec![],
                coupled_with: vec![],
            },
            TraceGeometry {
                id: 1,
                centerline: Polyline::new(vec![Point::new(0.0, y_sep), Point::new(120.0, y_sep)]),
                width: widths.1,
                rules: DesignRules {
                    width: widths.1,
                    ..rules
                },
                area: vec![],
                coupled_with: vec![],
            },
        ],
        obstacles: vec![],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn gap_check_matches_arithmetic(
        y_sep in 1.0..40.0f64,
        w0 in 1.0..8.0f64,
        w1 in 1.0..8.0f64,
    ) {
        let input = two_trace_input(y_sep, (w0, w1));
        let required = 8.0 + w0 / 2.0 + w1 / 2.0;
        let violations = check_layout(&input);
        let has_gap = violations
            .iter()
            .any(|v| matches!(v, meander_drc::Violation::TraceTraceClearance { .. }));
        prop_assert_eq!(has_gap, y_sep < required - 1e-9, "sep {} req {}", y_sep, required);
    }

    #[test]
    fn violations_are_translation_invariant(
        y_sep in 1.0..40.0f64,
        dx in -500.0..500.0f64,
        dy in -500.0..500.0f64,
    ) {
        let input = two_trace_input(y_sep, (4.0, 4.0));
        let base = check_layout(&input).len();
        let shift = Vector::new(dx, dy);
        let moved = CheckInput {
            traces: input
                .traces
                .iter()
                .map(|t| TraceGeometry {
                    id: t.id,
                    centerline: t.centerline.translated(shift),
                    width: t.width,
                    rules: t.rules,
                    area: vec![],
                    coupled_with: vec![],
                })
                .collect(),
            obstacles: vec![],
        };
        prop_assert_eq!(check_layout(&moved).len(), base);
    }

    #[test]
    fn obstacle_check_matches_arithmetic(
        oy in 3.0..40.0f64,
        w in 1.0..8.0f64,
    ) {
        let rules = DesignRules {
            width: w,
            ..DesignRules::default()
        };
        let input = CheckInput {
            traces: vec![TraceGeometry {
                id: 0,
                centerline: Polyline::new(vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)]),
                width: w,
                rules,
                area: vec![],
                coupled_with: vec![],
            }],
            obstacles: vec![Polygon::rectangle(
                Point::new(40.0, oy),
                Point::new(60.0, oy + 10.0),
            )],
        };
        let required = 8.0 + w / 2.0;
        let violations = check_layout(&input);
        let has = violations
            .iter()
            .any(|v| matches!(v, meander_drc::Violation::TraceObstacleClearance { .. }));
        prop_assert_eq!(has, oy < required - 1e-9);
    }

    #[test]
    fn indexed_checker_matches_brute_force(
        walks in proptest::collection::vec(
            (
                (0.0..300.0f64, 0.0..300.0f64),
                proptest::collection::vec((-25.0..25.0f64, -25.0..25.0f64), 1..10),
                1.0..6.0f64,
            ),
            1..7,
        ),
        obstacles in proptest::collection::vec(
            // Up to 24 vertices: many-edged obstacles cross the DRC's
            // edge-indexed threshold, so that path is exercised too.
            ((0.0..300.0f64, 0.0..300.0f64), 1.0..18.0f64, 3usize..25),
            0..9,
        ),
        couple_first_two in 0usize..2,
        area_on_first in 0usize..2,
    ) {
        // Random multi-trace boards: wiggly walks of varying width, random
        // convex obstacles, optional coupling and area assignment. The
        // indexed checker must reproduce the brute-force violation list
        // exactly — order, values, and witnesses.
        let traces: Vec<TraceGeometry> = walks
            .iter()
            .enumerate()
            .map(|(i, ((x0, y0), steps, w))| {
                let mut pts = vec![Point::new(*x0, *y0)];
                for (dx, dy) in steps {
                    let last = *pts.last().unwrap();
                    pts.push(Point::new(last.x + dx, last.y + dy));
                }
                let mut t = TraceGeometry {
                    id: i as u32,
                    centerline: Polyline::new(pts),
                    width: *w,
                    rules: DesignRules {
                        width: *w,
                        ..DesignRules::default()
                    },
                    area: vec![],
                    coupled_with: vec![],
                };
                if i == 0 && area_on_first == 1 {
                    t.area = vec![Polygon::rectangle(
                        Point::new(-50.0, -50.0),
                        Point::new(200.0, 200.0),
                    )];
                }
                if i == 0 && couple_first_two == 1 && walks.len() >= 2 {
                    t.coupled_with = vec![1];
                }
                t
            })
            .collect();
        let obstacles: Vec<Polygon> = obstacles
            .iter()
            .map(|((cx, cy), r, n)| Polygon::regular(Point::new(*cx, *cy), *r, *n, 0.15))
            .collect();
        let input = CheckInput { traces, obstacles };
        let brute = check_layout_brute(&input);
        prop_assert_eq!(check_layout_indexed(&input), brute.clone());
        // The SoA-batched kernels must reproduce the exact same list too —
        // order, values, and witnesses (the lane-exactness contract).
        prop_assert_eq!(check_layout_batched(&input), brute.clone());
        // And the STR R-tree scan index must reproduce it as well, scalar
        // and batched: identical candidate sets make the whole scan
        // bit-identical whatever structure answers the window queries.
        prop_assert_eq!(check_layout_indexed_with(&input, IndexKind::RTree), brute.clone());
        prop_assert_eq!(check_layout_batched_with(&input, IndexKind::RTree), brute.clone());
        prop_assert_eq!(check_layout_batched_with(&input, IndexKind::Auto), brute);
    }

    #[test]
    fn virtual_rules_round_trip(
        gap in 0.0..20.0f64,
        obs in 0.0..20.0f64,
        protect in 0.0..20.0f64,
        width in 0.5..10.0f64,
        sep in 0.5..20.0f64,
    ) {
        let r = DesignRules {
            gap,
            obstacle: obs,
            protect,
            miter: 1.0,
            width,
        };
        let v = virtualize_rules(&r, sep);
        // Virtual width covers the pair extent.
        prop_assert!((v.width - (sep + width)).abs() < 1e-12);
        let rt = restore_rules(&v, sep);
        prop_assert!((rt.gap - r.gap).abs() < 1e-9);
        prop_assert!((rt.protect - r.protect).abs() < 1e-9);
        prop_assert!((rt.width - r.width).abs() < 1e-9);
    }
}
