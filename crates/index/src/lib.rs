//! # meander-index
//!
//! Spatial acceleration structures for the routing flow's query shapes.
//!
//! The paper's complexity analysis (Sec. IV-D) prescribes two query shapes:
//!
//! 1. *Node-position checking* (Alg. 2) needs, for each URA, the set
//!    `P_check = {p | x_p ∈ [x_A, x_C], y_p ∈ [y_D, y_B]}` of polygon node
//!    points inside the outer border. [`MergeSortTree`] implements the
//!    structure the paper describes: "a segment tree to maintain points whose
//!    abscissa rank is within intervals, and the points in each tree node are
//!    sorted by ordinate", giving `O(N log N)` space and `O(log² N)`-ish
//!    queries (we return the matching points, so add output size).
//! 2. *"Sides" shrinking* (Eq. 11), the DRC scan, and the DP profile sweeps
//!    all ask for **candidate edges/segments near a rectangle**. Two
//!    structures answer that behind the [`SpatialIndex`] trait:
//!    [`SegmentGrid`], a uniform hash grid, and [`RTree`], an STR-packed
//!    bulk-loaded R-tree for boards whose obstacle sizes are wildly mixed
//!    (plane polygons next to via fields). Both quantize to the same cell
//!    lattice and therefore return **identical candidate sets** — swapping
//!    them ([`IndexKind`], [`SegIndex`]) changes performance, never results.
//!    See the [`spatial`] module docs for the full contract (bounds
//!    clamping, dedup stamps, batch gather semantics).
//!
//! ```
//! use meander_geom::{Point, Rect, Segment};
//! use meander_index::{IndexKind, RTree, SegIndex, SegmentGrid, SpatialIndex};
//!
//! // A tiny "board": one plane-sized edge above a row of via-sized edges.
//! let mut edges = vec![Segment::new(Point::new(0.0, 20.0), Point::new(800.0, 20.0))];
//! for i in 0..12 {
//!     let x = 30.0 + 50.0 * i as f64;
//!     edges.push(Segment::new(Point::new(x, 5.0), Point::new(x + 2.0, 6.0)));
//! }
//! let grid = SegmentGrid::from_segments(4.0, &edges);
//! let rtree = RTree::from_segments(4.0, &edges);
//! let window = Rect::new(Point::new(25.0, 0.0), Point::new(40.0, 25.0));
//! assert_eq!(grid.query(&window), vec![0, 1]);
//! assert_eq!(grid.query(&window), rtree.query(&window));
//! // `Auto` picks the R-tree here: one edge smears across hundreds of
//! // grid cells while the mean edge is tiny.
//! assert!(SegIndex::from_segments(IndexKind::Auto, 4.0, &edges).is_rtree());
//! ```

pub mod grid;
pub mod msegtree;
pub mod overlay;
pub mod rtree;
pub mod spatial;
pub mod touch;

pub use grid::{GridScratch, SegmentGrid};
pub use msegtree::MergeSortTree;
pub use overlay::OverlayIndex;
pub use rtree::RTree;
pub use spatial::{IndexKind, SegIndex, SpatialIndex};
pub use touch::{quantize, CellTouches, DirtyCells, StratumKey};
