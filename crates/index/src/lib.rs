//! # meander-index
//!
//! Spatial acceleration structures for the URA shrinking procedure.
//!
//! The paper's complexity analysis (Sec. IV-D) prescribes two query shapes:
//!
//! 1. *Node-position checking* (Alg. 2) needs, for each URA, the set
//!    `P_check = {p | x_p ∈ [x_A, x_C], y_p ∈ [y_D, y_B]}` of polygon node
//!    points inside the outer border. [`MergeSortTree`] implements the
//!    structure the paper describes: "a segment tree to maintain points whose
//!    abscissa rank is within intervals, and the points in each tree node are
//!    sorted by ordinate", giving `O(N log N)` space and `O(log² N)`-ish
//!    queries (we return the matching points, so add output size).
//! 2. *"Sides" shrinking* (Eq. 11) intersects the URA side segments with
//!    every polygon edge; [`SegmentGrid`] is a uniform hash grid that returns
//!    candidate edges near a query rectangle so only local edges are tested.
//!
//! Both structures are generic over a user tag so callers can map hits back
//! to their polygons.

pub mod grid;
pub mod msegtree;

pub use grid::{GridScratch, SegmentGrid};
pub use msegtree::MergeSortTree;
