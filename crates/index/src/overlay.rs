//! A shared immutable base index layered under a per-consumer overlay.
//!
//! The multi-board serving regime (`crates/fleet`) routes many boards that
//! reference one shared obstacle library. Indexing the library's edges per
//! trace — what [`crate::SegIndex::from_segments`] over the full edge list
//! would do — repeats identical work thousands of times. [`OverlayIndex`]
//! instead *reuses* one prebuilt, [`Arc`]-shared base index and builds only
//! the small per-consumer remainder (routable-area borders, board-local
//! obstacles) as an overlay.
//!
//! ## Equivalence to a monolithic index
//!
//! The [`SpatialIndex`] contract makes candidacy a property of the cell
//! lattice alone: an id is a candidate for query `r` exactly when its bbox's
//! cell range (quantized by the *absolute* `⌊v / cell⌋`, no per-index
//! origin) intersects `r`'s cell range. Occupied-bounds clamping never
//! changes that set — an entry's cells always lie inside its own index's
//! occupied bounds, so clamping only skips provably empty cells. Therefore
//! querying a base and an overlay built on the **same cell size** and
//! unioning the results yields *exactly* the candidate set of one monolithic
//! index over the concatenated items — which is what keeps fleet placements
//! bit-identical to the per-board sequential run (property-tested in
//! `tests/props.rs` and asserted end-to-end by `crates/fleet`).
//!
//! ## Id space
//!
//! Base items keep their ids `0..base_ids`; overlay item `i` comes out as
//! `base_ids + i`. Output stays ascending and deduplicated: each underlying
//! query is ascending, and every base id is smaller than every overlay id,
//! so concatenation preserves the ordering contract.
//!
//! ```
//! use meander_geom::{Point, Rect, Segment};
//! use meander_index::{IndexKind, OverlayIndex, SegIndex, SpatialIndex};
//! use std::sync::Arc;
//!
//! let library = vec![Segment::new(Point::new(0.0, 0.0), Point::new(3.0, 1.0))];
//! let local = vec![Segment::new(Point::new(2.0, 2.0), Point::new(5.0, 2.0))];
//! // Built once, shared by every consumer:
//! let base = Arc::new(SegIndex::from_segments(IndexKind::Grid, 2.0, &library));
//! // Built per consumer, same lattice:
//! let idx = OverlayIndex::over(base, 1, SegIndex::from_segments(IndexKind::Grid, 2.0, &local));
//!
//! // Identical to one index over library ++ local:
//! let mono: Vec<Segment> = library.iter().chain(&local).copied().collect();
//! let mono = SegIndex::from_segments(IndexKind::Grid, 2.0, &mono);
//! let q = Rect::new(Point::new(1.0, 0.5), Point::new(4.0, 3.0));
//! assert_eq!(idx.query(&q), mono.query(&q));
//! ```

use crate::grid::GridScratch;
use crate::spatial::{SegIndex, SpatialIndex};
use meander_geom::{Rect, SegBatch};
use std::sync::Arc;

/// A [`SpatialIndex`] that unions an optional shared base with a private
/// overlay (see the [module docs](self) for the equivalence argument).
#[derive(Debug)]
pub struct OverlayIndex {
    /// Shared immutable base, if any. `None` makes this a plain wrapper
    /// around `overlay` with zero reserved base ids.
    base: Option<Arc<SegIndex>>,
    /// Number of ids reserved for the base: overlay item `i` is reported as
    /// `base_ids + i`. Callers usually pass the base's item count.
    base_ids: u32,
    /// Per-consumer index over the non-shared items.
    overlay: SegIndex,
}

impl OverlayIndex {
    /// Wraps a single index; queries forward unchanged (no reserved ids).
    pub fn solo(overlay: SegIndex) -> Self {
        OverlayIndex {
            base: None,
            base_ids: 0,
            overlay,
        }
    }

    /// Layers `overlay` over a shared `base`, reserving `base_ids` ids for
    /// the base's items.
    ///
    /// # Panics
    ///
    /// Panics if the two indexes disagree on cell size (the lattice is what
    /// guarantees union-equals-monolithic) or if the base holds an id
    /// `≥ base_ids` (its outputs would collide with overlay ids).
    pub fn over(base: Arc<SegIndex>, base_ids: u32, overlay: SegIndex) -> Self {
        assert!(
            base.is_empty()
                || overlay.is_empty()
                || base.cell_size().to_bits() == overlay.cell_size().to_bits(),
            "overlay lattice mismatch: base cell {} vs overlay cell {}",
            base.cell_size(),
            overlay.cell_size()
        );
        assert!(
            base.is_empty() || base.max_id() < base_ids,
            "base id {} does not fit in the reserved id space {}",
            base.max_id(),
            base_ids
        );
        OverlayIndex {
            base: Some(base),
            base_ids,
            overlay,
        }
    }

    /// Number of ids reserved for the base (`0` for [`OverlayIndex::solo`]).
    #[inline]
    pub fn base_ids(&self) -> u32 {
        self.base_ids
    }

    /// `true` when `id` names a base item.
    #[inline]
    pub fn is_base_id(&self, id: u32) -> bool {
        id < self.base_ids
    }

    /// Allocating convenience query (ascending, deduplicated).
    pub fn query(&self, r: &Rect) -> Vec<u32> {
        let mut out = Vec::new();
        self.query_into(r, &mut out);
        out
    }

    /// Appends the overlay's candidates for `r` (ids offset by `base_ids`)
    /// using scratch state. `out` is *not* cleared — callers chain this
    /// after the base query.
    fn append_overlay(&self, r: &Rect, scratch: &mut GridScratch, out: &mut Vec<u32>) {
        if self.overlay.is_empty() {
            return;
        }
        let start = out.len();
        // Reuse the tail of `out` as the overlay's output buffer would alias
        // `out`; query into a fresh spot by splitting the call: the overlay
        // query clears its buffer, so stage through `scratch`-free swap.
        let mut tmp = std::mem::take(&mut scratch.overlay_buf);
        self.overlay.query_scratch(r, scratch, &mut tmp);
        out.extend(tmp.iter().map(|&i| i + self.base_ids));
        scratch.overlay_buf = tmp;
        debug_assert!(out[start..].is_sorted());
    }
}

impl SpatialIndex for OverlayIndex {
    fn len(&self) -> usize {
        self.base.as_ref().map_or(0, |b| b.len()) + self.overlay.len()
    }

    fn max_id(&self) -> u32 {
        if self.overlay.is_empty() {
            self.base.as_ref().map_or(0, |b| b.max_id())
        } else {
            self.overlay.max_id() + self.base_ids
        }
    }

    fn cell_size(&self) -> f64 {
        // The two lattices agree by construction; prefer whichever side has
        // entries (an empty `SegIndex` still knows its cell size, but the
        // overlay is the side consumers configure).
        match &self.base {
            Some(b) if self.overlay.is_empty() => b.cell_size(),
            _ => self.overlay.cell_size(),
        }
    }

    fn cell_coord(&self, v: f64) -> i64 {
        (v / self.cell_size()).floor() as i64
    }

    fn query_into(&self, r: &Rect, out: &mut Vec<u32>) {
        out.clear();
        if let Some(base) = &self.base {
            base.query_into(r, out);
        }
        if !self.overlay.is_empty() {
            let mut tail = Vec::new();
            self.overlay.query_into(r, &mut tail);
            out.extend(tail.into_iter().map(|i| i + self.base_ids));
        }
    }

    fn query_scratch(&self, r: &Rect, scratch: &mut GridScratch, out: &mut Vec<u32>) {
        out.clear();
        if let Some(base) = &self.base {
            base.query_scratch(r, scratch, out);
        }
        self.append_overlay(r, scratch, out);
    }

    fn query_batch(
        &self,
        r: &Rect,
        scratch: &mut GridScratch,
        ids: &mut Vec<u32>,
        batch: &mut SegBatch,
    ) {
        self.query_scratch(r, scratch, ids);
        self.fill_batch(ids, batch);
    }

    fn fill_batch(&self, ids: &[u32], batch: &mut SegBatch) {
        // Split at the base/overlay boundary (ids are ascending) and gather
        // each side from its own coordinate slab. The base side fills the
        // caller's batch directly (`fill_batch` clears it first); only a
        // non-empty overlay tail pays a staging gather, because the inner
        // call would otherwise clear what the base just wrote. Hot loops
        // (DRC scan, shrink stage 1) gather through the underlying indexes
        // directly and never take this path.
        let split = ids.partition_point(|&id| id < self.base_ids);
        match &self.base {
            Some(base) if split > 0 => base.fill_batch(&ids[..split], batch),
            _ => batch.clear(),
        }
        if split < ids.len() {
            let local: Vec<u32> = ids[split..].iter().map(|&i| i - self.base_ids).collect();
            let mut tail = SegBatch::new();
            self.overlay.fill_batch(&local, &mut tail);
            batch.extend_from(&tail);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndexKind;
    use meander_geom::{Point, Segment};

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    fn field(n: usize, dx: f64, dy: f64) -> Vec<Segment> {
        (0..n)
            .map(|i| {
                let x = (i % 9) as f64 * 7.0 + dx;
                let y = (i / 9) as f64 * 5.0 + dy;
                seg(x, y, x + 3.0, y + 1.5)
            })
            .collect()
    }

    /// Overlay(base ++ local) must answer exactly like one monolithic index,
    /// for every kind pairing and query window.
    #[test]
    fn union_equals_monolithic() {
        let library = {
            let mut v = field(30, 0.0, 0.0);
            v.push(seg(-10.0, 25.0, 300.0, 25.0)); // plane-sized smear
            v
        };
        let local = field(17, 3.0, 40.0);
        let mono: Vec<Segment> = library.iter().chain(&local).copied().collect();
        let queries = [
            Rect::new(Point::new(-5.0, -5.0), Point::new(20.0, 20.0)),
            Rect::new(Point::new(10.0, 20.0), Point::new(40.0, 50.0)),
            Rect::new(Point::new(-1e6, -1e6), Point::new(1e6, 1e6)),
            Rect::new(Point::new(500.0, 500.0), Point::new(501.0, 501.0)),
            Rect::new(Point::new(0.0, 24.0), Point::new(1.0, 26.0)),
        ];
        for base_kind in [IndexKind::Grid, IndexKind::RTree] {
            for over_kind in [IndexKind::Grid, IndexKind::RTree] {
                let base = Arc::new(SegIndex::from_segments(base_kind, 4.0, &library));
                let overlay = OverlayIndex::over(
                    Arc::clone(&base),
                    library.len() as u32,
                    SegIndex::from_segments(over_kind, 4.0, &local),
                );
                let reference = SegIndex::from_segments(IndexKind::Grid, 4.0, &mono);
                let mut scratch = GridScratch::new();
                let mut got = Vec::new();
                let mut batch = SegBatch::new();
                for (qi, q) in queries.iter().enumerate() {
                    let want = reference.query(q);
                    assert_eq!(
                        overlay.query(q),
                        want,
                        "query_into diverged ({base_kind:?}/{over_kind:?}, q{qi})"
                    );
                    overlay.query_scratch(q, &mut scratch, &mut got);
                    assert_eq!(
                        got, want,
                        "query_scratch diverged ({base_kind:?}/{over_kind:?}, q{qi})"
                    );
                    overlay.query_batch(q, &mut scratch, &mut got, &mut batch);
                    assert_eq!(got, want);
                    assert_eq!(batch.len(), want.len());
                    for (k, &id) in want.iter().enumerate() {
                        assert_eq!(
                            batch.get(k),
                            mono[id as usize],
                            "batch gather diverged at candidate {k}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn solo_forwards_unchanged() {
        let items = field(12, 0.0, 0.0);
        let solo = OverlayIndex::solo(SegIndex::from_segments(IndexKind::Grid, 3.0, &items));
        let plain = SegIndex::from_segments(IndexKind::Grid, 3.0, &items);
        assert_eq!(solo.base_ids(), 0);
        assert_eq!(solo.len(), plain.len());
        let q = Rect::new(Point::new(0.0, 0.0), Point::new(15.0, 9.0));
        assert_eq!(solo.query(&q), plain.query(&q));
    }

    #[test]
    fn empty_sides() {
        let items = field(6, 0.0, 0.0);
        let base = Arc::new(SegIndex::from_segments(IndexKind::Grid, 2.0, &items));
        let none: Vec<Segment> = Vec::new();
        // Empty overlay: base answers alone.
        let idx = OverlayIndex::over(
            Arc::clone(&base),
            items.len() as u32,
            SegIndex::from_segments(IndexKind::Grid, 2.0, &none),
        );
        let q = Rect::new(Point::new(-1.0, -1.0), Point::new(50.0, 50.0));
        assert_eq!(idx.query(&q), base.query(&q));
        assert_eq!(idx.len(), items.len());
        // Empty base: overlay ids still offset by the reserved space.
        let empty_base = Arc::new(SegIndex::from_segments(IndexKind::Grid, 2.0, &none));
        let idx = OverlayIndex::over(
            empty_base,
            5,
            SegIndex::from_segments(IndexKind::Grid, 2.0, &items),
        );
        let got = idx.query(&q);
        assert_eq!(got.len(), items.len());
        assert!(got.iter().all(|&id| id >= 5));
    }

    #[test]
    #[should_panic(expected = "lattice mismatch")]
    fn cell_mismatch_panics() {
        let items = field(4, 0.0, 0.0);
        let base = Arc::new(SegIndex::from_segments(IndexKind::Grid, 2.0, &items));
        let _ = OverlayIndex::over(
            base,
            4,
            SegIndex::from_segments(IndexKind::Grid, 3.0, &items),
        );
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn base_id_overflow_panics() {
        let items = field(4, 0.0, 0.0);
        let base = Arc::new(SegIndex::from_segments(IndexKind::Grid, 2.0, &items));
        let _ = OverlayIndex::over(
            base,
            2,
            SegIndex::from_segments(IndexKind::Grid, 2.0, &items),
        );
    }
}
