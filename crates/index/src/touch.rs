//! Touched-cell recording for incremental re-routing (remembered sets).
//!
//! The serving loop (`meander-fleet`'s `FleetSession`) re-routes only the
//! units an edit could have affected. That is sound because candidacy in
//! every spatial structure here is **lattice cell intersection**: an edge is
//! a candidate for a query window exactly when the cell range of its bbox
//! intersects the cell range of the window (`SegmentGrid::cell_coord`
//! quantization; the R-tree honours the same contract — see [`crate::spatial`]).
//! So if a unit records the quantized span of every candidate-query window it
//! issued, and an edit's damage (the quantized bboxes of the old and new
//! inflated polygons) intersects none of them, then no query the unit made
//! would have answered differently — and since the engine is deterministic,
//! its replay (and output) is bit-identical.
//!
//! Two wrinkles the types here encode:
//!
//! * **Strata.** Quantization depends on the cell size, and damage geometry
//!   depends on the obstacle inflation — both derived from the unit's design
//!   rules (diff-pair units route under *virtualized* rules). A unit may
//!   therefore touch several `(cell, inflate)` lattices; [`CellTouches`]
//!   keeps one rect set per [`StratumKey`], and dirty sets carry damage
//!   quantized per stratum.
//! * **Unclamped windows.** The grid clamps query spans to its occupied
//!   bounds as a pure optimization; clamping is answer-preserving, but the
//!   occupied bounds themselves shift under edits. Recording therefore uses
//!   the **unclamped** quantized window span — the candidacy predicate
//!   "edge-bbox cells ∩ window cells ≠ ∅" is exactly what clamped queries
//!   answer, stated without reference to mutable bounds.

use meander_geom::Rect;

/// Rects kept per stratum before collapsing to a single bounding rect.
/// Collapse is conservative (a superset of the touched cells), so it only
/// costs precision, never soundness.
const MAX_RECTS: usize = 256;

/// Identifies the lattice a touch or a damage rect is quantized on:
/// bit patterns of the cell size and the obstacle inflation derived from the
/// design rules the unit routed under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StratumKey {
    /// `f64::to_bits` of the lattice cell size.
    pub cell: u64,
    /// `f64::to_bits` of the obstacle inflation distance.
    pub inflate: u64,
}

impl StratumKey {
    /// Key from the raw derived floats.
    pub fn new(cell: f64, inflate: f64) -> Self {
        StratumKey {
            cell: cell.to_bits(),
            inflate: inflate.to_bits(),
        }
    }

    /// The lattice cell size.
    pub fn cell_size(&self) -> f64 {
        f64::from_bits(self.cell)
    }

    /// The obstacle inflation distance.
    pub fn inflation(&self) -> f64 {
        f64::from_bits(self.inflate)
    }
}

/// Inclusive lattice cell range `[cx0, cy0, cx1, cy1]` of a world rect,
/// using exactly the grid's `cell_coord` quantization (floor division).
pub fn quantize(cell: f64, r: &Rect) -> [i64; 4] {
    let q = |v: f64| (v / cell).floor() as i64;
    [q(r.min.x), q(r.min.y), q(r.max.x), q(r.max.y)]
}

#[inline]
fn contains(outer: &[i64; 4], inner: &[i64; 4]) -> bool {
    outer[0] <= inner[0] && outer[1] <= inner[1] && outer[2] >= inner[2] && outer[3] >= inner[3]
}

#[inline]
fn overlaps(a: &[i64; 4], b: &[i64; 4]) -> bool {
    a[0] <= b[2] && b[0] <= a[2] && a[1] <= b[3] && b[1] <= a[3]
}

#[inline]
fn rect_cells(r: &[i64; 4]) -> u64 {
    let w = (r[2] - r[0] + 1).max(0) as u64;
    let h = (r[3] - r[1] + 1).max(0) as u64;
    w.saturating_mul(h)
}

#[derive(Debug, Clone)]
struct Stratum {
    key: StratumKey,
    rects: Vec<[i64; 4]>,
}

impl Stratum {
    /// Containment-deduplicating insert with a conservative collapse cap.
    fn add(&mut self, rect: [i64; 4]) {
        if self.rects.iter().any(|r| contains(r, &rect)) {
            return;
        }
        self.rects.retain(|r| !contains(&rect, r));
        self.rects.push(rect);
        if self.rects.len() > MAX_RECTS {
            let mut b = rect;
            for r in &self.rects {
                b[0] = b[0].min(r[0]);
                b[1] = b[1].min(r[1]);
                b[2] = b[2].max(r[2]);
                b[3] = b[3].max(r[3]);
            }
            self.rects.clear();
            self.rects.push(b);
        }
    }

    fn cells(&self) -> u64 {
        self.rects
            .iter()
            .fold(0u64, |acc, r| acc.saturating_add(rect_cells(r)))
    }
}

fn stratum_mut(strata: &mut Vec<Stratum>, key: StratumKey) -> &mut Stratum {
    if let Some(i) = strata.iter().position(|s| s.key == key) {
        &mut strata[i]
    } else {
        strata.push(Stratum {
            key,
            rects: Vec::new(),
        });
        let last = strata.len() - 1;
        &mut strata[last]
    }
}

/// The set of lattice cells a unit's candidate queries touched, per stratum.
///
/// Recorded during routing (see `extend_trace_shared_recorded` in
/// `meander-core`); tested against [`DirtyCells`] to decide whether an edit
/// can affect the unit. [`CellTouches::mark_all`] is the conservative escape
/// hatch for engine shapes whose queries are not funneled through the
/// recordable path (e.g. the full-rebuild fallback engine) — such units are
/// always considered dirty.
#[derive(Debug, Clone, Default)]
pub struct CellTouches {
    all: bool,
    strata: Vec<Stratum>,
}

impl CellTouches {
    /// An empty touched set.
    pub fn new() -> Self {
        CellTouches::default()
    }

    /// Conservatively marks the unit as touching *everything*: it will be
    /// re-routed on any damage.
    pub fn mark_all(&mut self) {
        self.all = true;
        self.strata.clear();
    }

    /// Whether this set is the conservative "touches everything" marker.
    pub fn is_all(&self) -> bool {
        self.all
    }

    /// Records one candidate-query window on the `(cell, inflate)` stratum.
    /// `window` is the **unclamped** world-space query rect.
    pub fn record(&mut self, cell: f64, inflate: f64, window: &Rect) {
        if self.all {
            return;
        }
        let rect = quantize(cell, window);
        stratum_mut(&mut self.strata, StratumKey::new(cell, inflate)).add(rect);
    }

    /// The stratum keys this unit touched.
    pub fn strata(&self) -> impl Iterator<Item = StratumKey> + '_ {
        self.strata.iter().map(|s| s.key)
    }

    /// Number of rects retained (compactness stat).
    pub fn rect_count(&self) -> usize {
        self.strata.iter().map(|s| s.rects.len()).sum()
    }

    /// Total covered cells, summed over strata (overlaps double-count; this
    /// is a stat, not a set cardinality).
    pub fn cells(&self) -> u64 {
        self.strata
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.cells()))
    }

    /// Whether any recorded window intersects the dirty set. `mark_all` on
    /// either side intersects everything (unless the dirty set is empty).
    pub fn intersects(&self, dirty: &DirtyCells) -> bool {
        if dirty.is_empty() {
            return false;
        }
        if self.all || dirty.all {
            return true;
        }
        for s in &self.strata {
            if let Some(d) = dirty.strata.iter().find(|d| d.key == s.key) {
                for a in &s.rects {
                    if d.rects.iter().any(|b| overlaps(a, b)) {
                        return true;
                    }
                }
            }
        }
        false
    }
}

/// Accumulated damage from edits: per-stratum quantized rects covering the
/// old and new inflated geometry of every edited obstacle since the last
/// re-route. One `DirtyCells` per obstacle library plus one per board.
#[derive(Debug, Clone, Default)]
pub struct DirtyCells {
    all: bool,
    strata: Vec<Stratum>,
}

impl DirtyCells {
    /// An empty (clean) dirty set.
    pub fn new() -> Self {
        DirtyCells::default()
    }

    /// Drops all accumulated damage (called after a re-route consumes it).
    pub fn clear(&mut self) {
        self.all = false;
        self.strata.clear();
    }

    /// Marks everything dirty (structural edits).
    pub fn mark_all(&mut self) {
        self.all = true;
        self.strata.clear();
    }

    /// Whether everything is dirty.
    pub fn is_all(&self) -> bool {
        self.all
    }

    /// Whether no damage is recorded at all.
    pub fn is_empty(&self) -> bool {
        !self.all && self.strata.iter().all(|s| s.rects.is_empty())
    }

    /// Adds one quantized damage rect on a stratum.
    pub fn add(&mut self, key: StratumKey, rect: [i64; 4]) {
        if self.all {
            return;
        }
        stratum_mut(&mut self.strata, key).add(rect);
    }

    /// Total dirty cells, summed over strata.
    pub fn cells(&self) -> u64 {
        if self.all {
            return u64::MAX;
        }
        self.strata
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.cells()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meander_geom::Point;

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn quantize_floors_like_the_grid() {
        // Mirrors SegmentGrid::cell_coord: (v / cell).floor().
        assert_eq!(quantize(4.0, &rect(-0.1, 0.0, 3.9, 4.0)), [-1, 0, 0, 1]);
        assert_eq!(quantize(2.0, &rect(0.0, 0.0, 0.0, 0.0)), [0, 0, 0, 0]);
    }

    #[test]
    fn containment_dedups_and_supersedes() {
        let mut t = CellTouches::new();
        t.record(1.0, 0.0, &rect(0.0, 0.0, 10.0, 10.0));
        t.record(1.0, 0.0, &rect(2.0, 2.0, 5.0, 5.0)); // contained: dropped
        assert_eq!(t.rect_count(), 1);
        t.record(1.0, 0.0, &rect(-5.0, -5.0, 20.0, 20.0)); // supersedes
        assert_eq!(t.rect_count(), 1);
        assert_eq!(t.cells(), 26 * 26);
    }

    #[test]
    fn strata_are_kept_apart() {
        let mut t = CellTouches::new();
        t.record(1.0, 0.0, &rect(0.0, 0.0, 1.0, 1.0));
        t.record(2.0, 0.5, &rect(0.0, 0.0, 1.0, 1.0));
        assert_eq!(t.strata().count(), 2);

        let mut d = DirtyCells::new();
        // Damage on a stratum the unit never touched: no intersection.
        d.add(StratumKey::new(8.0, 0.0), [0, 0, 100, 100]);
        assert!(!t.intersects(&d));
        // Same stratum, disjoint cells: still clean.
        d.add(StratumKey::new(1.0, 0.0), [50, 50, 60, 60]);
        assert!(!t.intersects(&d));
        // Same stratum, overlapping cells: dirty.
        d.add(StratumKey::new(1.0, 0.0), [1, 1, 3, 3]);
        assert!(t.intersects(&d));
    }

    #[test]
    fn mark_all_is_conservative_but_ignores_empty_damage() {
        let mut t = CellTouches::new();
        t.mark_all();
        assert!(t.is_all());
        let mut d = DirtyCells::new();
        assert!(!t.intersects(&d)); // no damage → nothing to re-route
        d.add(StratumKey::new(1.0, 0.0), [0, 0, 0, 0]);
        assert!(t.intersects(&d));

        let clean = CellTouches::new();
        let mut all = DirtyCells::new();
        all.mark_all();
        assert!(clean.intersects(&all));
        assert_eq!(all.cells(), u64::MAX);
        all.clear();
        assert!(all.is_empty());
    }

    #[test]
    fn overflow_collapses_to_bounding_rect() {
        let mut t = CellTouches::new();
        for i in 0..(MAX_RECTS as i64 + 8) {
            let x = 10.0 * i as f64;
            t.record(1.0, 0.0, &rect(x, 0.0, x + 1.0, 1.0));
        }
        assert!(t.rect_count() <= MAX_RECTS);
        // Still a superset: every recorded window intersects.
        let mut d = DirtyCells::new();
        d.add(StratumKey::new(1.0, 0.0), [0, 0, 1, 1]);
        assert!(t.intersects(&d));
    }
}
