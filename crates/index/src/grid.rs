//! Uniform grid over segments for local edge queries.

use meander_geom::{Rect, Segment};
use std::collections::HashMap;

/// A uniform hash-grid spatial index over segments.
///
/// The "sides" shrinking step (paper Eq. 11) intersects a URA's two side
/// segments with the edges of every polygon near the pattern. A URA is local
/// — at most a few `dgap` across — so a uniform grid sized to the typical
/// URA makes candidate retrieval effectively `O(output)`.
///
/// Segments are stored by id (the caller keeps the geometry); each segment
/// is registered in every cell its bounding box overlaps, and queries return
/// deduplicated candidate ids whose cells intersect the query rectangle.
///
/// ```
/// use meander_geom::{Point, Rect, Segment};
/// use meander_index::SegmentGrid;
///
/// let mut grid = SegmentGrid::new(5.0);
/// grid.insert(0, &Segment::new(Point::new(0.0, 0.0), Point::new(3.0, 0.0)));
/// grid.insert(1, &Segment::new(Point::new(50.0, 50.0), Point::new(60.0, 50.0)));
/// let near = grid.query(&Rect::new(Point::new(-1.0, -1.0), Point::new(4.0, 4.0)));
/// assert_eq!(near, vec![0]);
/// ```
#[derive(Debug, Clone)]
pub struct SegmentGrid {
    cell: f64,
    cells: HashMap<(i64, i64), Vec<u32>>,
    len: usize,
}

impl SegmentGrid {
    /// Creates a grid with the given cell size.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    pub fn new(cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell size must be positive"
        );
        SegmentGrid {
            cell: cell_size,
            cells: HashMap::new(),
            len: 0,
        }
    }

    /// Number of inserted segments.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no segment has been inserted.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn cell_of(&self, x: f64, y: f64) -> (i64, i64) {
        ((x / self.cell).floor() as i64, (y / self.cell).floor() as i64)
    }

    /// Registers `seg` under `id` in every cell its bbox overlaps.
    pub fn insert(&mut self, id: u32, seg: &Segment) {
        let bb = seg.bbox();
        let (cx0, cy0) = self.cell_of(bb.min.x, bb.min.y);
        let (cx1, cy1) = self.cell_of(bb.max.x, bb.max.y);
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                self.cells.entry((cx, cy)).or_default().push(id);
            }
        }
        self.len += 1;
    }

    /// Builds a grid from an id-ordered segment list.
    pub fn from_segments(cell_size: f64, segments: &[Segment]) -> Self {
        let mut g = SegmentGrid::new(cell_size);
        for (i, s) in segments.iter().enumerate() {
            g.insert(i as u32, s);
        }
        g
    }

    /// Returns the sorted, deduplicated ids of segments whose cells overlap
    /// `r`. A superset of the truly-intersecting set — callers run the exact
    /// predicate on the candidates.
    pub fn query(&self, r: &Rect) -> Vec<u32> {
        let (cx0, cy0) = self.cell_of(r.min.x, r.min.y);
        let (cx1, cy1) = self.cell_of(r.max.x, r.max.y);
        let mut out = Vec::new();
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                if let Some(ids) = self.cells.get(&(cx, cy)) {
                    out.extend_from_slice(ids);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meander_geom::Point;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn near_and_far() {
        let mut g = SegmentGrid::new(2.0);
        g.insert(0, &seg(0.0, 0.0, 1.0, 1.0));
        g.insert(1, &seg(10.0, 10.0, 12.0, 10.0));
        assert_eq!(g.len(), 2);
        let r = Rect::new(Point::new(-0.5, -0.5), Point::new(1.5, 1.5));
        assert_eq!(g.query(&r), vec![0]);
        let r_all = Rect::new(Point::new(-1.0, -1.0), Point::new(13.0, 13.0));
        assert_eq!(g.query(&r_all), vec![0, 1]);
    }

    #[test]
    fn long_segment_spans_many_cells() {
        let mut g = SegmentGrid::new(1.0);
        g.insert(7, &seg(0.0, 0.5, 25.0, 0.5));
        // Query in the middle of the span still finds it.
        let r = Rect::new(Point::new(12.0, 0.0), Point::new(13.0, 1.0));
        assert_eq!(g.query(&r), vec![7]);
    }

    #[test]
    fn negative_coordinates() {
        let mut g = SegmentGrid::new(3.0);
        g.insert(3, &seg(-10.0, -10.0, -8.0, -9.0));
        let r = Rect::new(Point::new(-11.0, -11.0), Point::new(-7.0, -8.0));
        assert_eq!(g.query(&r), vec![3]);
        let far = Rect::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        assert!(g.query(&far).is_empty());
    }

    #[test]
    fn query_is_superset_of_exact_hits() {
        let segs: Vec<Segment> = (0..40)
            .map(|i| {
                let x = (i % 8) as f64 * 3.0;
                let y = (i / 8) as f64 * 3.0;
                seg(x, y, x + 2.0, y + 1.0)
            })
            .collect();
        let g = SegmentGrid::from_segments(2.5, &segs);
        let r = Rect::new(Point::new(4.0, 2.0), Point::new(10.0, 8.0));
        let candidates = g.query(&r);
        for (i, s) in segs.iter().enumerate() {
            if r.intersects(&s.bbox()) {
                assert!(
                    candidates.contains(&(i as u32)),
                    "segment {i} bbox-intersects query but was not a candidate"
                );
            }
        }
    }

    #[test]
    fn dedup_ids() {
        let mut g = SegmentGrid::new(0.5);
        // Crosses many cells; id must be reported once.
        g.insert(1, &seg(0.0, 0.0, 10.0, 10.0));
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        assert_eq!(g.query(&r), vec![1]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_size_panics() {
        let _ = SegmentGrid::new(0.0);
    }
}
