//! Uniform grid over segments for local edge queries.

use meander_geom::{Rect, SegBatch, Segment};
use std::collections::HashMap;

/// A uniform hash-grid spatial index over segments.
///
/// The "sides" shrinking step (paper Eq. 11) intersects a URA's two side
/// segments with the edges of every polygon near the pattern. A URA is local
/// — at most a few `dgap` across — so a uniform grid sized to the typical
/// URA makes candidate retrieval effectively `O(output)`.
///
/// Segments are stored by id (the caller keeps the geometry); each segment
/// is registered in every cell its bounding box overlaps, and queries return
/// deduplicated candidate ids whose cells intersect the query rectangle.
///
/// ```
/// use meander_geom::{Point, Rect, Segment};
/// use meander_index::SegmentGrid;
///
/// let mut grid = SegmentGrid::new(5.0);
/// grid.insert(0, &Segment::new(Point::new(0.0, 0.0), Point::new(3.0, 0.0)));
/// grid.insert(1, &Segment::new(Point::new(50.0, 50.0), Point::new(60.0, 50.0)));
/// let near = grid.query(&Rect::new(Point::new(-1.0, -1.0), Point::new(4.0, 4.0)));
/// assert_eq!(near, vec![0]);
/// ```
#[derive(Debug, Clone)]
pub struct SegmentGrid {
    cell: f64,
    cells: HashMap<(i64, i64), Vec<u32>>,
    len: usize,
    max_id: u32,
    /// Occupied cell-coordinate bounds `(cx0, cy0, cx1, cy1)`; queries are
    /// clamped to this range. Without the clamp a query rectangle much
    /// larger than the occupied region (the extension engine's candidate
    /// windows are `remaining/2` tall early in a run) walks every *empty*
    /// cell coordinate it covers — `O(window area / cell²)` hash probes
    /// per query for nothing.
    occupied: Option<(i64, i64, i64, i64)>,
    /// Endpoint coordinates per id (`[ax, ay, bx, by]`), so
    /// [`SegmentGrid::query_batch`] can fill SoA buffers straight from the
    /// slab without the caller's id → geometry re-gather. Rect entries
    /// store their min → max diagonal.
    coords: Vec<[f64; 4]>,
}

/// Reusable query state for [`SegmentGrid::query_scratch`] and
/// [`crate::RTree::query_scratch`].
///
/// For the grid it holds the visited-stamp table: deduplicating candidates
/// with `sort + dedup` costs `O(k log k)` per query and the stamp approach
/// is `O(k)` — each id's slot stores the stamp of the last query that saw
/// it, and a slot equal to the current stamp means "already emitted". For
/// the R-tree it holds the traversal stack instead (the tree never yields
/// duplicates). One scratch serves many indexes of either kind; the marks
/// table grows to the largest id seen.
#[derive(Debug, Clone, Default)]
pub struct GridScratch {
    marks: Vec<u32>,
    stamp: u32,
    /// Node-descent stack for the R-tree arm.
    pub(crate) stack: Vec<u32>,
    /// Staging buffer for [`crate::OverlayIndex`]'s second query (the
    /// overlay side cannot write into the caller's output buffer directly —
    /// inner queries clear their target).
    pub(crate) overlay_buf: Vec<u32>,
}

impl GridScratch {
    /// Fresh scratch (marks grow on demand).
    pub fn new() -> Self {
        GridScratch::default()
    }

    fn begin(&mut self, max_id: u32) {
        let need = max_id as usize + 1;
        if self.marks.len() < need {
            self.marks.resize(need, 0);
        }
        // Stamp 0 marks "never seen"; skip it on wrap.
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            self.marks.fill(0);
            self.stamp = 1;
        }
    }

    #[inline]
    fn first_visit(&mut self, id: u32) -> bool {
        let slot = &mut self.marks[id as usize];
        if *slot == self.stamp {
            false
        } else {
            *slot = self.stamp;
            true
        }
    }
}

impl SegmentGrid {
    /// Creates a grid with the given cell size.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    pub fn new(cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell size must be positive"
        );
        SegmentGrid {
            cell: cell_size,
            cells: HashMap::new(),
            len: 0,
            max_id: 0,
            occupied: None,
            coords: Vec::new(),
        }
    }

    /// The grid's cell size.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// The cell coordinate a world coordinate falls into — the exact
    /// quantization [`SegmentGrid::insert`] and the queries use, exposed so
    /// batched sweeps can reproduce per-column candidate membership without
    /// issuing one query per column.
    #[inline]
    pub fn cell_coord(&self, v: f64) -> i64 {
        (v / self.cell).floor() as i64
    }

    /// Number of inserted segments.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no segment has been inserted.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn cell_of(&self, x: f64, y: f64) -> (i64, i64) {
        (self.cell_coord(x), self.cell_coord(y))
    }

    /// Grows the occupied-cell bounds to cover `[cx0, cx1] × [cy0, cy1]`.
    #[inline]
    fn cover(&mut self, cx0: i64, cy0: i64, cx1: i64, cy1: i64) {
        self.occupied = Some(match self.occupied {
            None => (cx0, cy0, cx1, cy1),
            Some((ox0, oy0, ox1, oy1)) => (ox0.min(cx0), oy0.min(cy0), ox1.max(cx1), oy1.max(cy1)),
        });
    }

    /// The query cell range for `r`: its cell span clamped to the occupied
    /// bounds. Empty (`None`) when the grid has no entries or `r` lies
    /// entirely outside them.
    #[inline]
    fn clamped_range(&self, r: &Rect) -> Option<(i64, i64, i64, i64)> {
        let (ox0, oy0, ox1, oy1) = self.occupied?;
        let (cx0, cy0) = self.cell_of(r.min.x, r.min.y);
        let (cx1, cy1) = self.cell_of(r.max.x, r.max.y);
        let (cx0, cy0) = (cx0.max(ox0), cy0.max(oy0));
        let (cx1, cy1) = (cx1.min(ox1), cy1.min(oy1));
        if cx0 > cx1 || cy0 > cy1 {
            return None;
        }
        Some((cx0, cy0, cx1, cy1))
    }

    /// Stores the coordinate slab entry for `id` (grown on demand).
    #[inline]
    fn store_coords(&mut self, id: u32, entry: [f64; 4]) {
        let need = id as usize + 1;
        if self.coords.len() < need {
            self.coords.resize(need, [0.0; 4]);
        }
        self.coords[id as usize] = entry;
    }

    /// Registers `seg` under `id` in every cell its bbox overlaps.
    pub fn insert(&mut self, id: u32, seg: &Segment) {
        let bb = seg.bbox();
        let (cx0, cy0) = self.cell_of(bb.min.x, bb.min.y);
        let (cx1, cy1) = self.cell_of(bb.max.x, bb.max.y);
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                self.cells.entry((cx, cy)).or_default().push(id);
            }
        }
        self.cover(cx0, cy0, cx1, cy1);
        self.store_coords(id, [seg.a.x, seg.a.y, seg.b.x, seg.b.y]);
        self.len += 1;
        self.max_id = self.max_id.max(id);
    }

    /// Registers an axis-aligned rectangle under `id` (for callers indexing
    /// bounding boxes rather than true segments).
    pub fn insert_rect(&mut self, id: u32, r: &Rect) {
        let (cx0, cy0) = self.cell_of(r.min.x, r.min.y);
        let (cx1, cy1) = self.cell_of(r.max.x, r.max.y);
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                self.cells.entry((cx, cy)).or_default().push(id);
            }
        }
        self.cover(cx0, cy0, cx1, cy1);
        self.store_coords(id, [r.min.x, r.min.y, r.max.x, r.max.y]);
        self.len += 1;
        self.max_id = self.max_id.max(id);
    }

    /// Largest id ever inserted (0 when empty).
    #[inline]
    pub fn max_id(&self) -> u32 {
        self.max_id
    }

    /// Builds a grid from an id-ordered segment list.
    pub fn from_segments(cell_size: f64, segments: &[Segment]) -> Self {
        let mut g = SegmentGrid::new(cell_size);
        for (i, s) in segments.iter().enumerate() {
            g.insert(i as u32, s);
        }
        g
    }

    /// Returns the sorted, deduplicated ids of segments whose cells overlap
    /// `r`. A superset of the truly-intersecting set — callers run the exact
    /// predicate on the candidates.
    pub fn query(&self, r: &Rect) -> Vec<u32> {
        let mut out = Vec::new();
        self.query_into(r, &mut out);
        out
    }

    /// [`SegmentGrid::query`] into a caller-owned buffer, so hot loops can
    /// reuse the allocation. The buffer is cleared first; the result is
    /// sorted and deduplicated.
    pub fn query_into(&self, r: &Rect, out: &mut Vec<u32>) {
        out.clear();
        let Some((cx0, cy0, cx1, cy1)) = self.clamped_range(r) else {
            return;
        };
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                if let Some(ids) = self.cells.get(&(cx, cy)) {
                    out.extend_from_slice(ids);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// [`SegmentGrid::query_into`] with visited-stamp deduplication: `O(k)`
    /// instead of `O(k log k)` per query, at the cost of a caller-owned
    /// [`GridScratch`]. Candidates come out in ascending id order (the same
    /// order as [`SegmentGrid::query`]).
    pub fn query_scratch(&self, r: &Rect, scratch: &mut GridScratch, out: &mut Vec<u32>) {
        out.clear();
        let Some((cx0, cy0, cx1, cy1)) = self.clamped_range(r) else {
            return;
        };
        scratch.begin(self.max_id);
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                if let Some(ids) = self.cells.get(&(cx, cy)) {
                    for &id in ids {
                        if scratch.first_visit(id) {
                            out.push(id);
                        }
                    }
                }
            }
        }
        // Cheap for the near-sorted outputs cell iteration produces, and
        // keeps the contract aligned with `query`.
        out.sort_unstable();
    }

    /// [`SegmentGrid::query_scratch`] that additionally materializes the
    /// candidates' geometry into a reused SoA [`SegBatch`], straight from
    /// the grid's coordinate slab: `batch.get(k)` is the segment inserted
    /// under `ids[k]`. This is the entry point for the batched DRC scan and
    /// shrink stage 1 — the caller keeps the ids for ownership lookups but
    /// never re-gathers geometry through them.
    ///
    /// Ids registered via [`SegmentGrid::insert_rect`] come out as their
    /// min → max diagonal; batched distance kernels are only meaningful on
    /// grids populated through [`SegmentGrid::insert`].
    pub fn query_batch(
        &self,
        r: &Rect,
        scratch: &mut GridScratch,
        ids: &mut Vec<u32>,
        batch: &mut SegBatch,
    ) {
        self.query_scratch(r, scratch, ids);
        self.fill_batch(ids, batch);
    }

    /// Materializes the geometry of `ids` (previously returned by a query)
    /// into `batch`, straight from the coordinate slab — for callers that
    /// filter candidates between the query and the kernel so no lane is
    /// spent on ids a cheap ownership test already rejects.
    pub fn fill_batch(&self, ids: &[u32], batch: &mut SegBatch) {
        batch.clear();
        for &id in ids {
            let c = self.coords[id as usize];
            batch.push_coords(c[0], c[1], c[2], c[3]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meander_geom::Point;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn near_and_far() {
        let mut g = SegmentGrid::new(2.0);
        g.insert(0, &seg(0.0, 0.0, 1.0, 1.0));
        g.insert(1, &seg(10.0, 10.0, 12.0, 10.0));
        assert_eq!(g.len(), 2);
        let r = Rect::new(Point::new(-0.5, -0.5), Point::new(1.5, 1.5));
        assert_eq!(g.query(&r), vec![0]);
        let r_all = Rect::new(Point::new(-1.0, -1.0), Point::new(13.0, 13.0));
        assert_eq!(g.query(&r_all), vec![0, 1]);
    }

    #[test]
    fn long_segment_spans_many_cells() {
        let mut g = SegmentGrid::new(1.0);
        g.insert(7, &seg(0.0, 0.5, 25.0, 0.5));
        // Query in the middle of the span still finds it.
        let r = Rect::new(Point::new(12.0, 0.0), Point::new(13.0, 1.0));
        assert_eq!(g.query(&r), vec![7]);
    }

    #[test]
    fn negative_coordinates() {
        let mut g = SegmentGrid::new(3.0);
        g.insert(3, &seg(-10.0, -10.0, -8.0, -9.0));
        let r = Rect::new(Point::new(-11.0, -11.0), Point::new(-7.0, -8.0));
        assert_eq!(g.query(&r), vec![3]);
        let far = Rect::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        assert!(g.query(&far).is_empty());
    }

    #[test]
    fn query_is_superset_of_exact_hits() {
        let segs: Vec<Segment> = (0..40)
            .map(|i| {
                let x = (i % 8) as f64 * 3.0;
                let y = (i / 8) as f64 * 3.0;
                seg(x, y, x + 2.0, y + 1.0)
            })
            .collect();
        let g = SegmentGrid::from_segments(2.5, &segs);
        let r = Rect::new(Point::new(4.0, 2.0), Point::new(10.0, 8.0));
        let candidates = g.query(&r);
        for (i, s) in segs.iter().enumerate() {
            if r.intersects(&s.bbox()) {
                assert!(
                    candidates.contains(&(i as u32)),
                    "segment {i} bbox-intersects query but was not a candidate"
                );
            }
        }
    }

    #[test]
    fn dedup_ids() {
        let mut g = SegmentGrid::new(0.5);
        // Crosses many cells; id must be reported once.
        g.insert(1, &seg(0.0, 0.0, 10.0, 10.0));
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        assert_eq!(g.query(&r), vec![1]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_size_panics() {
        let _ = SegmentGrid::new(0.0);
    }

    #[test]
    fn query_into_reuses_buffer() {
        let mut g = SegmentGrid::new(2.0);
        g.insert(0, &seg(0.0, 0.0, 1.0, 1.0));
        g.insert(1, &seg(10.0, 10.0, 12.0, 10.0));
        let mut buf = vec![99, 98, 97];
        g.query_into(
            &Rect::new(Point::new(-0.5, -0.5), Point::new(1.5, 1.5)),
            &mut buf,
        );
        assert_eq!(buf, vec![0]);
        g.query_into(
            &Rect::new(Point::new(-1.0, -1.0), Point::new(13.0, 13.0)),
            &mut buf,
        );
        assert_eq!(buf, vec![0, 1]);
    }

    #[test]
    fn query_scratch_matches_query() {
        let segs: Vec<Segment> = (0..60)
            .map(|i| {
                let x = (i % 8) as f64 * 2.0;
                let y = (i / 8) as f64 * 2.0;
                seg(x, y, x + 3.0, y + 2.0)
            })
            .collect();
        let g = SegmentGrid::from_segments(1.5, &segs);
        let mut scratch = GridScratch::new();
        let mut got = Vec::new();
        for qi in 0..20 {
            let q0 = Point::new(qi as f64 * 0.7 - 2.0, qi as f64 * 0.5 - 1.0);
            let r = Rect::new(q0, Point::new(q0.x + 5.0, q0.y + 4.0));
            g.query_scratch(&r, &mut scratch, &mut got);
            assert_eq!(got, g.query(&r), "query {qi} diverged");
        }
    }

    #[test]
    fn huge_query_windows_clamp_to_occupied_cells() {
        // A window thousands of cells tall must still answer from the few
        // occupied cells (and an empty grid answers immediately).
        let empty = SegmentGrid::new(1.0);
        let vast = Rect::new(Point::new(-1e6, -1e6), Point::new(1e6, 1e6));
        assert!(empty.query(&vast).is_empty());

        let mut g = SegmentGrid::new(1.0);
        g.insert(0, &seg(0.0, 0.0, 2.0, 0.0));
        g.insert(1, &seg(5.0, 3.0, 6.0, 3.0));
        assert_eq!(g.query(&vast), vec![0, 1]);
        let mut scratch = GridScratch::new();
        let mut out = Vec::new();
        g.query_scratch(&vast, &mut scratch, &mut out);
        assert_eq!(out, vec![0, 1]);
        // Disjoint-from-occupied window: empty without cell walking.
        let far = Rect::new(Point::new(1e5, 1e5), Point::new(2e5, 2e5));
        assert!(g.query(&far).is_empty());
    }

    #[test]
    fn query_batch_materializes_candidates_in_id_order() {
        let segs: Vec<Segment> = (0..30)
            .map(|i| {
                let x = (i % 6) as f64 * 4.0;
                let y = (i / 6) as f64 * 4.0;
                seg(x, y, x + 3.0, y + 1.5)
            })
            .collect();
        let g = SegmentGrid::from_segments(2.0, &segs);
        assert_eq!(g.cell_size(), 2.0);
        assert_eq!(g.cell_coord(-0.1), -1);
        assert_eq!(g.cell_coord(3.9), 1);
        let mut scratch = GridScratch::new();
        let mut ids = Vec::new();
        let mut batch = SegBatch::new();
        let r = Rect::new(Point::new(1.0, 1.0), Point::new(9.0, 9.0));
        g.query_batch(&r, &mut scratch, &mut ids, &mut batch);
        assert_eq!(ids, g.query(&r));
        assert_eq!(batch.len(), ids.len());
        for (k, &id) in ids.iter().enumerate() {
            assert_eq!(batch.get(k), segs[id as usize], "candidate {k}");
        }
    }

    #[test]
    fn insert_rect_registers_region() {
        let mut g = SegmentGrid::new(2.0);
        g.insert_rect(5, &Rect::new(Point::new(0.0, 0.0), Point::new(6.0, 6.0)));
        let hit = Rect::new(Point::new(3.0, 3.0), Point::new(4.0, 4.0));
        assert_eq!(g.query(&hit), vec![5]);
        let miss = Rect::new(Point::new(30.0, 30.0), Point::new(31.0, 31.0));
        assert!(g.query(&miss).is_empty());
    }
}
