//! Merge-sort tree for 2D orthogonal range reporting over a static point
//! set.

use meander_geom::{Point, Rect};

/// A static merge-sort tree (segment tree over x-rank, each node holding its
/// span's points sorted by y).
///
/// This is the exact structure of the paper's Sec. IV-D: build cost
/// `O(N log N)`, space `O(N log N)` ("each point appears at most log₂N
/// times"), and an `[x₁,x₂] × [y₁,y₂]` query visits `O(log N)` nodes doing a
/// binary search in each.
///
/// Each point carries a tag of type `T` (in the router: the polygon id the
/// node point belongs to), returned on query.
///
/// ```
/// use meander_geom::{Point, Rect};
/// use meander_index::MergeSortTree;
///
/// let tree = MergeSortTree::build(vec![
///     (Point::new(1.0, 1.0), "a"),
///     (Point::new(2.0, 5.0), "b"),
///     (Point::new(3.0, 2.0), "c"),
/// ]);
/// let hits = tree.query(&Rect::new(Point::new(0.0, 0.0), Point::new(2.5, 3.0)));
/// assert_eq!(hits.len(), 1);
/// assert_eq!(*hits[0].1, "a");
/// ```
#[derive(Debug, Clone)]
pub struct MergeSortTree<T> {
    /// Points sorted by x (then y); leaves of the tree.
    items: Vec<(Point, T)>,
    /// nodes[k] = indices into `items` for the k-th tree node's span, sorted
    /// by y.
    nodes: Vec<Vec<u32>>,
    n: usize,
}

impl<T> MergeSortTree<T> {
    /// Builds the tree from a point/tag list. Accepts duplicates.
    pub fn build(mut items: Vec<(Point, T)>) -> Self {
        items.sort_by(|a, b| {
            a.0.x
                .partial_cmp(&b.0.x)
                .expect("finite coordinates")
                .then(a.0.y.partial_cmp(&b.0.y).expect("finite coordinates"))
        });
        let n = items.len();
        let mut nodes = vec![Vec::new(); if n == 0 { 1 } else { 4 * n }];
        if n > 0 {
            Self::build_node(&items, &mut nodes, 1, 0, n - 1);
        }
        MergeSortTree { items, nodes, n }
    }

    fn build_node(items: &[(Point, T)], nodes: &mut [Vec<u32>], k: usize, lo: usize, hi: usize) {
        if lo == hi {
            nodes[k] = vec![lo as u32];
            return;
        }
        let mid = (lo + hi) / 2;
        Self::build_node(items, nodes, 2 * k, lo, mid);
        Self::build_node(items, nodes, 2 * k + 1, mid + 1, hi);
        // Merge children by y.
        let (left, right) = (
            std::mem::take(&mut nodes[2 * k]),
            std::mem::take(&mut nodes[2 * k + 1]),
        );
        let mut merged = Vec::with_capacity(left.len() + right.len());
        let (mut i, mut j) = (0, 0);
        while i < left.len() && j < right.len() {
            let yi = items[left[i] as usize].0.y;
            let yj = items[right[j] as usize].0.y;
            if yi <= yj {
                merged.push(left[i]);
                i += 1;
            } else {
                merged.push(right[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&left[i..]);
        merged.extend_from_slice(&right[j..]);
        nodes[2 * k] = left;
        nodes[2 * k + 1] = right;
        nodes[k] = merged;
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the tree holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Reports every `(point, tag)` with `x ∈ [r.min.x, r.max.x]` and
    /// `y ∈ [r.min.y, r.max.y]` (borders inclusive).
    pub fn query(&self, r: &Rect) -> Vec<(&Point, &T)> {
        let mut out = Vec::new();
        if self.n == 0 {
            return out;
        }
        // Locate the x-rank range by binary search on the sorted leaves.
        let lo = self.items.partition_point(|(p, _)| p.x < r.min.x);
        let hi = self.items.partition_point(|(p, _)| p.x <= r.max.x);
        if lo >= hi {
            return out;
        }
        self.query_node(1, 0, self.n - 1, lo, hi - 1, r.min.y, r.max.y, &mut out);
        out
    }

    /// Visits every `(point, tag)` in the rectangle without allocating —
    /// the hot-loop variant of [`MergeSortTree::query`] (the URA shrinking
    /// runs thousands of these per DP segment).
    pub fn for_each_in<F: FnMut(&Point, &T)>(&self, r: &Rect, mut f: F) {
        if self.n == 0 {
            return;
        }
        let lo = self.items.partition_point(|(p, _)| p.x < r.min.x);
        let hi = self.items.partition_point(|(p, _)| p.x <= r.max.x);
        if lo >= hi {
            return;
        }
        self.visit_node(1, 0, self.n - 1, lo, hi - 1, r.min.y, r.max.y, &mut f);
    }

    #[allow(clippy::too_many_arguments)]
    fn visit_node<F: FnMut(&Point, &T)>(
        &self,
        k: usize,
        lo: usize,
        hi: usize,
        qlo: usize,
        qhi: usize,
        ylo: f64,
        yhi: f64,
        f: &mut F,
    ) {
        if qhi < lo || hi < qlo {
            return;
        }
        if qlo <= lo && hi <= qhi {
            let ys = &self.nodes[k];
            let start = ys.partition_point(|&i| self.items[i as usize].0.y < ylo);
            for &i in &ys[start..] {
                let (p, t) = &self.items[i as usize];
                if p.y > yhi {
                    break;
                }
                f(p, t);
            }
            return;
        }
        let mid = (lo + hi) / 2;
        self.visit_node(2 * k, lo, mid, qlo, qhi, ylo, yhi, f);
        self.visit_node(2 * k + 1, mid + 1, hi, qlo, qhi, ylo, yhi, f);
    }

    /// Counts points in the rectangle without materializing them.
    pub fn count(&self, r: &Rect) -> usize {
        if self.n == 0 {
            return 0;
        }
        let lo = self.items.partition_point(|(p, _)| p.x < r.min.x);
        let hi = self.items.partition_point(|(p, _)| p.x <= r.max.x);
        if lo >= hi {
            return 0;
        }
        self.count_node(1, 0, self.n - 1, lo, hi - 1, r.min.y, r.max.y)
    }

    #[allow(clippy::too_many_arguments)]
    fn query_node<'a>(
        &'a self,
        k: usize,
        lo: usize,
        hi: usize,
        qlo: usize,
        qhi: usize,
        ylo: f64,
        yhi: f64,
        out: &mut Vec<(&'a Point, &'a T)>,
    ) {
        if qhi < lo || hi < qlo {
            return;
        }
        if qlo <= lo && hi <= qhi {
            let ys = &self.nodes[k];
            let start = ys.partition_point(|&i| self.items[i as usize].0.y < ylo);
            for &i in &ys[start..] {
                let (p, t) = &self.items[i as usize];
                if p.y > yhi {
                    break;
                }
                out.push((p, t));
            }
            return;
        }
        let mid = (lo + hi) / 2;
        self.query_node(2 * k, lo, mid, qlo, qhi, ylo, yhi, out);
        self.query_node(2 * k + 1, mid + 1, hi, qlo, qhi, ylo, yhi, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn count_node(
        &self,
        k: usize,
        lo: usize,
        hi: usize,
        qlo: usize,
        qhi: usize,
        ylo: f64,
        yhi: f64,
    ) -> usize {
        if qhi < lo || hi < qlo {
            return 0;
        }
        if qlo <= lo && hi <= qhi {
            let ys = &self.nodes[k];
            let start = ys.partition_point(|&i| self.items[i as usize].0.y < ylo);
            let end = ys.partition_point(|&i| self.items[i as usize].0.y <= yhi);
            return end.saturating_sub(start);
        }
        let mid = (lo + hi) / 2;
        self.count_node(2 * k, lo, mid, qlo, qhi, ylo, yhi)
            + self.count_node(2 * k + 1, mid + 1, hi, qlo, qhi, ylo, yhi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn empty_tree() {
        let t: MergeSortTree<u32> = MergeSortTree::build(vec![]);
        assert!(t.is_empty());
        assert!(t.query(&rect(-1.0, -1.0, 1.0, 1.0)).is_empty());
        assert_eq!(t.count(&rect(-1.0, -1.0, 1.0, 1.0)), 0);
    }

    #[test]
    fn single_point() {
        let t = MergeSortTree::build(vec![(Point::new(2.0, 3.0), 7u32)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.query(&rect(0.0, 0.0, 5.0, 5.0)).len(), 1);
        assert_eq!(t.query(&rect(0.0, 0.0, 1.0, 5.0)).len(), 0);
        // Border-inclusive.
        assert_eq!(t.query(&rect(2.0, 3.0, 2.0, 3.0)).len(), 1);
    }

    #[test]
    fn grid_of_points_range_counts() {
        // 10×10 integer grid, tag = row.
        let mut items = Vec::new();
        for x in 0..10 {
            for y in 0..10 {
                items.push((Point::new(x as f64, y as f64), y));
            }
        }
        let t = MergeSortTree::build(items);
        assert_eq!(t.count(&rect(0.0, 0.0, 9.0, 9.0)), 100);
        assert_eq!(t.count(&rect(2.0, 3.0, 4.0, 5.0)), 9);
        assert_eq!(t.query(&rect(2.0, 3.0, 4.0, 5.0)).len(), 9);
        // A rectangle strictly between grid coordinates is empty.
        assert_eq!(t.count(&rect(2.1, 3.1, 2.9, 3.9)), 0);
        // Tags come back correctly.
        for (p, &tag) in t.query(&rect(0.0, 7.0, 9.0, 7.0)) {
            assert_eq!(p.y, 7.0);
            assert_eq!(tag, 7);
        }
    }

    #[test]
    fn duplicate_points_all_reported() {
        let t = MergeSortTree::build(vec![
            (Point::new(1.0, 1.0), 'a'),
            (Point::new(1.0, 1.0), 'b'),
            (Point::new(1.0, 1.0), 'c'),
        ]);
        assert_eq!(t.query(&rect(1.0, 1.0, 1.0, 1.0)).len(), 3);
    }

    #[test]
    fn matches_brute_force() {
        // Deterministic pseudo-random points; compare against brute force.
        let mut seed = 0x12345678u64;
        let mut rand01 = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64 / 2.0)
        };
        let pts: Vec<(Point, usize)> = (0..500)
            .map(|i| (Point::new(rand01() * 50.0, rand01() * 50.0), i))
            .collect();
        let t = MergeSortTree::build(pts.clone());
        for _ in 0..50 {
            let x0 = rand01() * 50.0;
            let y0 = rand01() * 50.0;
            let r = rect(x0, y0, x0 + rand01() * 10.0, y0 + rand01() * 10.0);
            let mut expect: Vec<usize> = pts
                .iter()
                .filter(|(p, _)| r.contains(*p))
                .map(|(_, i)| *i)
                .collect();
            let mut got: Vec<usize> = t.query(&r).iter().map(|(_, &i)| i).collect();
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(expect, got);
            assert_eq!(t.count(&r), expect.len());
            let mut visited: Vec<usize> = Vec::new();
            t.for_each_in(&r, |_, &i| visited.push(i));
            visited.sort_unstable();
            assert_eq!(expect, visited, "for_each_in must match query");
        }
    }
}
