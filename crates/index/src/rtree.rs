//! STR-packed (Sort-Tile-Recursive) R-tree over segments.
//!
//! The routing flow's indexes are **build-once, query-many**: the world
//! index is built once per trace, a shrink context once per queue pop, the
//! DRC scan index once per check. That workload wants a *packed*, bulk-
//! loaded R-tree — no insertion logic, no node splitting, 100 % node fill —
//! which is exactly what Sort-Tile-Recursive packing produces: sort the
//! entries into √P vertical slices by x, sort each slice by y, cut leaves
//! of `NODE_CAP` (8) entries, then repeat one level up on the leaf rectangles
//! until a single root remains.
//!
//! ## Why candidate sets match the grid exactly
//!
//! The tree does **not** test float bounding boxes. Every entry rectangle
//! is quantized to the same integer cell lattice [`SegmentGrid`](crate::SegmentGrid) uses
//! (`⌊v / cell⌋` per axis) at build time, node rectangles are unions of
//! quantized child rectangles, and a query quantizes its window the same
//! way and clamps it to the occupied cell bounds before descending. An id
//! is reported exactly when its quantized rectangle intersects the clamped
//! quantized window — precisely the grid's membership rule — so for any
//! query the two structures return the **same id set** (property-tested in
//! `tests/props.rs` across 256 randomized boards). Downstream consumers
//! (DRC scan, shrink stage 1, DP profile sweeps) therefore produce
//! bit-identical results whichever index is selected; swapping is purely a
//! performance decision.
//!
//! What changes is the cost model. The grid registers an entry in every
//! cell its rectangle overlaps: a full-width plane edge smeared across a
//! thousand cells costs a thousand slots on insert and surfaces as a
//! duplicate candidate in every query crossing its row. Here it is one
//! entry under one leaf, found by descending `O(log n)` nodes.
//!
//! ```
//! use meander_geom::{Point, Rect, Segment};
//! use meander_index::RTree;
//!
//! let segs = vec![
//!     Segment::new(Point::new(0.0, 0.0), Point::new(3.0, 0.0)),
//!     Segment::new(Point::new(0.0, 0.0), Point::new(1000.0, 2.0)), // plane-sized
//!     Segment::new(Point::new(50.0, 50.0), Point::new(60.0, 50.0)),
//! ];
//! let tree = RTree::from_segments(5.0, &segs);
//! let near = tree.query(&Rect::new(Point::new(-1.0, -1.0), Point::new(4.0, 4.0)));
//! assert_eq!(near, vec![0, 1]);
//! ```

use crate::grid::GridScratch;
use meander_geom::{Rect, SegBatch, Segment};

/// Maximum entries per leaf and children per internal node. Eight keeps a
/// node's rectangle array within two cache lines and the tree shallow
/// (a 10k-edge board is four levels).
const NODE_CAP: usize = 8;

/// Quantized cell rectangle `(cx0, cy0, cx1, cy1)`, inclusive on both ends.
type CellRect = [i64; 4];

#[inline]
fn cells_intersect(a: &CellRect, b: &CellRect) -> bool {
    a[0] <= b[2] && b[0] <= a[2] && a[1] <= b[3] && b[1] <= a[3]
}

#[inline]
fn cells_contains(outer: &CellRect, inner: &CellRect) -> bool {
    outer[0] <= inner[0] && outer[1] <= inner[1] && inner[2] <= outer[2] && inner[3] <= outer[3]
}

#[inline]
fn cells_union(a: &CellRect, b: &CellRect) -> CellRect {
    [
        a[0].min(b[0]),
        a[1].min(b[1]),
        a[2].max(b[2]),
        a[3].max(b[3]),
    ]
}

/// One packed node. Children (for internal nodes) and entries (for leaves)
/// are contiguous ranges, a property of STR packing that keeps the node a
/// plain `(rect, range)` record.
#[derive(Debug, Clone)]
struct Node {
    /// Union of the child/entry cell rectangles.
    rect: CellRect,
    /// First child node index, or first entry index for a leaf.
    first: u32,
    /// Child/entry count.
    count: u32,
    /// Leaf marker.
    leaf: bool,
}

/// A bulk-loaded, STR-packed R-tree over segments, quantized to the same
/// cell lattice as [`SegmentGrid`](crate::SegmentGrid) (see the [module docs](self) for the
/// exact-candidate-set contract).
#[derive(Debug, Clone)]
pub struct RTree {
    cell: f64,
    len: usize,
    max_id: u32,
    /// Occupied cell bounds, as in the grid; queries clamp to this.
    occupied: Option<CellRect>,
    /// Entry ids in leaf-packed order.
    entry_ids: Vec<u32>,
    /// Quantized entry rectangles, parallel to `entry_ids`.
    entry_rects: Vec<CellRect>,
    /// All nodes; the root is the **last** node (levels are appended
    /// bottom-up).
    nodes: Vec<Node>,
    /// Endpoint coordinates per id (`[ax, ay, bx, by]`), the same slab
    /// contract as the grid's, for [`RTree::fill_batch`].
    coords: Vec<[f64; 4]>,
}

impl RTree {
    /// Bulk-loads a tree from an id-ordered segment list (item `i` gets
    /// id `i`) on a lattice of the given cell size.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    pub fn from_segments(cell_size: f64, segments: &[Segment]) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell size must be positive"
        );
        let mut tree = RTree {
            cell: cell_size,
            len: segments.len(),
            max_id: segments.len().saturating_sub(1) as u32,
            occupied: None,
            entry_ids: Vec::with_capacity(segments.len()),
            entry_rects: Vec::with_capacity(segments.len()),
            nodes: Vec::new(),
            coords: Vec::with_capacity(segments.len()),
        };
        // Quantize every entry once; ids are positional.
        let mut entries: Vec<(u32, CellRect)> = Vec::with_capacity(segments.len());
        for (i, s) in segments.iter().enumerate() {
            let bb = s.bbox();
            let r = [
                tree.cell_coord(bb.min.x),
                tree.cell_coord(bb.min.y),
                tree.cell_coord(bb.max.x),
                tree.cell_coord(bb.max.y),
            ];
            tree.occupied = Some(match tree.occupied {
                None => r,
                Some(o) => cells_union(&o, &r),
            });
            entries.push((i as u32, r));
            tree.coords.push([s.a.x, s.a.y, s.b.x, s.b.y]);
        }
        tree.pack(entries);
        tree
    }

    /// STR packing: slice by x-center, tile by y-center, then build upper
    /// levels the same way on node rectangles until one root remains.
    fn pack(&mut self, mut entries: Vec<(u32, CellRect)>) {
        if entries.is_empty() {
            return;
        }
        // Integer centers (doubled to avoid halving) keep the sort exact
        // and deterministic; ties break by id so rebuilds are stable.
        let cx = |r: &CellRect| r[0] + r[2];
        let cy = |r: &CellRect| r[1] + r[3];
        str_tile(&mut entries, |(id, r)| (cx(r), cy(r), *id), NODE_CAP);
        for (id, r) in entries {
            self.entry_ids.push(id);
            self.entry_rects.push(r);
        }

        // Leaf level.
        let mut level_start = self.nodes.len();
        for chunk_start in (0..self.entry_ids.len()).step_by(NODE_CAP) {
            let chunk_end = (chunk_start + NODE_CAP).min(self.entry_ids.len());
            let mut rect = self.entry_rects[chunk_start];
            for r in &self.entry_rects[chunk_start + 1..chunk_end] {
                rect = cells_union(&rect, r);
            }
            self.nodes.push(Node {
                rect,
                first: chunk_start as u32,
                count: (chunk_end - chunk_start) as u32,
                leaf: true,
            });
        }

        // Upper levels until a single root.
        while self.nodes.len() - level_start > 1 {
            let mut refs: Vec<(u32, CellRect)> = (level_start..self.nodes.len())
                .map(|i| (i as u32, self.nodes[i].rect))
                .collect();
            str_tile(&mut refs, |(i, r)| (r[0] + r[2], r[1] + r[3], *i), NODE_CAP);
            let next_start = self.nodes.len();
            for chunk in refs.chunks(NODE_CAP) {
                let mut rect = chunk[0].1;
                for (_, r) in &chunk[1..] {
                    rect = cells_union(&rect, r);
                }
                // Children must be contiguous for the `(first, count)`
                // node layout: re-order the just-built level in place is
                // not possible (indices are referenced), so child order is
                // recorded by copying the nodes into tile order below.
                self.nodes.push(Node {
                    rect,
                    first: 0, // fixed up after the level is reordered
                    count: chunk.len() as u32,
                    leaf: false,
                });
            }
            // Reorder the child level into tile order so each parent's
            // children are contiguous, then point parents at their ranges.
            let child_count = next_start - level_start;
            let mut reordered: Vec<Node> = Vec::with_capacity(child_count);
            for &(i, _) in &refs {
                reordered.push(self.nodes[i as usize].clone());
            }
            self.nodes[level_start..next_start].clone_from_slice(&reordered);
            let mut cursor = level_start as u32;
            for parent in &mut self.nodes[next_start..] {
                parent.first = cursor;
                cursor += parent.count;
            }
            level_start = next_start;
        }
    }

    /// The lattice cell size.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// The cell coordinate a world coordinate falls into — identical to
    /// [`SegmentGrid::cell_coord`](crate::SegmentGrid::cell_coord) for the
    /// same cell size.
    #[inline]
    pub fn cell_coord(&self, v: f64) -> i64 {
        (v / self.cell).floor() as i64
    }

    /// Number of indexed segments.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no segment is indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Largest id indexed (0 when empty).
    #[inline]
    pub fn max_id(&self) -> u32 {
        self.max_id
    }

    /// The query window for `r`: its cell span clamped to the occupied
    /// bounds (`None` when empty or disjoint) — the same clamp the grid
    /// applies, which is part of the exact-candidate-set contract.
    #[inline]
    fn clamped_window(&self, r: &Rect) -> Option<CellRect> {
        let o = self.occupied?;
        let q = [
            self.cell_coord(r.min.x).max(o[0]),
            self.cell_coord(r.min.y).max(o[1]),
            self.cell_coord(r.max.x).min(o[2]),
            self.cell_coord(r.max.y).min(o[3]),
        ];
        if q[0] > q[2] || q[1] > q[3] {
            return None;
        }
        Some(q)
    }

    fn query_with_stack(&self, r: &Rect, stack: &mut Vec<u32>, out: &mut Vec<u32>) {
        out.clear();
        let Some(q) = self.clamped_window(r) else {
            return;
        };
        let root = self.nodes.len() - 1; // root is last (levels appended bottom-up)
        if !cells_intersect(&self.nodes[root].rect, &q) {
            return;
        }
        stack.clear();
        stack.push(root as u32);
        // Invariant: every stacked node intersects `q` (tested before the
        // push), so a pop goes straight to its children/entries.
        while let Some(ni) = stack.pop() {
            let n = &self.nodes[ni as usize];
            let (first, count) = (n.first as usize, n.count as usize);
            if n.leaf {
                if cells_contains(&q, &n.rect) {
                    // Window swallows the leaf whole (common for the huge
                    // clearance windows of plane-sized obstacles): every
                    // entry matches, no per-entry tests.
                    out.extend_from_slice(&self.entry_ids[first..first + count]);
                } else {
                    for k in first..first + count {
                        if cells_intersect(&self.entry_rects[k], &q) {
                            out.push(self.entry_ids[k]);
                        }
                    }
                }
            } else {
                for c in first..first + count {
                    if cells_intersect(&self.nodes[c].rect, &q) {
                        stack.push(c as u32);
                    }
                }
            }
        }
        // Leaf packing is spatial, not id order; the contract is ascending
        // ids (ties in downstream strict-min reductions resolve by id).
        out.sort_unstable();
    }

    /// Ids whose quantized rectangle intersects `r`'s clamped cell window,
    /// ascending — the exact set [`SegmentGrid::query`](crate::SegmentGrid::query) returns for the
    /// same items and cell size.
    pub fn query(&self, r: &Rect) -> Vec<u32> {
        let mut out = Vec::new();
        self.query_into(r, &mut out);
        out
    }

    /// [`RTree::query`] into a caller-owned buffer (cleared first).
    pub fn query_into(&self, r: &Rect, out: &mut Vec<u32>) {
        let mut stack = Vec::new();
        self.query_with_stack(r, &mut stack, out);
    }

    /// [`RTree::query_into`] with caller-owned scratch (the traversal
    /// stack lives there, so hot loops stay allocation-free).
    pub fn query_scratch(&self, r: &Rect, scratch: &mut GridScratch, out: &mut Vec<u32>) {
        let mut stack = std::mem::take(&mut scratch.stack);
        self.query_with_stack(r, &mut stack, out);
        scratch.stack = stack;
    }

    /// [`RTree::query_scratch`] that also materializes the candidates'
    /// geometry into a reused SoA [`SegBatch`] from the coordinate slab
    /// (`batch.get(k)` is the segment indexed under `ids[k]`).
    pub fn query_batch(
        &self,
        r: &Rect,
        scratch: &mut GridScratch,
        ids: &mut Vec<u32>,
        batch: &mut SegBatch,
    ) {
        self.query_scratch(r, scratch, ids);
        self.fill_batch(ids, batch);
    }

    /// Materializes the geometry of `ids` into `batch`, straight from the
    /// coordinate slab.
    pub fn fill_batch(&self, ids: &[u32], batch: &mut SegBatch) {
        batch.clear();
        for &id in ids {
            let c = self.coords[id as usize];
            batch.push_coords(c[0], c[1], c[2], c[3]);
        }
    }
}

/// Sort-Tile-Recursive ordering in place: sort by the x key, cut into
/// vertical slices of `slice_len = ceil(sqrt(n / cap)) * cap` items, sort
/// each slice by the y key. After this, consecutive `cap`-sized chunks are
/// the packed nodes.
fn str_tile<T, K>(items: &mut [T], key: K, cap: usize)
where
    K: Fn(&T) -> (i64, i64, u32),
{
    let n = items.len();
    if n <= cap {
        items.sort_unstable_by_key(|t| {
            let (_, y, id) = key(t);
            (y, id)
        });
        return;
    }
    items.sort_unstable_by_key(|t| {
        let (x, _, id) = key(t);
        (x, id)
    });
    let n_nodes = n.div_ceil(cap);
    let n_slices = ((n_nodes as f64).sqrt().ceil() as usize).max(1);
    let slice_len = n_nodes.div_ceil(n_slices) * cap;
    for slice in items.chunks_mut(slice_len.max(cap)) {
        slice.sort_unstable_by_key(|t| {
            let (_, y, id) = key(t);
            (y, id)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::SegmentGrid;
    use meander_geom::Point;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    /// Deterministic pseudo-random stream (this crate has no rand dep
    /// outside dev).
    struct Lcg(u64);
    impl Lcg {
        fn next_f64(&mut self, lo: f64, hi: f64) -> f64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (self.0 >> 11) as f64 / (1u64 << 53) as f64;
            lo + u * (hi - lo)
        }
    }

    #[test]
    fn empty_tree_answers_empty() {
        let t = RTree::from_segments(1.0, &[]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        let vast = Rect::new(Point::new(-1e9, -1e9), Point::new(1e9, 1e9));
        assert!(t.query(&vast).is_empty());
        let mut scratch = GridScratch::new();
        let mut out = vec![7u32];
        t.query_scratch(&vast, &mut scratch, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn single_board_spanning_obstacle() {
        // One segment covering the whole board: every window hits it, and
        // windows outside the occupied bounds answer empty immediately.
        let t = RTree::from_segments(2.0, &[seg(-500.0, -500.0, 500.0, 500.0)]);
        assert_eq!(t.len(), 1);
        for q in [
            Rect::new(Point::new(-1.0, -1.0), Point::new(1.0, 1.0)),
            Rect::new(Point::new(-500.0, -500.0), Point::new(500.0, 500.0)),
            Rect::new(Point::new(499.0, -499.0), Point::new(499.5, -498.0)),
        ] {
            assert_eq!(t.query(&q), vec![0], "window {q:?}");
        }
        let far = Rect::new(Point::new(2000.0, 2000.0), Point::new(2001.0, 2001.0));
        assert!(t.query(&far).is_empty());
    }

    #[test]
    fn all_degenerate_rects() {
        // Zero-length segments (zero-area rectangles): each occupies one
        // lattice cell and must still be found exactly.
        let segs: Vec<Segment> = (0..40)
            .map(|i| {
                let x = (i % 8) as f64 * 3.0;
                let y = (i / 8) as f64 * 3.0;
                seg(x, y, x, y)
            })
            .collect();
        let t = RTree::from_segments(2.0, &segs);
        let g = SegmentGrid::from_segments(2.0, &segs);
        assert_eq!(t.len(), 40);
        for qi in 0..20 {
            let q0 = Point::new(qi as f64 * 1.3 - 2.0, qi as f64 * 0.9 - 1.0);
            let q = Rect::new(q0, Point::new(q0.x + 4.0, q0.y + 5.0));
            assert_eq!(t.query(&q), g.query(&q), "window {qi}");
        }
        let all = Rect::new(Point::new(-10.0, -10.0), Point::new(30.0, 30.0));
        assert_eq!(t.query(&all), (0..40u32).collect::<Vec<_>>());
    }

    #[test]
    fn matches_grid_on_mixed_extents() {
        // The plane-plus-vias regime the tree exists for: candidate sets
        // must equal the grid's on every window, including windows crossing
        // the plane edge's smear row.
        let mut rng = Lcg(42);
        let mut segs = vec![
            seg(-200.0, 10.0, 1800.0, 10.5), // full-width plane edge
            seg(-200.0, 140.0, 1800.0, 139.0),
        ];
        for _ in 0..300 {
            let x = rng.next_f64(-150.0, 1750.0);
            let y = rng.next_f64(15.0, 135.0);
            segs.push(seg(
                x,
                y,
                x + rng.next_f64(0.1, 6.0),
                y + rng.next_f64(-3.0, 3.0),
            ));
        }
        let cell = 7.0;
        let t = RTree::from_segments(cell, &segs);
        let g = SegmentGrid::from_segments(cell, &segs);
        let mut scratch = GridScratch::new();
        let mut got = Vec::new();
        for k in 0..120 {
            let x = rng.next_f64(-300.0, 1900.0);
            let y = rng.next_f64(-50.0, 200.0);
            let q = Rect::new(
                Point::new(x, y),
                Point::new(x + rng.next_f64(0.0, 400.0), y + rng.next_f64(0.0, 80.0)),
            );
            let expect = g.query(&q);
            assert_eq!(t.query(&q), expect, "window {k}");
            t.query_scratch(&q, &mut scratch, &mut got);
            assert_eq!(got, expect, "scratch window {k}");
        }
    }

    #[test]
    fn query_batch_materializes_in_id_order() {
        let segs: Vec<Segment> = (0..30)
            .map(|i| {
                let x = (i % 6) as f64 * 4.0;
                let y = (i / 6) as f64 * 4.0;
                seg(x, y, x + 3.0, y + 1.5)
            })
            .collect();
        let t = RTree::from_segments(2.0, &segs);
        assert_eq!(t.cell_size(), 2.0);
        assert_eq!(t.cell_coord(-0.1), -1);
        assert_eq!(t.cell_coord(3.9), 1);
        let mut scratch = GridScratch::new();
        let mut ids = Vec::new();
        let mut batch = SegBatch::new();
        let r = Rect::new(Point::new(1.0, 1.0), Point::new(9.0, 9.0));
        t.query_batch(&r, &mut scratch, &mut ids, &mut batch);
        assert_eq!(ids, SegmentGrid::from_segments(2.0, &segs).query(&r));
        assert_eq!(batch.len(), ids.len());
        for (k, &id) in ids.iter().enumerate() {
            assert_eq!(batch.get(k), segs[id as usize], "candidate {k}");
        }
    }

    #[test]
    fn deep_tree_is_well_formed() {
        // Enough entries for three levels; every entry reachable.
        let segs: Vec<Segment> = (0..700)
            .map(|i| {
                let x = (i % 30) as f64 * 5.0;
                let y = (i / 30) as f64 * 5.0;
                seg(x, y, x + 2.0, y + 2.0)
            })
            .collect();
        let t = RTree::from_segments(3.0, &segs);
        let all = Rect::new(Point::new(-10.0, -10.0), Point::new(200.0, 200.0));
        assert_eq!(t.query(&all), (0..700u32).collect::<Vec<_>>());
        assert!(t.nodes.len() > 700 / NODE_CAP, "multiple levels expected");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_size_panics() {
        let _ = RTree::from_segments(0.0, &[]);
    }
}
