//! The [`SpatialIndex`] trait, the [`IndexKind`] selection knob, and the
//! [`SegIndex`] dispatch enum every consumer stores.
//!
//! ## The `SpatialIndex` contract
//!
//! An implementation indexes a set of items (segments or rectangles) by
//! **id** on a uniform cell lattice of size [`SpatialIndex::cell_size`] and
//! answers conservative rectangle queries. The contract every consumer
//! (world index, DRC scan, shrink stage 1) relies on:
//!
//! * **Cell-quantized candidacy.** An id is a candidate for query rectangle
//!   `r` exactly when its bounding box's cell range intersects `r`'s cell
//!   range — the quantization being `⌊v / cell⌋` per axis
//!   ([`SpatialIndex::cell_coord`]). This makes candidate *sets* a property
//!   of the lattice, not of the structure: [`SegmentGrid`] and [`RTree`]
//!   built over the same items with the same cell size return **identical**
//!   id sets for every query, which is what keeps violation lists,
//!   witnesses, and placements bit-identical when the index is swapped
//!   (property-tested in `tests/props.rs`).
//! * **Occupied-bounds clamping.** Queries are clamped to the bounding cell
//!   range of everything inserted; a window vastly larger than the occupied
//!   region (the extension engine's `remaining/2`-tall candidate windows)
//!   costs output, not window area, and a disjoint window answers empty
//!   immediately.
//! * **Sorted, deduplicated output.** Candidates come out in ascending id
//!   order with no repeats, so strict-minimum reductions over them visit
//!   ties in the same order on every implementation.
//! * **Batch gather semantics.** [`SpatialIndex::query_batch`] additionally
//!   materializes the candidates' geometry into a reused SoA
//!   [`SegBatch`] straight from an internal coordinate slab —
//!   `batch.get(k)` is the item inserted under `ids[k]` — so lane kernels
//!   never re-gather geometry through the ids. Items registered as
//!   rectangles come out as their min → max diagonal.
//!
//! Scratch state ([`GridScratch`]) carries the visited-stamp table the grid
//! deduplicates with *and* the traversal stack the R-tree descends with;
//! one scratch serves any number of indexes of either kind.
//!
//! ```
//! use meander_geom::{Point, Rect, Segment};
//! use meander_index::{IndexKind, SegIndex, SpatialIndex};
//!
//! let segs = vec![
//!     Segment::new(Point::new(0.0, 0.0), Point::new(3.0, 1.0)),
//!     Segment::new(Point::new(40.0, 40.0), Point::new(44.0, 40.0)),
//! ];
//! let grid = SegIndex::from_segments(IndexKind::Grid, 2.0, &segs);
//! let rtree = SegIndex::from_segments(IndexKind::RTree, 2.0, &segs);
//! let near = Rect::new(Point::new(-1.0, -1.0), Point::new(4.0, 2.0));
//! assert_eq!(grid.query(&near), vec![0]);
//! // Same lattice ⇒ same candidate sets, whatever the structure.
//! assert_eq!(grid.query(&near), rtree.query(&near));
//! ```

use crate::grid::{GridScratch, SegmentGrid};
use crate::rtree::RTree;
use meander_geom::{Rect, SegBatch, Segment};

/// Which spatial index structure a consumer should build.
///
/// The two structures answer queries with **identical candidate sets**
/// (see the [module docs](self)); the choice is purely a performance
/// trade:
///
/// * [`IndexKind::Grid`] — the uniform hash grid. Inserting an item
///   registers it in every cell its bbox overlaps, so one huge item (a
///   plane polygon's full-width edge) costs `O(extent / cell)` slots and
///   turns up repeatedly in every query that crosses its row. Best when
///   item sizes are uniform and a cell holds a handful of items.
/// * [`IndexKind::RTree`] — the STR-packed R-tree. Every item is stored
///   once regardless of extent, so mixed boards (plane slabs next to dense
///   vias — the `stress:mixed` regime) stop paying the smear cost; queries
///   descend a height-balanced tree instead of walking cells.
/// * [`IndexKind::Auto`] — measure the items and pick (see
///   [`IndexKind::resolve`] for the exact heuristic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexKind {
    /// Uniform hash grid ([`SegmentGrid`]).
    #[default]
    Grid,
    /// STR-packed R-tree ([`RTree`]).
    RTree,
    /// Decide per build from the item-extent distribution.
    Auto,
}

/// An item this many cells across (per axis) is considered *smeared*: the
/// grid would register it in at least this many cells along one axis.
const AUTO_SMEAR_CELLS: f64 = 8.0;

/// Extent-mix threshold: the largest item must exceed this multiple of the
/// mean extent before `Auto` leaves the grid.
const AUTO_SPREAD: f64 = 4.0;

impl IndexKind {
    /// Resolves `Auto` against the items about to be indexed, returning
    /// `Grid` or `RTree` (explicit kinds pass through unchanged).
    ///
    /// ## Selection heuristic
    ///
    /// `Auto` picks the R-tree exactly when **both** hold over the items'
    /// bounding-box extents (`max(width, height)` per item):
    ///
    /// 1. the largest extent spans more than `AUTO_SMEAR_CELLS` (8) cells —
    ///    i.e. the grid would smear at least one item across that many
    ///    cells per axis, paying the per-cell registration on insert and a
    ///    duplicate candidate in every query crossing its row; and
    /// 2. the largest extent exceeds `AUTO_SPREAD` (4) × the mean extent —
    ///    the sizes are genuinely *mixed*. A uniformly coarse item set
    ///    (every extent large) is better served by the grid with its cell
    ///    size as chosen by the caller: the smear is then the common case
    ///    the cell size should simply absorb, not an outlier.
    ///
    /// This is the "obstacle-size variance" test motivated by the
    /// plane-plus-via boards: one full-width plane edge among thousands of
    /// short via edges trips both conditions, while paper-sized boards and
    /// the per-pop shrink contexts (edges a few `d_gap` long) keep the
    /// cheap-to-build grid.
    pub fn resolve(self, cell: f64, extents: impl Iterator<Item = f64>) -> IndexKind {
        match self {
            IndexKind::Grid | IndexKind::RTree => self,
            IndexKind::Auto => {
                let (mut n, mut sum, mut max) = (0u64, 0.0f64, 0.0f64);
                for e in extents {
                    n += 1;
                    sum += e;
                    max = max.max(e);
                }
                if n == 0 {
                    return IndexKind::Grid;
                }
                let mean = sum / n as f64;
                if max > AUTO_SMEAR_CELLS * cell && max > AUTO_SPREAD * mean {
                    IndexKind::RTree
                } else {
                    IndexKind::Grid
                }
            }
        }
    }
}

/// The common query interface of [`SegmentGrid`] and [`RTree`].
///
/// See the [module docs](self) for the full contract (cell-quantized
/// candidacy, occupied-bounds clamping, sorted output, batch gather
/// semantics). Code generic over this trait — or holding a [`SegIndex`] —
/// answers identically whichever structure is selected.
pub trait SpatialIndex {
    /// Number of indexed items.
    fn len(&self) -> usize;

    /// `true` when nothing is indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Largest id ever indexed (0 when empty).
    fn max_id(&self) -> u32;

    /// The quantization lattice's cell size.
    fn cell_size(&self) -> f64;

    /// The cell coordinate a world coordinate falls into — the exact
    /// quantization insertion and querying use (`⌊v / cell⌋`).
    fn cell_coord(&self, v: f64) -> i64;

    /// Candidate ids for `r` into a caller-owned buffer (cleared first),
    /// ascending and deduplicated.
    fn query_into(&self, r: &Rect, out: &mut Vec<u32>);

    /// [`SpatialIndex::query_into`] with caller-owned scratch state, for
    /// hot loops (the grid deduplicates with the scratch's visited stamps;
    /// the R-tree descends with its traversal stack).
    fn query_scratch(&self, r: &Rect, scratch: &mut GridScratch, out: &mut Vec<u32>);

    /// [`SpatialIndex::query_scratch`] that additionally materializes the
    /// candidates' geometry into a reused SoA [`SegBatch`] straight from
    /// the index's coordinate slab: `batch.get(k)` is the item inserted
    /// under `ids[k]`.
    fn query_batch(
        &self,
        r: &Rect,
        scratch: &mut GridScratch,
        ids: &mut Vec<u32>,
        batch: &mut SegBatch,
    );

    /// Materializes the geometry of `ids` (previously returned by a query
    /// on this index) into `batch` — for callers that filter candidates
    /// between the query and the kernel.
    fn fill_batch(&self, ids: &[u32], batch: &mut SegBatch);
}

/// A segment index of either kind, dispatch-selected at build time.
///
/// This is what consumers store: the enum carries whichever structure
/// [`IndexKind`] selected and forwards the whole [`SpatialIndex`] surface
/// with a two-arm match (no dynamic dispatch, no generics infecting the
/// consumer types). Candidate sets are identical across the two arms by
/// the cell-quantization contract.
#[derive(Debug)]
pub enum SegIndex {
    /// Uniform hash grid.
    Grid(SegmentGrid),
    /// STR-packed R-tree.
    RTree(RTree),
}

/// `max(width, height)` of a segment's bounding box.
fn seg_extent(s: &Segment) -> f64 {
    let bb = s.bbox();
    (bb.max.x - bb.min.x).max(bb.max.y - bb.min.y)
}

impl SegIndex {
    /// Builds an index of the resolved kind over an id-ordered segment
    /// list (item `i` gets id `i`). `Auto` resolves per
    /// [`IndexKind::resolve`] on the segments' bbox extents.
    pub fn from_segments(kind: IndexKind, cell: f64, segments: &[Segment]) -> Self {
        match kind.resolve(cell, segments.iter().map(seg_extent)) {
            IndexKind::RTree => SegIndex::RTree(RTree::from_segments(cell, segments)),
            _ => SegIndex::Grid(SegmentGrid::from_segments(cell, segments)),
        }
    }

    /// `true` when the R-tree arm was selected.
    pub fn is_rtree(&self) -> bool {
        matches!(self, SegIndex::RTree(_))
    }

    /// Allocating convenience query (ascending, deduplicated).
    pub fn query(&self, r: &Rect) -> Vec<u32> {
        let mut out = Vec::new();
        self.query_into(r, &mut out);
        out
    }
}

macro_rules! forward {
    ($self:ident, $m:ident ( $($a:expr),* )) => {
        match $self {
            SegIndex::Grid(g) => g.$m($($a),*),
            SegIndex::RTree(t) => t.$m($($a),*),
        }
    };
}

impl SpatialIndex for SegIndex {
    #[inline]
    fn len(&self) -> usize {
        forward!(self, len())
    }

    #[inline]
    fn max_id(&self) -> u32 {
        forward!(self, max_id())
    }

    #[inline]
    fn cell_size(&self) -> f64 {
        forward!(self, cell_size())
    }

    #[inline]
    fn cell_coord(&self, v: f64) -> i64 {
        forward!(self, cell_coord(v))
    }

    #[inline]
    fn query_into(&self, r: &Rect, out: &mut Vec<u32>) {
        forward!(self, query_into(r, out))
    }

    #[inline]
    fn query_scratch(&self, r: &Rect, scratch: &mut GridScratch, out: &mut Vec<u32>) {
        forward!(self, query_scratch(r, scratch, out))
    }

    #[inline]
    fn query_batch(
        &self,
        r: &Rect,
        scratch: &mut GridScratch,
        ids: &mut Vec<u32>,
        batch: &mut SegBatch,
    ) {
        forward!(self, query_batch(r, scratch, ids, batch))
    }

    #[inline]
    fn fill_batch(&self, ids: &[u32], batch: &mut SegBatch) {
        forward!(self, fill_batch(ids, batch))
    }
}

impl SpatialIndex for SegmentGrid {
    #[inline]
    fn len(&self) -> usize {
        SegmentGrid::len(self)
    }

    #[inline]
    fn max_id(&self) -> u32 {
        SegmentGrid::max_id(self)
    }

    #[inline]
    fn cell_size(&self) -> f64 {
        SegmentGrid::cell_size(self)
    }

    #[inline]
    fn cell_coord(&self, v: f64) -> i64 {
        SegmentGrid::cell_coord(self, v)
    }

    #[inline]
    fn query_into(&self, r: &Rect, out: &mut Vec<u32>) {
        SegmentGrid::query_into(self, r, out)
    }

    #[inline]
    fn query_scratch(&self, r: &Rect, scratch: &mut GridScratch, out: &mut Vec<u32>) {
        SegmentGrid::query_scratch(self, r, scratch, out)
    }

    #[inline]
    fn query_batch(
        &self,
        r: &Rect,
        scratch: &mut GridScratch,
        ids: &mut Vec<u32>,
        batch: &mut SegBatch,
    ) {
        SegmentGrid::query_batch(self, r, scratch, ids, batch)
    }

    #[inline]
    fn fill_batch(&self, ids: &[u32], batch: &mut SegBatch) {
        SegmentGrid::fill_batch(self, ids, batch)
    }
}

impl SpatialIndex for RTree {
    #[inline]
    fn len(&self) -> usize {
        RTree::len(self)
    }

    #[inline]
    fn max_id(&self) -> u32 {
        RTree::max_id(self)
    }

    #[inline]
    fn cell_size(&self) -> f64 {
        RTree::cell_size(self)
    }

    #[inline]
    fn cell_coord(&self, v: f64) -> i64 {
        RTree::cell_coord(self, v)
    }

    #[inline]
    fn query_into(&self, r: &Rect, out: &mut Vec<u32>) {
        RTree::query_into(self, r, out)
    }

    #[inline]
    fn query_scratch(&self, r: &Rect, scratch: &mut GridScratch, out: &mut Vec<u32>) {
        RTree::query_scratch(self, r, scratch, out)
    }

    #[inline]
    fn query_batch(
        &self,
        r: &Rect,
        scratch: &mut GridScratch,
        ids: &mut Vec<u32>,
        batch: &mut SegBatch,
    ) {
        RTree::query_batch(self, r, scratch, ids, batch)
    }

    #[inline]
    fn fill_batch(&self, ids: &[u32], batch: &mut SegBatch) {
        RTree::fill_batch(self, ids, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meander_geom::Point;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn auto_resolves_by_smear_and_spread() {
        // Uniform small edges: grid.
        let small: Vec<f64> = vec![2.0; 40];
        assert_eq!(
            IndexKind::Auto.resolve(1.0, small.iter().copied()),
            IndexKind::Grid
        );
        // One plane-sized edge among vias: both conditions trip.
        let mut mixed = vec![2.0; 40];
        mixed.push(500.0);
        assert_eq!(
            IndexKind::Auto.resolve(1.0, mixed.iter().copied()),
            IndexKind::RTree
        );
        // Uniformly huge edges: smeared but not mixed — stay on the grid
        // (the caller's cell size is the right lever there).
        let coarse: Vec<f64> = vec![500.0; 40];
        assert_eq!(
            IndexKind::Auto.resolve(1.0, coarse.iter().copied()),
            IndexKind::Grid
        );
        // Empty: grid.
        assert_eq!(
            IndexKind::Auto.resolve(1.0, std::iter::empty()),
            IndexKind::Grid
        );
        // Explicit kinds pass through.
        assert_eq!(
            IndexKind::RTree.resolve(1.0, small.iter().copied()),
            IndexKind::RTree
        );
    }

    #[test]
    fn dispatch_selects_and_agrees() {
        let mut segs = vec![seg(0.0, 0.0, 900.0, 0.5)]; // plane-like smear
        for i in 0..40 {
            let x = 10.0 + i as f64 * 20.0;
            segs.push(seg(x, 30.0, x + 2.0, 31.0));
        }
        let auto = SegIndex::from_segments(IndexKind::Auto, 4.0, &segs);
        assert!(auto.is_rtree(), "plane+vias must auto-select the R-tree");
        let grid = SegIndex::from_segments(IndexKind::Grid, 4.0, &segs);
        assert!(!grid.is_rtree());
        for q in [
            Rect::new(Point::new(-5.0, -5.0), Point::new(50.0, 50.0)),
            Rect::new(Point::new(400.0, -1.0), Point::new(420.0, 1.0)),
            Rect::new(Point::new(-1e6, -1e6), Point::new(1e6, 1e6)),
            Rect::new(Point::new(5000.0, 5000.0), Point::new(5001.0, 5001.0)),
        ] {
            assert_eq!(grid.query(&q), auto.query(&q));
        }
    }
}
