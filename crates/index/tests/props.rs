//! Property tests: both index structures must agree with brute force.

use meander_geom::{Point, Rect, Segment};
use meander_index::{MergeSortTree, SegmentGrid};
use proptest::prelude::*;

fn pt() -> impl Strategy<Value = Point> {
    (-50.0..50.0f64, -50.0..50.0f64).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #[test]
    fn msegtree_matches_brute_force(
        pts in proptest::collection::vec(pt(), 0..120),
        q0 in pt(),
        w in 0.0..40.0f64,
        h in 0.0..40.0f64,
    ) {
        let tagged: Vec<(Point, usize)> = pts.iter().copied().zip(0..).collect();
        let tree = MergeSortTree::build(tagged.clone());
        let r = Rect::new(q0, Point::new(q0.x + w, q0.y + h));
        let mut expect: Vec<usize> = tagged
            .iter()
            .filter(|(p, _)| p.x >= r.min.x && p.x <= r.max.x && p.y >= r.min.y && p.y <= r.max.y)
            .map(|(_, i)| *i)
            .collect();
        let mut got: Vec<usize> = tree.query(&r).iter().map(|(_, &i)| i).collect();
        expect.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(&expect, &got);
        prop_assert_eq!(tree.count(&r), expect.len());
    }

    #[test]
    fn grid_candidates_cover_bbox_hits(
        segs in proptest::collection::vec((pt(), pt()), 1..60),
        q0 in pt(),
        w in 0.5..30.0f64,
        h in 0.5..30.0f64,
        cell in 0.5..10.0f64,
    ) {
        let segs: Vec<Segment> = segs.iter().map(|(a, b)| Segment::new(*a, *b)).collect();
        let grid = SegmentGrid::from_segments(cell, &segs);
        let r = Rect::new(q0, Point::new(q0.x + w, q0.y + h));
        let candidates = grid.query(&r);
        for (i, s) in segs.iter().enumerate() {
            if r.intersects(&s.bbox()) {
                prop_assert!(
                    candidates.contains(&(i as u32)),
                    "segment {} missed by grid query", i
                );
            }
        }
        // No phantom ids.
        for &c in &candidates {
            prop_assert!((c as usize) < segs.len());
        }
    }
}
