//! Property tests: both index structures must agree with brute force, and
//! the two [`SpatialIndex`] implementations must agree with each other
//! (identical candidate sets — the contract that keeps DRC lists and
//! placements bit-identical when the index kind is swapped).

use meander_geom::{Point, Rect, Segment};
use meander_index::{
    GridScratch, IndexKind, MergeSortTree, OverlayIndex, RTree, SegIndex, SegmentGrid, SpatialIndex,
};
use proptest::prelude::*;
use std::sync::Arc;

fn pt() -> impl Strategy<Value = Point> {
    (-50.0..50.0f64, -50.0..50.0f64).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #[test]
    fn msegtree_matches_brute_force(
        pts in proptest::collection::vec(pt(), 0..120),
        q0 in pt(),
        w in 0.0..40.0f64,
        h in 0.0..40.0f64,
    ) {
        let tagged: Vec<(Point, usize)> = pts.iter().copied().zip(0..).collect();
        let tree = MergeSortTree::build(tagged.clone());
        let r = Rect::new(q0, Point::new(q0.x + w, q0.y + h));
        let mut expect: Vec<usize> = tagged
            .iter()
            .filter(|(p, _)| p.x >= r.min.x && p.x <= r.max.x && p.y >= r.min.y && p.y <= r.max.y)
            .map(|(_, i)| *i)
            .collect();
        let mut got: Vec<usize> = tree.query(&r).iter().map(|(_, &i)| i).collect();
        expect.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(&expect, &got);
        prop_assert_eq!(tree.count(&r), expect.len());
    }

    #[test]
    fn grid_candidates_cover_bbox_hits(
        segs in proptest::collection::vec((pt(), pt()), 1..60),
        q0 in pt(),
        w in 0.5..30.0f64,
        h in 0.5..30.0f64,
        cell in 0.5..10.0f64,
    ) {
        let segs: Vec<Segment> = segs.iter().map(|(a, b)| Segment::new(*a, *b)).collect();
        let grid = SegmentGrid::from_segments(cell, &segs);
        let r = Rect::new(q0, Point::new(q0.x + w, q0.y + h));
        let candidates = grid.query(&r);
        for (i, s) in segs.iter().enumerate() {
            if r.intersects(&s.bbox()) {
                prop_assert!(
                    candidates.contains(&(i as u32)),
                    "segment {} missed by grid query", i
                );
            }
        }
        // No phantom ids.
        for &c in &candidates {
            prop_assert!((c as usize) < segs.len());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Randomized boards mixing via-sized and plane-sized segments: the
    // STR R-tree must return the *exact* candidate set of the grid for
    // every query window, through every query entry point.
    #[test]
    fn rtree_query_sets_equal_grid(
        small in proptest::collection::vec((pt(), (-4.0..4.0f64, -4.0..4.0f64)), 0..50),
        planes in proptest::collection::vec((-80.0..-10.0f64, -50.0..50.0f64, 20.0..280.0f64), 0..4),
        q0 in pt(),
        w in 0.0..60.0f64,
        h in 0.0..60.0f64,
        cell in 0.5..10.0f64,
    ) {
        let mut segs: Vec<Segment> = small
            .iter()
            .map(|(a, (dx, dy))| Segment::new(*a, Point::new(a.x + dx, a.y + dy)))
            .collect();
        // Plane-like long horizontal edges smearing across many cells.
        for &(x0, y, len) in &planes {
            segs.push(Segment::new(Point::new(x0, y), Point::new(x0 + len, y + 0.5)));
        }
        let grid = SegmentGrid::from_segments(cell, &segs);
        let tree = RTree::from_segments(cell, &segs);
        let r = Rect::new(q0, Point::new(q0.x + w, q0.y + h));
        let expect = grid.query(&r);
        prop_assert_eq!(&tree.query(&r), &expect);
        let mut scratch = GridScratch::new();
        let mut got = Vec::new();
        tree.query_scratch(&r, &mut scratch, &mut got);
        prop_assert_eq!(&got, &expect);
        let mut ids = Vec::new();
        let mut batch = meander_geom::SegBatch::new();
        tree.query_batch(&r, &mut scratch, &mut ids, &mut batch);
        prop_assert_eq!(&ids, &expect);
        prop_assert_eq!(batch.len(), expect.len());
        for (k, &id) in ids.iter().enumerate() {
            prop_assert_eq!(batch.get(k), segs[id as usize]);
        }
    }

    // An Arc-shared base index with a per-consumer overlay must answer
    // every query exactly like one monolithic index over the concatenated
    // items — the library-sharing invariant `crates/fleet` builds on (same
    // lattice ⇒ same candidate sets, split or not, whatever each side's
    // structure). The split point is randomized so the equality cannot
    // depend on where the library ends and the board-local items begin.
    #[test]
    fn overlay_union_equals_monolithic(
        small in proptest::collection::vec((pt(), (-4.0..4.0f64, -4.0..4.0f64)), 1..50),
        planes in proptest::collection::vec((-80.0..-10.0f64, -50.0..50.0f64, 20.0..280.0f64), 0..3),
        split_frac in 0.0..1.0f64,
        q0 in pt(),
        w in 0.0..60.0f64,
        h in 0.0..60.0f64,
        cell in 0.5..10.0f64,
        base_rtree in (0..2usize).prop_map(|v| v == 1),
        over_rtree in (0..2usize).prop_map(|v| v == 1),
    ) {
        let mut segs: Vec<Segment> = small
            .iter()
            .map(|(a, (dx, dy))| Segment::new(*a, Point::new(a.x + dx, a.y + dy)))
            .collect();
        for &(x0, y, len) in &planes {
            segs.push(Segment::new(Point::new(x0, y), Point::new(x0 + len, y + 0.5)));
        }
        let split = ((segs.len() as f64) * split_frac) as usize;
        let kind = |rt: bool| if rt { IndexKind::RTree } else { IndexKind::Grid };
        let base = Arc::new(SegIndex::from_segments(kind(base_rtree), cell, &segs[..split]));
        let overlay = OverlayIndex::over(
            base,
            split as u32,
            SegIndex::from_segments(kind(over_rtree), cell, &segs[split..]),
        );
        let mono = SegmentGrid::from_segments(cell, &segs);
        let r = Rect::new(q0, Point::new(q0.x + w, q0.y + h));
        let expect = mono.query(&r);
        prop_assert_eq!(&overlay.query(&r), &expect);
        let mut scratch = GridScratch::new();
        let mut ids = Vec::new();
        let mut batch = meander_geom::SegBatch::new();
        overlay.query_scratch(&r, &mut scratch, &mut ids);
        prop_assert_eq!(&ids, &expect);
        overlay.query_batch(&r, &mut scratch, &mut ids, &mut batch);
        prop_assert_eq!(&ids, &expect);
        prop_assert_eq!(batch.len(), expect.len());
        for (k, &id) in ids.iter().enumerate() {
            prop_assert_eq!(batch.get(k), segs[id as usize]);
        }
    }
}
