//! Minimal data-parallel map on scoped OS threads.
//!
//! The build environment cannot fetch `rayon`, so the driver's per-trace
//! parallelism runs on `std::thread::scope` with an atomic work-stealing
//! cursor. Results land at their input's index, so the output order — and
//! therefore every downstream write-back — is deterministic regardless of
//! scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// `true` when the host reports more than one hardware thread — the gate
/// for intra-pop parallelism (the shrink side-context worker pair), where
/// spawning on a 1-CPU host would be pure overhead. Cached after the first
/// call.
pub fn multi_core() -> bool {
    static CORES: OnceLock<bool> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get() > 1)
            .unwrap_or(false)
    })
}

/// Maps `f` over `items` on up to `available_parallelism` worker threads,
/// preserving input order in the output.
///
/// Falls back to a plain serial map for 0 or 1 items (no threads spawned).
/// `f` may run on any worker; panics in `f` propagate (the scope joins all
/// workers first).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }

    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock().expect("result slot") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = par_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[41u32], |&x| x + 1), vec![42]);
    }

    #[test]
    fn heavier_closures_borrow_environment() {
        let base = vec![10.0f64, 20.0, 30.0];
        let scale = 0.5;
        let out = par_map(&base, |&x| x * scale);
        assert_eq!(out, vec![5.0, 10.0, 15.0]);
    }
}
