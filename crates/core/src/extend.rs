//! Trace-level extension: the queue-driven Alg. 1.

use crate::config::ExtendConfig;
use crate::context::{ShrinkContext, WorldContext};
use crate::dp::{extend_segment_dp, DpInput, Placement};
use crate::pattern::{build_local_meander, splice_meander};
use crate::shrink::max_pattern_height;
use meander_drc::DesignRules;
use meander_geom::{Frame, Point, Polygon, Polyline};
use std::collections::VecDeque;

/// Inputs for [`extend_trace`].
#[derive(Debug, Clone)]
pub struct ExtendInput<'a> {
    /// The trace to lengthen (original routing preserved).
    pub trace: &'a Polyline,
    /// Target length `l_target ≥ trace.length()`.
    pub target: f64,
    /// Rules in force (`gap`, `protect`, `width` drive the engine).
    pub rules: &'a DesignRules,
    /// Routable-area polygons (empty ⇒ unbounded).
    pub area: &'a [Polygon],
    /// Obstacle polygons.
    pub obstacles: &'a [Polygon],
}

/// Result of extending one trace.
#[derive(Debug, Clone)]
pub struct ExtendOutcome {
    /// The meandered trace.
    pub trace: Polyline,
    /// Final length.
    pub achieved: f64,
    /// Queue pops consumed.
    pub iterations: usize,
    /// Patterns inserted.
    pub patterns: usize,
}

impl ExtendOutcome {
    /// Relative matching error `(target − achieved)/target` (paper Eq. 19
    /// for one trace).
    pub fn error(&self, target: f64) -> f64 {
        (target - self.achieved) / target
    }
}

/// Extends `input.trace` toward `input.target` with the DP engine
/// (paper Alg. 1).
///
/// The trace's segments enter a FIFO queue; each pop runs the segment DP
/// with URA-shrunk heights, splices the optimal patterns, and re-queues the
/// freshly created segments (meander-on-meander). The final pattern is
/// *trimmed* — re-shrunk at exactly the height that lands the trace on the
/// target — so errors only remain when space runs out.
pub fn extend_trace(input: &ExtendInput<'_>, config: &ExtendConfig) -> ExtendOutcome {
    let mut trace = input.trace.clone();
    let rules = input.rules;
    let tol = (input.target * config.tolerance).max(1e-9);
    let h_min = rules.protect.max(1e-9);
    // Effective clearance between trace *centerlines*: edge gap plus one
    // trace width (two half-widths). The URA construction is phrased in
    // centerline distances, so this is the `d_gap` it works with.
    let g_eff = rules.gap + rules.width;
    // Obstacles demand `d_obs + w/2` from a centerline while the URA only
    // guarantees `g_eff/2`; inflate them by the difference.
    let inflate = (rules.obstacle + rules.width / 2.0 - g_eff / 2.0).max(0.0);
    let obstacles: Vec<Polygon> = input
        .obstacles
        .iter()
        .map(|p| p.offset_convex(inflate))
        .collect();

    let mut queue: VecDeque<(Point, Point)> = trace
        .segments()
        .map(|s| (s.a, s.b))
        .collect();
    let mut iterations = 0usize;
    let mut patterns = 0usize;

    while trace.length() < input.target - tol
        && iterations < config.max_iterations
        && !queue.is_empty()
    {
        iterations += 1;
        let (a, b) = queue.pop_front().expect("non-empty queue");
        let Some(seg_index) = locate_segment(&trace, a, b) else {
            continue; // segment was replaced by a later splice
        };
        let seg = trace.segment(seg_index);
        if seg.is_degenerate() {
            continue;
        }
        let Some(frame) = Frame::from_segment(&seg) else {
            continue;
        };
        let len = seg.length();
        let remaining = input.target - trace.length();
        if remaining < 2.0 * h_min {
            break; // no legal pattern can add this little
        }

        // Discretization: uniform step fitting the segment exactly.
        let ldisc_raw = config.resolve_ldisc(len, g_eff, rules.protect);
        let m = (len / ldisc_raw).floor().max(1.0) as usize;
        let ldisc = len / m as f64;
        let gap_steps = (g_eff / ldisc).ceil().max(1.0) as usize;
        let protect_steps = (rules.protect / ldisc).ceil().max(1.0) as usize;
        if m < gap_steps {
            continue; // too short to host any pattern
        }

        // Obstacle context for both sides.
        let world = WorldContext {
            area: input.area.to_vec(),
            obstacles: obstacles.clone(),
            other_uras: WorldContext::trace_uras(&trace, seg_index, g_eff),
        };
        let ctx_up = ShrinkContext::build(&world, &frame, len, 1);
        let ctx_dn = ShrinkContext::build(&world, &frame, len, -1);

        let h_init = remaining / 2.0;
        let height = |lo: usize, hi: usize, dir: i8| -> f64 {
            let ctx = if dir > 0 { &ctx_up } else { &ctx_dn };
            max_pattern_height(
                ctx,
                lo as f64 * ldisc,
                hi as f64 * ldisc,
                g_eff,
                h_init,
                h_min,
            )
            .height
        };

        let outcome = extend_segment_dp(&DpInput {
            m,
            ldisc,
            gap_steps,
            protect_steps,
            // Hat width ≥ d_gap: a pattern's own legs are `width` apart and
            // face each other, and same-side legs across opposite-side
            // transitions stay ≥ d_gap apart exactly when widths do
            // (Fig. 1 annotates d_gap between meander legs).
            min_width_steps: gap_steps,
            max_width_steps: config.max_width_steps,
            height: &height,
            config,
        });
        if outcome.placements.is_empty() {
            continue;
        }

        // Trim to never overshoot the target (Alg. 1's l_trace == l_target
        // termination needs the final pattern cut to measure).
        let kept = trim_placements(
            &outcome.placements,
            remaining,
            h_min,
            g_eff,
            ldisc,
            &ctx_up,
            &ctx_dn,
        );
        if kept.is_empty() {
            continue;
        }
        patterns += kept.len();

        let local = build_local_meander(len, ldisc, &kept);
        let (lo, hi) = splice_meander(&mut trace, seg_index, &frame, &local);

        if config.requeue {
            let min_len = config.requeue_min_protect * rules.protect;
            for i in lo..hi {
                let s = trace.segment(i);
                if s.length() >= min_len {
                    queue.push_back((s.a, s.b));
                }
            }
        }
    }

    ExtendOutcome {
        achieved: trace.length(),
        trace,
        iterations,
        patterns,
    }
}

/// Finds the polyline segment with endpoints `a → b`, if it still exists.
fn locate_segment(trace: &Polyline, a: Point, b: Point) -> Option<usize> {
    let pts = trace.points();
    (0..pts.len() - 1).find(|&i| pts[i].approx_eq(a) && pts[i + 1].approx_eq(b))
}

/// Caps the cumulative gain of `placements` at `remaining`; the first
/// pattern that would overshoot is re-shrunk to the exact height needed
/// (re-validated — shrinking is not monotone) and later patterns dropped.
#[allow(clippy::too_many_arguments)]
fn trim_placements(
    placements: &[Placement],
    remaining: f64,
    h_min: f64,
    gap: f64,
    ldisc: f64,
    ctx_up: &ShrinkContext,
    ctx_dn: &ShrinkContext,
) -> Vec<Placement> {
    let mut kept = Vec::with_capacity(placements.len());
    let mut acc = 0.0;
    for p in placements {
        let full = 2.0 * p.height;
        if acc + full <= remaining + 1e-9 {
            kept.push(*p);
            acc += full;
            continue;
        }
        let desired = (remaining - acc) / 2.0;
        if desired >= h_min - 1e-9 {
            let ctx = if p.dir > 0 { ctx_up } else { ctx_dn };
            let r = max_pattern_height(
                ctx,
                p.lo as f64 * ldisc,
                p.hi as f64 * ldisc,
                gap,
                desired,
                h_min,
            );
            if r.height >= h_min - 1e-9 {
                kept.push(Placement {
                    height: r.height,
                    ..*p
                });
            }
        }
        break;
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules() -> DesignRules {
        DesignRules {
            gap: 8.0,
            obstacle: 8.0,
            protect: 4.0,
            miter: 2.0,
            width: 4.0,
        }
    }

    fn straight(len: f64) -> Polyline {
        Polyline::new(vec![Point::new(0.0, 0.0), Point::new(len, 0.0)])
    }

    fn roomy_area(len: f64) -> Vec<Polygon> {
        vec![Polygon::rectangle(
            Point::new(-20.0, -80.0),
            Point::new(len + 20.0, 80.0),
        )]
    }

    #[test]
    fn hits_target_exactly_in_open_space() {
        let trace = straight(200.0);
        let area = roomy_area(200.0);
        let r = rules();
        let out = extend_trace(
            &ExtendInput {
                trace: &trace,
                target: 260.0,
                rules: &r,
                area: &area,
                obstacles: &[],
            },
            &ExtendConfig::default(),
        );
        assert!(
            (out.achieved - 260.0).abs() <= 260.0 * 1e-3,
            "achieved {} ≠ 260",
            out.achieved
        );
        assert!(out.patterns >= 1);
        assert!(!out.trace.is_self_intersecting());
        // Endpoints preserved — the original routing contract.
        assert!(out.trace.start().approx_eq(trace.start()));
        assert!(out.trace.end().approx_eq(trace.end()));
    }

    #[test]
    fn never_overshoots() {
        let trace = straight(100.0);
        let area = roomy_area(100.0);
        let r = rules();
        for target in [110.0, 130.0, 170.0, 250.0] {
            let out = extend_trace(
                &ExtendInput {
                    trace: &trace,
                    target,
                    rules: &r,
                    area: &area,
                    obstacles: &[],
                },
                &ExtendConfig::default(),
            );
            assert!(
                out.achieved <= target + 1e-6,
                "target {target}: overshoot to {}",
                out.achieved
            );
        }
    }

    #[test]
    fn respects_obstacles() {
        let trace = straight(120.0);
        let area = roomy_area(120.0);
        let r = rules();
        // Obstacle band above the trace center.
        let obstacles = vec![Polygon::rectangle(
            Point::new(30.0, 15.0),
            Point::new(90.0, 25.0),
        )];
        let out = extend_trace(
            &ExtendInput {
                trace: &trace,
                target: 220.0,
                rules: &r,
                area: &area,
                obstacles: &obstacles,
            },
            &ExtendConfig::default(),
        );
        // DRC-verified clean result.
        let violations = meander_drc::check_layout(&meander_drc::CheckInput {
            traces: vec![meander_drc::TraceGeometry {
                id: 0,
                centerline: out.trace.clone(),
                width: r.width,
                rules: r,
                area: area.clone(),
                coupled_with: vec![],
            }],
            obstacles,
        });
        assert!(violations.is_empty(), "{violations:?}");
        assert!(out.achieved > 120.0);
    }

    #[test]
    fn corridor_limits_amplitude() {
        let trace = straight(150.0);
        // Narrow corridor: half-height 12 → pattern h ≤ 12 − gap/2 = 8.
        let area = vec![Polygon::rectangle(
            Point::new(-10.0, -12.0),
            Point::new(160.0, 12.0),
        )];
        let r = rules();
        let out = extend_trace(
            &ExtendInput {
                trace: &trace,
                target: 600.0,
                rules: &r,
                area: &area,
                obstacles: &[],
            },
            &ExtendConfig::default(),
        );
        // Every vertex stays in the corridor; amplitude capped at
        // 12 − (gap + width)/2 = 6.
        for p in out.trace.points() {
            assert!(p.y.abs() <= 6.0 + 1e-9, "pattern too tall: {p}");
        }
        assert!(out.achieved < 590.0, "narrow corridor cannot reach 600");
        assert!(out.achieved > 230.0, "should still meander substantially");
    }

    #[test]
    fn any_direction_trace_extends() {
        // 30° rotated trace with its rotated corridor.
        let dir = meander_geom::Vector::new(30f64.to_radians().cos(), 30f64.to_radians().sin());
        let a = Point::new(5.0, 5.0);
        let b = a + dir * 180.0;
        let trace = Polyline::new(vec![a, b]);
        let seg = meander_geom::Segment::new(a, b);
        let frame = Frame::from_segment(&seg).unwrap();
        let local_area = Polygon::rectangle(Point::new(-10.0, -40.0), Point::new(190.0, 40.0));
        let area = vec![frame.polygon_to_world(&local_area)];
        let r = rules();
        let out = extend_trace(
            &ExtendInput {
                trace: &trace,
                target: 240.0,
                rules: &r,
                area: &area,
                obstacles: &[],
            },
            &ExtendConfig::default(),
        );
        assert!(
            (out.achieved - 240.0).abs() <= 240.0 * 1e-3,
            "achieved {}",
            out.achieved
        );
        assert!(!out.trace.is_self_intersecting());
        for &p in out.trace.points() {
            assert!(area[0].contains(p), "left rotated corridor: {p}");
        }
    }

    #[test]
    fn multi_segment_trace_distributes_patterns() {
        let trace = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(100.0, 100.0),
        ]);
        let area = vec![Polygon::rectangle(
            Point::new(-30.0, -30.0),
            Point::new(130.0, 130.0),
        )];
        let r = rules();
        let out = extend_trace(
            &ExtendInput {
                trace: &trace,
                target: 320.0,
                rules: &r,
                area: &area,
                obstacles: &[],
            },
            &ExtendConfig::default(),
        );
        assert!((out.achieved - 320.0).abs() <= 320.0 * 1e-3);
        assert!(!out.trace.is_self_intersecting());
    }

    #[test]
    fn target_equal_length_is_noop() {
        let trace = straight(100.0);
        let area = roomy_area(100.0);
        let r = rules();
        let out = extend_trace(
            &ExtendInput {
                trace: &trace,
                target: 100.0,
                rules: &r,
                area: &area,
                obstacles: &[],
            },
            &ExtendConfig::default(),
        );
        assert_eq!(out.trace, trace);
        assert_eq!(out.patterns, 0);
    }

    #[test]
    fn requeue_enables_meander_on_meander() {
        let trace = straight(100.0);
        let area = roomy_area(100.0);
        let r = rules();
        let big_target = 500.0;
        let with = extend_trace(
            &ExtendInput {
                trace: &trace,
                target: big_target,
                rules: &r,
                area: &area,
                obstacles: &[],
            },
            &ExtendConfig::default(),
        );
        let without = extend_trace(
            &ExtendInput {
                trace: &trace,
                target: big_target,
                rules: &r,
                area: &area,
                obstacles: &[],
            },
            &ExtendConfig {
                requeue: false,
                ..Default::default()
            },
        );
        assert!(
            with.achieved >= without.achieved - 1e-9,
            "requeue must not hurt: {} vs {}",
            with.achieved,
            without.achieved
        );
    }
}
