//! Trace-level extension: the queue-driven Alg. 1.
//!
//! Two engines implement the same algorithm:
//!
//! * [`extend_trace_incremental`] (default) builds the world geometry index
//!   **once per trace**, re-transforms only the polygons near each popped
//!   segment's candidate window, tracks segments by stable id, and maintains
//!   the trace length incrementally — the per-iteration cost is governed by
//!   local geometry, not by how much meander has accumulated. With
//!   [`ExtendConfig::dp_profile`] (default on) each pop additionally builds
//!   a per-position upper-bound profile from the side contexts'
//!   stage-1 clearances, so the segment DP executes only the height queries
//!   whose result can still matter (the pruning is sound: placements are
//!   bit-identical with the profile on or off).
//! * [`extend_trace_rebuild`] re-clones and re-transforms the whole world on
//!   every queue pop (the original pipeline) and runs the DP with only the
//!   global `h_init` cap. It is kept as the reference implementation for
//!   equivalence tests and as the "before" side of the performance
//!   baseline.

use crate::config::ExtendConfig;
use crate::context::{ShrinkContext, WorldBase, WorldContext, WorldIndex};
use crate::dp::{DpInput, DpSession, DpStats, HeightBounds, Placement};
use crate::pattern::{build_local_meander, splice_meander};
use crate::shrink::{
    build_ub_profile, build_ub_profile_batched, max_pattern_height_batched,
    max_pattern_height_scratch, ShrinkScratch,
};
use crate::tracebuf::TraceBuf;
use meander_drc::DesignRules;
use meander_geom::{Frame, Point, Polygon, Polyline, Rect};
use meander_index::{CellTouches, GridScratch};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::Arc;

/// Inputs for [`extend_trace`].
#[derive(Debug, Clone)]
pub struct ExtendInput<'a> {
    /// The trace to lengthen (original routing preserved).
    pub trace: &'a Polyline,
    /// Target length `l_target ≥ trace.length()`.
    pub target: f64,
    /// Rules in force (`gap`, `protect`, `width` drive the engine).
    pub rules: &'a DesignRules,
    /// Routable-area polygons (empty ⇒ unbounded).
    pub area: &'a [Polygon],
    /// Obstacle polygons.
    pub obstacles: &'a [Polygon],
}

/// Result of extending one trace.
#[derive(Debug, Clone)]
pub struct ExtendOutcome {
    /// The meandered trace.
    pub trace: Polyline,
    /// Final length.
    pub achieved: f64,
    /// Queue pops consumed.
    pub iterations: usize,
    /// Patterns inserted.
    pub patterns: usize,
    /// Aggregated DP work counters over every pop (height queries, pruned
    /// queries, rows evaluated — the bench records these per case).
    pub stats: DpStats,
}

impl ExtendOutcome {
    /// Relative matching error `(target − achieved)/target` (paper Eq. 19
    /// for one trace).
    pub fn error(&self, target: f64) -> f64 {
        (target - self.achieved) / target
    }
}

/// Rule-derived constants both engines share.
struct EngineParams {
    tol: f64,
    h_min: f64,
    /// Effective centerline clearance (`d_gap` of the URA construction).
    g_eff: f64,
    /// Obstacle inflation distance (the touched-set stratum component).
    inflate: f64,
    /// Obstacles inflated to centerline terms.
    obstacles: Vec<Polygon>,
}

impl EngineParams {
    fn derive(input: &ExtendInput<'_>, config: &ExtendConfig) -> Self {
        let rules = input.rules;
        let tol = (input.target * config.tolerance).max(1e-9);
        let h_min = rules.protect.max(1e-9);
        // Effective centerline clearance and obstacle inflation, from the
        // same rule-derived formulas `WorldBase::build` uses — sharing the
        // functions is what keeps a prebuilt library base bit-compatible
        // with the per-trace derivation.
        let g_eff = crate::context::effective_gap(rules);
        let inflate = crate::context::obstacle_inflation(rules);
        let obstacles: Vec<Polygon> = input
            .obstacles
            .iter()
            .map(|p| p.offset_convex(inflate))
            .collect();
        EngineParams {
            tol,
            h_min,
            g_eff,
            inflate,
            obstacles,
        }
    }
}

/// One segment's discretization.
struct Disc {
    m: usize,
    ldisc: f64,
    gap_steps: usize,
    protect_steps: usize,
}

impl Disc {
    /// `None` when the segment is too short to host any pattern.
    fn of(
        len: f64,
        params: &EngineParams,
        rules: &DesignRules,
        config: &ExtendConfig,
    ) -> Option<Self> {
        // Discretization: uniform step fitting the segment exactly.
        let ldisc_raw = config.resolve_ldisc(len, params.g_eff, rules.protect);
        let m = (len / ldisc_raw).floor().max(1.0) as usize;
        let ldisc = len / m as f64;
        let gap_steps = (params.g_eff / ldisc).ceil().max(1.0) as usize;
        let protect_steps = (rules.protect / ldisc).ceil().max(1.0) as usize;
        if m < gap_steps {
            return None;
        }
        Some(Disc {
            m,
            ldisc,
            gap_steps,
            protect_steps,
        })
    }
}

/// Runs the segment DP against prepared side contexts and returns the local
/// meander replacement, or `None` when nothing legal fits.
///
/// With `use_profile`, a per-position stage-1 clearance profile is built
/// first ([`build_ub_profile`]) so the DP can skip height queries whose
/// capped value cannot matter — same output, fewer shrink-kernel runs. DP
/// work counters accumulate into `stats`.
#[allow(clippy::too_many_arguments)]
fn plan_segment(
    len: f64,
    remaining: f64,
    disc: &Disc,
    params: &EngineParams,
    ctx_up: &ShrinkContext,
    ctx_dn: &ShrinkContext,
    config: &ExtendConfig,
    scratch: &mut ShrinkScratch,
    use_profile: bool,
    stats: &mut DpStats,
) -> Option<(Polyline, usize)> {
    let h_init = remaining / 2.0;
    // `batch_kernels` swaps the scalar stage-1 / profile sweeps for the SoA
    // batch kernels — bit-identical outputs (lane-exactness contract), so
    // the DP sees the same numbers either way.
    let batched = config.batch_kernels;
    let profile = use_profile.then(|| {
        let build = if batched {
            build_ub_profile_batched
        } else {
            build_ub_profile
        };
        build(
            ctx_up,
            ctx_dn,
            disc.m,
            disc.ldisc,
            params.g_eff,
            h_init,
            params.h_min,
            scratch,
        )
    });
    let scratch_cell = RefCell::new(scratch);
    let probe = if batched {
        max_pattern_height_batched
    } else {
        max_pattern_height_scratch
    };
    let height = |lo: usize, hi: usize, dir: i8| -> f64 {
        let ctx = if dir > 0 { ctx_up } else { ctx_dn };
        probe(
            ctx,
            lo as f64 * disc.ldisc,
            hi as f64 * disc.ldisc,
            params.g_eff,
            h_init,
            params.h_min,
            &mut scratch_cell.borrow_mut(),
        )
        .height
    };

    let dp_input = DpInput {
        m: disc.m,
        ldisc: disc.ldisc,
        gap_steps: disc.gap_steps,
        protect_steps: disc.protect_steps,
        // Hat width ≥ d_gap: a pattern's own legs are `width` apart and
        // face each other, and same-side legs across opposite-side
        // transitions stay ≥ d_gap apart exactly when widths do
        // (Fig. 1 annotates d_gap between meander legs).
        min_width_steps: disc.gap_steps,
        max_width_steps: config.max_width_steps,
        height: &height,
        // No probe can exceed the shrink start height — and with the
        // profile, no probe can exceed its feet's stage-1 clearance caps.
        bounds: match &profile {
            Some(p) => HeightBounds::Profile(p),
            None => HeightBounds::Uniform(h_init),
        },
        config,
    };
    // Single-solve session: the memo would never hit within one pass, so
    // it stays off; resolving callers (see `DpSession`) enable it.
    let mut session = DpSession::new(&dp_input, false);
    let outcome = session.solve(&dp_input);
    stats.absorb(session.stats());
    if outcome.placements.is_empty() {
        return None;
    }

    // Trim to never overshoot the target (Alg. 1's l_trace == l_target
    // termination needs the final pattern cut to measure).
    let kept = trim_placements(
        &outcome.placements,
        remaining,
        params.h_min,
        params.g_eff,
        disc.ldisc,
        ctx_up,
        ctx_dn,
        batched,
        &mut scratch_cell.borrow_mut(),
    );
    if kept.is_empty() {
        return None;
    }
    let patterns = kept.len();
    Some((build_local_meander(len, disc.ldisc, &kept), patterns))
}

/// Extends `input.trace` toward `input.target` with the DP engine
/// (paper Alg. 1).
///
/// The trace's segments enter a FIFO queue; each pop runs the segment DP
/// with URA-shrunk heights, splices the optimal patterns, and re-queues the
/// freshly created segments (meander-on-meander). The final pattern is
/// *trimmed* — re-shrunk at exactly the height that lands the trace on the
/// target — so errors only remain when space runs out.
///
/// Dispatches on [`ExtendConfig::incremental`].
pub fn extend_trace(input: &ExtendInput<'_>, config: &ExtendConfig) -> ExtendOutcome {
    if config.incremental {
        extend_trace_incremental(input, config)
    } else {
        extend_trace_rebuild(input, config)
    }
}

/// [`extend_trace`] against a shared, prebuilt obstacle-library world.
///
/// `input.obstacles` holds only the *board-local* obstacles; the library's
/// polygons (and their edge index) come pre-inflated from `base`, built
/// once per fleet by [`WorldBase::build`]. Output is **bit-identical** to
/// [`extend_trace`] over `base.raw() ++ input.obstacles`:
///
/// * when `base` is compatible with this trace's rules (same inflation,
///   same lattice — [`WorldBase::compatible`]), the incremental engine
///   overlays the per-trace index on the shared one, and the overlay's
///   union-equals-monolithic contract keeps every candidate set identical;
/// * otherwise (different rules, or the rebuild engine) the library is
///   materialized in front of the local obstacles and the ordinary path
///   runs — same output, no amortization.
pub fn extend_trace_shared(
    input: &ExtendInput<'_>,
    config: &ExtendConfig,
    base: Option<&Arc<WorldBase>>,
) -> ExtendOutcome {
    match base {
        None => extend_trace(input, config),
        Some(b) if config.incremental && b.compatible(input.rules) => {
            extend_trace_incremental_impl(input, config, Some(b), None)
        }
        Some(b) => {
            // Deterministic fallback: the library becomes ordinary leading
            // obstacles (the order a materialized board lists them in).
            let mut obstacles: Vec<Polygon> = b.raw().to_vec();
            obstacles.extend(input.obstacles.iter().cloned());
            extend_trace(
                &ExtendInput {
                    obstacles: &obstacles,
                    ..*input
                },
                config,
            )
        }
    }
}

/// [`extend_trace_shared`], recording into `touches` the lattice cells every
/// obstacle-candidate query spans — the remembered set the incremental
/// serving loop (`meander-fleet`'s `FleetSession`) tests edits against.
///
/// Output is bit-identical to [`extend_trace_shared`]: recording observes
/// the query windows, never alters them. Windows are recorded **unclamped**
/// (the grid's occupied-bounds clamp is answer-preserving but its bounds
/// shift under edits) on the `(world_cell, obstacle_inflation)` stratum of
/// this trace's rules. Engine shapes whose obstacle influence is not
/// funneled through [`WorldIndex::candidates`] — the rebuild engine — are
/// conservatively recorded as [`CellTouches::mark_all`].
pub fn extend_trace_shared_recorded(
    input: &ExtendInput<'_>,
    config: &ExtendConfig,
    base: Option<&Arc<WorldBase>>,
    touches: &mut CellTouches,
) -> ExtendOutcome {
    if !config.incremental {
        // The rebuild engine clones the whole world per pop; no single query
        // funnel to record. Mark everything: the unit re-routes on any edit.
        touches.mark_all();
        return extend_trace_shared(input, config, base);
    }
    match base {
        Some(b) if b.compatible(input.rules) => {
            extend_trace_incremental_impl(input, config, Some(b), Some(touches))
        }
        Some(b) => {
            // Incompatible base: materialize the library (same fallback as
            // the unrecorded path) and record through the monolithic index —
            // candidate windows are identical either way.
            let mut obstacles: Vec<Polygon> = b.raw().to_vec();
            obstacles.extend(input.obstacles.iter().cloned());
            extend_trace_incremental_impl(
                &ExtendInput {
                    obstacles: &obstacles,
                    ..*input
                },
                config,
                None,
                Some(touches),
            )
        }
        None => extend_trace_incremental_impl(input, config, None, Some(touches)),
    }
}

/// The incremental engine (see the module docs).
pub fn extend_trace_incremental(input: &ExtendInput<'_>, config: &ExtendConfig) -> ExtendOutcome {
    extend_trace_incremental_impl(input, config, None, None)
}

fn extend_trace_incremental_impl(
    input: &ExtendInput<'_>,
    config: &ExtendConfig,
    base: Option<&Arc<WorldBase>>,
    mut touches: Option<&mut CellTouches>,
) -> ExtendOutcome {
    let rules = input.rules;
    let params = EngineParams::derive(input, config);
    let g2 = params.g_eff / 2.0;

    // Index the static world once per trace (cell size: a few clearance
    // units — URA windows are a handful of `d_gap` across late in a run);
    // with a shared base, only the area + board-local remainder is indexed
    // here and the library's index is reused.
    let world_cell = crate::context::world_cell(rules);
    let world = match base {
        Some(b) => {
            WorldIndex::build_shared(input.area, &params.obstacles, Arc::clone(b), config.index)
        }
        None => WorldIndex::build_with(input.area, &params.obstacles, world_cell, config.index),
    };
    let mut trace = TraceBuf::from_polyline(input.trace, world_cell);

    let mut queue: VecDeque<u32> = (0..trace.segment_records() as u32).collect();
    let mut iterations = 0usize;
    let mut patterns = 0usize;
    let mut stats = DpStats::default();

    // Reused query state.
    let mut static_scratch = GridScratch::new();
    let mut trace_scratch = GridScratch::new();
    let mut shrink_scratch = ShrinkScratch::new();
    let mut edge_buf: Vec<u32> = Vec::new();
    let mut static_ids: Vec<u32> = Vec::new();
    let mut near_raw: Vec<u32> = Vec::new();
    let mut near_ids: Vec<u32> = Vec::new();

    while trace.length() < input.target - params.tol
        && iterations < config.max_iterations
        && !queue.is_empty()
    {
        iterations += 1;
        let sid = queue.pop_front().expect("non-empty queue");
        let Some(seg) = trace.segment(sid) else {
            continue; // record died in a later splice
        };
        if seg.is_degenerate() {
            continue;
        }
        let Some(frame) = Frame::from_segment(&seg) else {
            continue;
        };
        let len = seg.length();
        let remaining = input.target - trace.length();
        if remaining < 2.0 * params.h_min {
            break; // no legal pattern can add this little
        }
        let Some(disc) = Disc::of(len, &params, rules, config) else {
            continue;
        };

        // Candidate window: everything a pattern on either side could touch
        // — feet plus `g_eff/2` laterally, the initial outer border height
        // vertically. Mapped to a world-space bbox for the index queries.
        let hob_init = remaining / 2.0 + g2;
        let window = local_window_to_world(&frame, -g2, len + g2, hob_init);

        if let Some(rec) = touches.as_deref_mut() {
            rec.record(world_cell, params.inflate, &window);
        }
        world.candidates(&window, &mut static_scratch, &mut edge_buf, &mut static_ids);
        // URA rectangles extend g_eff/2 from their segments.
        let ura_window = window.expanded(g2);
        trace.nearby_segments(
            &ura_window,
            sid,
            &mut trace_scratch,
            &mut near_raw,
            &mut near_ids,
        );
        let uras = uras_for(&trace, &near_ids, params.g_eff);

        // The two side contexts build on a worker pair when the driver-level
        // parallel flag is on, the host has cores to spare (a 1-CPU
        // container would pay the spawn for nothing), *and* the context is
        // big enough that per-side assembly dwarfs the ~tens-of-µs scoped
        // spawn/join — small pops (the common case on paper-sized boards)
        // stay serial so the default config cannot regress them. Either
        // way the builds are the same deterministic computation, so output
        // is identical.
        const PAIR_MIN_POLYS: usize = 96;
        let pair_workers = config.parallel
            && static_ids.len() + uras.len() >= PAIR_MIN_POLYS
            && crate::par::multi_core();
        let (ctx_up, ctx_dn) = ShrinkContext::build_sides_with(
            &world,
            &static_ids,
            &uras,
            &frame,
            len,
            config.index,
            pair_workers,
        );

        let Some((local, kept)) = plan_segment(
            len,
            remaining,
            &disc,
            &params,
            &ctx_up,
            &ctx_dn,
            config,
            &mut shrink_scratch,
            config.dp_profile,
            &mut stats,
        ) else {
            continue;
        };
        patterns += kept;

        let world_pts: Vec<Point> = local.points().iter().map(|&p| frame.to_world(p)).collect();
        let new_ids = trace.splice(sid, &world_pts);

        if config.requeue {
            let min_len = config.requeue_min_protect * rules.protect;
            for &nid in &new_ids {
                let s = trace.segment(nid).expect("freshly spliced");
                if s.length() >= min_len {
                    queue.push_back(nid);
                }
            }
        }
    }

    let out = trace.to_polyline();
    stats.batch.absorb(&shrink_scratch.batch);
    ExtendOutcome {
        achieved: out.length(),
        trace: out,
        iterations,
        patterns,
        stats,
    }
}

/// The world-space bbox of the local rectangle `x ∈ [x0, x1]`,
/// `y ∈ [−h, h]` (both pattern sides share one symmetric window).
fn local_window_to_world(frame: &Frame, x0: f64, x1: f64, h: f64) -> Rect {
    let corners = [
        frame.to_world(Point::new(x0, -h)),
        frame.to_world(Point::new(x1, -h)),
        frame.to_world(Point::new(x0, h)),
        frame.to_world(Point::new(x1, h)),
    ];
    Rect::from_points(corners).expect("four corners")
}

/// URA rectangles (world space) for the given live segment ids — the
/// incremental equivalent of [`WorldContext::trace_uras`], restricted to the
/// segments near the active window.
fn uras_for(trace: &TraceBuf, ids: &[u32], gap: f64) -> Vec<Polygon> {
    let mut out = Vec::with_capacity(ids.len());
    for &sid in ids {
        let Some(seg) = trace.segment(sid) else {
            continue;
        };
        if let Some(ura) = crate::context::segment_ura(&seg, gap) {
            out.push(ura);
        }
    }
    out
}

/// The naive rebuild-per-iteration engine (the "before" reference).
pub fn extend_trace_rebuild(input: &ExtendInput<'_>, config: &ExtendConfig) -> ExtendOutcome {
    let mut trace = input.trace.clone();
    let rules = input.rules;
    let params = EngineParams::derive(input, config);

    let mut queue: VecDeque<(Point, Point)> = trace.segments().map(|s| (s.a, s.b)).collect();
    let mut iterations = 0usize;
    let mut patterns = 0usize;
    let mut stats = DpStats::default();
    let mut shrink_scratch = ShrinkScratch::new();

    while trace.length() < input.target - params.tol
        && iterations < config.max_iterations
        && !queue.is_empty()
    {
        iterations += 1;
        let (a, b) = queue.pop_front().expect("non-empty queue");
        let Some(seg_index) = locate_segment(&trace, a, b) else {
            continue; // segment was replaced by a later splice
        };
        let seg = trace.segment(seg_index);
        if seg.is_degenerate() {
            continue;
        }
        let Some(frame) = Frame::from_segment(&seg) else {
            continue;
        };
        let len = seg.length();
        let remaining = input.target - trace.length();
        if remaining < 2.0 * params.h_min {
            break; // no legal pattern can add this little
        }
        let Some(disc) = Disc::of(len, &params, rules, config) else {
            continue;
        };

        // Obstacle context for both sides, rebuilt from scratch.
        let world = WorldContext {
            area: input.area.to_vec(),
            obstacles: params.obstacles.clone(),
            other_uras: WorldContext::trace_uras(&trace, seg_index, params.g_eff),
        };
        let ctx_up = ShrinkContext::build(&world, &frame, len, 1);
        let ctx_dn = ShrinkContext::build(&world, &frame, len, -1);

        // The rebuild engine stays on the uniform cap — it is the PR 1
        // reference path the perf baseline measures against.
        let Some((local, kept)) = plan_segment(
            len,
            remaining,
            &disc,
            &params,
            &ctx_up,
            &ctx_dn,
            config,
            &mut shrink_scratch,
            false,
            &mut stats,
        ) else {
            continue;
        };
        patterns += kept;

        let (lo, hi) = splice_meander(&mut trace, seg_index, &frame, &local);

        if config.requeue {
            let min_len = config.requeue_min_protect * rules.protect;
            for i in lo..hi {
                let s = trace.segment(i);
                if s.length() >= min_len {
                    queue.push_back((s.a, s.b));
                }
            }
        }
    }

    stats.batch.absorb(&shrink_scratch.batch);
    ExtendOutcome {
        achieved: trace.length(),
        trace,
        iterations,
        patterns,
        stats,
    }
}

/// Finds the polyline segment with endpoints `a → b`, if it still exists.
fn locate_segment(trace: &Polyline, a: Point, b: Point) -> Option<usize> {
    let pts = trace.points();
    (0..pts.len() - 1).find(|&i| pts[i].approx_eq(a) && pts[i + 1].approx_eq(b))
}

/// Caps the cumulative gain of `placements` at `remaining`; the first
/// pattern that would overshoot is re-shrunk to the exact height needed
/// (re-validated — shrinking is not monotone) and later patterns dropped.
#[allow(clippy::too_many_arguments)]
fn trim_placements(
    placements: &[Placement],
    remaining: f64,
    h_min: f64,
    gap: f64,
    ldisc: f64,
    ctx_up: &ShrinkContext,
    ctx_dn: &ShrinkContext,
    batched: bool,
    scratch: &mut ShrinkScratch,
) -> Vec<Placement> {
    let probe = if batched {
        max_pattern_height_batched
    } else {
        max_pattern_height_scratch
    };
    let mut kept = Vec::with_capacity(placements.len());
    let mut acc = 0.0;
    for p in placements {
        let full = 2.0 * p.height;
        if acc + full <= remaining + 1e-9 {
            kept.push(*p);
            acc += full;
            continue;
        }
        let desired = (remaining - acc) / 2.0;
        if desired >= h_min - 1e-9 {
            let ctx = if p.dir > 0 { ctx_up } else { ctx_dn };
            let r = probe(
                ctx,
                p.lo as f64 * ldisc,
                p.hi as f64 * ldisc,
                gap,
                desired,
                h_min,
                scratch,
            );
            if r.height >= h_min - 1e-9 {
                kept.push(Placement {
                    height: r.height,
                    ..*p
                });
            }
        }
        break;
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules() -> DesignRules {
        DesignRules {
            gap: 8.0,
            obstacle: 8.0,
            protect: 4.0,
            miter: 2.0,
            width: 4.0,
        }
    }

    fn straight(len: f64) -> Polyline {
        Polyline::new(vec![Point::new(0.0, 0.0), Point::new(len, 0.0)])
    }

    fn roomy_area(len: f64) -> Vec<Polygon> {
        vec![Polygon::rectangle(
            Point::new(-20.0, -80.0),
            Point::new(len + 20.0, 80.0),
        )]
    }

    /// Both engines for every engine-level test.
    fn engines() -> [ExtendConfig; 2] {
        [
            ExtendConfig::default(),
            ExtendConfig {
                incremental: false,
                ..Default::default()
            },
        ]
    }

    #[test]
    fn hits_target_exactly_in_open_space() {
        let trace = straight(200.0);
        let area = roomy_area(200.0);
        let r = rules();
        for config in engines() {
            let out = extend_trace(
                &ExtendInput {
                    trace: &trace,
                    target: 260.0,
                    rules: &r,
                    area: &area,
                    obstacles: &[],
                },
                &config,
            );
            assert!(
                (out.achieved - 260.0).abs() <= 260.0 * 1e-3,
                "achieved {} ≠ 260 (incremental: {})",
                out.achieved,
                config.incremental
            );
            assert!(out.patterns >= 1);
            assert!(!out.trace.is_self_intersecting());
            // Endpoints preserved — the original routing contract.
            assert!(out.trace.start().approx_eq(trace.start()));
            assert!(out.trace.end().approx_eq(trace.end()));
        }
    }

    #[test]
    fn never_overshoots() {
        let trace = straight(100.0);
        let area = roomy_area(100.0);
        let r = rules();
        for config in engines() {
            for target in [110.0, 130.0, 170.0, 250.0] {
                let out = extend_trace(
                    &ExtendInput {
                        trace: &trace,
                        target,
                        rules: &r,
                        area: &area,
                        obstacles: &[],
                    },
                    &config,
                );
                assert!(
                    out.achieved <= target + 1e-6,
                    "target {target}: overshoot to {}",
                    out.achieved
                );
            }
        }
    }

    #[test]
    fn respects_obstacles() {
        let trace = straight(120.0);
        let area = roomy_area(120.0);
        let r = rules();
        // Obstacle band above the trace center.
        let obstacles = vec![Polygon::rectangle(
            Point::new(30.0, 15.0),
            Point::new(90.0, 25.0),
        )];
        for config in engines() {
            let out = extend_trace(
                &ExtendInput {
                    trace: &trace,
                    target: 220.0,
                    rules: &r,
                    area: &area,
                    obstacles: &obstacles,
                },
                &config,
            );
            // DRC-verified clean result.
            let violations = meander_drc::check_layout(&meander_drc::CheckInput {
                traces: vec![meander_drc::TraceGeometry {
                    id: 0,
                    centerline: out.trace.clone(),
                    width: r.width,
                    rules: r,
                    area: area.clone(),
                    coupled_with: vec![],
                }],
                obstacles: obstacles.clone(),
            });
            assert!(violations.is_empty(), "{violations:?}");
            assert!(out.achieved > 120.0);
        }
    }

    #[test]
    fn corridor_limits_amplitude() {
        let trace = straight(150.0);
        // Narrow corridor: half-height 12 → pattern h ≤ 12 − gap/2 = 8.
        let area = vec![Polygon::rectangle(
            Point::new(-10.0, -12.0),
            Point::new(160.0, 12.0),
        )];
        let r = rules();
        for config in engines() {
            let out = extend_trace(
                &ExtendInput {
                    trace: &trace,
                    target: 600.0,
                    rules: &r,
                    area: &area,
                    obstacles: &[],
                },
                &config,
            );
            // Every vertex stays in the corridor; amplitude capped at
            // 12 − (gap + width)/2 = 6.
            for p in out.trace.points() {
                assert!(p.y.abs() <= 6.0 + 1e-9, "pattern too tall: {p}");
            }
            assert!(out.achieved < 590.0, "narrow corridor cannot reach 600");
            assert!(out.achieved > 230.0, "should still meander substantially");
        }
    }

    #[test]
    fn any_direction_trace_extends() {
        // 30° rotated trace with its rotated corridor.
        let dir = meander_geom::Vector::new(30f64.to_radians().cos(), 30f64.to_radians().sin());
        let a = Point::new(5.0, 5.0);
        let b = a + dir * 180.0;
        let trace = Polyline::new(vec![a, b]);
        let seg = meander_geom::Segment::new(a, b);
        let frame = Frame::from_segment(&seg).unwrap();
        let local_area = Polygon::rectangle(Point::new(-10.0, -40.0), Point::new(190.0, 40.0));
        let area = vec![frame.polygon_to_world(&local_area)];
        let r = rules();
        for config in engines() {
            let out = extend_trace(
                &ExtendInput {
                    trace: &trace,
                    target: 240.0,
                    rules: &r,
                    area: &area,
                    obstacles: &[],
                },
                &config,
            );
            assert!(
                (out.achieved - 240.0).abs() <= 240.0 * 1e-3,
                "achieved {}",
                out.achieved
            );
            assert!(!out.trace.is_self_intersecting());
            for &p in out.trace.points() {
                assert!(area[0].contains(p), "left rotated corridor: {p}");
            }
        }
    }

    #[test]
    fn multi_segment_trace_distributes_patterns() {
        let trace = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(100.0, 100.0),
        ]);
        let area = vec![Polygon::rectangle(
            Point::new(-30.0, -30.0),
            Point::new(130.0, 130.0),
        )];
        let r = rules();
        for config in engines() {
            let out = extend_trace(
                &ExtendInput {
                    trace: &trace,
                    target: 320.0,
                    rules: &r,
                    area: &area,
                    obstacles: &[],
                },
                &config,
            );
            assert!((out.achieved - 320.0).abs() <= 320.0 * 1e-3);
            assert!(!out.trace.is_self_intersecting());
        }
    }

    #[test]
    fn target_equal_length_is_noop() {
        let trace = straight(100.0);
        let area = roomy_area(100.0);
        let r = rules();
        for config in engines() {
            let out = extend_trace(
                &ExtendInput {
                    trace: &trace,
                    target: 100.0,
                    rules: &r,
                    area: &area,
                    obstacles: &[],
                },
                &config,
            );
            assert_eq!(out.trace, trace);
            assert_eq!(out.patterns, 0);
        }
    }

    #[test]
    fn requeue_enables_meander_on_meander() {
        let trace = straight(100.0);
        let area = roomy_area(100.0);
        let r = rules();
        let big_target = 500.0;
        let with = extend_trace(
            &ExtendInput {
                trace: &trace,
                target: big_target,
                rules: &r,
                area: &area,
                obstacles: &[],
            },
            &ExtendConfig::default(),
        );
        let without = extend_trace(
            &ExtendInput {
                trace: &trace,
                target: big_target,
                rules: &r,
                area: &area,
                obstacles: &[],
            },
            &ExtendConfig {
                requeue: false,
                ..Default::default()
            },
        );
        assert!(
            with.achieved >= without.achieved - 1e-9,
            "requeue must not hurt: {} vs {}",
            with.achieved,
            without.achieved
        );
    }

    #[test]
    fn index_kinds_bit_identical() {
        // Grid, R-tree, and Auto world/context indexes return identical
        // candidate sets, so the whole engine output must match bit for
        // bit — vertices included — on boards with obstacles, corridors,
        // and a plane-sized slab.
        use meander_index::IndexKind;
        let r = rules();
        let trace = straight(200.0);
        let area = roomy_area(200.0);
        let obstacles = vec![
            Polygon::rectangle(Point::new(-10.0, 20.0), Point::new(210.0, 26.0)), // plane slab
            Polygon::regular(Point::new(60.0, -30.0), 6.0, 8, 0.1),
            Polygon::regular(Point::new(140.0, 14.0), 3.0, 6, 0.4),
        ];
        let input = ExtendInput {
            trace: &trace,
            target: 420.0,
            rules: &r,
            area: &area,
            obstacles: &obstacles,
        };
        let run = |index: IndexKind| {
            extend_trace_incremental(
                &input,
                &ExtendConfig {
                    index,
                    parallel: false,
                    ..Default::default()
                },
            )
        };
        let grid = run(IndexKind::Grid);
        assert!(grid.patterns >= 1);
        for kind in [IndexKind::RTree, IndexKind::Auto] {
            let other = run(kind);
            assert_eq!(
                grid.achieved.to_bits(),
                other.achieved.to_bits(),
                "{kind:?}: achieved diverged"
            );
            assert_eq!(grid.patterns, other.patterns, "{kind:?}");
            assert_eq!(grid.iterations, other.iterations, "{kind:?}");
            assert_eq!(grid.trace.points(), other.trace.points(), "{kind:?}");
        }
    }

    #[test]
    fn shared_base_bit_identical() {
        // Routing against a prebuilt library base must reproduce the
        // monolithic run bit for bit — library polygons listed before the
        // board-local ones, like a materialized fleet board.
        let r = rules();
        let trace = straight(200.0);
        let area = roomy_area(200.0);
        let library = vec![
            Polygon::rectangle(Point::new(-10.0, 20.0), Point::new(210.0, 26.0)),
            Polygon::regular(Point::new(60.0, -30.0), 6.0, 8, 0.1),
            Polygon::regular(Point::new(150.0, -24.0), 4.0, 8, 0.3),
        ];
        let local = vec![Polygon::regular(Point::new(110.0, 16.0), 3.0, 6, 0.4)];
        let mono: Vec<Polygon> = library.iter().chain(&local).cloned().collect();
        let config = ExtendConfig {
            parallel: false,
            ..Default::default()
        };
        let want = extend_trace(
            &ExtendInput {
                trace: &trace,
                target: 420.0,
                rules: &r,
                area: &area,
                obstacles: &mono,
            },
            &config,
        );
        assert!(want.patterns >= 1);
        for kind in [
            meander_index::IndexKind::Grid,
            meander_index::IndexKind::RTree,
        ] {
            let base = Arc::new(WorldBase::build(&library, &r, kind));
            assert!(base.compatible(&r));
            let got = extend_trace_shared(
                &ExtendInput {
                    trace: &trace,
                    target: 420.0,
                    rules: &r,
                    area: &area,
                    obstacles: &local,
                },
                &ExtendConfig {
                    index: kind,
                    ..config.clone()
                },
                Some(&base),
            );
            assert_eq!(want.achieved.to_bits(), got.achieved.to_bits(), "{kind:?}");
            assert_eq!(want.patterns, got.patterns, "{kind:?}");
            assert_eq!(want.iterations, got.iterations, "{kind:?}");
            assert_eq!(want.trace.points(), got.trace.points(), "{kind:?}");
        }
    }

    #[test]
    fn incompatible_base_falls_back_identically() {
        // A base built for *different* rules (different inflation/lattice)
        // must not be overlaid — the fallback materializes the library and
        // still produces the exact monolithic result.
        let r = rules();
        let mut other = r;
        other.gap = 10.0; // different g_eff ⇒ different cell + inflation
        let trace = straight(160.0);
        let area = roomy_area(160.0);
        let library = vec![Polygon::regular(Point::new(80.0, 20.0), 5.0, 8, 0.0)];
        let local = vec![Polygon::regular(Point::new(40.0, -18.0), 3.0, 6, 0.2)];
        let base = Arc::new(WorldBase::build(
            &library,
            &other,
            meander_index::IndexKind::Grid,
        ));
        assert!(!base.compatible(&r));
        let mono: Vec<Polygon> = library.iter().chain(&local).cloned().collect();
        let config = ExtendConfig {
            parallel: false,
            ..Default::default()
        };
        let want = extend_trace(
            &ExtendInput {
                trace: &trace,
                target: 280.0,
                rules: &r,
                area: &area,
                obstacles: &mono,
            },
            &config,
        );
        let got = extend_trace_shared(
            &ExtendInput {
                trace: &trace,
                target: 280.0,
                rules: &r,
                area: &area,
                obstacles: &local,
            },
            &config,
            Some(&base),
        );
        assert_eq!(want.achieved.to_bits(), got.achieved.to_bits());
        assert_eq!(want.trace.points(), got.trace.points());
    }

    #[test]
    fn engines_agree() {
        // The incremental engine must reproduce the rebuild engine's result
        // (same iterations/patterns; lengths equal up to float-summation
        // order) across shapes, obstacles, and corridors.
        let r = rules();
        let cases: Vec<(Polyline, Vec<Polygon>, Vec<Polygon>, f64)> = vec![
            (straight(200.0), roomy_area(200.0), vec![], 300.0),
            (
                straight(150.0),
                vec![Polygon::rectangle(
                    Point::new(-10.0, -12.0),
                    Point::new(160.0, 12.0),
                )],
                vec![],
                600.0,
            ),
            (
                straight(120.0),
                roomy_area(120.0),
                vec![
                    Polygon::rectangle(Point::new(30.0, 15.0), Point::new(90.0, 25.0)),
                    Polygon::regular(Point::new(60.0, -30.0), 6.0, 8, 0.1),
                ],
                260.0,
            ),
            (
                Polyline::new(vec![
                    Point::new(0.0, 0.0),
                    Point::new(100.0, 0.0),
                    Point::new(100.0, 100.0),
                    Point::new(180.0, 140.0),
                ]),
                vec![Polygon::rectangle(
                    Point::new(-40.0, -40.0),
                    Point::new(220.0, 180.0),
                )],
                vec![Polygon::regular(Point::new(60.0, 40.0), 8.0, 6, 0.0)],
                480.0,
            ),
        ];
        for (i, (trace, area, obstacles, target)) in cases.iter().enumerate() {
            let input = ExtendInput {
                trace,
                target: *target,
                rules: &r,
                area,
                obstacles,
            };
            let fast = extend_trace_incremental(&input, &ExtendConfig::default());
            let slow = extend_trace_rebuild(&input, &ExtendConfig::default());
            assert_eq!(
                fast.patterns, slow.patterns,
                "case {i}: pattern counts diverged"
            );
            assert_eq!(
                fast.iterations, slow.iterations,
                "case {i}: iteration counts diverged"
            );
            assert!(
                (fast.achieved - slow.achieved).abs() < 1e-6,
                "case {i}: lengths diverged: {} vs {}",
                fast.achieved,
                slow.achieved
            );
            assert_eq!(
                fast.trace.point_count(),
                slow.trace.point_count(),
                "case {i}: vertex counts diverged"
            );
            for (a, b) in fast.trace.points().iter().zip(slow.trace.points()) {
                assert!(a.distance(*b) < 1e-6, "case {i}: geometry diverged");
            }
        }
    }
}
