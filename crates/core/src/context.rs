//! The polygon context a segment is extended against.

use meander_drc::DesignRules;
use meander_geom::{Frame, Point, Polygon, Polyline, Rect, Segment};
use meander_index::{GridScratch, IndexKind, MergeSortTree, OverlayIndex, SegIndex, SpatialIndex};
use std::sync::Arc;

/// Tiny lift above the segment line: geometry at `y ≤ Y_EPS` in pattern-side
/// coordinates belongs to "behind the segment" and is exempt from checking
/// (paper: "The area below line AD need not be checked"). Constraints *on*
/// the line (legs of existing patterns) are kept by clipping at exactly
/// this height, so their clipped bottom nodes still register.
pub const Y_EPS: f64 = 1e-7;

/// World-space inputs for building a [`ShrinkContext`].
#[derive(Debug, Clone, Default)]
pub struct WorldContext {
    /// Routable-area border polygons (patterns must stay inside one).
    pub area: Vec<Polygon>,
    /// Obstacle polygons.
    pub obstacles: Vec<Polygon>,
    /// URA rectangles of the trace's *other* segments (world space).
    pub other_uras: Vec<Polygon>,
}

impl WorldContext {
    /// Builds the URA rectangles for every segment of `trace` except the
    /// one with index `skip`, with lateral half-width `gap / 2`.
    pub fn trace_uras(trace: &Polyline, skip: usize, gap: f64) -> Vec<Polygon> {
        let mut out = Vec::with_capacity(trace.segment_count().saturating_sub(1));
        for (i, seg) in trace.segments().enumerate() {
            if i == skip {
                continue;
            }
            if let Some(ura) = segment_ura(&seg, gap) {
                out.push(ura);
            }
        }
        out
    }
}

/// The URA rectangle of one segment in world space: lateral half-width
/// `gap / 2` (paper Fig. 6), without longitudinal extension — the
/// along-trace spacing constraints are enforced by the DP transition rules
/// instead. `None` for degenerate segments. Both engines build their
/// other-segment constraints through this single definition.
pub fn segment_ura(seg: &Segment, gap: f64) -> Option<Polygon> {
    if seg.is_degenerate() {
        return None;
    }
    let frame = Frame::from_segment(seg).expect("non-degenerate");
    let local = Polygon::rectangle(
        Point::new(0.0, -gap / 2.0),
        Point::new(seg.length(), gap / 2.0),
    );
    Some(frame.polygon_to_world(&local))
}

/// Effective clearance between trace *centerlines* (`d_gap` of the URA
/// construction): edge gap plus one trace width (two half-widths).
#[inline]
pub fn effective_gap(rules: &DesignRules) -> f64 {
    rules.gap + rules.width
}

/// How far obstacles are inflated into centerline terms: they demand
/// `d_obs + w/2` from a centerline while the URA only guarantees
/// `g_eff/2`; the difference is made up by growing the polygon.
#[inline]
pub fn obstacle_inflation(rules: &DesignRules) -> f64 {
    (rules.obstacle + rules.width / 2.0 - effective_gap(rules) / 2.0).max(0.0)
}

/// Cell size of the per-trace world edge index: a few clearance units —
/// URA windows are a handful of `d_gap` across late in a run.
#[inline]
pub fn world_cell(rules: &DesignRules) -> f64 {
    (effective_gap(rules) * 4.0).max(1.0)
}

/// Prebuilt, shareable world geometry for an obstacle **library**: the
/// library's polygons inflated into centerline terms, with their edges
/// spatially indexed — built **once** per `(library, rules)` and reused by
/// every trace of every board of a fleet, instead of re-indexed inside each
/// [`WorldIndex::build_with`].
///
/// The inflation amount and the index lattice are functions of the design
/// rules ([`obstacle_inflation`], [`world_cell`]); a base only composes
/// with traces whose rules derive the *same* floats
/// ([`WorldBase::compatible`] — callers fall back to materializing the raw
/// polygons otherwise, trading the amortization for unchanged output). The
/// per-trace remainder (routable-area borders, board-local obstacles) goes
/// into an [`OverlayIndex`] layered over this base; by the overlay's
/// union-equals-monolithic contract the candidate sets — and therefore the
/// router's placements — are **bit-identical** to indexing everything per
/// trace.
#[derive(Debug)]
pub struct WorldBase {
    /// The library polygons as given (un-inflated) — the fallback
    /// materialization path for incompatible rules.
    raw: Vec<Polygon>,
    /// Library polygons inflated by [`obstacle_inflation`] — exactly what
    /// `EngineParams` would compute per trace.
    polys: Vec<Polygon>,
    /// Shared edge index over `polys` (edge `e` belongs to polygon
    /// `edge_owner[e]`).
    edge_index: Arc<SegIndex>,
    edge_owner: Vec<u32>,
    n_edges: u32,
    /// Lattice cell size the index was built on ([`world_cell`]).
    cell: f64,
    /// Inflation the polygons were grown by ([`obstacle_inflation`]).
    inflate: f64,
}

impl WorldBase {
    /// Inflates and indexes `library` for traces governed by `rules`, with
    /// the index structure selected by `kind` (`Auto` resolves on the
    /// library's edge extents; candidate sets are identical either way).
    pub fn build(library: &[Polygon], rules: &DesignRules, kind: IndexKind) -> Self {
        let inflate = obstacle_inflation(rules);
        let cell = world_cell(rules);
        let polys: Vec<Polygon> = library.iter().map(|p| p.offset_convex(inflate)).collect();
        let mut edges: Vec<Segment> = Vec::new();
        let mut edge_owner = Vec::new();
        for (k, poly) in polys.iter().enumerate() {
            for e in poly.edges() {
                edges.push(e);
                edge_owner.push(k as u32);
            }
        }
        WorldBase {
            raw: library.to_vec(),
            polys,
            edge_index: Arc::new(SegIndex::from_segments(kind, cell.max(1e-6), &edges)),
            edge_owner,
            n_edges: edges.len() as u32,
            cell,
            inflate,
        }
    }

    /// `true` when a trace under `rules` derives exactly the inflation and
    /// lattice this base was built with — the condition for the overlay
    /// path to be bit-identical to per-trace indexing. (The index *kind*
    /// is deliberately not compared: candidate sets are structure-
    /// independent.)
    pub fn compatible(&self, rules: &DesignRules) -> bool {
        obstacle_inflation(rules).to_bits() == self.inflate.to_bits()
            && world_cell(rules).to_bits() == self.cell.to_bits()
    }

    /// Number of library polygons.
    #[inline]
    pub fn len(&self) -> usize {
        self.polys.len()
    }

    /// `true` when the library is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.polys.is_empty()
    }

    /// The un-inflated library polygons (fallback materialization).
    #[inline]
    pub fn raw(&self) -> &[Polygon] {
        &self.raw
    }
}

/// Immutable, per-trace spatial index over the *static* world geometry
/// (routable-area borders and inflated obstacles, in world coordinates).
///
/// The naive pipeline re-clones and re-transforms every polygon on every
/// queue pop; this index is built **once per trace** and each iteration asks
/// it only for the polygons that can reach the popped segment's candidate
/// window, so [`ShrinkContext`] construction becomes output-sensitive.
///
/// In the fleet regime ([`WorldIndex::build_shared`]) the obstacle-library
/// part of the world comes from a prebuilt [`WorldBase`]: only the
/// per-trace remainder is indexed here, as an [`OverlayIndex`] overlay.
/// Polygon ids then run: own area polygons, base (library) polygons, own
/// board-local obstacles — the same order a monolithic board with its
/// library obstacles listed first would produce, so candidate id lists are
/// identical across the two builds.
#[derive(Debug)]
pub struct WorldIndex {
    /// Shared library world, if this index was built over one.
    base: Option<Arc<WorldBase>>,
    /// Number of polygon ids occupied by the base (0 without one).
    n_base: usize,
    /// Own polygons: areas first, then non-library obstacles.
    polys: Vec<Polygon>,
    /// Number of leading area polygons.
    n_area: usize,
    /// Per-own-polygon bounding boxes (area containment tests).
    bboxes: Vec<Rect>,
    /// Edge index: base (library) edges under their shared index, own
    /// edges as the overlay (ids offset by the base's edge count).
    edge_index: OverlayIndex,
    /// Own edge id → owning *own* polygon index.
    edge_owner: Vec<u32>,
}

impl WorldIndex {
    /// Indexes `area` + `obstacles` with cell size `cell` on the uniform
    /// grid (the portable default; see [`WorldIndex::build_with`]).
    pub fn build(area: &[Polygon], obstacles: &[Polygon], cell: f64) -> Self {
        WorldIndex::build_with(area, obstacles, cell, IndexKind::Grid)
    }

    /// [`WorldIndex::build`] with the edge index structure selected by
    /// `kind`. `Auto` resolves on the edge-extent distribution — plane
    /// polygons next to via fields pick the R-tree, paper-sized boards the
    /// grid ([`IndexKind::resolve`]). Query results are identical either
    /// way; only the cost model changes.
    pub fn build_with(area: &[Polygon], obstacles: &[Polygon], cell: f64, kind: IndexKind) -> Self {
        Self::assemble(area, obstacles, cell, kind, None)
    }

    /// Builds the per-trace index *over* a shared [`WorldBase`]: only
    /// `area` and the board-local `obstacles` (already inflated by the
    /// caller, like [`WorldIndex::build_with`]'s) are indexed here; the
    /// library's inflated polygons and their edge index are reused from
    /// `base`. Queries answer exactly like a monolithic build over
    /// `area + base + obstacles` (see [`OverlayIndex`]).
    pub fn build_shared(
        area: &[Polygon],
        obstacles: &[Polygon],
        base: Arc<WorldBase>,
        kind: IndexKind,
    ) -> Self {
        let cell = base.cell;
        Self::assemble(area, obstacles, cell, kind, Some(base))
    }

    fn assemble(
        area: &[Polygon],
        obstacles: &[Polygon],
        cell: f64,
        kind: IndexKind,
        base: Option<Arc<WorldBase>>,
    ) -> Self {
        let polys: Vec<Polygon> = area.iter().chain(obstacles.iter()).cloned().collect();
        let bboxes: Vec<Rect> = polys.iter().map(|p| p.bbox()).collect();
        let mut edges: Vec<Segment> = Vec::new();
        let mut edge_owner = Vec::new();
        for (k, poly) in polys.iter().enumerate() {
            for e in poly.edges() {
                edges.push(e);
                edge_owner.push(k as u32);
            }
        }
        let own = SegIndex::from_segments(kind, cell.max(1e-6), &edges);
        let (edge_index, n_base) = match &base {
            Some(b) => (
                OverlayIndex::over(Arc::clone(&b.edge_index), b.n_edges, own),
                b.len(),
            ),
            None => (OverlayIndex::solo(own), 0),
        };
        WorldIndex {
            base,
            n_base,
            polys,
            n_area: area.len(),
            bboxes,
            edge_index,
            edge_owner,
        }
    }

    /// Total number of indexed polygons (own + base).
    #[inline]
    pub fn n_polys(&self) -> usize {
        self.polys.len() + self.n_base
    }

    /// The polygon with combined id `k` (own areas, then base polygons,
    /// then own obstacles).
    #[inline]
    pub fn poly(&self, k: u32) -> &Polygon {
        let k = k as usize;
        if k < self.n_area {
            &self.polys[k]
        } else if k < self.n_area + self.n_base {
            &self.base.as_ref().expect("base ids imply a base").polys[k - self.n_area]
        } else {
            &self.polys[k - self.n_base]
        }
    }

    /// `true` when polygon `k` is a routable-area border.
    #[inline]
    pub fn is_area(&self, k: u32) -> bool {
        (k as usize) < self.n_area
    }

    /// Ids of static polygons that can interact with `window`, ascending.
    ///
    /// Area polygons are matched by bounding box (containment matters even
    /// when their edges are far away); obstacles are matched through the
    /// edge grid (a polygon with a node or a crossing edge inside the
    /// window always has an edge whose bbox overlaps it). A conservative
    /// superset: the shrinking stages run their exact predicates on
    /// whatever is returned.
    pub fn candidates(
        &self,
        window: &Rect,
        scratch: &mut GridScratch,
        edge_buf: &mut Vec<u32>,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        for k in 0..self.n_area {
            if self.bboxes[k].intersects(window) {
                out.push(k as u32);
            }
        }
        self.edge_index.query_scratch(window, scratch, edge_buf);
        let first_obstacle = out.len();
        let base_edges = self.edge_index.base_ids();
        for &e in edge_buf.iter() {
            if e < base_edges {
                // Library edge: owner sits in the base id band.
                let b = self.base.as_ref().expect("base ids imply a base");
                out.push(self.n_area as u32 + b.edge_owner[e as usize]);
            } else {
                let owner = self.edge_owner[(e - base_edges) as usize];
                if (owner as usize) >= self.n_area {
                    // Own obstacle: shift past the base id band.
                    out.push(owner + self.n_base as u32);
                }
            }
        }
        out[first_obstacle..].sort_unstable();
        out.dedup();
    }
}

/// The per-(segment, direction) obstacle context used by the URA shrinking.
///
/// All polygons are transformed into *pattern-side coordinates*: x along the
/// extended segment, +y toward the pattern side, clipped to `y ≥` [`Y_EPS`].
/// A merge-sort tree over the clipped polygons' nodes answers Alg. 2's
/// `P_check` range queries; a uniform grid over their edges accelerates the
/// "sides" intersections of Eq. 11.
///
/// A context is immutable once built, which is what makes the per-position
/// upper-bound profile ([`crate::shrink::build_ub_profile`]) sound: the
/// profile snapshots the stage-1 side clearances for every discretized foot
/// position against `edges`/`grid`, and every later
/// [`crate::shrink::max_pattern_height_scratch`] probe of the same context
/// evaluates the same geometry — so the cached caps stay true upper bounds
/// for the context's whole lifetime (one queue pop in the engine; a splice
/// builds fresh contexts for the segments it creates).
#[derive(Debug)]
pub struct ShrinkContext {
    /// Constraint polygons in pattern-side coordinates. Routable-area
    /// borders come first *unclipped* (their below-segment edges cannot
    /// reach the URA anyway, and clipping would fabricate a border edge on
    /// the segment line); obstacles and other-segment URAs follow, clipped
    /// to `y ≥` [`Y_EPS`] so anything standing on the segment registers
    /// bottom nodes the range query can see.
    pub polygons: Vec<Polygon>,
    /// `true` for routable-area border polygons (containers, not
    /// obstacles): they are never "enclosed" by a pattern.
    pub is_area: Vec<bool>,
    /// Node tree: point → polygon id.
    pub tree: MergeSortTree<u32>,
    /// Spatial index over all polygon edges (grid or R-tree — candidate
    /// sets identical by the [`meander_index::SpatialIndex`] contract, so
    /// stage 1 and the profile sweeps are bit-identical either way).
    pub grid: SegIndex,
    /// Flattened edges (grid ids index into this).
    pub edges: Vec<Segment>,
    /// Owning polygon of each edge.
    pub edge_owner: Vec<u32>,
    /// Node count per polygon (for the `|Poly_k|` tests of Alg. 2).
    pub node_count: Vec<usize>,
    /// The extended segment in local coordinates (on the +x axis).
    pub local_segment: Segment,
    /// Routable-area polygons in pattern-side coordinates (unclipped) used
    /// for the final containment check.
    pub area_local: Vec<Polygon>,
}

impl ShrinkContext {
    /// Builds the context for one side of one segment.
    ///
    /// `frame` maps world → segment-local; `dir` (+1/−1) selects the
    /// pattern side (−1 mirrors y so the shrinking always works "upward").
    pub fn build(world: &WorldContext, frame: &Frame, seg_len: f64, dir: i8) -> Self {
        Self::build_indexed(world, frame, seg_len, dir, IndexKind::Grid)
    }

    /// [`ShrinkContext::build`] with the edge index structure selected by
    /// `kind` (results identical; see the `grid` field).
    pub fn build_indexed(
        world: &WorldContext,
        frame: &Frame,
        seg_len: f64,
        dir: i8,
        kind: IndexKind,
    ) -> Self {
        let flip = f64::from(dir);
        let to_side = |p: Point| {
            let l = frame.to_local(p);
            Point::new(l.x, l.y * flip)
        };

        let mut polygons: Vec<Polygon> = Vec::new();
        let mut is_area = Vec::new();
        let mut area_local = Vec::new();
        for poly in &world.area {
            let verts: Vec<Point> = poly.vertices().iter().map(|&p| to_side(p)).collect();
            area_local.push(Polygon::new(verts.clone()));
            polygons.push(Polygon::new(verts));
            is_area.push(true);
        }
        for poly in world.obstacles.iter().chain(&world.other_uras) {
            let verts: Vec<Point> = poly.vertices().iter().map(|&p| to_side(p)).collect();
            if let Some(clipped) = Polygon::new(verts).clipped_above(Y_EPS) {
                polygons.push(clipped);
                is_area.push(false);
            }
        }

        Self::assemble(polygons, is_area, area_local, seg_len, kind)
    }

    /// Builds **both** side contexts from pre-filtered world geometry,
    /// transforming every vertex into the local frame exactly once.
    ///
    /// `world` + `static_ids` name the static polygons near the candidate
    /// window (see [`WorldIndex::candidates`]); `other_uras` are the URA
    /// rectangles of the trace's nearby other segments, already in world
    /// coordinates. `kind` selects each context's edge index structure
    /// (results identical either way). Equivalent to two
    /// [`ShrinkContext::build`] calls over the same polygon set.
    pub fn build_sides(
        world: &WorldIndex,
        static_ids: &[u32],
        other_uras: &[Polygon],
        frame: &Frame,
        seg_len: f64,
        kind: IndexKind,
    ) -> (ShrinkContext, ShrinkContext) {
        Self::build_sides_with(world, static_ids, other_uras, frame, seg_len, kind, false)
    }

    /// [`ShrinkContext::build_sides`] with an optional worker pair: the two
    /// side contexts are independent once the shared transform pass is
    /// done, so with `pair_workers` the `up` side builds on a scoped thread
    /// while the `dn` side builds on the caller's. Each side's construction
    /// is the identical deterministic computation either way, so the
    /// results are **bit-identical** (covered by the serial-equality test
    /// below). Engine callers gate this on [`crate::par::multi_core`] —
    /// on a 1-CPU host the spawn is pure overhead and the flag stays off.
    #[allow(clippy::too_many_arguments)]
    pub fn build_sides_with(
        world: &WorldIndex,
        static_ids: &[u32],
        other_uras: &[Polygon],
        frame: &Frame,
        seg_len: f64,
        kind: IndexKind,
        pair_workers: bool,
    ) -> (ShrinkContext, ShrinkContext) {
        // One transform pass: local "up-side" coordinates; the down side
        // mirrors y afterwards.
        let mut local: Vec<(Vec<Point>, bool)> = Vec::with_capacity(static_ids.len());
        for &k in static_ids {
            let verts: Vec<Point> = world
                .poly(k)
                .vertices()
                .iter()
                .map(|&p| frame.to_local(p))
                .collect();
            local.push((verts, world.is_area(k)));
        }
        for ura in other_uras {
            let verts: Vec<Point> = ura.vertices().iter().map(|&p| frame.to_local(p)).collect();
            local.push((verts, false));
        }

        let build_one = |flip: f64| -> ShrinkContext {
            let mut polygons: Vec<Polygon> = Vec::new();
            let mut is_area = Vec::new();
            let mut area_local = Vec::new();
            for (verts, area) in &local {
                let side: Vec<Point> = verts.iter().map(|&p| Point::new(p.x, p.y * flip)).collect();
                if *area {
                    area_local.push(Polygon::new(side.clone()));
                    polygons.push(Polygon::new(side));
                    is_area.push(true);
                } else if let Some(clipped) = Polygon::new(side).clipped_above(Y_EPS) {
                    polygons.push(clipped);
                    is_area.push(false);
                }
            }
            ShrinkContext::assemble(polygons, is_area, area_local, seg_len, kind)
        };

        if pair_workers {
            std::thread::scope(|s| {
                let up = s.spawn(|| build_one(1.0));
                let dn = build_one(-1.0);
                (up.join().expect("side-context worker"), dn)
            })
        } else {
            (build_one(1.0), build_one(-1.0))
        }
    }

    /// Builds the query structures over side-local polygons.
    fn assemble(
        polygons: Vec<Polygon>,
        is_area: Vec<bool>,
        area_local: Vec<Polygon>,
        seg_len: f64,
        kind: IndexKind,
    ) -> Self {
        let mut nodes = Vec::new();
        let mut edges = Vec::new();
        let mut edge_owner = Vec::new();
        let mut node_count = Vec::new();
        for (k, poly) in polygons.iter().enumerate() {
            node_count.push(poly.len());
            for &v in poly.vertices() {
                nodes.push((v, k as u32));
            }
            for e in poly.edges() {
                edges.push(e);
                edge_owner.push(k as u32);
            }
        }
        let tree = MergeSortTree::build(nodes);
        let cell = (seg_len / 8.0).max(1.0);
        let grid = SegIndex::from_segments(kind, cell, &edges);

        ShrinkContext {
            polygons,
            is_area,
            tree,
            grid,
            edges,
            edge_owner,
            node_count,
            local_segment: Segment::new(Point::ORIGIN, Point::new(seg_len, 0.0)),
            area_local,
        }
    }

    /// `d(seg, p)` of the paper: distance from the extended segment to `p`
    /// in pattern-side coordinates.
    #[inline]
    pub fn dist_seg(&self, p: Point) -> f64 {
        self.local_segment.distance_to_point(p)
    }

    /// `true` when the axis-aligned pattern rectangle (feet `x0..x1`,
    /// height `h`) lies inside a single routable-area polygon.
    pub fn pattern_in_area(&self, x0: f64, x1: f64, h: f64) -> bool {
        if self.area_local.is_empty() {
            return true;
        }
        let corners = [
            Point::new(x0, 0.0),
            Point::new(x1, 0.0),
            Point::new(x0, h),
            Point::new(x1, h),
            Point::new((x0 + x1) / 2.0, h),
        ];
        self.area_local
            .iter()
            .any(|poly| corners.iter().all(|&c| poly.contains(c)))
    }

    /// Candidate edge ids near a rectangle.
    pub fn edges_near(&self, r: &Rect) -> Vec<u32> {
        self.grid.query(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meander_geom::Vector;

    fn frame_for(a: Point, b: Point) -> (Frame, f64) {
        let seg = Segment::new(a, b);
        (Frame::from_segment(&seg).unwrap(), seg.length())
    }

    #[test]
    fn polygons_behind_segment_are_dropped() {
        let (frame, len) = frame_for(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
        let world = WorldContext {
            area: vec![],
            obstacles: vec![
                Polygon::rectangle(Point::new(10.0, 5.0), Point::new(20.0, 15.0)), // above
                Polygon::rectangle(Point::new(10.0, -15.0), Point::new(20.0, -5.0)), // below
            ],
            other_uras: vec![],
        };
        let up = ShrinkContext::build(&world, &frame, len, 1);
        assert_eq!(up.polygons.len(), 1);
        let down = ShrinkContext::build(&world, &frame, len, -1);
        assert_eq!(down.polygons.len(), 1);
        // The down context sees the below-obstacle at positive y.
        assert!(down.polygons[0].bbox().min.y > 0.0);
    }

    #[test]
    fn straddling_obstacle_is_clipped_not_dropped() {
        let (frame, len) = frame_for(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
        let world = WorldContext {
            area: vec![],
            obstacles: vec![Polygon::rectangle(
                Point::new(40.0, -5.0),
                Point::new(50.0, 5.0),
            )],
            other_uras: vec![],
        };
        let up = ShrinkContext::build(&world, &frame, len, 1);
        assert_eq!(up.polygons.len(), 1);
        let bb = up.polygons[0].bbox();
        assert!(bb.min.y >= 0.0);
        assert!((bb.max.y - 5.0).abs() < 1e-9);
    }

    #[test]
    fn any_angle_frame_context() {
        // 30° segment: an obstacle left of the line appears at +y for
        // dir=+1.
        let dir = Vector::new(3.0_f64.sqrt() / 2.0, 0.5);
        let a = Point::new(10.0, 10.0);
        let b = a + dir * 100.0;
        let (frame, len) = frame_for(a, b);
        let mid = a + dir * 50.0;
        let left_off = dir.perp() * 8.0;
        let obs_center = mid + left_off;
        let world = WorldContext {
            area: vec![],
            obstacles: vec![Polygon::regular(obs_center, 2.0, 8, 0.0)],
            other_uras: vec![],
        };
        let up = ShrinkContext::build(&world, &frame, len, 1);
        assert_eq!(up.polygons.len(), 1);
        let c = up.polygons[0].bbox().center();
        assert!((c.y - 8.0).abs() < 1e-6, "expected y≈8, got {}", c.y);
        assert!((c.x - 50.0).abs() < 1e-6);
        // Same obstacle invisible from the other side.
        let down = ShrinkContext::build(&world, &frame, len, -1);
        assert!(down.polygons.is_empty());
    }

    #[test]
    fn trace_uras_skip_current_segment() {
        let trace = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(50.0, 0.0),
            Point::new(50.0, 50.0),
        ]);
        let uras = WorldContext::trace_uras(&trace, 0, 8.0);
        assert_eq!(uras.len(), 1);
        // The vertical segment's URA: x ∈ [46, 54].
        let bb = uras[0].bbox();
        assert!((bb.min.x - 46.0).abs() < 1e-9);
        assert!((bb.max.x - 54.0).abs() < 1e-9);
        assert!((bb.min.y - 0.0).abs() < 1e-9);
    }

    #[test]
    fn worker_pair_side_contexts_equal_serial() {
        // `build_sides_with(.., pair_workers: true)` runs the identical
        // per-side computation on a scoped worker; every derived field must
        // match the serial build exactly (the engine gates the pair on
        // `parallel` + core count, so this is the serial-equality guard).
        let (frame, len) = frame_for(Point::new(3.0, 4.0), Point::new(120.0, 60.0));
        let area = vec![Polygon::rectangle(
            Point::new(-20.0, -80.0),
            Point::new(160.0, 120.0),
        )];
        let obstacles: Vec<Polygon> = (0..12)
            .map(|i| {
                let x = 10.0 + (i % 6) as f64 * 18.0;
                let y = -30.0 + (i / 6) as f64 * 70.0;
                Polygon::regular(Point::new(x, y), 3.0, 8, 0.2)
            })
            .collect();
        let world = WorldIndex::build_with(&area, &obstacles, 8.0, IndexKind::Grid);
        let ids: Vec<u32> = (0..world.n_polys() as u32).collect();
        let uras = vec![Polygon::rectangle(
            Point::new(40.0, 30.0),
            Point::new(60.0, 38.0),
        )];
        let serial = ShrinkContext::build_sides_with(
            &world,
            &ids,
            &uras,
            &frame,
            len,
            IndexKind::Grid,
            false,
        );
        let paired = ShrinkContext::build_sides_with(
            &world,
            &ids,
            &uras,
            &frame,
            len,
            IndexKind::Grid,
            true,
        );
        for (s, p) in [(&serial.0, &paired.0), (&serial.1, &paired.1)] {
            assert_eq!(s.polygons.len(), p.polygons.len());
            for (a, b) in s.polygons.iter().zip(&p.polygons) {
                assert_eq!(a.vertices(), b.vertices());
            }
            assert_eq!(s.is_area, p.is_area);
            assert_eq!(s.node_count, p.node_count);
            assert_eq!(s.edges, p.edges);
            assert_eq!(s.edge_owner, p.edge_owner);
            assert_eq!(s.local_segment, p.local_segment);
            assert_eq!(s.area_local.len(), p.area_local.len());
        }
    }

    #[test]
    fn shared_base_candidates_equal_monolithic() {
        // The same world split as (area+local) over a library base must
        // return identical candidate id lists for every window.
        let area = vec![Polygon::rectangle(
            Point::new(-10.0, -10.0),
            Point::new(200.0, 100.0),
        )];
        let library: Vec<Polygon> = (0..10)
            .map(|i| Polygon::regular(Point::new(15.0 + i as f64 * 18.0, 30.0), 3.0, 8, 0.0))
            .collect();
        let local = vec![
            Polygon::regular(Point::new(50.0, 70.0), 4.0, 6, 0.3),
            Polygon::rectangle(Point::new(-5.0, 90.0), Point::new(195.0, 95.0)),
        ];
        // Rules with zero obstacle inflation (`obstacle = gap/2`), so the
        // base's polygons pass through unchanged and both indexes see the
        // same geometry — this test isolates the id/candidate mapping; the
        // inflation equivalence is covered at engine level.
        let rules = meander_drc::DesignRules {
            obstacle: 4.0,
            ..Default::default()
        };
        assert_eq!(obstacle_inflation(&rules), 0.0);
        let mono: Vec<Polygon> = library.iter().chain(&local).cloned().collect();
        let cell = world_cell(&rules);
        let monolithic = WorldIndex::build_with(&area, &mono, cell, IndexKind::Grid);
        let base = Arc::new(WorldBase::build(&library, &rules, IndexKind::Grid));
        let shared = WorldIndex::build_shared(&area, &local, Arc::clone(&base), IndexKind::Grid);
        assert_eq!(monolithic.n_polys(), shared.n_polys());
        let mut scratch = GridScratch::new();
        let mut edge_buf = Vec::new();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for wi in 0..40 {
            let x0 = -20.0 + wi as f64 * 5.0;
            let window = Rect::new(Point::new(x0, 10.0), Point::new(x0 + 30.0, 80.0));
            monolithic.candidates(&window, &mut scratch, &mut edge_buf, &mut a);
            shared.candidates(&window, &mut scratch, &mut edge_buf, &mut b);
            assert_eq!(a, b, "window {wi} diverged");
            for &k in &a {
                assert_eq!(
                    monolithic.poly(k).vertices(),
                    shared.poly(k).vertices(),
                    "poly {k} diverged"
                );
            }
        }
    }

    #[test]
    fn area_containment_check() {
        let (frame, len) = frame_for(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
        let world = WorldContext {
            area: vec![Polygon::rectangle(
                Point::new(-10.0, -20.0),
                Point::new(110.0, 20.0),
            )],
            obstacles: vec![],
            other_uras: vec![],
        };
        let ctx = ShrinkContext::build(&world, &frame, len, 1);
        assert!(ctx.pattern_in_area(10.0, 30.0, 15.0));
        assert!(!ctx.pattern_in_area(10.0, 30.0, 25.0)); // pokes out the top
    }
}
