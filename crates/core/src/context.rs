//! The polygon context a segment is extended against.

use meander_geom::{Frame, Point, Polygon, Polyline, Rect, Segment};
use meander_index::{GridScratch, IndexKind, MergeSortTree, SegIndex, SpatialIndex};

/// Tiny lift above the segment line: geometry at `y ≤ Y_EPS` in pattern-side
/// coordinates belongs to "behind the segment" and is exempt from checking
/// (paper: "The area below line AD need not be checked"). Constraints *on*
/// the line (legs of existing patterns) are kept by clipping at exactly
/// this height, so their clipped bottom nodes still register.
pub const Y_EPS: f64 = 1e-7;

/// World-space inputs for building a [`ShrinkContext`].
#[derive(Debug, Clone, Default)]
pub struct WorldContext {
    /// Routable-area border polygons (patterns must stay inside one).
    pub area: Vec<Polygon>,
    /// Obstacle polygons.
    pub obstacles: Vec<Polygon>,
    /// URA rectangles of the trace's *other* segments (world space).
    pub other_uras: Vec<Polygon>,
}

impl WorldContext {
    /// Builds the URA rectangles for every segment of `trace` except the
    /// one with index `skip`, with lateral half-width `gap / 2`.
    pub fn trace_uras(trace: &Polyline, skip: usize, gap: f64) -> Vec<Polygon> {
        let mut out = Vec::with_capacity(trace.segment_count().saturating_sub(1));
        for (i, seg) in trace.segments().enumerate() {
            if i == skip {
                continue;
            }
            if let Some(ura) = segment_ura(&seg, gap) {
                out.push(ura);
            }
        }
        out
    }
}

/// The URA rectangle of one segment in world space: lateral half-width
/// `gap / 2` (paper Fig. 6), without longitudinal extension — the
/// along-trace spacing constraints are enforced by the DP transition rules
/// instead. `None` for degenerate segments. Both engines build their
/// other-segment constraints through this single definition.
pub fn segment_ura(seg: &Segment, gap: f64) -> Option<Polygon> {
    if seg.is_degenerate() {
        return None;
    }
    let frame = Frame::from_segment(seg).expect("non-degenerate");
    let local = Polygon::rectangle(
        Point::new(0.0, -gap / 2.0),
        Point::new(seg.length(), gap / 2.0),
    );
    Some(frame.polygon_to_world(&local))
}

/// Immutable, per-trace spatial index over the *static* world geometry
/// (routable-area borders and inflated obstacles, in world coordinates).
///
/// The naive pipeline re-clones and re-transforms every polygon on every
/// queue pop; this index is built **once per trace** and each iteration asks
/// it only for the polygons that can reach the popped segment's candidate
/// window, so [`ShrinkContext`] construction becomes output-sensitive.
#[derive(Debug)]
pub struct WorldIndex {
    /// Area polygons first, then obstacle polygons.
    polys: Vec<Polygon>,
    /// Number of leading area polygons.
    n_area: usize,
    /// Per-polygon bounding boxes.
    bboxes: Vec<Rect>,
    /// Spatial index over every static polygon edge (grid or R-tree,
    /// selection per [`IndexKind`]; candidate sets are identical).
    edge_index: SegIndex,
    /// Edge id → owning polygon id.
    edge_owner: Vec<u32>,
}

impl WorldIndex {
    /// Indexes `area` + `obstacles` with cell size `cell` on the uniform
    /// grid (the portable default; see [`WorldIndex::build_with`]).
    pub fn build(area: &[Polygon], obstacles: &[Polygon], cell: f64) -> Self {
        WorldIndex::build_with(area, obstacles, cell, IndexKind::Grid)
    }

    /// [`WorldIndex::build`] with the edge index structure selected by
    /// `kind`. `Auto` resolves on the edge-extent distribution — plane
    /// polygons next to via fields pick the R-tree, paper-sized boards the
    /// grid ([`IndexKind::resolve`]). Query results are identical either
    /// way; only the cost model changes.
    pub fn build_with(area: &[Polygon], obstacles: &[Polygon], cell: f64, kind: IndexKind) -> Self {
        let polys: Vec<Polygon> = area.iter().chain(obstacles.iter()).cloned().collect();
        let bboxes: Vec<Rect> = polys.iter().map(|p| p.bbox()).collect();
        let mut edges: Vec<Segment> = Vec::new();
        let mut edge_owner = Vec::new();
        for (k, poly) in polys.iter().enumerate() {
            for e in poly.edges() {
                edges.push(e);
                edge_owner.push(k as u32);
            }
        }
        WorldIndex {
            polys,
            n_area: area.len(),
            bboxes,
            edge_index: SegIndex::from_segments(kind, cell.max(1e-6), &edges),
            edge_owner,
        }
    }

    /// The indexed polygons (areas first).
    #[inline]
    pub fn polys(&self) -> &[Polygon] {
        &self.polys
    }

    /// `true` when polygon `k` is a routable-area border.
    #[inline]
    pub fn is_area(&self, k: u32) -> bool {
        (k as usize) < self.n_area
    }

    /// Ids of static polygons that can interact with `window`, ascending.
    ///
    /// Area polygons are matched by bounding box (containment matters even
    /// when their edges are far away); obstacles are matched through the
    /// edge grid (a polygon with a node or a crossing edge inside the
    /// window always has an edge whose bbox overlaps it). A conservative
    /// superset: the shrinking stages run their exact predicates on
    /// whatever is returned.
    pub fn candidates(
        &self,
        window: &Rect,
        scratch: &mut GridScratch,
        edge_buf: &mut Vec<u32>,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        for k in 0..self.n_area {
            if self.bboxes[k].intersects(window) {
                out.push(k as u32);
            }
        }
        self.edge_index.query_scratch(window, scratch, edge_buf);
        let first_obstacle = out.len();
        for &e in edge_buf.iter() {
            let owner = self.edge_owner[e as usize];
            if !self.is_area(owner) {
                out.push(owner);
            }
        }
        out[first_obstacle..].sort_unstable();
        out.dedup();
    }
}

/// The per-(segment, direction) obstacle context used by the URA shrinking.
///
/// All polygons are transformed into *pattern-side coordinates*: x along the
/// extended segment, +y toward the pattern side, clipped to `y ≥` [`Y_EPS`].
/// A merge-sort tree over the clipped polygons' nodes answers Alg. 2's
/// `P_check` range queries; a uniform grid over their edges accelerates the
/// "sides" intersections of Eq. 11.
///
/// A context is immutable once built, which is what makes the per-position
/// upper-bound profile ([`crate::shrink::build_ub_profile`]) sound: the
/// profile snapshots the stage-1 side clearances for every discretized foot
/// position against `edges`/`grid`, and every later
/// [`crate::shrink::max_pattern_height_scratch`] probe of the same context
/// evaluates the same geometry — so the cached caps stay true upper bounds
/// for the context's whole lifetime (one queue pop in the engine; a splice
/// builds fresh contexts for the segments it creates).
#[derive(Debug)]
pub struct ShrinkContext {
    /// Constraint polygons in pattern-side coordinates. Routable-area
    /// borders come first *unclipped* (their below-segment edges cannot
    /// reach the URA anyway, and clipping would fabricate a border edge on
    /// the segment line); obstacles and other-segment URAs follow, clipped
    /// to `y ≥` [`Y_EPS`] so anything standing on the segment registers
    /// bottom nodes the range query can see.
    pub polygons: Vec<Polygon>,
    /// `true` for routable-area border polygons (containers, not
    /// obstacles): they are never "enclosed" by a pattern.
    pub is_area: Vec<bool>,
    /// Node tree: point → polygon id.
    pub tree: MergeSortTree<u32>,
    /// Spatial index over all polygon edges (grid or R-tree — candidate
    /// sets identical by the [`meander_index::SpatialIndex`] contract, so
    /// stage 1 and the profile sweeps are bit-identical either way).
    pub grid: SegIndex,
    /// Flattened edges (grid ids index into this).
    pub edges: Vec<Segment>,
    /// Owning polygon of each edge.
    pub edge_owner: Vec<u32>,
    /// Node count per polygon (for the `|Poly_k|` tests of Alg. 2).
    pub node_count: Vec<usize>,
    /// The extended segment in local coordinates (on the +x axis).
    pub local_segment: Segment,
    /// Routable-area polygons in pattern-side coordinates (unclipped) used
    /// for the final containment check.
    pub area_local: Vec<Polygon>,
}

impl ShrinkContext {
    /// Builds the context for one side of one segment.
    ///
    /// `frame` maps world → segment-local; `dir` (+1/−1) selects the
    /// pattern side (−1 mirrors y so the shrinking always works "upward").
    pub fn build(world: &WorldContext, frame: &Frame, seg_len: f64, dir: i8) -> Self {
        Self::build_indexed(world, frame, seg_len, dir, IndexKind::Grid)
    }

    /// [`ShrinkContext::build`] with the edge index structure selected by
    /// `kind` (results identical; see the `grid` field).
    pub fn build_indexed(
        world: &WorldContext,
        frame: &Frame,
        seg_len: f64,
        dir: i8,
        kind: IndexKind,
    ) -> Self {
        let flip = f64::from(dir);
        let to_side = |p: Point| {
            let l = frame.to_local(p);
            Point::new(l.x, l.y * flip)
        };

        let mut polygons: Vec<Polygon> = Vec::new();
        let mut is_area = Vec::new();
        let mut area_local = Vec::new();
        for poly in &world.area {
            let verts: Vec<Point> = poly.vertices().iter().map(|&p| to_side(p)).collect();
            area_local.push(Polygon::new(verts.clone()));
            polygons.push(Polygon::new(verts));
            is_area.push(true);
        }
        for poly in world.obstacles.iter().chain(&world.other_uras) {
            let verts: Vec<Point> = poly.vertices().iter().map(|&p| to_side(p)).collect();
            if let Some(clipped) = Polygon::new(verts).clipped_above(Y_EPS) {
                polygons.push(clipped);
                is_area.push(false);
            }
        }

        Self::assemble(polygons, is_area, area_local, seg_len, kind)
    }

    /// Builds **both** side contexts from pre-filtered world geometry,
    /// transforming every vertex into the local frame exactly once.
    ///
    /// `world` + `static_ids` name the static polygons near the candidate
    /// window (see [`WorldIndex::candidates`]); `other_uras` are the URA
    /// rectangles of the trace's nearby other segments, already in world
    /// coordinates. `kind` selects each context's edge index structure
    /// (results identical either way). Equivalent to two
    /// [`ShrinkContext::build`] calls over the same polygon set.
    pub fn build_sides(
        world: &WorldIndex,
        static_ids: &[u32],
        other_uras: &[Polygon],
        frame: &Frame,
        seg_len: f64,
        kind: IndexKind,
    ) -> (ShrinkContext, ShrinkContext) {
        // One transform pass: local "up-side" coordinates; the down side
        // mirrors y afterwards.
        let mut local: Vec<(Vec<Point>, bool)> = Vec::with_capacity(static_ids.len());
        for &k in static_ids {
            let verts: Vec<Point> = world.polys()[k as usize]
                .vertices()
                .iter()
                .map(|&p| frame.to_local(p))
                .collect();
            local.push((verts, world.is_area(k)));
        }
        for ura in other_uras {
            let verts: Vec<Point> = ura.vertices().iter().map(|&p| frame.to_local(p)).collect();
            local.push((verts, false));
        }

        let build_one = |flip: f64| -> ShrinkContext {
            let mut polygons: Vec<Polygon> = Vec::new();
            let mut is_area = Vec::new();
            let mut area_local = Vec::new();
            for (verts, area) in &local {
                let side: Vec<Point> = verts.iter().map(|&p| Point::new(p.x, p.y * flip)).collect();
                if *area {
                    area_local.push(Polygon::new(side.clone()));
                    polygons.push(Polygon::new(side));
                    is_area.push(true);
                } else if let Some(clipped) = Polygon::new(side).clipped_above(Y_EPS) {
                    polygons.push(clipped);
                    is_area.push(false);
                }
            }
            ShrinkContext::assemble(polygons, is_area, area_local, seg_len, kind)
        };

        (build_one(1.0), build_one(-1.0))
    }

    /// Builds the query structures over side-local polygons.
    fn assemble(
        polygons: Vec<Polygon>,
        is_area: Vec<bool>,
        area_local: Vec<Polygon>,
        seg_len: f64,
        kind: IndexKind,
    ) -> Self {
        let mut nodes = Vec::new();
        let mut edges = Vec::new();
        let mut edge_owner = Vec::new();
        let mut node_count = Vec::new();
        for (k, poly) in polygons.iter().enumerate() {
            node_count.push(poly.len());
            for &v in poly.vertices() {
                nodes.push((v, k as u32));
            }
            for e in poly.edges() {
                edges.push(e);
                edge_owner.push(k as u32);
            }
        }
        let tree = MergeSortTree::build(nodes);
        let cell = (seg_len / 8.0).max(1.0);
        let grid = SegIndex::from_segments(kind, cell, &edges);

        ShrinkContext {
            polygons,
            is_area,
            tree,
            grid,
            edges,
            edge_owner,
            node_count,
            local_segment: Segment::new(Point::ORIGIN, Point::new(seg_len, 0.0)),
            area_local,
        }
    }

    /// `d(seg, p)` of the paper: distance from the extended segment to `p`
    /// in pattern-side coordinates.
    #[inline]
    pub fn dist_seg(&self, p: Point) -> f64 {
        self.local_segment.distance_to_point(p)
    }

    /// `true` when the axis-aligned pattern rectangle (feet `x0..x1`,
    /// height `h`) lies inside a single routable-area polygon.
    pub fn pattern_in_area(&self, x0: f64, x1: f64, h: f64) -> bool {
        if self.area_local.is_empty() {
            return true;
        }
        let corners = [
            Point::new(x0, 0.0),
            Point::new(x1, 0.0),
            Point::new(x0, h),
            Point::new(x1, h),
            Point::new((x0 + x1) / 2.0, h),
        ];
        self.area_local
            .iter()
            .any(|poly| corners.iter().all(|&c| poly.contains(c)))
    }

    /// Candidate edge ids near a rectangle.
    pub fn edges_near(&self, r: &Rect) -> Vec<u32> {
        self.grid.query(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meander_geom::Vector;

    fn frame_for(a: Point, b: Point) -> (Frame, f64) {
        let seg = Segment::new(a, b);
        (Frame::from_segment(&seg).unwrap(), seg.length())
    }

    #[test]
    fn polygons_behind_segment_are_dropped() {
        let (frame, len) = frame_for(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
        let world = WorldContext {
            area: vec![],
            obstacles: vec![
                Polygon::rectangle(Point::new(10.0, 5.0), Point::new(20.0, 15.0)), // above
                Polygon::rectangle(Point::new(10.0, -15.0), Point::new(20.0, -5.0)), // below
            ],
            other_uras: vec![],
        };
        let up = ShrinkContext::build(&world, &frame, len, 1);
        assert_eq!(up.polygons.len(), 1);
        let down = ShrinkContext::build(&world, &frame, len, -1);
        assert_eq!(down.polygons.len(), 1);
        // The down context sees the below-obstacle at positive y.
        assert!(down.polygons[0].bbox().min.y > 0.0);
    }

    #[test]
    fn straddling_obstacle_is_clipped_not_dropped() {
        let (frame, len) = frame_for(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
        let world = WorldContext {
            area: vec![],
            obstacles: vec![Polygon::rectangle(
                Point::new(40.0, -5.0),
                Point::new(50.0, 5.0),
            )],
            other_uras: vec![],
        };
        let up = ShrinkContext::build(&world, &frame, len, 1);
        assert_eq!(up.polygons.len(), 1);
        let bb = up.polygons[0].bbox();
        assert!(bb.min.y >= 0.0);
        assert!((bb.max.y - 5.0).abs() < 1e-9);
    }

    #[test]
    fn any_angle_frame_context() {
        // 30° segment: an obstacle left of the line appears at +y for
        // dir=+1.
        let dir = Vector::new(3.0_f64.sqrt() / 2.0, 0.5);
        let a = Point::new(10.0, 10.0);
        let b = a + dir * 100.0;
        let (frame, len) = frame_for(a, b);
        let mid = a + dir * 50.0;
        let left_off = dir.perp() * 8.0;
        let obs_center = mid + left_off;
        let world = WorldContext {
            area: vec![],
            obstacles: vec![Polygon::regular(obs_center, 2.0, 8, 0.0)],
            other_uras: vec![],
        };
        let up = ShrinkContext::build(&world, &frame, len, 1);
        assert_eq!(up.polygons.len(), 1);
        let c = up.polygons[0].bbox().center();
        assert!((c.y - 8.0).abs() < 1e-6, "expected y≈8, got {}", c.y);
        assert!((c.x - 50.0).abs() < 1e-6);
        // Same obstacle invisible from the other side.
        let down = ShrinkContext::build(&world, &frame, len, -1);
        assert!(down.polygons.is_empty());
    }

    #[test]
    fn trace_uras_skip_current_segment() {
        let trace = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(50.0, 0.0),
            Point::new(50.0, 50.0),
        ]);
        let uras = WorldContext::trace_uras(&trace, 0, 8.0);
        assert_eq!(uras.len(), 1);
        // The vertical segment's URA: x ∈ [46, 54].
        let bb = uras[0].bbox();
        assert!((bb.min.x - 46.0).abs() < 1e-9);
        assert!((bb.max.x - 54.0).abs() < 1e-9);
        assert!((bb.min.y - 0.0).abs() < 1e-9);
    }

    #[test]
    fn area_containment_check() {
        let (frame, len) = frame_for(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
        let world = WorldContext {
            area: vec![Polygon::rectangle(
                Point::new(-10.0, -20.0),
                Point::new(110.0, 20.0),
            )],
            obstacles: vec![],
            other_uras: vec![],
        };
        let ctx = ShrinkContext::build(&world, &frame, len, 1);
        assert!(ctx.pattern_in_area(10.0, 30.0, 15.0));
        assert!(!ctx.pattern_in_area(10.0, 30.0, 25.0)); // pokes out the top
    }
}
