//! Incremental trace state for the extension loop.
//!
//! The naive Alg. 1 loop pays three per-iteration linear costs on the
//! growing trace: `Polyline::length()` in the loop condition, a point-equality
//! scan to re-locate the popped segment, and a full rebuild of the
//! other-segment URA list. [`TraceBuf`] eliminates all three:
//!
//! * vertices live in a slab threaded by a singly-linked `next` chain, so a
//!   splice never shifts indices;
//! * every segment is a *record* with a stable id — the work queue carries
//!   ids, and a popped id whose record was spliced away is dead (O(1) check,
//!   no geometric re-matching);
//! * the arc length is maintained incrementally on splice;
//! * a world-space [`SegmentGrid`] over the live segments answers "which
//!   other segments are near this window" for the URA constraints, with dead
//!   records filtered lazily at query time.

use meander_geom::{Point, Polyline, Rect, Segment};
use meander_index::{GridScratch, SegmentGrid};

const NIL: u32 = u32::MAX;

/// Linked-slab trace with stable segment ids and an incremental length.
#[derive(Debug)]
pub struct TraceBuf {
    /// Vertex slab.
    pts: Vec<Point>,
    /// Successor vertex id (`NIL` for the tail).
    next: Vec<u32>,
    /// First vertex id.
    head: u32,
    /// Cached arc length, updated on splice.
    length: f64,
    /// Segment record → start vertex id.
    seg_start: Vec<u32>,
    /// Segment record liveness (dead records were spliced away).
    seg_alive: Vec<bool>,
    /// Grid over live segment records (stale entries filtered at query).
    grid: SegmentGrid,
}

impl TraceBuf {
    /// Builds the buffer from a polyline; segment records are created in
    /// order, so ids `0..segment_count` seed the work queue.
    pub fn from_polyline(pl: &Polyline, cell: f64) -> Self {
        let pts: Vec<Point> = pl.points().to_vec();
        let n = pts.len();
        let next: Vec<u32> = (0..n)
            .map(|i| if i + 1 < n { (i + 1) as u32 } else { NIL })
            .collect();
        let mut buf = TraceBuf {
            pts,
            next,
            head: 0,
            length: pl.length(),
            seg_start: Vec::with_capacity(n - 1),
            seg_alive: Vec::with_capacity(n - 1),
            grid: SegmentGrid::new(cell.max(1e-6)),
        };
        for i in 0..n - 1 {
            buf.new_segment(i as u32);
        }
        buf
    }

    fn new_segment(&mut self, start: u32) -> u32 {
        let sid = self.seg_start.len() as u32;
        self.seg_start.push(start);
        self.seg_alive.push(true);
        let seg = Segment::new(
            self.pts[start as usize],
            self.pts[self.next[start as usize] as usize],
        );
        self.grid.insert(sid, &seg);
        sid
    }

    /// Current arc length (maintained incrementally).
    #[inline]
    pub fn length(&self) -> f64 {
        self.length
    }

    /// Number of segment records ever created.
    #[inline]
    pub fn segment_records(&self) -> usize {
        self.seg_start.len()
    }

    /// The geometry of segment `sid`, or `None` when the record is dead.
    pub fn segment(&self, sid: u32) -> Option<Segment> {
        if !*self.seg_alive.get(sid as usize)? {
            return None;
        }
        let a = self.seg_start[sid as usize];
        let b = self.next[a as usize];
        Some(Segment::new(self.pts[a as usize], self.pts[b as usize]))
    }

    /// Replaces live segment `sid` with the chain `replacement` (whose first
    /// and last points must coincide with the segment's endpoints within
    /// tolerance; the endpoints are overwritten with the supplied values,
    /// mirroring `Polyline::splice`). Returns the new segment ids in chain
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `sid` is dead or the replacement ends don't match.
    pub fn splice(&mut self, sid: u32, replacement: &[Point]) -> Vec<u32> {
        assert!(self.seg_alive[sid as usize], "splicing a dead segment");
        assert!(
            replacement.len() >= 2,
            "replacement needs at least 2 points"
        );
        let u = self.seg_start[sid as usize];
        let v = self.next[u as usize];
        assert!(
            replacement[0].approx_eq(self.pts[u as usize]),
            "replacement must start at the segment start"
        );
        assert!(
            replacement[replacement.len() - 1].approx_eq(self.pts[v as usize]),
            "replacement must end at the segment end"
        );

        let old_len = self.pts[u as usize].distance(self.pts[v as usize]);
        self.seg_alive[sid as usize] = false;
        self.pts[u as usize] = replacement[0];
        self.pts[v as usize] = replacement[replacement.len() - 1];

        // Thread the interior vertices.
        let mut prev = u;
        for &p in &replacement[1..replacement.len() - 1] {
            let id = self.pts.len() as u32;
            self.pts.push(p);
            self.next.push(NIL);
            self.next[prev as usize] = id;
            prev = id;
        }
        self.next[prev as usize] = v;

        // Create records for the new chain.
        let mut ids = Vec::with_capacity(replacement.len() - 1);
        let mut new_len = 0.0;
        let mut w = u;
        for _ in 0..replacement.len() - 1 {
            ids.push(self.new_segment(w));
            let x = self.next[w as usize];
            new_len += self.pts[w as usize].distance(self.pts[x as usize]);
            w = x;
        }
        self.length += new_len - old_len;
        ids
    }

    /// Live segment ids whose bbox-registered cells intersect `window`,
    /// excluding `exclude`. A conservative superset in ascending id order.
    pub fn nearby_segments(
        &self,
        window: &Rect,
        exclude: u32,
        scratch: &mut GridScratch,
        buf: &mut Vec<u32>,
        out: &mut Vec<u32>,
    ) {
        self.grid.query_scratch(window, scratch, buf);
        out.clear();
        for &sid in buf.iter() {
            if sid != exclude && self.seg_alive[sid as usize] {
                out.push(sid);
            }
        }
    }

    /// Materializes the current geometry as a [`Polyline`].
    pub fn to_polyline(&self) -> Polyline {
        let mut pts = Vec::with_capacity(self.pts.len());
        let mut v = self.head;
        while v != NIL {
            pts.push(self.pts[v as usize]);
            v = self.next[v as usize];
        }
        Polyline::new(pts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_wave() -> Polyline {
        Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 5.0),
            Point::new(20.0, 5.0),
        ])
    }

    #[test]
    fn round_trips_polyline() {
        let pl = square_wave();
        let buf = TraceBuf::from_polyline(&pl, 4.0);
        assert_eq!(buf.to_polyline(), pl);
        assert!((buf.length() - pl.length()).abs() < 1e-12);
        for sid in 0..3u32 {
            assert_eq!(buf.segment(sid).unwrap(), pl.segment(sid as usize));
        }
    }

    #[test]
    fn splice_updates_length_and_kills_record() {
        let pl = square_wave();
        let mut buf = TraceBuf::from_polyline(&pl, 4.0);
        // Detour on the first segment: + 2 * 3 of length.
        let ids = buf.splice(
            0,
            &[
                Point::new(0.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(2.0, 3.0),
                Point::new(6.0, 3.0),
                Point::new(6.0, 0.0),
                Point::new(10.0, 0.0),
            ],
        );
        assert_eq!(ids.len(), 5);
        assert!(buf.segment(0).is_none(), "old record must die");
        assert!((buf.length() - (pl.length() + 6.0)).abs() < 1e-9);
        let out = buf.to_polyline();
        assert!((out.length() - buf.length()).abs() < 1e-9);
        assert_eq!(out.point_count(), 8);
        assert_eq!(out.end(), Point::new(20.0, 5.0));
        // New records are live and geometric.
        assert_eq!(
            buf.segment(ids[1]).unwrap(),
            Segment::new(Point::new(2.0, 0.0), Point::new(2.0, 3.0))
        );
    }

    #[test]
    fn nearby_segments_excludes_and_filters_dead() {
        let pl = square_wave();
        let mut buf = TraceBuf::from_polyline(&pl, 2.0);
        let mut scratch = GridScratch::new();
        let (mut raw, mut out) = (Vec::new(), Vec::new());
        let everywhere = Rect::new(Point::new(-50.0, -50.0), Point::new(50.0, 50.0));
        buf.nearby_segments(&everywhere, 1, &mut scratch, &mut raw, &mut out);
        assert_eq!(out, vec![0, 2]);

        buf.splice(
            0,
            &[
                Point::new(0.0, 0.0),
                Point::new(5.0, 0.0),
                Point::new(10.0, 0.0),
            ],
        );
        buf.nearby_segments(&everywhere, NIL, &mut scratch, &mut raw, &mut out);
        assert_eq!(out, vec![1, 2, 3, 4], "dead record 0 filtered");

        // Window far from the vertical jog sees only horizontal runs.
        let near_start = Rect::new(Point::new(-1.0, -1.0), Point::new(3.0, 1.0));
        buf.nearby_segments(&near_start, NIL, &mut scratch, &mut raw, &mut out);
        assert!(out.contains(&3));
        assert!(!out.contains(&2));
    }

    #[test]
    #[should_panic(expected = "dead segment")]
    fn double_splice_panics() {
        let mut buf = TraceBuf::from_polyline(&square_wave(), 4.0);
        let mid = [
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(10.0, 0.0),
        ];
        buf.splice(0, &mid);
        buf.splice(0, &mid);
    }
}
