//! Group-level driver: length-match a whole matching group on a board,
//! routing differential pairs through MSDTW (paper Fig. 2's flow).

use crate::config::ExtendConfig;
use crate::extend::{extend_trace, ExtendInput};
use meander_drc::virtualize_rules;
use meander_layout::{Board, MatchGroup, TraceId};
use meander_msdtw::{merge_pair, restore_pair, PairGeometry};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Per-trace (or per-sub-trace) result.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// The trace.
    pub id: TraceId,
    /// Length before matching.
    pub initial: f64,
    /// Length after matching.
    pub achieved: f64,
    /// Patterns inserted.
    pub patterns: usize,
    /// `true` when the trace was matched through a merged median trace.
    pub via_msdtw: bool,
}

/// Whole-group result with the paper's Eq. 19 metrics.
#[derive(Debug, Clone)]
pub struct GroupReport {
    /// Resolved target length.
    pub target: f64,
    /// Per-trace outcomes.
    pub traces: Vec<TraceReport>,
    /// Wall-clock runtime of the matching.
    pub runtime: Duration,
}

impl GroupReport {
    /// `max_i (l_target − l_i)/l_target`.
    pub fn max_error(&self) -> f64 {
        self.traces
            .iter()
            .map(|t| (self.target - t.achieved) / self.target)
            .fold(0.0, f64::max)
    }

    /// `Σ_i (l_target − l_i)/(n·l_target)`.
    pub fn avg_error(&self) -> f64 {
        if self.traces.is_empty() {
            return 0.0;
        }
        self.traces
            .iter()
            .map(|t| (self.target - t.achieved) / self.target)
            .sum::<f64>()
            / self.traces.len() as f64
    }
}

/// Length-matches group `group_idx` of `board` in place.
///
/// Single-ended members go straight to [`extend_trace`]. Differential-pair
/// members are merged by MSDTW into a median trace, meandered under the
/// virtual DRC ([`meander_drc::virtualize_rules`]), and restored; if the
/// merge fails (degenerate pair) the sub-traces fall back to independent
/// extension.
///
/// # Panics
///
/// Panics if `group_idx` is out of range.
pub fn match_board_group(
    board: &mut Board,
    group_idx: usize,
    config: &ExtendConfig,
) -> GroupReport {
    let group: MatchGroup = board.groups()[group_idx].clone();
    let lengths = board.group_lengths(&group);
    let target = group.resolve_target(&lengths);
    let start = Instant::now();

    let obstacles: Vec<meander_geom::Polygon> = board
        .obstacles()
        .iter()
        .map(|o| o.polygon().clone())
        .collect();

    let mut reports = Vec::new();
    let mut done: HashSet<TraceId> = HashSet::new();

    for &id in group.members() {
        if done.contains(&id) {
            continue;
        }
        let pair = board.pair_of(id).cloned();
        match pair {
            Some(pair) if group.members().contains(&pair.partner(id).expect("involved")) => {
                let (p_id, n_id) = (pair.p(), pair.n());
                done.insert(p_id);
                done.insert(n_id);
                let p0 = board.trace(p_id).expect("pair trace").centerline().clone();
                let n0 = board.trace(n_id).expect("pair trace").centerline().clone();
                let rules = *board.trace(p_id).expect("pair trace").rules();
                let area = board
                    .area(p_id)
                    .map(|a| a.polygons().to_vec())
                    .unwrap_or_default();

                // Distance-rule ladder: pair pitch plus any DRA gap values
                // (the multi-scale input of Alg. 3).
                let mut scales = vec![pair.sep()];
                for ra in board.rule_areas() {
                    scales.push(ra.rules().gap);
                }
                let geom = PairGeometry::with_scales(&p0, &n0, scales);

                match merge_pair(&geom) {
                    Ok(merged) => {
                        let vrules = virtualize_rules(&rules, pair.sep());
                        let median_target = target;
                        let out = extend_trace(
                            &ExtendInput {
                                trace: &merged.median,
                                target: median_target,
                                rules: &vrules,
                                area: &area,
                                obstacles: &obstacles,
                            },
                            config,
                        );
                        if let Some((new_p, new_n)) = restore_pair(&out.trace, pair.sep()) {
                            let (lp, ln) = (new_p.length(), new_n.length());
                            board
                                .trace_mut(p_id)
                                .expect("pair trace")
                                .set_centerline(new_p);
                            board
                                .trace_mut(n_id)
                                .expect("pair trace")
                                .set_centerline(new_n);
                            reports.push(TraceReport {
                                id: p_id,
                                initial: p0.length(),
                                achieved: lp,
                                patterns: out.patterns,
                                via_msdtw: true,
                            });
                            reports.push(TraceReport {
                                id: n_id,
                                initial: n0.length(),
                                achieved: ln,
                                patterns: out.patterns,
                                via_msdtw: true,
                            });
                            continue;
                        }
                        // Restoration failed: fall through to independent
                        // extension below.
                    }
                    Err(_) => {
                        // Degenerate pair: independent extension fallback.
                    }
                }
                for sub in [p_id, n_id] {
                    reports.push(extend_single(board, sub, target, &obstacles, config));
                }
            }
            _ => {
                done.insert(id);
                reports.push(extend_single(board, id, target, &obstacles, config));
            }
        }
    }

    GroupReport {
        target,
        traces: reports,
        runtime: start.elapsed(),
    }
}

/// Length-matches every group of the board in declaration order, returning
/// one report per group.
///
/// Groups are independent in this model (a trace should belong to at most
/// one group); each is driven through [`match_board_group`].
pub fn match_all_groups(board: &mut Board, config: &ExtendConfig) -> Vec<GroupReport> {
    (0..board.groups().len())
        .map(|gi| match_board_group(board, gi, config))
        .collect()
}

/// Applies the `dmiter` corner rule to every trace of group `group_idx`
/// (paper Sec. II: "any rotation of a right angle or an acute angle will be
/// mitered by obtuse angles") and returns the per-trace length change.
///
/// Mitering shortens each chamfered corner by `(2 − √2)·dmiter`
/// ([`meander_geom::miter::miter_length_loss`]); callers wanting exact
/// lengths *after* mitering should re-run [`match_board_group`] once more —
/// the driver converges because trimming only ever adds the small residual
/// back.
///
/// # Panics
///
/// Panics if `group_idx` is out of range.
pub fn miter_group(board: &mut Board, group_idx: usize) -> Vec<(TraceId, f64)> {
    let group: MatchGroup = board.groups()[group_idx].clone();
    let mut deltas = Vec::with_capacity(group.members().len());
    for &id in group.members() {
        let Some(trace) = board.trace(id) else {
            continue;
        };
        let dmiter = trace.rules().miter;
        let protect = trace.rules().protect;
        let before = trace.length();
        let mitered =
            meander_geom::miter::miter_polyline_with_min(trace.centerline(), dmiter, protect);
        let after = mitered.length();
        board
            .trace_mut(id)
            .expect("checked above")
            .set_centerline(mitered);
        deltas.push((id, after - before));
    }
    deltas
}

fn extend_single(
    board: &mut Board,
    id: TraceId,
    target: f64,
    obstacles: &[meander_geom::Polygon],
    config: &ExtendConfig,
) -> TraceReport {
    let trace = board.trace(id).expect("group member").centerline().clone();
    let rules = *board.trace(id).expect("group member").rules();
    let area = board
        .area(id)
        .map(|a| a.polygons().to_vec())
        .unwrap_or_default();
    let out = extend_trace(
        &ExtendInput {
            trace: &trace,
            target,
            rules: &rules,
            area: &area,
            obstacles,
        },
        config,
    );
    let achieved = out.achieved;
    let patterns = out.patterns;
    board
        .trace_mut(id)
        .expect("group member")
        .set_centerline(out.trace);
    TraceReport {
        id,
        initial: trace.length(),
        achieved,
        patterns,
        via_msdtw: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meander_layout::gen::{any_angle_bus, decoupled_pair, table1_case};

    #[test]
    fn single_ended_group_matches_to_target() {
        let mut case = table1_case(1);
        let report = match_board_group(&mut case.board, 0, &ExtendConfig::default());
        assert!((report.target - case.ltarget).abs() < 1e-9);
        assert!(
            report.max_error() < 0.10,
            "max error {:.4} too high",
            report.max_error()
        );
        assert!(report.avg_error() < 0.05, "avg {:.4}", report.avg_error());
        // Board must stay DRC-clean.
        let violations = case.board.check();
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn any_angle_group_matches() {
        let mut board = any_angle_bus(4, meander_geom::Angle::from_degrees(17.0));
        let report = match_board_group(&mut board, 0, &ExtendConfig::default());
        assert!(
            report.max_error() < 0.05,
            "max error {:.4}",
            report.max_error()
        );
        let violations = board.check();
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn differential_pair_group_uses_msdtw() {
        let case = decoupled_pair(false);
        let mut board = case.board;
        let report = match_board_group(&mut board, 0, &ExtendConfig::default());
        assert!(report.traces.iter().any(|t| t.via_msdtw));
        // Both sub-traces close to target.
        assert!(
            report.max_error() < 0.08,
            "max error {:.4}",
            report.max_error()
        );
        // Pair still coupled: sub-traces stay near pitch apart.
        let p = board.trace(case.p).unwrap().centerline().clone();
        let n = board.trace(case.n).unwrap().centerline().clone();
        let d = p.distance_to_polyline(&n);
        assert!(
            (d - case.sep0).abs() < case.sep0 * 0.6,
            "pair pitch broken: {d}"
        );
        assert!(!p.is_self_intersecting());
        assert!(!n.is_self_intersecting());
    }

    #[test]
    fn match_all_groups_covers_every_group() {
        // Two independent single-trace groups on one board.
        let mut board = meander_layout::Board::new(meander_geom::Rect::new(
            meander_geom::Point::new(0.0, 0.0),
            meander_geom::Point::new(300.0, 200.0),
        ));
        let rules = meander_drc::DesignRules::default();
        let a = board.add_trace(meander_layout::Trace::with_rules(
            "A",
            meander_geom::Polyline::new(vec![
                meander_geom::Point::new(0.0, 50.0),
                meander_geom::Point::new(200.0, 50.0),
            ]),
            rules,
        ));
        let b = board.add_trace(meander_layout::Trace::with_rules(
            "B",
            meander_geom::Polyline::new(vec![
                meander_geom::Point::new(0.0, 150.0),
                meander_geom::Point::new(200.0, 150.0),
            ]),
            rules,
        ));
        board.set_area(
            a,
            meander_layout::RoutableArea::from_polygon(meander_geom::Polygon::rectangle(
                meander_geom::Point::new(-10.0, 0.0),
                meander_geom::Point::new(210.0, 100.0),
            )),
        );
        board.set_area(
            b,
            meander_layout::RoutableArea::from_polygon(meander_geom::Polygon::rectangle(
                meander_geom::Point::new(-10.0, 100.0),
                meander_geom::Point::new(210.0, 200.0),
            )),
        );
        board.add_group(meander_layout::MatchGroup::with_target("ga", vec![a], 260.0));
        board.add_group(meander_layout::MatchGroup::with_target("gb", vec![b], 240.0));

        let reports = match_all_groups(&mut board, &ExtendConfig::default());
        assert_eq!(reports.len(), 2);
        assert!((reports[0].target - 260.0).abs() < 1e-9);
        assert!((reports[1].target - 240.0).abs() < 1e-9);
        for r in &reports {
            assert!(r.max_error() < 1e-2, "group err {:.4}", r.max_error());
        }
        assert!(board.check().is_empty());
    }

    #[test]
    fn miter_pass_keeps_board_clean() {
        let mut case = table1_case(2);
        let report = match_board_group(&mut case.board, 0, &ExtendConfig::default());
        let deltas = miter_group(&mut case.board, 0);
        assert_eq!(deltas.len(), 8);
        // Mitering only ever shortens.
        for (id, d) in &deltas {
            assert!(*d <= 1e-9, "{id} grew by {d}");
        }
        // Chamfered output is still DRC-clean (chamfers exempt from
        // dprotect) and close to target.
        let violations = case.board.check();
        assert!(violations.is_empty(), "{violations:?}");
        let lengths = case.board.group_lengths(&case.board.groups()[0].clone());
        let max_err = meander_layout::MatchGroup::max_error(report.target, &lengths);
        assert!(max_err < 0.08, "post-miter max err {max_err:.4}");
        // Mitering strictly reduces the number of right-angle corners
        // (corners without protect-budget keep theirs).
        let sharp = |b: &meander_layout::Board| -> usize {
            b.traces()
                .map(|(_, t)| {
                    let pl = t.centerline();
                    (1..pl.segment_count())
                        .filter(|&i| {
                            let a = pl.segment(i - 1).direction().unwrap();
                            let c = pl.segment(i).direction().unwrap();
                            a.cross(c).atan2(a.dot(c)).abs()
                                >= std::f64::consts::FRAC_PI_2 - 1e-6
                        })
                        .count()
                })
                .sum()
        };
        let mut unmitered = table1_case(2);
        let _ = match_board_group(&mut unmitered.board, 0, &ExtendConfig::default());
        assert!(
            sharp(&case.board) < sharp(&unmitered.board),
            "mitering removed no corners: {} vs {}",
            sharp(&case.board),
            sharp(&unmitered.board)
        );
    }

    #[test]
    fn runtime_is_recorded() {
        let mut case = table1_case(4);
        let report = match_board_group(&mut case.board, 0, &ExtendConfig::default());
        assert!(report.runtime.as_nanos() > 0);
        assert_eq!(report.traces.len(), 8);
    }
}
