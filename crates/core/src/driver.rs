//! Group-level driver: length-match a whole matching group on a board,
//! routing differential pairs through MSDTW (paper Fig. 2's flow).
//!
//! Matching is organized in **units** — a single-ended trace or one
//! differential pair. Units never read each other's meandered geometry (each
//! trace extends inside its own routable area against the shared static
//! obstacles), so a unit is a pure function of its gathered inputs. That
//! makes the driver embarrassingly parallel: with
//! [`ExtendConfig::parallel`] the units of a group (and, in
//! [`match_all_groups`], of *all* groups) fan out over worker threads, and
//! results are written back in declaration order so the output is identical
//! to the serial run.

use crate::config::ExtendConfig;
use crate::context::WorldBase;
use crate::extend::{
    extend_trace_shared, extend_trace_shared_recorded, ExtendInput, ExtendOutcome,
};
use crate::par::par_map;
use meander_drc::virtualize_rules;
use meander_geom::{Polygon, Polyline};
use meander_index::CellTouches;
use meander_layout::{Board, MatchGroup, TraceId};
use meander_msdtw::{merge_pair, restore_pair, PairGeometry};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-trace (or per-sub-trace) result.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// The trace.
    pub id: TraceId,
    /// Length before matching.
    pub initial: f64,
    /// Length after matching.
    pub achieved: f64,
    /// Patterns inserted.
    pub patterns: usize,
    /// `true` when the trace was matched through a merged median trace.
    pub via_msdtw: bool,
}

/// Whole-group result with the paper's Eq. 19 metrics.
#[derive(Debug, Clone)]
pub struct GroupReport {
    /// Resolved target length.
    pub target: f64,
    /// Per-trace outcomes.
    pub traces: Vec<TraceReport>,
    /// Wall-clock runtime of the matching. In the batched parallel path of
    /// [`match_all_groups`] this is the summed busy time of the group's
    /// units (wall time is shared across groups there).
    pub runtime: Duration,
}

impl GroupReport {
    /// `max_i (l_target − l_i)/l_target`.
    pub fn max_error(&self) -> f64 {
        self.traces
            .iter()
            .map(|t| (self.target - t.achieved) / self.target)
            .fold(0.0, f64::max)
    }

    /// `Σ_i (l_target − l_i)/(n·l_target)`.
    pub fn avg_error(&self) -> f64 {
        if self.traces.is_empty() {
            return 0.0;
        }
        self.traces
            .iter()
            .map(|t| (self.target - t.achieved) / self.target)
            .sum::<f64>()
            / self.traces.len() as f64
    }
}

/// One unit of matching work — a single-ended trace or one differential
/// pair — gathered from the board up front by [`plan_units`]. A unit is a
/// pure function of its snapshot: running it never reads the board, which
/// is what lets `crates/fleet` schedule units of *many* boards on one
/// work-stealing pool and still write back deterministically.
#[derive(Debug, Clone)]
pub struct UnitInput {
    target: f64,
    kind: UnitKind,
}

impl UnitInput {
    /// The group target length this unit extends toward.
    #[inline]
    pub fn target(&self) -> f64 {
        self.target
    }

    /// The design rules the unit's traces carry (a pair's *raw* rules —
    /// the merged extension virtualizes them internally). This is the key
    /// the fleet's per-`(library, rules)` `WorldBase` cache selects by.
    #[inline]
    pub fn rules(&self) -> &meander_drc::DesignRules {
        match &self.kind {
            UnitKind::Single { rules, .. } | UnitKind::Pair { rules, .. } => rules,
        }
    }
}

#[derive(Debug, Clone)]
enum UnitKind {
    Single {
        id: TraceId,
        trace: Polyline,
        rules: meander_drc::DesignRules,
        area: Vec<Polygon>,
    },
    Pair {
        p: TraceId,
        n: TraceId,
        p0: Polyline,
        n0: Polyline,
        sep: f64,
        scales: Vec<f64>,
        rules: meander_drc::DesignRules,
        area: Vec<Polygon>,
    },
}

/// A unit's computed result, to be applied to the board in order by
/// [`apply_outputs`]. `Clone` lets the serving loop retain outputs for
/// units it later skips.
#[derive(Debug, Clone)]
pub struct UnitOutput {
    /// Busy time spent computing this unit.
    busy: Duration,
    updates: Vec<(TraceId, Polyline)>,
    reports: Vec<TraceReport>,
}

impl UnitOutput {
    /// Busy time spent computing this unit.
    #[inline]
    pub fn busy(&self) -> Duration {
        self.busy
    }

    /// The routed geometry this unit will write back, in application
    /// order.
    #[inline]
    pub fn updates(&self) -> &[(TraceId, Polyline)] {
        &self.updates
    }

    /// The per-trace reports this unit contributes.
    #[inline]
    pub fn reports(&self) -> &[TraceReport] {
        &self.reports
    }

    /// Reassembles an output from retained parts. The fleet's result
    /// cache stores a hit's geometry and report floats verbatim and
    /// replays them through this; `busy` is a *measurement* (excluded
    /// from the bit-identity contract), so a cache hit reports
    /// [`Duration::ZERO`] — no routing work was done.
    pub fn from_parts(
        busy: Duration,
        updates: Vec<(TraceId, Polyline)>,
        reports: Vec<TraceReport>,
    ) -> UnitOutput {
        UnitOutput {
            busy,
            updates,
            reports,
        }
    }
}

/// Plans the units of `group` in member-declaration order.
///
/// Members that reference a trace absent from the board plan no unit
/// (they are skipped, not panicked on): dangling references are a
/// validation error — `meander_layout::validate_board` reports them with
/// provenance — and the planner must stay total even when a caller skips
/// that gate.
pub fn plan_units(board: &Board, group: &MatchGroup, target: f64) -> Vec<UnitInput> {
    let mut units = Vec::new();
    let mut done: HashSet<TraceId> = HashSet::new();
    for &id in group.members() {
        if done.contains(&id) {
            continue;
        }
        let pair = board.pair_of(id).cloned();
        match pair {
            Some(pair)
                if pair
                    .partner(id)
                    .is_some_and(|partner| group.members().contains(&partner))
                    && board.trace(pair.p()).is_some()
                    && board.trace(pair.n()).is_some() =>
            {
                let (p_id, n_id) = (pair.p(), pair.n());
                done.insert(p_id);
                done.insert(n_id);
                let p0 = board
                    .trace(p_id)
                    .expect("checked above")
                    .centerline()
                    .clone();
                let n0 = board
                    .trace(n_id)
                    .expect("checked above")
                    .centerline()
                    .clone();
                let rules = *board.trace(p_id).expect("checked above").rules();
                let area = board
                    .area(p_id)
                    .map(|a| a.polygons().to_vec())
                    .unwrap_or_default();
                // Distance-rule ladder: pair pitch plus any DRA gap values
                // (the multi-scale input of Alg. 3).
                let mut scales = vec![pair.sep()];
                for ra in board.rule_areas() {
                    scales.push(ra.rules().gap);
                }
                units.push(UnitInput {
                    target,
                    kind: UnitKind::Pair {
                        p: p_id,
                        n: n_id,
                        p0,
                        n0,
                        sep: pair.sep(),
                        scales,
                        rules,
                        area,
                    },
                });
            }
            _ => {
                done.insert(id);
                let Some(trace) = board.trace(id) else {
                    continue; // dangling member: validation's job to report
                };
                units.push(UnitInput {
                    target,
                    kind: UnitKind::Single {
                        id,
                        trace: trace.centerline().clone(),
                        rules: *trace.rules(),
                        area: board
                            .area(id)
                            .map(|a| a.polygons().to_vec())
                            .unwrap_or_default(),
                    },
                });
            }
        }
    }
    units
}

#[allow(clippy::too_many_arguments)]
fn extend_pure(
    id: TraceId,
    trace: &Polyline,
    rules: &meander_drc::DesignRules,
    area: &[Polygon],
    obstacles: &[Polygon],
    base: Option<&Arc<WorldBase>>,
    target: f64,
    config: &ExtendConfig,
    touches: Option<&mut CellTouches>,
) -> (TraceReport, ExtendOutcome) {
    let input = ExtendInput {
        trace,
        target,
        rules,
        area,
        obstacles,
    };
    let out = match touches {
        Some(rec) => extend_trace_shared_recorded(&input, config, base, rec),
        None => extend_trace_shared(&input, config, base),
    };
    (
        TraceReport {
            id,
            initial: trace.length(),
            achieved: out.achieved,
            patterns: out.patterns,
            via_msdtw: false,
        },
        out,
    )
}

/// Runs one unit against the board's obstacle set. Pure: no board access.
pub fn run_unit(unit: &UnitInput, obstacles: &[Polygon], config: &ExtendConfig) -> UnitOutput {
    run_unit_shared(unit, obstacles, None, config)
}

/// [`run_unit`] against a shared obstacle-library world: `obstacles` holds
/// only the board-local polygons, the library comes prebuilt from `base`
/// ([`WorldBase`]). Output is bit-identical to [`run_unit`] over
/// `base.raw() ++ obstacles` (see [`extend_trace_shared`]).
pub fn run_unit_shared(
    unit: &UnitInput,
    obstacles: &[Polygon],
    base: Option<&Arc<WorldBase>>,
    config: &ExtendConfig,
) -> UnitOutput {
    run_unit_shared_impl(unit, obstacles, base, config, None)
}

/// [`run_unit_shared`], recording the unit's touched lattice cells into
/// `touches` (see [`extend_trace_shared_recorded`]). A pair unit records its
/// merged extension and both fallback sub-extensions into the same set —
/// the virtualized rules land on their own stratum. Output is bit-identical
/// to [`run_unit_shared`].
pub fn run_unit_shared_recorded(
    unit: &UnitInput,
    obstacles: &[Polygon],
    base: Option<&Arc<WorldBase>>,
    config: &ExtendConfig,
    touches: &mut CellTouches,
) -> UnitOutput {
    run_unit_shared_impl(unit, obstacles, base, config, Some(touches))
}

fn run_unit_shared_impl(
    unit: &UnitInput,
    obstacles: &[Polygon],
    base: Option<&Arc<WorldBase>>,
    config: &ExtendConfig,
    mut touches: Option<&mut CellTouches>,
) -> UnitOutput {
    let start = Instant::now();
    let mut updates = Vec::new();
    let mut reports = Vec::new();
    match &unit.kind {
        UnitKind::Single {
            id,
            trace,
            rules,
            area,
        } => {
            let (report, out) = extend_pure(
                *id,
                trace,
                rules,
                area,
                obstacles,
                base,
                unit.target,
                config,
                touches.as_deref_mut(),
            );
            updates.push((*id, out.trace));
            reports.push(report);
        }
        UnitKind::Pair {
            p,
            n,
            p0,
            n0,
            sep,
            scales,
            rules,
            area,
        } => {
            let geom = PairGeometry::with_scales(p0, n0, scales.clone());
            let mut merged_ok = false;
            if let Ok(merged) = merge_pair(&geom) {
                let vrules = virtualize_rules(rules, *sep);
                let input = ExtendInput {
                    trace: &merged.median,
                    target: unit.target,
                    rules: &vrules,
                    area,
                    obstacles,
                };
                let out = match touches.as_deref_mut() {
                    Some(rec) => extend_trace_shared_recorded(&input, config, base, rec),
                    None => extend_trace_shared(&input, config, base),
                };
                if let Some((new_p, new_n)) = restore_pair(&out.trace, *sep) {
                    let (lp, ln) = (new_p.length(), new_n.length());
                    updates.push((*p, new_p));
                    updates.push((*n, new_n));
                    reports.push(TraceReport {
                        id: *p,
                        initial: p0.length(),
                        achieved: lp,
                        patterns: out.patterns,
                        via_msdtw: true,
                    });
                    reports.push(TraceReport {
                        id: *n,
                        initial: n0.length(),
                        achieved: ln,
                        patterns: out.patterns,
                        via_msdtw: true,
                    });
                    merged_ok = true;
                }
                // Restoration failed: fall through to independent extension.
            }
            if !merged_ok {
                // Degenerate pair: independent extension fallback.
                for (sub, trace) in [(*p, p0), (*n, n0)] {
                    let (report, out) = extend_pure(
                        sub,
                        trace,
                        rules,
                        area,
                        obstacles,
                        base,
                        unit.target,
                        config,
                        touches.as_deref_mut(),
                    );
                    updates.push((sub, out.trace));
                    reports.push(report);
                }
            }
        }
    }
    UnitOutput {
        busy: start.elapsed(),
        updates,
        reports,
    }
}

/// Applies unit outputs to the board in order, collecting reports and the
/// summed busy time. Callers must pass outputs in the order [`plan_units`]
/// planned them — that ordering is the whole determinism argument.
pub fn apply_outputs(board: &mut Board, outputs: Vec<UnitOutput>) -> (Vec<TraceReport>, Duration) {
    let mut reports = Vec::new();
    let mut busy = Duration::ZERO;
    for out in outputs {
        busy += out.busy;
        for (id, centerline) in out.updates {
            board
                .trace_mut(id)
                .expect("planned trace")
                .set_centerline(centerline);
        }
        reports.extend(out.reports);
    }
    (reports, busy)
}

/// The board's obstacle polygons in declaration order.
pub fn gather_obstacles(board: &Board) -> Vec<Polygon> {
    board
        .obstacles()
        .iter()
        .map(|o| o.polygon().clone())
        .collect()
}

/// Length-matches group `group_idx` of `board` in place.
///
/// Single-ended members go straight to [`crate::extend::extend_trace`].
/// Differential-pair
/// members are merged by MSDTW into a median trace, meandered under the
/// virtual DRC ([`meander_drc::virtualize_rules`]), and restored; if the
/// merge fails (degenerate pair) the sub-traces fall back to independent
/// extension.
///
/// With [`ExtendConfig::parallel`], the group's units run on worker
/// threads; the result is identical to the serial run.
///
/// # Panics
///
/// Panics if `group_idx` is out of range.
pub fn match_board_group(
    board: &mut Board,
    group_idx: usize,
    config: &ExtendConfig,
) -> GroupReport {
    match_board_group_shared(board, group_idx, config, None)
}

/// [`match_board_group`] against a shared obstacle-library world: the
/// board's own obstacle list holds only board-local polygons, the library
/// comes prebuilt from `base`. Bit-identical to [`match_board_group`] on
/// the board with `base.raw()` prepended to its obstacles.
pub fn match_board_group_shared(
    board: &mut Board,
    group_idx: usize,
    config: &ExtendConfig,
    base: Option<&Arc<WorldBase>>,
) -> GroupReport {
    let group: MatchGroup = board.groups()[group_idx].clone();
    let lengths = board.group_lengths(&group);
    let target = group.resolve_target(&lengths);
    let start = Instant::now();

    let obstacles = gather_obstacles(board);
    let units = plan_units(board, &group, target);
    let outputs: Vec<UnitOutput> = if config.parallel && units.len() > 1 {
        par_map(&units, |u| run_unit_shared(u, &obstacles, base, config))
    } else {
        units
            .iter()
            .map(|u| run_unit_shared(u, &obstacles, base, config))
            .collect()
    };
    let (reports, _busy) = apply_outputs(board, outputs);

    GroupReport {
        target,
        traces: reports,
        runtime: start.elapsed(),
    }
}

/// Length-matches every group of the board in declaration order, returning
/// one report per group.
///
/// Groups are independent in this model (a trace **must** belong to at
/// most one group — the batched path below snapshots every group's inputs
/// before any write-back, so a trace shared between groups would see
/// different geometry than the serial path). With
/// [`ExtendConfig::parallel`] the units of **all** groups fan out as one
/// batch, so a board with many small groups parallelizes as well as one
/// big group; each group's reported runtime is then its summed unit busy
/// time.
pub fn match_all_groups(board: &mut Board, config: &ExtendConfig) -> Vec<GroupReport> {
    match_all_groups_shared(board, config, None)
}

/// Snapshots every group of `board` up front: one `(target, units)` entry
/// per group, in declaration order, planned against the board's *current*
/// trace geometry. This is the batched parallel path's planning step,
/// exposed so `crates/fleet` can flatten many boards' groups into one
/// work-stealing job pool. Valid under the model's invariant that a trace
/// belongs to at most one group (otherwise later groups would need earlier
/// groups' write-backs in their snapshots).
pub fn plan_board_units(board: &Board) -> Vec<(f64, Vec<UnitInput>)> {
    (0..board.groups().len())
        .map(|gi| {
            let group: MatchGroup = board.groups()[gi].clone();
            let lengths = board.group_lengths(&group);
            let target = group.resolve_target(&lengths);
            let units = plan_units(board, &group, target);
            (target, units)
        })
        .collect()
}

/// One planned unit of a board, tagged with its position in the board's
/// `(group, unit)` plan — the flat per-unit packet shape the fleet
/// scheduler dispatches (`fleet::sched` schedules *units*, not groups, so
/// a board whose damage landed in one group still spreads across
/// workers).
#[derive(Debug, Clone)]
pub struct PlannedUnit {
    /// Board-local group index.
    pub group: usize,
    /// Unit index within the group.
    pub unit: usize,
    /// The group's resolved target (every unit of a group shares it).
    pub target: f64,
    /// The snapshotted unit.
    pub input: UnitInput,
}

/// [`plan_board_units`], flattened to per-unit packets: the group targets
/// (one per group, in declaration order — empty-unit groups keep their
/// slot) plus every unit tagged with its `(group, unit)` coordinates in
/// `(group, unit)` order. Same planning pass, same snapshots; only the
/// shape differs.
pub fn plan_unit_packets(board: &Board) -> (Vec<f64>, Vec<PlannedUnit>) {
    let planned = plan_board_units(board);
    let mut targets = Vec::with_capacity(planned.len());
    let mut flat = Vec::new();
    for (group, (target, units)) in planned.into_iter().enumerate() {
        targets.push(target);
        for (unit, input) in units.into_iter().enumerate() {
            flat.push(PlannedUnit {
                group,
                unit,
                target,
                input,
            });
        }
    }
    (targets, flat)
}

/// [`match_all_groups`] against a shared obstacle-library world (see
/// [`match_board_group_shared`]).
pub fn match_all_groups_shared(
    board: &mut Board,
    config: &ExtendConfig,
    base: Option<&Arc<WorldBase>>,
) -> Vec<GroupReport> {
    let n_groups = board.groups().len();
    if !config.parallel {
        return (0..n_groups)
            .map(|gi| match_board_group_shared(board, gi, config, base))
            .collect();
    }

    // Gather every group's units up front.
    let obstacles = gather_obstacles(board);
    let planned = plan_board_units(board);
    let mut group_units: Vec<(f64, usize)> = Vec::with_capacity(n_groups);
    let mut flat: Vec<UnitInput> = Vec::new();
    for (target, mut units) in planned {
        group_units.push((target, units.len()));
        flat.append(&mut units);
    }

    let mut outputs: std::collections::VecDeque<UnitOutput> =
        par_map(&flat, |u| run_unit_shared(u, &obstacles, base, config)).into();

    group_units
        .into_iter()
        .map(|(target, n_units)| {
            let taken: Vec<UnitOutput> = (0..n_units)
                .map(|_| outputs.pop_front().expect("one output per unit"))
                .collect();
            let (reports, busy) = apply_outputs(board, taken);
            GroupReport {
                target,
                traces: reports,
                runtime: busy,
            }
        })
        .collect()
}

/// Applies the `dmiter` corner rule to every trace of group `group_idx`
/// (paper Sec. II: "any rotation of a right angle or an acute angle will be
/// mitered by obtuse angles") and returns the per-trace length change.
///
/// Mitering shortens each chamfered corner by `(2 − √2)·dmiter`
/// ([`meander_geom::miter::miter_length_loss`]); callers wanting exact
/// lengths *after* mitering should re-run [`match_board_group`] once more —
/// the driver converges because trimming only ever adds the small residual
/// back.
///
/// # Panics
///
/// Panics if `group_idx` is out of range.
pub fn miter_group(board: &mut Board, group_idx: usize) -> Vec<(TraceId, f64)> {
    let group: MatchGroup = board.groups()[group_idx].clone();
    let mut deltas = Vec::with_capacity(group.members().len());
    for &id in group.members() {
        let Some(trace) = board.trace(id) else {
            continue;
        };
        let dmiter = trace.rules().miter;
        let protect = trace.rules().protect;
        let before = trace.length();
        let mitered =
            meander_geom::miter::miter_polyline_with_min(trace.centerline(), dmiter, protect);
        let after = mitered.length();
        board
            .trace_mut(id)
            .expect("checked above")
            .set_centerline(mitered);
        deltas.push((id, after - before));
    }
    deltas
}

#[cfg(test)]
mod tests {
    use super::*;
    use meander_layout::gen::{any_angle_bus, decoupled_pair, table1_case};

    #[test]
    fn single_ended_group_matches_to_target() {
        let mut case = table1_case(1);
        let report = match_board_group(&mut case.board, 0, &ExtendConfig::default());
        assert!((report.target - case.ltarget).abs() < 1e-9);
        assert!(
            report.max_error() < 0.10,
            "max error {:.4} too high",
            report.max_error()
        );
        assert!(report.avg_error() < 0.05, "avg {:.4}", report.avg_error());
        // Board must stay DRC-clean.
        let violations = case.board.check();
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn any_angle_group_matches() {
        let mut board = any_angle_bus(4, meander_geom::Angle::from_degrees(17.0));
        let report = match_board_group(&mut board, 0, &ExtendConfig::default());
        assert!(
            report.max_error() < 0.05,
            "max error {:.4}",
            report.max_error()
        );
        let violations = board.check();
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn differential_pair_group_uses_msdtw() {
        let case = decoupled_pair(false);
        let mut board = case.board;
        let report = match_board_group(&mut board, 0, &ExtendConfig::default());
        assert!(report.traces.iter().any(|t| t.via_msdtw));
        // Both sub-traces close to target.
        assert!(
            report.max_error() < 0.08,
            "max error {:.4}",
            report.max_error()
        );
        // Pair still coupled: sub-traces stay near pitch apart.
        let p = board.trace(case.p).unwrap().centerline().clone();
        let n = board.trace(case.n).unwrap().centerline().clone();
        let d = p.distance_to_polyline(&n);
        assert!(
            (d - case.sep0).abs() < case.sep0 * 0.6,
            "pair pitch broken: {d}"
        );
        assert!(!p.is_self_intersecting());
        assert!(!n.is_self_intersecting());
    }

    #[test]
    fn match_all_groups_covers_every_group() {
        // Two independent single-trace groups on one board.
        let mut board = meander_layout::Board::new(meander_geom::Rect::new(
            meander_geom::Point::new(0.0, 0.0),
            meander_geom::Point::new(300.0, 200.0),
        ));
        let rules = meander_drc::DesignRules::default();
        let a = board.add_trace(meander_layout::Trace::with_rules(
            "A",
            meander_geom::Polyline::new(vec![
                meander_geom::Point::new(0.0, 50.0),
                meander_geom::Point::new(200.0, 50.0),
            ]),
            rules,
        ));
        let b = board.add_trace(meander_layout::Trace::with_rules(
            "B",
            meander_geom::Polyline::new(vec![
                meander_geom::Point::new(0.0, 150.0),
                meander_geom::Point::new(200.0, 150.0),
            ]),
            rules,
        ));
        board.set_area(
            a,
            meander_layout::RoutableArea::from_polygon(meander_geom::Polygon::rectangle(
                meander_geom::Point::new(-10.0, 0.0),
                meander_geom::Point::new(210.0, 100.0),
            )),
        );
        board.set_area(
            b,
            meander_layout::RoutableArea::from_polygon(meander_geom::Polygon::rectangle(
                meander_geom::Point::new(-10.0, 100.0),
                meander_geom::Point::new(210.0, 200.0),
            )),
        );
        board.add_group(meander_layout::MatchGroup::with_target(
            "ga",
            vec![a],
            260.0,
        ));
        board.add_group(meander_layout::MatchGroup::with_target(
            "gb",
            vec![b],
            240.0,
        ));

        let reports = match_all_groups(&mut board, &ExtendConfig::default());
        assert_eq!(reports.len(), 2);
        assert!((reports[0].target - 260.0).abs() < 1e-9);
        assert!((reports[1].target - 240.0).abs() < 1e-9);
        for r in &reports {
            assert!(r.max_error() < 1e-2, "group err {:.4}", r.max_error());
        }
        assert!(board.check().is_empty());
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let serial_cfg = ExtendConfig {
            parallel: false,
            ..Default::default()
        };
        let parallel_cfg = ExtendConfig {
            parallel: true,
            ..Default::default()
        };
        for case_no in [1usize, 5] {
            let mut serial = table1_case(case_no);
            let mut parallel = table1_case(case_no);
            let rs = match_board_group(&mut serial.board, 0, &serial_cfg);
            let rp = match_board_group(&mut parallel.board, 0, &parallel_cfg);
            assert_eq!(rs.traces.len(), rp.traces.len());
            for (a, b) in rs.traces.iter().zip(&rp.traces) {
                assert_eq!(a.id, b.id, "case {case_no}: report order diverged");
                assert_eq!(a.patterns, b.patterns);
                assert!(
                    (a.achieved - b.achieved).abs() < 1e-12,
                    "case {case_no}: trace {:?} diverged",
                    a.id
                );
            }
            // Geometry identical too.
            for (id, t) in serial.board.traces() {
                let other = parallel.board.trace(id).unwrap();
                assert_eq!(t.centerline(), other.centerline(), "case {case_no}");
            }
        }
    }

    #[test]
    fn miter_pass_keeps_board_clean() {
        let mut case = table1_case(2);
        let report = match_board_group(&mut case.board, 0, &ExtendConfig::default());
        let deltas = miter_group(&mut case.board, 0);
        assert_eq!(deltas.len(), 8);
        // Mitering only ever shortens.
        for (id, d) in &deltas {
            assert!(*d <= 1e-9, "{id} grew by {d}");
        }
        // Chamfered output is still DRC-clean (chamfers exempt from
        // dprotect) and close to target.
        let violations = case.board.check();
        assert!(violations.is_empty(), "{violations:?}");
        let lengths = case.board.group_lengths(&case.board.groups()[0].clone());
        let max_err = meander_layout::MatchGroup::max_error(report.target, &lengths);
        assert!(max_err < 0.08, "post-miter max err {max_err:.4}");
        // Mitering strictly reduces the number of right-angle corners
        // (corners without protect-budget keep theirs).
        let sharp = |b: &meander_layout::Board| -> usize {
            b.traces()
                .map(|(_, t)| {
                    let pl = t.centerline();
                    (1..pl.segment_count())
                        .filter(|&i| {
                            let a = pl.segment(i - 1).direction().unwrap();
                            let c = pl.segment(i).direction().unwrap();
                            a.cross(c).atan2(a.dot(c)).abs() >= std::f64::consts::FRAC_PI_2 - 1e-6
                        })
                        .count()
                })
                .sum()
        };
        let mut unmitered = table1_case(2);
        let _ = match_board_group(&mut unmitered.board, 0, &ExtendConfig::default());
        assert!(
            sharp(&case.board) < sharp(&unmitered.board),
            "mitering removed no corners: {} vs {}",
            sharp(&case.board),
            sharp(&unmitered.board)
        );
    }

    #[test]
    fn runtime_is_recorded() {
        let mut case = table1_case(4);
        let report = match_board_group(&mut case.board, 0, &ExtendConfig::default());
        assert!(report.runtime.as_nanos() > 0);
        assert_eq!(report.traces.len(), 8);
    }
}
