//! The "without DP" baseline (paper Table II, Fig. 15 d–f).
//!
//! Patterns sit on *fixed tracks*: feet at a constant pitch from the
//! segment start, constant pattern width, greedy left-to-right insertion.
//! Obstacles are never routed around ([`max_pattern_height_opts`] with
//! enclosure off); when a slot's height comes back too small the slot is
//! simply skipped — no foot shifting, no width adaptation. Exactly the
//! failure modes the paper's Fig. 15 walkthrough describes.

use crate::config::ExtendConfig;
use crate::context::{ShrinkContext, WorldContext};
use crate::extend::{ExtendInput, ExtendOutcome};
use crate::pattern::{build_local_meander_f64, splice_meander};
use crate::shrink::max_pattern_height_opts;
use meander_geom::Frame;

/// Knobs of the fixed-track baseline.
#[derive(Debug, Clone)]
pub struct FixedTrackOptions {
    /// Pattern width as a multiple of `d_gap`.
    pub width_gaps: f64,
    /// Alternate pattern sides (up/down/up/…) instead of always up.
    pub alternate: bool,
    /// Use one uniform amplitude per segment (the minimum over its slots)
    /// instead of per-slot heights — the commercial-style "accordion"
    /// look. Slots with zero height are skipped either way.
    pub uniform_amplitude: bool,
}

impl Default for FixedTrackOptions {
    fn default() -> Self {
        FixedTrackOptions {
            width_gaps: 1.0,
            alternate: true,
            uniform_amplitude: false,
        }
    }
}

/// Extends a trace with the fixed-track greedy (no DP).
///
/// Only the original segments are visited (no meander-on-meander), feet
/// never move off the fixed pitch, and the final pattern is trimmed to
/// avoid overshooting — the same convergence contract as
/// [`crate::extend_trace`] so comparisons are apples-to-apples.
pub fn extend_trace_fixed(
    input: &ExtendInput<'_>,
    config: &ExtendConfig,
    opts: &FixedTrackOptions,
) -> ExtendOutcome {
    let rules = input.rules;
    let mut trace = input.trace.clone();
    let tol = (input.target * config.tolerance).max(1e-9);
    let h_min = rules.protect.max(1e-9);
    // Same centerline clearance math as the DP engine (see extend.rs).
    let g_eff = rules.gap + rules.width;
    let inflate = (rules.obstacle + rules.width / 2.0 - g_eff / 2.0).max(0.0);
    let obstacles: Vec<meander_geom::Polygon> = input
        .obstacles
        .iter()
        .map(|p| p.offset_convex(inflate))
        .collect();
    let wpat = (opts.width_gaps * g_eff).max(g_eff);
    let pitch = wpat + g_eff;

    let mut iterations = 0usize;
    let mut patterns = 0usize;
    // March over segment indices of the *current* trace, but only the
    // pieces that existed originally: we walk by index and skip spliced
    // runs by remembering how many vertices each splice added.
    let mut seg_index = 0usize;
    while trace.length() < input.target - tol && seg_index < trace.segment_count() {
        iterations += 1;
        let seg = trace.segment(seg_index);
        let len = seg.length();
        let Some(frame) = Frame::from_segment(&seg) else {
            seg_index += 1;
            continue;
        };
        let remaining = input.target - trace.length();
        if remaining < 2.0 * h_min {
            break;
        }

        let world = WorldContext {
            area: input.area.to_vec(),
            obstacles: obstacles.clone(),
            other_uras: WorldContext::trace_uras(&trace, seg_index, g_eff),
        };
        let ctx_up = ShrinkContext::build(&world, &frame, len, 1);
        let ctx_dn = ShrinkContext::build(&world, &frame, len, -1);

        // First-fit greedy over the routing-track grid: candidate feet
        // every half-clearance; a slot is taken the moment its constant-
        // width pattern fits (no lookahead, no width adaptation — the
        // "gridded safety tracks" style of the prior work the paper
        // compares against).
        let mut slots: Vec<(f64, f64, i8, f64)> = Vec::new(); // x0, x1, dir, h
        let step = g_eff / 4.0;
        let h_init = remaining / 2.0;
        let mut x0 = rules.protect;
        let mut k = 0usize;
        while x0 + wpat <= len - rules.protect {
            let x1 = x0 + wpat;
            let dir: i8 = if opts.alternate && k % 2 == 1 { -1 } else { 1 };
            let ctx = if dir > 0 { &ctx_up } else { &ctx_dn };
            let r = max_pattern_height_opts(ctx, x0, x1, g_eff, h_init, h_min, false);
            if r.height >= h_min - 1e-9 {
                slots.push((x0, x1, dir, r.height));
                x0 += pitch;
                k += 1;
            } else {
                x0 += step;
            }
        }
        if slots.is_empty() {
            seg_index += 1;
            continue;
        }
        if opts.uniform_amplitude {
            let h_uniform = slots.iter().map(|s| s.3).fold(f64::INFINITY, f64::min);
            for s in &mut slots {
                s.3 = h_uniform;
            }
        }

        // Greedy accumulate with final trim (exact feet, no quantization).
        let mut placements: Vec<(f64, f64, i8, f64)> = Vec::new();
        let mut acc = 0.0;
        for (x0, x1, dir, h) in slots {
            if acc + 2.0 * h <= remaining + 1e-9 {
                placements.push((x0, x1, dir, h));
                acc += 2.0 * h;
            } else {
                let desired = (remaining - acc) / 2.0;
                if desired >= h_min - 1e-9 {
                    let ctx = if dir > 0 { &ctx_up } else { &ctx_dn };
                    let r = max_pattern_height_opts(ctx, x0, x1, g_eff, desired, h_min, false);
                    if r.height >= h_min - 1e-9 {
                        placements.push((x0, x1, dir, r.height));
                    }
                }
                break;
            }
        }
        if placements.is_empty() {
            seg_index += 1;
            continue;
        }
        patterns += placements.len();
        let local = build_local_meander_f64(len, &placements);
        let added = local.point_count() - 2;
        let _ = splice_meander(&mut trace, seg_index, &frame, &local);
        // Jump past the spliced run: fixed-track never meanders meanders.
        seg_index += added + 1;
    }

    ExtendOutcome {
        achieved: trace.length(),
        trace,
        iterations,
        patterns,
        stats: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meander_geom::{Point, Polygon, Polyline};

    fn rules() -> meander_drc::DesignRules {
        meander_drc::DesignRules {
            gap: 8.0,
            obstacle: 8.0,
            protect: 4.0,
            miter: 2.0,
            width: 4.0,
        }
    }

    fn straight(len: f64) -> Polyline {
        Polyline::new(vec![Point::new(0.0, 0.0), Point::new(len, 0.0)])
    }

    fn area(len: f64) -> Vec<Polygon> {
        vec![Polygon::rectangle(
            Point::new(-20.0, -60.0),
            Point::new(len + 20.0, 60.0),
        )]
    }

    #[test]
    fn reaches_modest_target_in_open_space() {
        let trace = straight(200.0);
        let a = area(200.0);
        let r = rules();
        let out = extend_trace_fixed(
            &ExtendInput {
                trace: &trace,
                target: 260.0,
                rules: &r,
                area: &a,
                obstacles: &[],
            },
            &ExtendConfig::default(),
            &FixedTrackOptions::default(),
        );
        assert!(
            (out.achieved - 260.0).abs() <= 0.26 + 1e-6,
            "{}",
            out.achieved
        );
        assert!(!out.trace.is_self_intersecting());
    }

    #[test]
    fn never_overshoots() {
        let trace = straight(150.0);
        let a = area(150.0);
        let r = rules();
        let out = extend_trace_fixed(
            &ExtendInput {
                trace: &trace,
                target: 163.0,
                rules: &r,
                area: &a,
                obstacles: &[],
            },
            &ExtendConfig::default(),
            &FixedTrackOptions::default(),
        );
        assert!(out.achieved <= 163.0 + 1e-6);
    }

    #[test]
    fn cannot_route_around_obstacles() {
        // A via sitting where a DP pattern would simply enclose it.
        let trace = straight(60.0);
        let a = area(60.0);
        let r = rules();
        let obstacles = vec![Polygon::rectangle(
            Point::new(26.0, 20.0),
            Point::new(34.0, 26.0),
        )];
        let fixed = extend_trace_fixed(
            &ExtendInput {
                trace: &trace,
                target: 200.0,
                rules: &r,
                area: &a,
                obstacles: &obstacles,
            },
            &ExtendConfig::default(),
            &FixedTrackOptions::default(),
        );
        let dp = crate::extend::extend_trace(
            &ExtendInput {
                trace: &trace,
                target: 200.0,
                rules: &r,
                area: &a,
                obstacles: &obstacles,
            },
            &ExtendConfig::default(),
        );
        assert!(
            dp.achieved > fixed.achieved + 1.0,
            "DP {} should beat fixed tracks {}",
            dp.achieved,
            fixed.achieved
        );
    }

    #[test]
    fn respects_drc() {
        let trace = straight(120.0);
        let a = area(120.0);
        let r = rules();
        let obstacles = vec![Polygon::rectangle(
            Point::new(40.0, 12.0),
            Point::new(60.0, 20.0),
        )];
        let out = extend_trace_fixed(
            &ExtendInput {
                trace: &trace,
                target: 200.0,
                rules: &r,
                area: &a,
                obstacles: &obstacles,
            },
            &ExtendConfig::default(),
            &FixedTrackOptions::default(),
        );
        let violations = meander_drc::check_layout(&meander_drc::CheckInput {
            traces: vec![meander_drc::TraceGeometry {
                id: 0,
                centerline: out.trace.clone(),
                width: r.width,
                rules: r,
                area: a,
                coupled_with: vec![],
            }],
            obstacles,
        });
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn uniform_amplitude_is_weaker() {
        let trace = straight(200.0);
        let a = area(200.0);
        let r = rules();
        // One obstacle lowers a single slot; uniform amplitude drags every
        // slot down to it.
        let obstacles = vec![Polygon::rectangle(
            Point::new(90.0, 10.0),
            Point::new(110.0, 16.0),
        )];
        let mk = |uniform| {
            extend_trace_fixed(
                &ExtendInput {
                    trace: &trace,
                    target: 600.0,
                    rules: &r,
                    area: &a,
                    obstacles: &obstacles,
                },
                &ExtendConfig::default(),
                &FixedTrackOptions {
                    uniform_amplitude: uniform,
                    ..Default::default()
                },
            )
        };
        let uniform = mk(true);
        let per_slot = mk(false);
        assert!(
            per_slot.achieved >= uniform.achieved,
            "{} < {}",
            per_slot.achieved,
            uniform.achieved
        );
    }
}
