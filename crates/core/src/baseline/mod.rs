//! Comparison baselines.
//!
//! * [`fixed_track`] — the paper's Table II ablation comparator: "The
//!   compared algorithm without DP is based on fixed routing tracks and
//!   constant pattern width". No DP, no foot/width adaptation, no routing
//!   around obstacles.
//! * [`aidt_like`] — a stand-in for Allegro's closed-source
//!   Auto-interactive Delay Tune used in Table I (see DESIGN.md
//!   "Substitutions"): a greedy serpentine tuner with uniform amplitude per
//!   segment and conventional parallel-checking pair handling.

pub mod aidt_like;
pub mod fixed_track;

pub use aidt_like::match_group_aidt;
pub use fixed_track::{extend_trace_fixed, FixedTrackOptions};
