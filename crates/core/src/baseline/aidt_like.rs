//! AiDT-like greedy tuner — the Table I comparator.
//!
//! Allegro's Auto-interactive Delay Tune is closed source; the paper only
//! exposes its behaviour through Table I: decent matching in sparse space,
//! substantially worse than the DP router in dense space, faster on
//! single-ended dense groups, slower on the sparse differential group.
//! This stand-in reproduces that profile with published techniques:
//!
//! * serpentine insertion on fixed tracks with **uniform amplitude** per
//!   segment (commercial accordion style — one obstacle drags the whole
//!   segment's amplitude down),
//! * no obstacle enclosure and no foot/width adaptation,
//! * differential pairs handled the *conventional* way (paper Sec. V-A):
//!   parallel-segment checking merges the pair into a fat median trace;
//!   the check samples both sub-traces densely, which is where the extra
//!   runtime on pair groups comes from.

use crate::baseline::fixed_track::{extend_trace_fixed, FixedTrackOptions};
use crate::config::ExtendConfig;
use crate::driver::{GroupReport, TraceReport};
use crate::extend::ExtendInput;
use meander_drc::virtualize_rules;
use meander_geom::{Point, Polyline};
use meander_layout::{Board, MatchGroup, TraceId};
use meander_msdtw::restore_pair;
use std::collections::HashSet;
use std::time::Instant;

/// Conventional parallel-checking merge (the method MSDTW replaces).
///
/// Walks both sub-traces segment by segment; a pair of segments is
/// "coupled" when they are parallel within tolerance and laterally `sep`
/// apart, verified by dense sampling (`samples` per segment). Returns the
/// midline when *every* segment pair couples — and `None` the moment the
/// pair is imperfectly coupled, which is exactly the fragility the paper
/// describes (Sec. V-A).
pub fn parallel_check_merge(
    p: &Polyline,
    n: &Polyline,
    sep: f64,
    samples: usize,
) -> Option<Polyline> {
    if p.segment_count() != n.segment_count() {
        return None;
    }
    let mut mids: Vec<Point> = Vec::with_capacity(p.point_count());
    for (sp, sn) in p.segments().zip(n.segments()) {
        let dp = sp.direction()?;
        let dn = sn.direction()?;
        if !dp.is_parallel(dn) || dp.dot(dn) < 0.0 {
            return None;
        }
        // Dense sampling: every sample of sp must sit `sep` from sn.
        for k in 0..=samples {
            let t = k as f64 / samples as f64;
            let q = sp.point_at(t);
            let d = sn.distance_to_point(q);
            if (d - sep).abs() > sep * 0.25 {
                return None;
            }
        }
        mids.push(sp.a.midpoint(sn.a));
    }
    mids.push(p.end().midpoint(n.end()));
    let mut pl = Polyline::new(mids);
    pl.simplify();
    Some(pl)
}

/// Length-matches a group the AiDT-like way. Same reporting contract as
/// [`crate::match_board_group`].
///
/// # Panics
///
/// Panics if `group_idx` is out of range.
pub fn match_group_aidt(board: &mut Board, group_idx: usize, config: &ExtendConfig) -> GroupReport {
    let group: MatchGroup = board.groups()[group_idx].clone();
    let lengths = board.group_lengths(&group);
    let target = group.resolve_target(&lengths);
    let start = Instant::now();

    let obstacles: Vec<meander_geom::Polygon> = board
        .obstacles()
        .iter()
        .map(|o| o.polygon().clone())
        .collect();
    let opts = FixedTrackOptions {
        width_gaps: 1.0,
        alternate: true,
        uniform_amplitude: true,
    };

    let mut reports = Vec::new();
    let mut done: HashSet<TraceId> = HashSet::new();

    for &id in group.members() {
        if done.contains(&id) {
            continue;
        }
        let pair = board.pair_of(id).cloned();
        match pair {
            Some(pair)
                if group
                    .members()
                    .contains(&pair.partner(id).expect("involved")) =>
            {
                let (p_id, n_id) = (pair.p(), pair.n());
                done.insert(p_id);
                done.insert(n_id);
                let p0 = board.trace(p_id).expect("pair").centerline().clone();
                let n0 = board.trace(n_id).expect("pair").centerline().clone();
                let rules = *board.trace(p_id).expect("pair").rules();
                let area = board
                    .area(p_id)
                    .map(|a| a.polygons().to_vec())
                    .unwrap_or_default();

                // Conventional merge with dense sampling (the expensive
                // part on pair groups).
                let merged = parallel_check_merge(&p0, &n0, pair.sep(), 512);
                let median = match merged {
                    Some(m) => m,
                    None => {
                        // Decoupled pair: retry at coarser tolerance by
                        // dropping tiny segments first — more sampling
                        // work, often still failing (the paper's point).
                        let mut p_simpl = p0.clone();
                        p_simpl.simplify();
                        let mut n_simpl = n0.clone();
                        n_simpl.simplify();
                        match parallel_check_merge(&p_simpl, &n_simpl, pair.sep(), 1024) {
                            Some(m) => m,
                            None => {
                                // Give up on coupling: meander P as a fat
                                // trace and rebuild N from it.
                                p0.clone()
                            }
                        }
                    }
                };
                let vrules = virtualize_rules(&rules, pair.sep());
                let out = extend_trace_fixed(
                    &ExtendInput {
                        trace: &median,
                        target,
                        rules: &vrules,
                        area: &area,
                        obstacles: &obstacles,
                    },
                    config,
                    &opts,
                );
                if let Some((new_p, new_n)) = restore_pair(&out.trace, pair.sep()) {
                    let (lp, ln) = (new_p.length(), new_n.length());
                    board.trace_mut(p_id).expect("pair").set_centerline(new_p);
                    board.trace_mut(n_id).expect("pair").set_centerline(new_n);
                    reports.push(TraceReport {
                        id: p_id,
                        initial: p0.length(),
                        achieved: lp,
                        patterns: out.patterns,
                        via_msdtw: false,
                    });
                    reports.push(TraceReport {
                        id: n_id,
                        initial: n0.length(),
                        achieved: ln,
                        patterns: out.patterns,
                        via_msdtw: false,
                    });
                }
            }
            _ => {
                done.insert(id);
                let trace = board.trace(id).expect("member").centerline().clone();
                let rules = *board.trace(id).expect("member").rules();
                let area = board
                    .area(id)
                    .map(|a| a.polygons().to_vec())
                    .unwrap_or_default();
                let out = extend_trace_fixed(
                    &ExtendInput {
                        trace: &trace,
                        target,
                        rules: &rules,
                        area: &area,
                        obstacles: &obstacles,
                    },
                    config,
                    &opts,
                );
                reports.push(TraceReport {
                    id,
                    initial: trace.length(),
                    achieved: out.achieved,
                    patterns: out.patterns,
                    via_msdtw: false,
                });
                board
                    .trace_mut(id)
                    .expect("member")
                    .set_centerline(out.trace);
            }
        }
    }

    GroupReport {
        target,
        traces: reports,
        runtime: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meander_layout::gen::table1_case;

    #[test]
    fn parallel_merge_works_on_clean_pairs() {
        let p = Polyline::new(vec![Point::new(0.0, 3.0), Point::new(50.0, 3.0)]);
        let n = Polyline::new(vec![Point::new(0.0, -3.0), Point::new(50.0, -3.0)]);
        let m = parallel_check_merge(&p, &n, 6.0, 16).unwrap();
        assert!(m.points()[0].approx_eq(Point::new(0.0, 0.0)));
    }

    #[test]
    fn parallel_merge_fails_on_decoupled_pairs() {
        // Tiny pattern on N (the paper's Fig. 10b) breaks parallel
        // checking.
        let p = Polyline::new(vec![Point::new(0.0, 3.0), Point::new(50.0, 3.0)]);
        let n = Polyline::new(vec![
            Point::new(0.0, -3.0),
            Point::new(20.0, -3.0),
            Point::new(20.0, -7.0),
            Point::new(24.0, -7.0),
            Point::new(24.0, -3.0),
            Point::new(50.0, -3.0),
        ]);
        assert!(parallel_check_merge(&p, &n, 6.0, 16).is_none());
    }

    #[test]
    fn aidt_matches_worse_than_dp_on_dense_case() {
        let mut aidt_case = table1_case(1);
        let aidt = match_group_aidt(&mut aidt_case.board, 0, &ExtendConfig::default());

        let mut dp_case = table1_case(1);
        let dp = crate::driver::match_board_group(&mut dp_case.board, 0, &ExtendConfig::default());

        assert!(
            dp.max_error() <= aidt.max_error() + 1e-9,
            "DP {:.4} should beat AiDT-like {:.4}",
            dp.max_error(),
            aidt.max_error()
        );
        // AiDT still improves on the initial state.
        let init_max = 0.3738;
        assert!(aidt.max_error() < init_max);
    }

    #[test]
    fn aidt_output_is_drc_clean() {
        let mut case = table1_case(2);
        let _ = match_group_aidt(&mut case.board, 0, &ExtendConfig::default());
        let violations = case.board.check();
        assert!(violations.is_empty(), "{violations:?}");
    }
}
