//! Tunables of the extension engine.

use meander_index::IndexKind;

/// Configuration for [`crate::extend::extend_trace`].
///
/// Defaults follow the paper's setup: discretization tied to the design
/// rules ("We may slightly increase `dgap` and `dprotect` or adjust `ldisc`
/// to make the former divisible by the latter"), relative tolerance of
/// 0.1 %, and connected-pattern priority on (Figs. 4–5).
#[derive(Debug, Clone)]
pub struct ExtendConfig {
    /// Discretization step; `None` derives `min(dgap, dprotect) / 2`.
    pub ldisc: Option<f64>,
    /// Hard cap on discretization points per segment (the step is enlarged
    /// on long segments to stay under this), bounding DP cost.
    pub max_points_per_segment: usize,
    /// Hard cap on pattern width in discretization steps.
    pub max_width_steps: usize,
    /// Relative length tolerance: done when
    /// `|l_trace − l_target| ≤ tol · l_target`.
    pub tolerance: f64,
    /// Maximum queue pops before giving up (Alg. 1's loop bound).
    pub max_iterations: usize,
    /// Prefer states whose last transition inserted a pattern — and among
    /// them, connected patterns — on value ties (paper Figs. 4–5). Exposed
    /// so the ablation bench can switch it off.
    pub connect_priority: bool,
    /// Re-queue newly created segments (hats, legs, leftovers) for further
    /// meandering (meander-on-meander). Off restricts patterns to original
    /// segments.
    pub requeue: bool,
    /// Minimum segment length worth re-queueing, as a multiple of
    /// `dprotect`.
    pub requeue_min_protect: f64,
    /// Use the incremental engine: per-trace world index, windowed context
    /// construction, stable segment ids, and an incrementally maintained
    /// trace length. Off falls back to the naive rebuild-per-iteration
    /// pipeline (kept as the reference for equivalence tests and the
    /// before/after benchmark).
    pub incremental: bool,
    /// Use per-position upper-bound profiles in the incremental engine's
    /// segment DP: a stage-1 clearance sweep computed once per pop lets the
    /// DP skip height queries whose capped value provably cannot beat the
    /// incumbent state. Output is bit-identical either way (the bounds are
    /// sound); off reproduces the PR 1 incremental path for benchmarking.
    pub dp_profile: bool,
    /// Evaluate the shrink stage-1 side intersections and the DP
    /// upper-bound profile sweep on the SoA batch kernels
    /// (`meander_geom::batch`): candidates gather once into lane-parallel
    /// buffers instead of per-candidate scalar calls. Output is
    /// bit-identical either way — the kernels replay the scalar float
    /// stream per lane (property-tested). Defaults to the `batch` cargo
    /// feature; the scalar path stays the portable default and both are
    /// covered in CI.
    pub batch_kernels: bool,
    /// Spatial index structure for the incremental engine's world edge
    /// index and the per-pop shrink contexts: the uniform grid, the
    /// STR-packed R-tree, or `Auto` (pick per build from the edge-extent
    /// distribution — see [`IndexKind::resolve`]). Both structures return
    /// identical candidate sets, so placements are **bit-identical**
    /// whatever is selected (property-tested); this knob only moves the
    /// cost model, with the R-tree winning on boards that mix plane
    /// polygons with via fields. Defaults to `RTree` under the `rtree`
    /// cargo feature, `Grid` otherwise.
    pub index: IndexKind,
    /// Process independent traces (and groups) of a matching run on worker
    /// threads. Results are written back in deterministic order, so under
    /// the model's invariant that a trace belongs to at most one group,
    /// outputs are identical with the flag on or off. (Boards violating
    /// that invariant are unsupported: the batched parallel path snapshots
    /// all groups before matching, while the serial path sees earlier
    /// groups' write-backs.)
    pub parallel: bool,
}

impl Default for ExtendConfig {
    fn default() -> Self {
        ExtendConfig {
            ldisc: None,
            max_points_per_segment: 160,
            max_width_steps: 48,
            tolerance: 1e-3,
            max_iterations: 400,
            connect_priority: true,
            requeue: true,
            requeue_min_protect: 2.0,
            incremental: true,
            dp_profile: true,
            batch_kernels: cfg!(feature = "batch"),
            index: if cfg!(feature = "rtree") {
                IndexKind::RTree
            } else {
                IndexKind::Grid
            },
            parallel: true,
        }
    }
}

/// Progressively simpler engine shapes for recovery ladders (the fleet's
/// retry policy steps through these after a failure).
///
/// Every level is a knob combination an equivalence suite already covers:
/// `Scalar` and `Simple` produce **bit-identical** output to the full
/// engine (the batch-kernel, index-swap, and DP-profile contracts), and
/// `Reference` is the non-incremental reference matcher — equivalent
/// within tolerance rather than bit-identical, which is why a board
/// recovered there is reported as degraded, never as plainly routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EngineFallback {
    /// Portable scalar kernels and the dense grid index: lane batching
    /// and R-tree candidacy off, everything else untouched.
    Scalar,
    /// [`EngineFallback::Scalar`] plus the uniform height cap
    /// (`dp_profile` off) and no intra-unit parallelism — the simplest
    /// incremental engine shape.
    Simple,
    /// [`EngineFallback::Simple`] plus the naive rebuild-per-iteration
    /// reference pipeline (`incremental` off) — the slowest, most literal
    /// path, used as the last rung before quarantine.
    Reference,
}

impl ExtendConfig {
    /// Resolves the discretization step for a segment of `seg_len` under
    /// rules `gap`/`protect`: the configured (or derived) step, enlarged if
    /// needed to respect [`ExtendConfig::max_points_per_segment`].
    pub fn resolve_ldisc(&self, seg_len: f64, gap: f64, protect: f64) -> f64 {
        let base = self
            .ldisc
            .unwrap_or_else(|| (gap.min(protect) / 2.0).max(1e-6));
        let min_for_cap = seg_len / self.max_points_per_segment as f64;
        base.max(min_for_cap)
    }

    /// This configuration with the knobs of fallback `level` applied: the
    /// scheduling/effort knobs step down, everything the caller tuned for
    /// geometry (tolerance, iteration caps, discretization) is preserved.
    pub fn fallback(&self, level: EngineFallback) -> ExtendConfig {
        let mut c = self.clone();
        c.batch_kernels = false;
        c.index = IndexKind::Grid;
        if level >= EngineFallback::Simple {
            c.dp_profile = false;
            c.parallel = false;
        }
        if level >= EngineFallback::Reference {
            c.incremental = false;
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_step_is_half_min_rule() {
        let c = ExtendConfig::default();
        assert!((c.resolve_ldisc(10.0, 8.0, 6.0) - 3.0).abs() < 1e-12);
        assert!((c.resolve_ldisc(10.0, 4.0, 8.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn long_segments_coarsen_step() {
        let c = ExtendConfig {
            max_points_per_segment: 100,
            ..Default::default()
        };
        // 1000-long segment with base step 1 would need 1000 points.
        let step = c.resolve_ldisc(1000.0, 2.0, 2.0);
        assert!((step - 10.0).abs() < 1e-12);
    }

    #[test]
    fn explicit_step_respected() {
        let c = ExtendConfig {
            ldisc: Some(0.5),
            ..Default::default()
        };
        assert_eq!(c.resolve_ldisc(10.0, 8.0, 8.0), 0.5);
    }

    #[test]
    fn fallback_levels_step_down_monotonically() {
        let base = ExtendConfig {
            tolerance: 5e-4,
            max_iterations: 123,
            ..Default::default()
        };
        let scalar = base.fallback(EngineFallback::Scalar);
        assert!(!scalar.batch_kernels);
        assert_eq!(scalar.index, IndexKind::Grid);
        assert_eq!(scalar.incremental, base.incremental);
        assert_eq!(scalar.dp_profile, base.dp_profile);
        let simple = base.fallback(EngineFallback::Simple);
        assert!(!simple.dp_profile && !simple.parallel && !simple.batch_kernels);
        assert!(simple.incremental);
        let reference = base.fallback(EngineFallback::Reference);
        assert!(!reference.incremental && !reference.dp_profile);
        // Caller-tuned geometry knobs survive every level.
        for c in [&scalar, &simple, &reference] {
            assert_eq!(c.tolerance, 5e-4);
            assert_eq!(c.max_iterations, 123);
        }
    }
}
