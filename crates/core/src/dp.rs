//! The segment-extension dynamic program (paper Sec. IV-A/C, Alg. 1
//! lines 4–17), made **output-sensitive**.
//!
//! The segment is discretized into points `0..=m` at step `l_disc`;
//! `dp[i][dir]` holds the best height-sum achievable with patterns whose
//! feet lie among the first `i` points, the last pattern opening toward
//! side `dir`. Valid predecessors follow Eq. 8:
//!
//! * `p_gap` — same side, previous pattern at least `d_gap` back,
//! * `p_protect` — opposite side, at least `d_protect` back,
//! * `p_local` — opposite side, *connected* (shared foot; Fig. 3c), only
//!   when the predecessor state really ends in a pattern foot there (the
//!   "extra condition" of Fig. 4), or foot at a segment node (Fig. 3d).
//!
//! Ties keep pattern-ending states, preferring connected ones, because a
//! connected pair frees foot capacity for future patterns (Fig. 5).
//! `transit[i][dir]` records `⟨i′, dir′, w′⟩` (Eq. 14) plus the chosen
//! height for O(n) restoration.
//!
//! ## Why the naive pass is the cost center
//!
//! Each candidate transition `(j, i, dir)` asks the URA shrinking for the
//! tallest legal pattern — an `O(log)`-indexed but still expensive geometric
//! query — so a full pass performs `O(m·w)` of them. Three mechanisms make
//! the pass cost proportional to the *useful* part of that work:
//!
//! 1. **Per-position upper bounds** ([`HeightBounds::Profile`], built by
//!    [`crate::shrink::build_ub_profile`]): a sound per-foot-position cap on
//!    any pattern height, derived from the exact stage-1 side-clearance
//!    arithmetic of the shrinker. A candidate whose capped value cannot beat
//!    (or tie) the incumbent `dp[i][d]` skips the query outright, and a cap
//!    below the minimum useful height proves the query would return 0.
//! 2. **Monotone width break**: `dp[·][d]` is non-decreasing, so once even
//!    `max(dp[j][0], dp[j][1])` plus the row cap cannot reach the incumbent,
//!    no wider candidate at this `(i, d)` can either — the width loop stops.
//! 3. **Height-query memoization + prefix checkpointing**
//!    ([`DpSession`]): executed query results are cached by `(lo, hi, dir)`
//!    and every computed row is retained, so after
//!    [`DpSession::invalidate_window`]`(a, b)` (a splice that changed the
//!    height field only for windows overlapping `[a, b]`) the next
//!    [`DpSession::solve`] restarts the forward pass from row `a` — the
//!    checkpoint granularity is one row, so "the last checkpoint ≤ a" is
//!    exactly `a` — and re-probes only windows the invalidation touched.
//!
//! All three are *pruning-only*: [`DpSession::solve`] and
//! [`extend_segment_dp`] return placements bit-identical to an unpruned
//! from-scratch pass (property-tested in `tests/props.rs`).

use crate::config::ExtendConfig;
use std::collections::HashMap;

/// Direction index: 0 ⇒ −1 (clockwise / below), 1 ⇒ +1 (ccw / above).
pub type DirIx = usize;

/// Converts a direction index to the geometric sign.
#[inline]
pub fn dir_sign(d: DirIx) -> i8 {
    if d == 0 {
        -1
    } else {
        1
    }
}

/// One restored pattern placement on the discretized segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Left-foot point index.
    pub lo: usize,
    /// Right-foot point index.
    pub hi: usize,
    /// Side: +1 above the segment, −1 below.
    pub dir: i8,
    /// Pattern height.
    pub height: f64,
}

/// The `transit[i][dir]` record (paper Eq. 14 plus the height).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Transit {
    from_i: usize,
    from_d: DirIx,
    /// Pattern width in steps; 0 marks a propagation step (no new
    /// pattern) — also the flag for the `p_local` extra condition.
    w: usize,
    h: f64,
}

const PROP: Transit = Transit {
    from_i: 0,
    from_d: 0,
    w: 0,
    h: 0.0,
};

/// Per-position upper bounds on pattern heights, indexed by [`DirIx`].
///
/// `left[d][j]` caps the height of any pattern whose **left** foot sits at
/// point `j` opening toward side `d`; `right[d][i]` caps by the **right**
/// foot. Entries are `f64::INFINITY` when unconstrained and may be floored
/// to `0.0` when the builder can prove no useful pattern exists there (the
/// DP then skips the candidate without a query — a zero height is never
/// placed anyway).
///
/// ## Contract
///
/// Every entry must be a true upper bound on the height closure's return
/// value for every matching candidate: `height(j, i, dir_sign(d)) ≤
/// min(cap, left[d][j], right[d][i])`. Under that contract the DP output is
/// bit-identical to an unbounded run; the bounds only skip queries whose
/// result provably cannot matter.
#[derive(Debug, Clone)]
pub struct UbProfile {
    /// Global cap (the shrink start height `h_init`).
    pub cap: f64,
    /// Per-left-foot caps, `m + 1` entries per side.
    pub left: [Vec<f64>; 2],
    /// Per-right-foot caps, `m + 1` entries per side.
    pub right: [Vec<f64>; 2],
}

/// Upper-bound information the DP may exploit to skip height queries.
///
/// [`HeightBounds::Uniform`] is the single global cap (the shrink start
/// height `h_init` — historically a separate `DpInput` field, folded into
/// this enum when the per-position profile landed);
/// [`HeightBounds::Profile`] adds per-position resolution. Use
/// `Uniform(f64::INFINITY)` when no bound is known.
#[derive(Debug, Clone, Copy)]
pub enum HeightBounds<'a> {
    /// One cap for every candidate.
    Uniform(f64),
    /// Per-foot-position caps.
    Profile(&'a UbProfile),
}

impl HeightBounds<'_> {
    /// Cap independent of the left foot: sound for every candidate ending
    /// at `i` on side `d` (drives the monotone width break).
    #[inline]
    fn row_cap(&self, i: usize, d: DirIx) -> f64 {
        match self {
            HeightBounds::Uniform(c) => *c,
            HeightBounds::Profile(p) => p.cap.min(p.right[d][i]),
        }
    }

    /// Full per-candidate cap for the pattern `(j, i)` on side `d`.
    #[inline]
    fn pair_cap(&self, j: usize, i: usize, d: DirIx) -> f64 {
        match self {
            HeightBounds::Uniform(c) => *c,
            HeightBounds::Profile(p) => p.cap.min(p.left[d][j]).min(p.right[d][i]),
        }
    }
}

/// DP inputs describing one discretized segment.
pub struct DpInput<'a> {
    /// Number of discretization intervals (`m + 1` points, `0..=m`).
    pub m: usize,
    /// Discretization step.
    pub ldisc: f64,
    /// `d_gap` in steps (same-side spacing).
    pub gap_steps: usize,
    /// `d_protect` in steps (opposite-side spacing and end stubs).
    pub protect_steps: usize,
    /// Minimum pattern width in steps (hat must be ≥ `d_protect`).
    pub min_width_steps: usize,
    /// Maximum pattern width in steps.
    pub max_width_steps: usize,
    /// Maximum height closure: `height(lo, hi, dir)` returns the tallest
    /// legal pattern with feet at points `lo`/`hi` on side `dir`, or 0.
    pub height: &'a dyn Fn(usize, usize, i8) -> f64,
    /// Upper bounds the height closure is guaranteed to respect. Purely an
    /// optimization: candidates that cannot beat the incumbent state even
    /// at their cap skip the (expensive) height query without changing the
    /// optimum or the tie-breaking.
    pub bounds: HeightBounds<'a>,
    /// Engine configuration (tie-breaking priority).
    pub config: &'a ExtendConfig,
}

/// Output: chosen placements (left to right) and the total height gained.
#[derive(Debug, Clone, Default)]
pub struct DpOutcome {
    /// Patterns of the optimal solution, ordered by foot position.
    pub placements: Vec<Placement>,
    /// Sum of pattern heights (`dp[n][dir_max]`); the trace gains twice
    /// this in length.
    pub total_height: f64,
}

/// Height-query and DP-work counters (the observability the perf baseline
/// records; see `BENCH_PR2.json`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DpStats {
    /// Candidate transitions that needed a height value.
    pub hq_requested: u64,
    /// Requests answered by the upper-bound caps without running the
    /// shrink kernel (cap ≤ 0, or capped value cannot beat the incumbent).
    pub hq_pruned: u64,
    /// Requests answered from the `(lo, hi, dir)` memo.
    pub hq_memo_hits: u64,
    /// Requests that actually executed the height closure.
    pub hq_executed: u64,
    /// DP rows (points × both sides count as one row) evaluated across all
    /// solves — resolves after a windowed invalidation re-evaluate only the
    /// suffix, so this measures the prefix reuse.
    pub points_evaluated: u64,
    /// Forward passes run (initial solves + resolves).
    pub solves: u64,
    /// Batched-kernel work counters (stage-1 / profile sweeps): populated
    /// by the engine when `ExtendConfig::batch_kernels` is on.
    pub batch: meander_geom::batch::BatchStats,
}

impl DpStats {
    /// Fraction of height requests served without executing the shrink
    /// kernel — bound-pruned plus memoized. (On the engine's single-solve
    /// path the memo is off, so this is purely the prune rate; memo hits
    /// only appear on resolve-after-invalidate callers.) 0 when nothing
    /// was requested.
    pub fn skip_rate(&self) -> f64 {
        if self.hq_requested == 0 {
            return 0.0;
        }
        1.0 - self.hq_executed as f64 / self.hq_requested as f64
    }

    /// Accumulates `other` into `self`.
    pub fn absorb(&mut self, other: &DpStats) {
        self.hq_requested += other.hq_requested;
        self.hq_pruned += other.hq_pruned;
        self.hq_memo_hits += other.hq_memo_hits;
        self.hq_executed += other.hq_executed;
        self.points_evaluated += other.points_evaluated;
        self.solves += other.solves;
        self.batch.absorb(&other.batch);
    }
}

/// An incremental segment DP: retained rows, a height memo, and windowed
/// invalidation.
///
/// The session keeps every computed row (`dp`/`rank`/`transit`) and a memo
/// of executed height queries keyed `(lo, hi, dir)`. After
/// [`DpSession::invalidate_window`]`(a, b)` — the caller's promise that the
/// height field changed **only** for pattern windows overlapping `[a, b]` —
/// the next [`DpSession::solve`] restarts the forward pass from row `a`,
/// reusing the untouched prefix verbatim and answering unchanged suffix
/// probes from the memo. A fresh session (or a full invalidation) degrades
/// gracefully to the from-scratch pass of [`extend_segment_dp`].
#[derive(Debug)]
pub struct DpSession {
    m: usize,
    gap_steps: usize,
    protect_steps: usize,
    min_width_steps: usize,
    max_width_steps: usize,
    dp: Vec<[f64; 2]>,
    rank: Vec<[u8; 2]>,
    transit: Vec<[Transit; 2]>,
    /// First row whose state must be recomputed; `m + 1` when clean.
    dirty_from: usize,
    /// `(lo, hi, dir) → height` for executed queries; `None` disables
    /// memoization (single-solve callers avoid the insert cost).
    memo: Option<HashMap<(u32, u32, u8), f64>>,
    stats: DpStats,
}

impl DpSession {
    /// Creates a session for the discretization shape of `input`. With
    /// `with_memo`, executed height queries are cached for reuse across
    /// [`DpSession::solve`] calls; single-solve callers should pass `false`.
    pub fn new(input: &DpInput<'_>, with_memo: bool) -> Self {
        let n_pts = input.m + 1;
        DpSession {
            m: input.m,
            gap_steps: input.gap_steps,
            protect_steps: input.protect_steps,
            min_width_steps: input.min_width_steps,
            max_width_steps: input.max_width_steps,
            dp: vec![[0.0; 2]; n_pts.max(1)],
            rank: vec![[0; 2]; n_pts.max(1)],
            transit: vec![[PROP; 2]; n_pts.max(1)],
            dirty_from: 1,
            memo: with_memo.then(HashMap::new),
            stats: DpStats::default(),
        }
    }

    /// Work counters accumulated over the session's lifetime.
    #[inline]
    pub fn stats(&self) -> &DpStats {
        &self.stats
    }

    /// Declares that the height field changed, but only for pattern windows
    /// `[lo, hi]` overlapping `[a, b]` (inclusive). Rows `< a` and memo
    /// entries fully outside the window stay valid; the next solve restarts
    /// from row `a`.
    pub fn invalidate_window(&mut self, a: usize, b: usize) {
        self.dirty_from = self.dirty_from.min(a.max(1));
        if let Some(memo) = &mut self.memo {
            memo.retain(|&(lo, hi, _), _| (hi as usize) < a || (lo as usize) > b);
        }
    }

    /// Runs (or resumes) the forward pass and restores the optimal pattern
    /// set. `input` must have the same discretization shape the session was
    /// created with; its closure, bounds, and config may differ only in
    /// ways consistent with the invalidation contract.
    pub fn solve(&mut self, input: &DpInput<'_>) -> DpOutcome {
        debug_assert_eq!(self.m, input.m, "session shape mismatch");
        debug_assert_eq!(self.gap_steps, input.gap_steps);
        debug_assert_eq!(self.protect_steps, input.protect_steps);
        debug_assert_eq!(self.min_width_steps, input.min_width_steps);
        debug_assert_eq!(self.max_width_steps, input.max_width_steps);
        if self.m == 0 {
            return DpOutcome::default();
        }
        if self.dirty_from <= self.m {
            self.forward(input);
        }
        self.dirty_from = self.m + 1;
        self.restore()
    }

    /// The forward pass over rows `dirty_from..=m`.
    fn forward(&mut self, input: &DpInput<'_>) {
        let m = self.m;
        let from = self.dirty_from.max(1);
        self.stats.solves += 1;
        self.stats.points_evaluated += (m - from + 1) as u64;
        for i in from..=m {
            for d in 0..2usize {
                // Propagation (Eq. 6).
                self.dp[i][d] = self.dp[i - 1][d];
                self.rank[i][d] = 0;
                self.transit[i][d] = Transit {
                    from_i: i - 1,
                    from_d: d,
                    w: 0,
                    h: 0.0,
                };

                // Right-foot legality: at the far node or ≥ d_protect from
                // it.
                let tail_ok = i == m || (m - i) >= self.protect_steps;
                if !tail_ok {
                    continue;
                }

                // Left-foot-independent cap for this row: no candidate
                // ending at i on side d can yield more.
                let row_cap = input.bounds.row_cap(i, d);
                if row_cap <= 0.0 {
                    // No positive-height pattern can end here at all.
                    continue;
                }

                let w_hi = self.max_width_steps.min(i);
                for w in self.min_width_steps..=w_hi {
                    let j = i - w; // left foot
                                   // Head-stub legality: whatever the transition, the
                                   // piece of original segment left of the foot is at
                                   // least the stub to the segment start; it must be
                                   // ≥ d_protect or empty.
                    if j != 0 && j < self.protect_steps {
                        continue;
                    }

                    // Monotone width break: every candidate base at this or
                    // any wider width is ≤ max(dp[j][0], dp[j][1]) (dp is
                    // non-decreasing in i), so once even that plus the row
                    // cap cannot beat the incumbent, no wider candidate
                    // can.
                    let best_base = self.dp[j][0].max(self.dp[j][1]);
                    if best_base + row_cap < self.dp[i][d] - 1e-12 {
                        break;
                    }

                    // Candidate predecessors per Eq. 8.
                    let mut candidates: [(Option<(usize, DirIx)>, bool); 3] =
                        [(None, false), (None, false), (None, false)];
                    // p_gap: same side.
                    if j >= self.gap_steps {
                        candidates[0] = (Some((j - self.gap_steps, d)), false);
                    }
                    // p_protect: opposite side.
                    let od = 1 - d;
                    if j >= self.protect_steps {
                        candidates[1] = (Some((j - self.protect_steps, od)), false);
                    }
                    // p_local: connected to a pattern foot (extra
                    // condition) or a segment node (j == 0).
                    if j == 0 {
                        candidates[2] = (Some((0, od)), true);
                    } else {
                        let t = self.transit[j][od];
                        if t.w != 0 {
                            // The opposite-side state really ends with a
                            // foot at j.
                            candidates[2] = (Some((j, od)), true);
                        }
                    }

                    let mut best: Option<(f64, usize, DirIx, bool)> = None;
                    for (cand, connected) in candidates {
                        if let Some((pi, pd)) = cand {
                            let v = self.dp[pi][pd];
                            let better = match best {
                                None => true,
                                Some((bv, _, _, bconn)) => {
                                    v > bv + 1e-12
                                        || ((v - bv).abs() <= 1e-12
                                            && input.config.connect_priority
                                            && connected
                                            && !bconn)
                                }
                            };
                            if better {
                                best = Some((v, pi, pd, connected));
                            }
                        }
                    }
                    let Some((base, pi, pd, connected)) = best else {
                        continue;
                    };

                    self.stats.hq_requested += 1;
                    // Even a cap-height pattern cannot beat (or tie) the
                    // incumbent — or the cap proves the query returns no
                    // useful height at all: skip the height query.
                    let cand_cap = input.bounds.pair_cap(j, i, d);
                    if cand_cap <= 0.0 || base + cand_cap < self.dp[i][d] - 1e-12 {
                        self.stats.hq_pruned += 1;
                        continue;
                    }

                    let key = (j as u32, i as u32, d as u8);
                    let h = match self.memo.as_ref().and_then(|memo| memo.get(&key)) {
                        Some(&h) => {
                            self.stats.hq_memo_hits += 1;
                            h
                        }
                        None => {
                            self.stats.hq_executed += 1;
                            let h = (input.height)(j, i, dir_sign(d));
                            if let Some(memo) = self.memo.as_mut() {
                                memo.insert(key, h);
                            }
                            h
                        }
                    };
                    if h <= 0.0 {
                        continue;
                    }
                    let value = base + h;
                    let new_rank = if connected { 2 } else { 1 };
                    let take = value > self.dp[i][d] + 1e-12
                        || ((value - self.dp[i][d]).abs() <= 1e-12
                            && input.config.connect_priority
                            && new_rank > self.rank[i][d]);
                    if take {
                        self.dp[i][d] = value;
                        self.rank[i][d] = new_rank;
                        self.transit[i][d] = Transit {
                            from_i: pi,
                            from_d: pd,
                            w,
                            h,
                        };
                    }
                }
            }
        }
    }

    /// Picks the best terminal state and backtracks (Sec. IV-C).
    fn restore(&self) -> DpOutcome {
        let m = self.m;
        let (mut i, mut d) = if self.dp[m][0] >= self.dp[m][1] {
            (m, 0)
        } else {
            (m, 1)
        };
        let total = self.dp[i][d];
        let mut placements = Vec::new();
        while i > 0 {
            let t = self.transit[i][d];
            if t.w != 0 {
                placements.push(Placement {
                    lo: i - t.w,
                    hi: i,
                    dir: dir_sign(d),
                    height: t.h,
                });
            }
            // Guard against malformed transit chains.
            debug_assert!(t.from_i < i || (t.from_i == i && t.from_d != d));
            if t.from_i == i && t.from_d == d {
                break;
            }
            i = t.from_i;
            d = t.from_d;
        }
        placements.reverse();
        DpOutcome {
            placements,
            total_height: total,
        }
    }
}

/// Runs the DP over one segment from scratch and restores the best pattern
/// set — the stateless reference entry point ([`DpSession`] is the
/// incremental form; both return bit-identical placements).
pub fn extend_segment_dp(input: &DpInput<'_>) -> DpOutcome {
    DpSession::new(input, false).solve(input)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input<'a>(
        m: usize,
        gap_steps: usize,
        protect_steps: usize,
        height: &'a dyn Fn(usize, usize, i8) -> f64,
        config: &'a ExtendConfig,
    ) -> DpInput<'a> {
        DpInput {
            m,
            ldisc: 1.0,
            gap_steps,
            protect_steps,
            min_width_steps: gap_steps.max(1),
            max_width_steps: 64,
            height,
            bounds: HeightBounds::Uniform(f64::INFINITY),
            config,
        }
    }

    fn run(
        m: usize,
        gap_steps: usize,
        protect_steps: usize,
        height: &dyn Fn(usize, usize, i8) -> f64,
    ) -> DpOutcome {
        let config = ExtendConfig::default();
        extend_segment_dp(&input(m, gap_steps, protect_steps, height, &config))
    }

    #[test]
    fn empty_segment_no_patterns() {
        let out = run(0, 2, 2, &|_, _, _| 10.0);
        assert!(out.placements.is_empty());
        assert_eq!(out.total_height, 0.0);
    }

    #[test]
    fn single_pattern_when_space_allows_one() {
        // m = 8, protect 2, gap 4: uniform height 5.
        let out = run(8, 4, 2, &|_, _, _| 5.0);
        assert!(out.total_height >= 5.0);
        for p in &out.placements {
            assert!(p.hi - p.lo >= 4, "width ≥ gap steps");
            assert!(p.height == 5.0);
        }
        // Feet respect end stubs: lo == 0 or lo ≥ protect, hi == m or
        // m − hi ≥ protect.
        for p in &out.placements {
            assert!(p.lo == 0 || p.lo >= 2);
            assert!(p.hi == 8 || 8 - p.hi >= 2);
        }
    }

    #[test]
    fn same_side_patterns_respect_gap() {
        let out = run(40, 6, 2, &|_, _, _| 3.0);
        let mut by_side: [Vec<&Placement>; 2] = [vec![], vec![]];
        for p in &out.placements {
            by_side[usize::from(p.dir > 0)].push(p);
        }
        for side in &by_side {
            for w in side.windows(2) {
                assert!(
                    w[1].lo >= w[0].hi + 6,
                    "same-side feet too close: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn opposite_sides_interleave_with_protect() {
        let out = run(40, 10, 2, &|_, _, _| 3.0);
        // With a huge same-side gap, alternation wins: patterns alternate
        // sides separated by protect.
        assert!(out.placements.len() >= 3, "{:?}", out.placements);
        for w in out.placements.windows(2) {
            if w[0].dir != w[1].dir {
                assert!(w[1].lo >= w[0].hi + 2 || w[1].lo == w[0].hi);
            }
        }
    }

    #[test]
    fn connected_patterns_share_feet() {
        // m = 12, gap 6, protect 3: widths capped at 6 by the height
        // closure, so two patterns only fit sharing a foot at 6 (p_local,
        // Fig. 3c) — neither same-side gap (needs foot 18) nor
        // opposite-side protect (needs foot 15) fits.
        let out = run(12, 6, 3, &|lo, hi, _| {
            if hi - lo <= 6 {
                4.0
            } else {
                0.0
            }
        });
        assert!(out.total_height >= 8.0, "{out:?}");
        let shared = out
            .placements
            .windows(2)
            .any(|w| w[1].lo == w[0].hi && w[1].dir != w[0].dir);
        assert!(shared, "expected a connected pair: {:?}", out.placements);
    }

    #[test]
    fn height_zero_blocks_patterns() {
        let out = run(20, 2, 2, &|_, _, _| 0.0);
        assert!(out.placements.is_empty());
        assert_eq!(out.total_height, 0.0);
    }

    #[test]
    fn side_dependent_heights_pick_better_side() {
        let out = run(10, 4, 2, &|_, _, d| if d > 0 { 8.0 } else { 1.0 });
        assert!(!out.placements.is_empty());
        // The bulk of the gain must come from the tall (+1) side; low-value
        // −1 fillers may legitimately appear in between.
        let up: f64 = out
            .placements
            .iter()
            .filter(|p| p.dir > 0)
            .map(|p| p.height)
            .sum();
        let down: f64 = out
            .placements
            .iter()
            .filter(|p| p.dir < 0)
            .map(|p| p.height)
            .sum();
        assert!(up >= 8.0, "up side underused: {:?}", out.placements);
        assert!(up > down, "wrong side favoured: {:?}", out.placements);
    }

    #[test]
    fn position_dependent_heights() {
        // Left half blocked.
        let out = run(30, 4, 2, &|lo, _, _| if lo < 15 { 0.0 } else { 6.0 });
        assert!(!out.placements.is_empty());
        assert!(out.placements.iter().all(|p| p.lo >= 15));
    }

    #[test]
    fn restoration_matches_value() {
        let out = run(40, 6, 2, &|_, _, _| 3.5);
        let sum: f64 = out.placements.iter().map(|p| p.height).sum();
        assert!((sum - out.total_height).abs() < 1e-9);
    }

    #[test]
    fn wider_patterns_taken_when_taller() {
        // Wide patterns get disproportionate height (routing around).
        let out = run(30, 4, 2, &|lo, hi, _| {
            if hi - lo >= 10 {
                20.0
            } else {
                2.0
            }
        });
        assert!(out.placements.iter().any(|p| p.hi - p.lo >= 10));
    }

    /// Deterministic pseudo-random height field with per-position structure
    /// (so profile bounds have something to bite on).
    fn rand_heights(seed: u64, m: usize) -> (Vec<f64>, Vec<f64>) {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let up: Vec<f64> = (0..=m).map(|_| next() * 12.0).collect();
        let dn: Vec<f64> = (0..=m).map(|_| next() * 12.0).collect();
        (up, dn)
    }

    /// A position-dependent closure: the height of `(lo, hi, dir)` is the
    /// min of the per-position field over the window (zeroed when small).
    fn field_height<'a>(up: &'a [f64], dn: &'a [f64]) -> impl Fn(usize, usize, i8) -> f64 + 'a {
        move |lo, hi, dir| {
            let f = if dir > 0 { up } else { dn };
            let h = f[lo..=hi].iter().fold(f64::INFINITY, |a, &b| a.min(b));
            if h < 1.5 {
                0.0
            } else {
                h
            }
        }
    }

    #[test]
    fn profile_bounds_do_not_change_output() {
        let config = ExtendConfig::default();
        for seed in 0..40u64 {
            let m = 20 + (seed as usize * 7) % 60;
            let (up, dn) = rand_heights(seed, m);
            let height = field_height(&up, &dn);
            let reference = extend_segment_dp(&input(m, 4, 2, &height, &config));

            // Per-position caps: sound by construction (field min over the
            // window is ≤ the field value at each foot).
            let profile = UbProfile {
                cap: 12.0,
                left: [dn.clone(), up.clone()],
                right: [dn.clone(), up.clone()],
            };
            let mut bounded = input(m, 4, 2, &height, &config);
            bounded.bounds = HeightBounds::Profile(&profile);
            let pruned = extend_segment_dp(&bounded);

            assert_eq!(
                reference.placements, pruned.placements,
                "seed {seed}: profile pruning changed the optimum"
            );
            assert_eq!(reference.total_height, pruned.total_height);
        }
    }

    #[test]
    fn pruning_skips_queries_but_counts_requests() {
        let config = ExtendConfig::default();
        let m = 60;
        let (up, dn) = rand_heights(7, m);
        let height = field_height(&up, &dn);
        let profile = UbProfile {
            cap: 12.0,
            left: [dn.clone(), up.clone()],
            right: [dn.clone(), up.clone()],
        };
        let mut bounded = input(m, 4, 2, &height, &config);
        bounded.bounds = HeightBounds::Profile(&profile);
        let mut session = DpSession::new(&bounded, false);
        let _ = session.solve(&bounded);
        let s = *session.stats();
        assert_eq!(s.hq_requested, s.hq_pruned + s.hq_executed + s.hq_memo_hits);
        assert!(s.hq_pruned > 0, "profile should prune something: {s:?}");
        assert!(s.skip_rate() > 0.0);
        assert_eq!(s.solves, 1);
        assert_eq!(s.points_evaluated, m as u64);
    }

    #[test]
    fn session_resolve_reuses_prefix_and_memo() {
        let config = ExtendConfig::default();
        let m = 80;
        let (up, dn) = rand_heights(3, m);
        let heights = std::cell::RefCell::new((up, dn));
        let calls = std::cell::Cell::new(0u64);
        let height = |lo: usize, hi: usize, dir: i8| -> f64 {
            calls.set(calls.get() + 1);
            let fields = heights.borrow();
            let f = if dir > 0 { &fields.0 } else { &fields.1 };
            let h = f[lo..=hi].iter().fold(f64::INFINITY, |a, &b| a.min(b));
            if h < 1.5 {
                0.0
            } else {
                h
            }
        };
        let inp = input(m, 4, 2, &height, &config);
        let mut session = DpSession::new(&inp, true);
        let first = session.solve(&inp);
        let full_points = session.stats().points_evaluated;

        // Mutate the field in a window; only overlapping pattern windows
        // change.
        let (a, b) = (50usize, 60usize);
        {
            let mut fields = heights.borrow_mut();
            for x in a..=b {
                fields.0[x] = 0.0;
                fields.1[x] = 9.0;
            }
        }
        session.invalidate_window(a, b);
        let resolved = session.solve(&inp);
        let scratch = extend_segment_dp(&inp);
        assert_eq!(
            resolved.placements, scratch.placements,
            "resolve after windowed invalidation diverged from scratch"
        );
        assert_eq!(resolved.total_height, scratch.total_height);
        assert_ne!(
            first.placements, resolved.placements,
            "mutation should actually change the optimum in this fixture"
        );
        // Prefix reuse: the resolve evaluated only rows ≥ a.
        let s = session.stats();
        assert_eq!(s.solves, 2);
        assert_eq!(
            s.points_evaluated - full_points,
            (m - a + 1) as u64,
            "resolve must restart at the invalidation window"
        );
        assert!(s.hq_memo_hits > 0, "unchanged suffix probes must hit memo");
    }

    #[test]
    fn session_full_invalidation_matches_scratch() {
        let config = ExtendConfig::default();
        let m = 40;
        let (up, dn) = rand_heights(11, m);
        let height = field_height(&up, &dn);
        let inp = input(m, 3, 2, &height, &config);
        let mut session = DpSession::new(&inp, true);
        let a = session.solve(&inp);
        session.invalidate_window(0, m);
        let b = session.solve(&inp);
        assert_eq!(a.placements, b.placements);
        assert_eq!(a.total_height, b.total_height);
    }
}
