//! The segment-extension dynamic program (paper Sec. IV-A/C, Alg. 1
//! lines 4–17).
//!
//! The segment is discretized into points `0..=m` at step `l_disc`;
//! `dp[i][dir]` holds the best height-sum achievable with patterns whose
//! feet lie among the first `i` points, the last pattern opening toward
//! side `dir`. Valid predecessors follow Eq. 8:
//!
//! * `p_gap` — same side, previous pattern at least `d_gap` back,
//! * `p_protect` — opposite side, at least `d_protect` back,
//! * `p_local` — opposite side, *connected* (shared foot; Fig. 3c), only
//!   when the predecessor state really ends in a pattern foot there (the
//!   "extra condition" of Fig. 4), or foot at a segment node (Fig. 3d).
//!
//! Ties keep pattern-ending states, preferring connected ones, because a
//! connected pair frees foot capacity for future patterns (Fig. 5).
//! `transit[i][dir]` records `⟨i′, dir′, w′⟩` (Eq. 14) plus the chosen
//! height for O(n) restoration.

use crate::config::ExtendConfig;

/// Direction index: 0 ⇒ −1 (clockwise / below), 1 ⇒ +1 (ccw / above).
pub type DirIx = usize;

/// Converts a direction index to the geometric sign.
#[inline]
pub fn dir_sign(d: DirIx) -> i8 {
    if d == 0 {
        -1
    } else {
        1
    }
}

/// One restored pattern placement on the discretized segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Left-foot point index.
    pub lo: usize,
    /// Right-foot point index.
    pub hi: usize,
    /// Side: +1 above the segment, −1 below.
    pub dir: i8,
    /// Pattern height.
    pub height: f64,
}

/// The `transit[i][dir]` record (paper Eq. 14 plus the height).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Transit {
    from_i: usize,
    from_d: DirIx,
    /// Pattern width in steps; 0 marks a propagation step (no new
    /// pattern) — also the flag for the `p_local` extra condition.
    w: usize,
    h: f64,
}

/// DP inputs describing one discretized segment.
pub struct DpInput<'a> {
    /// Number of discretization intervals (`m + 1` points, `0..=m`).
    pub m: usize,
    /// Discretization step.
    pub ldisc: f64,
    /// `d_gap` in steps (same-side spacing).
    pub gap_steps: usize,
    /// `d_protect` in steps (opposite-side spacing and end stubs).
    pub protect_steps: usize,
    /// Minimum pattern width in steps (hat must be ≥ `d_protect`).
    pub min_width_steps: usize,
    /// Maximum pattern width in steps.
    pub max_width_steps: usize,
    /// Maximum height closure: `height(lo, hi, dir)` returns the tallest
    /// legal pattern with feet at points `lo`/`hi` on side `dir`, or 0.
    pub height: &'a dyn Fn(usize, usize, i8) -> f64,
    /// Upper bound the height closure can never exceed
    /// (`f64::INFINITY` when unknown). Purely an optimization: candidate
    /// transitions that cannot beat the incumbent state even at this cap
    /// skip the (expensive) height query without changing the optimum or
    /// the tie-breaking.
    pub height_cap: f64,
    /// Engine configuration (tie-breaking priority).
    pub config: &'a ExtendConfig,
}

/// Output: chosen placements (left to right) and the total height gained.
#[derive(Debug, Clone, Default)]
pub struct DpOutcome {
    /// Patterns of the optimal solution, ordered by foot position.
    pub placements: Vec<Placement>,
    /// Sum of pattern heights (`dp[n][dir_max]`); the trace gains twice
    /// this in length.
    pub total_height: f64,
}

/// Runs the DP over one segment and restores the best pattern set.
pub fn extend_segment_dp(input: &DpInput<'_>) -> DpOutcome {
    let m = input.m;
    if m == 0 {
        return DpOutcome::default();
    }
    let n_pts = m + 1;
    // dp[i][d], rank[i][d]: value and tie-break rank (2 connected pattern,
    // 1 pattern, 0 propagated).
    let mut dp = vec![[0.0f64; 2]; n_pts];
    let mut rank = vec![[0u8; 2]; n_pts];
    let mut transit = vec![
        [Transit {
            from_i: 0,
            from_d: 0,
            w: 0,
            h: 0.0
        }; 2];
        n_pts
    ];

    for i in 1..n_pts {
        for d in 0..2usize {
            // Propagation (Eq. 6).
            dp[i][d] = dp[i - 1][d];
            rank[i][d] = 0;
            transit[i][d] = Transit {
                from_i: i - 1,
                from_d: d,
                w: 0,
                h: 0.0,
            };

            // Right-foot legality: at the far node or ≥ d_protect from it.
            let tail_ok = i == m || (m - i) >= input.protect_steps;
            if !tail_ok {
                continue;
            }

            let w_hi = input.max_width_steps.min(i);
            for w in input.min_width_steps..=w_hi {
                let j = i - w; // left foot
                               // Head-stub legality: whatever the transition, the piece of
                               // original segment left of the foot is at least the stub to
                               // the segment start; it must be ≥ d_protect or empty.
                if j != 0 && j < input.protect_steps {
                    continue;
                }
                // Candidate predecessors per Eq. 8.
                let mut candidates: [(Option<(usize, DirIx)>, bool); 3] =
                    [(None, false), (None, false), (None, false)];
                // p_gap: same side.
                if j >= input.gap_steps {
                    candidates[0] = (Some((j - input.gap_steps, d)), false);
                }
                // p_protect: opposite side.
                let od = 1 - d;
                if j >= input.protect_steps {
                    candidates[1] = (Some((j - input.protect_steps, od)), false);
                }
                // p_local: connected to a pattern foot (extra condition) or
                // a segment node (j == 0).
                if j == 0 {
                    candidates[2] = (Some((0, od)), true);
                } else {
                    let t = transit[j][od];
                    if t.w != 0 {
                        // The opposite-side state really ends with a foot
                        // at j.
                        candidates[2] = (Some((j, od)), true);
                    }
                }

                let mut best: Option<(f64, usize, DirIx, bool)> = None;
                for (cand, connected) in candidates {
                    if let Some((pi, pd)) = cand {
                        let v = dp[pi][pd];
                        let better = match best {
                            None => true,
                            Some((bv, _, _, bconn)) => {
                                v > bv + 1e-12
                                    || ((v - bv).abs() <= 1e-12
                                        && input.config.connect_priority
                                        && connected
                                        && !bconn)
                            }
                        };
                        if better {
                            best = Some((v, pi, pd, connected));
                        }
                    }
                }
                let Some((base, pi, pd, connected)) = best else {
                    continue;
                };

                // Even a cap-height pattern cannot beat (or tie) the
                // incumbent: skip the height query.
                if base + input.height_cap < dp[i][d] - 1e-12 {
                    continue;
                }

                let h = (input.height)(j, i, dir_sign(d));
                if h <= 0.0 {
                    continue;
                }
                let value = base + h;
                let new_rank = if connected { 2 } else { 1 };
                let take = value > dp[i][d] + 1e-12
                    || ((value - dp[i][d]).abs() <= 1e-12
                        && input.config.connect_priority
                        && new_rank > rank[i][d]);
                if take {
                    dp[i][d] = value;
                    rank[i][d] = new_rank;
                    transit[i][d] = Transit {
                        from_i: pi,
                        from_d: pd,
                        w,
                        h,
                    };
                }
            }
        }
    }

    // Pick the best terminal state and backtrack (Sec. IV-C).
    let (mut i, mut d) = if dp[m][0] >= dp[m][1] { (m, 0) } else { (m, 1) };
    let total = dp[i][d];
    let mut placements = Vec::new();
    while i > 0 {
        let t = transit[i][d];
        if t.w != 0 {
            placements.push(Placement {
                lo: i - t.w,
                hi: i,
                dir: dir_sign(d),
                height: t.h,
            });
        }
        // Guard against malformed transit chains.
        debug_assert!(t.from_i < i || (t.from_i == i && t.from_d != d));
        if t.from_i == i && t.from_d == d {
            break;
        }
        i = t.from_i;
        d = t.from_d;
    }
    placements.reverse();
    DpOutcome {
        placements,
        total_height: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(
        m: usize,
        gap_steps: usize,
        protect_steps: usize,
        height: &dyn Fn(usize, usize, i8) -> f64,
    ) -> DpOutcome {
        let config = ExtendConfig::default();
        extend_segment_dp(&DpInput {
            m,
            ldisc: 1.0,
            gap_steps,
            protect_steps,
            min_width_steps: gap_steps.max(1),
            max_width_steps: 64,
            height,
            height_cap: f64::INFINITY,
            config: &config,
        })
    }

    #[test]
    fn empty_segment_no_patterns() {
        let out = run(0, 2, 2, &|_, _, _| 10.0);
        assert!(out.placements.is_empty());
        assert_eq!(out.total_height, 0.0);
    }

    #[test]
    fn single_pattern_when_space_allows_one() {
        // m = 8, protect 2, gap 4: uniform height 5.
        let out = run(8, 4, 2, &|_, _, _| 5.0);
        assert!(out.total_height >= 5.0);
        for p in &out.placements {
            assert!(p.hi - p.lo >= 4, "width ≥ gap steps");
            assert!(p.height == 5.0);
        }
        // Feet respect end stubs: lo == 0 or lo ≥ protect, hi == m or
        // m − hi ≥ protect.
        for p in &out.placements {
            assert!(p.lo == 0 || p.lo >= 2);
            assert!(p.hi == 8 || 8 - p.hi >= 2);
        }
    }

    #[test]
    fn same_side_patterns_respect_gap() {
        let out = run(40, 6, 2, &|_, _, _| 3.0);
        let mut by_side: [Vec<&Placement>; 2] = [vec![], vec![]];
        for p in &out.placements {
            by_side[usize::from(p.dir > 0)].push(p);
        }
        for side in &by_side {
            for w in side.windows(2) {
                assert!(
                    w[1].lo >= w[0].hi + 6,
                    "same-side feet too close: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn opposite_sides_interleave_with_protect() {
        let out = run(40, 10, 2, &|_, _, _| 3.0);
        // With a huge same-side gap, alternation wins: patterns alternate
        // sides separated by protect.
        assert!(out.placements.len() >= 3, "{:?}", out.placements);
        for w in out.placements.windows(2) {
            if w[0].dir != w[1].dir {
                assert!(w[1].lo >= w[0].hi + 2 || w[1].lo == w[0].hi);
            }
        }
    }

    #[test]
    fn connected_patterns_share_feet() {
        // m = 12, gap 6, protect 3: widths capped at 6 by the height
        // closure, so two patterns only fit sharing a foot at 6 (p_local,
        // Fig. 3c) — neither same-side gap (needs foot 18) nor
        // opposite-side protect (needs foot 15) fits.
        let out = run(12, 6, 3, &|lo, hi, _| {
            if hi - lo <= 6 {
                4.0
            } else {
                0.0
            }
        });
        assert!(out.total_height >= 8.0, "{out:?}");
        let shared = out
            .placements
            .windows(2)
            .any(|w| w[1].lo == w[0].hi && w[1].dir != w[0].dir);
        assert!(shared, "expected a connected pair: {:?}", out.placements);
    }

    #[test]
    fn height_zero_blocks_patterns() {
        let out = run(20, 2, 2, &|_, _, _| 0.0);
        assert!(out.placements.is_empty());
        assert_eq!(out.total_height, 0.0);
    }

    #[test]
    fn side_dependent_heights_pick_better_side() {
        let out = run(10, 4, 2, &|_, _, d| if d > 0 { 8.0 } else { 1.0 });
        assert!(!out.placements.is_empty());
        // The bulk of the gain must come from the tall (+1) side; low-value
        // −1 fillers may legitimately appear in between.
        let up: f64 = out
            .placements
            .iter()
            .filter(|p| p.dir > 0)
            .map(|p| p.height)
            .sum();
        let down: f64 = out
            .placements
            .iter()
            .filter(|p| p.dir < 0)
            .map(|p| p.height)
            .sum();
        assert!(up >= 8.0, "up side underused: {:?}", out.placements);
        assert!(up > down, "wrong side favoured: {:?}", out.placements);
    }

    #[test]
    fn position_dependent_heights() {
        // Left half blocked.
        let out = run(30, 4, 2, &|lo, _, _| if lo < 15 { 0.0 } else { 6.0 });
        assert!(!out.placements.is_empty());
        assert!(out.placements.iter().all(|p| p.lo >= 15));
    }

    #[test]
    fn restoration_matches_value() {
        let out = run(40, 6, 2, &|_, _, _| 3.5);
        let sum: f64 = out.placements.iter().map(|p| p.height).sum();
        assert!((sum - out.total_height).abs() < 1e-9);
    }

    #[test]
    fn wider_patterns_taken_when_taller() {
        // Wide patterns get disproportionate height (routing around).
        let out = run(30, 4, 2, &|lo, hi, _| {
            if hi - lo >= 10 {
                20.0
            } else {
                2.0
            }
        });
        assert!(out.placements.iter().any(|p| p.hi - p.lo >= 10));
    }
}
