//! # meander-core
//!
//! The paper's primary contribution: obstacle-aware, DP-based segment
//! extension for any-direction length-matching (Sec. IV), plus the trace-
//! and group-level drivers and the two comparison baselines.
//!
//! ## How a trace gets longer
//!
//! A work queue holds the trace's segments (Alg. 1). Each popped segment is
//! mapped into a local frame where it runs along +x ([`meander_geom::Frame`]
//! — this is what makes the router any-direction), discretized at step
//! `l_disc`, and extended by a dynamic program over states `dp[i][dir]`
//! (best height-sum with patterns among the first `i` points, last pattern
//! on side `dir`). Candidate patterns get their maximum legal height from
//! the URA shrinking procedure ([`shrink`], Alg. 2) which checks the
//! routable-area border, obstacles, and the URAs of the trace's *other*
//! segments — and legally routes *around* obstacles when the space allows
//! (the capability Table II's ablation measures). Chosen patterns are
//! restored by backtracking ([`dp`]), spliced into the trace
//! ([`pattern`]), and the new segments re-enter the queue, enabling
//! meander-on-meander (paper Fig. 5).
//!
//! ## Entry points
//!
//! * [`extend::extend_trace`] — one trace to one target length,
//! * [`driver::match_board_group`] — a whole matching group, routing
//!   differential pairs through MSDTW automatically,
//! * [`baseline`] — the "without DP" fixed-track ablation comparator
//!   (Table II) and the AiDT-like greedy tuner (Table I).
//!
//! ## Spatial indexing
//!
//! The engine's hot queries (world polygons near a candidate window,
//! edges near a stage-1 side, the DP profile band) run behind the
//! [`meander_index::SpatialIndex`] contract; [`ExtendConfig::index`]
//! selects the uniform grid, the STR-packed R-tree, or `Auto`
//! (per-build choice by obstacle-size variance). The two structures
//! return identical candidate sets — cell-quantized candidacy with
//! occupied-bounds clamping, ascending deduplicated output — so router
//! placements are **bit-identical** whichever is selected
//! (property-tested); see `ARCHITECTURE.md` for the full invariant list.
//!
//! ```
//! use meander_core::extend::{extend_trace, ExtendInput};
//! use meander_core::{ExtendConfig, IndexKind};
//! use meander_drc::DesignRules;
//! use meander_geom::{Point, Polygon, Polyline};
//!
//! // A small board: one trace in a corridor with one via obstacle.
//! let trace = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(150.0, 0.0)]);
//! let area = vec![Polygon::rectangle(Point::new(-20.0, -50.0), Point::new(170.0, 50.0))];
//! let obstacles = vec![Polygon::regular(Point::new(75.0, 20.0), 4.0, 8, 0.0)];
//! let input = ExtendInput {
//!     trace: &trace,
//!     target: 200.0,
//!     rules: &DesignRules::default(),
//!     area: &area,
//!     obstacles: &obstacles,
//! };
//! let run = |index| {
//!     extend_trace(&input, &ExtendConfig { index, parallel: false, ..Default::default() })
//! };
//! let grid = run(IndexKind::Grid);
//! let rtree = run(IndexKind::RTree);
//! assert!((grid.achieved - 200.0).abs() <= 0.2);
//! // Identical candidate sets ⇒ bit-identical meander.
//! assert_eq!(grid.trace.points(), rtree.trace.points());
//! ```

pub mod baseline;
pub mod config;
pub mod context;
pub mod dp;
pub mod driver;
pub mod extend;
pub mod par;
pub mod pattern;
pub mod shrink;
pub mod tracebuf;

pub use config::{EngineFallback, ExtendConfig};
pub use context::WorldBase;
pub use dp::{DpSession, DpStats, HeightBounds, UbProfile};
pub use driver::{
    apply_outputs, gather_obstacles, match_all_groups, match_all_groups_shared, match_board_group,
    match_board_group_shared, miter_group, plan_board_units, plan_unit_packets, plan_units,
    run_unit, run_unit_shared, run_unit_shared_recorded, GroupReport, PlannedUnit, TraceReport,
    UnitInput, UnitOutput,
};
pub use extend::{extend_trace, extend_trace_shared, extend_trace_shared_recorded, ExtendOutcome};
pub use meander_drc::DesignRules;
pub use meander_index::{CellTouches, DirtyCells, IndexKind, StratumKey};
