//! # meander-core
//!
//! The paper's primary contribution: obstacle-aware, DP-based segment
//! extension for any-direction length-matching (Sec. IV), plus the trace-
//! and group-level drivers and the two comparison baselines.
//!
//! ## How a trace gets longer
//!
//! A work queue holds the trace's segments (Alg. 1). Each popped segment is
//! mapped into a local frame where it runs along +x ([`meander_geom::Frame`]
//! — this is what makes the router any-direction), discretized at step
//! `l_disc`, and extended by a dynamic program over states `dp[i][dir]`
//! (best height-sum with patterns among the first `i` points, last pattern
//! on side `dir`). Candidate patterns get their maximum legal height from
//! the URA shrinking procedure ([`shrink`], Alg. 2) which checks the
//! routable-area border, obstacles, and the URAs of the trace's *other*
//! segments — and legally routes *around* obstacles when the space allows
//! (the capability Table II's ablation measures). Chosen patterns are
//! restored by backtracking ([`dp`]), spliced into the trace
//! ([`pattern`]), and the new segments re-enter the queue, enabling
//! meander-on-meander (paper Fig. 5).
//!
//! ## Entry points
//!
//! * [`extend::extend_trace`] — one trace to one target length,
//! * [`driver::match_board_group`] — a whole matching group, routing
//!   differential pairs through MSDTW automatically,
//! * [`baseline`] — the "without DP" fixed-track ablation comparator
//!   (Table II) and the AiDT-like greedy tuner (Table I).

pub mod baseline;
pub mod config;
pub mod context;
pub mod dp;
pub mod driver;
pub mod extend;
pub mod par;
pub mod pattern;
pub mod shrink;
pub mod tracebuf;

pub use config::ExtendConfig;
pub use dp::{DpSession, DpStats, HeightBounds, UbProfile};
pub use driver::{match_all_groups, match_board_group, miter_group, GroupReport, TraceReport};
pub use extend::{extend_trace, ExtendOutcome};
