//! URA shrinking: the maximum legal height of a candidate pattern
//! (paper Sec. IV-B, Alg. 2, Figs. 6–8).
//!
//! Validity of a pattern height is **not monotone** — a shrunk pattern can
//! newly intersect an obstacle it used to enclose — so binary search is
//! impossible. Instead the pattern "C is created with the height equal to
//! the remaining extension requirement and then shrunk until all violations
//! of DRC are eliminated", in three stages:
//!
//! 1. **Sides** (Eq. 11): intersections of the outer border's two vertical
//!    sides with polygon edges cap `h_ob`.
//! 2. **Hat** (Alg. 2, Fig. 7): polygons with nodes both inside and outside
//!    the border push `h_ob` below their lowest inside node; iterated
//!    because the shrunk border can cut new polygons.
//! 3. **Inner border** (Fig. 8): polygons wholly inside the outer border
//!    must not touch the URA band between inner and outer border —
//!    otherwise `h_ob` drops below the whole polygon. Polygons fully inside
//!    the *inner* border are legally enclosed: the pattern routes around
//!    them.
//!
//! ## The upper-bound profile
//!
//! The segment DP probes `O(m·w)` candidate patterns against this
//! procedure. [`build_ub_profile`] precomputes, once per segment and side,
//! the **stage-1 cap for every discretized foot position**: the lowest
//! crossing of the vertical outer-border side at that position with any
//! context edge, evaluated with the *same* `segment_intersection` calls and
//! the *same* start height stage 1 would use. Because stages 2–3 only ever
//! lower `h_ob`, the resulting per-position value is a sound upper bound on
//! any [`max_pattern_height_scratch`] result with a foot there — the DP can
//! skip a probe whose capped value cannot matter, and the output stays
//! bit-identical to the unpruned pass. Caps below `h_min` are floored to 0
//! (the probe would return "no pattern" anyway).

use crate::context::{ShrinkContext, Y_EPS};
use crate::dp::UbProfile;
use meander_geom::batch::{
    intersect_x_range_batch, vertical_side_min_cap, BatchStats, SegBatch, PREFILTER_SLACK,
    SHORT_SEG_LEN,
};
use meander_geom::{segment_intersection, Point, Rect, Segment, SegmentIntersection, EPS};
use meander_index::{GridScratch, SpatialIndex};

/// Result of shrinking one candidate pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShrinkResult {
    /// Maximum legal pattern height `h = max(0, h_ob − d_gap/2)` (Eq. 10),
    /// zero when no pattern fits.
    pub height: f64,
    /// `true` when at least one polygon is fully enclosed by the inner
    /// border — the pattern routes around an obstacle (the DP-only
    /// capability of Table II).
    pub routes_around: bool,
}

/// Reusable state for the shrinking hot loop.
///
/// The DP probes thousands of candidate patterns per segment, each probe a
/// [`max_pattern_height`] call; with a scratch the per-call cost is pure
/// query work — no `BTreeMap`/`Vec` churn. One scratch serves any number of
/// contexts and calls.
#[derive(Debug, Default)]
pub struct ShrinkScratch {
    grid: GridScratch,
    edge_ids: Vec<u32>,
    /// Per-polygon: nodes seen inside the outer border this pass.
    cnt: Vec<u32>,
    /// Per-polygon: min distance of those nodes to the segment.
    min_d: Vec<f64>,
    /// Per-polygon: any node outside the inner border.
    out_inner: Vec<bool>,
    /// Per-polygon: pushed below the border in an earlier pass.
    removed: Vec<bool>,
    /// Polygons with `cnt > 0` this pass.
    touched: Vec<u32>,
    /// SoA candidate buffer for the batched stage-1 / profile kernels.
    seg_batch: SegBatch,
    /// Foot-position x values of the current profile sweep.
    xs: Vec<f64>,
    /// Grid column of each sweep position (precomputed once per sweep so
    /// the per-edge span search is pure integer compares).
    colx: Vec<i64>,
    /// Per-position `h_ob` caps of the current profile sweep.
    caps: Vec<f64>,
    /// Batched-kernel work counters, accumulated across calls (the engine
    /// folds them into its `DpStats` at the end of a run).
    pub batch: BatchStats,
}

impl ShrinkScratch {
    /// Fresh scratch (buffers grow on demand).
    pub fn new() -> Self {
        ShrinkScratch::default()
    }
}

/// Computes the maximum valid height of a pattern with feet at local
/// `x0 < x1`, searching downward from `h_init`.
///
/// `gap` is the `d_gap` in force; `h_min` is the minimum useful height
/// (pattern legs shorter than `d_protect` would themselves violate DRC).
/// Heights are measured from the extended segment (`y = 0` in pattern-side
/// coordinates).
pub fn max_pattern_height(
    ctx: &ShrinkContext,
    x0: f64,
    x1: f64,
    gap: f64,
    h_init: f64,
    h_min: f64,
) -> ShrinkResult {
    let mut scratch = ShrinkScratch::new();
    max_pattern_height_scratch(ctx, x0, x1, gap, h_init, h_min, &mut scratch)
}

/// [`max_pattern_height`] with a caller-owned [`ShrinkScratch`] — the
/// allocation-free variant for hot loops.
pub fn max_pattern_height_scratch(
    ctx: &ShrinkContext,
    x0: f64,
    x1: f64,
    gap: f64,
    h_init: f64,
    h_min: f64,
    scratch: &mut ShrinkScratch,
) -> ShrinkResult {
    max_pattern_height_impl(ctx, x0, x1, gap, h_init, h_min, true, false, scratch)
}

/// [`max_pattern_height_scratch`] with stage 1 running on the SoA batch
/// kernels: the side-intersection candidates are materialized into the
/// scratch's [`SegBatch`] straight from the context grid and both sides
/// evaluate lane-parallel ([`vertical_side_min_cap`]). Bit-identical
/// results — the batched kernel reproduces the scalar float stream per
/// lane (see `meander_geom::batch`); stages 2–3 are untouched.
pub fn max_pattern_height_batched(
    ctx: &ShrinkContext,
    x0: f64,
    x1: f64,
    gap: f64,
    h_init: f64,
    h_min: f64,
    scratch: &mut ShrinkScratch,
) -> ShrinkResult {
    max_pattern_height_impl(ctx, x0, x1, gap, h_init, h_min, true, true, scratch)
}

/// [`max_pattern_height`] with obstacle enclosure switchable.
///
/// `allow_enclose = false` treats every polygon inside the outer border as
/// an escape (shrink below it) — the "fixed tracks" baselines of Table II
/// cannot route around obstacles, and this is the knob that models it.
pub fn max_pattern_height_opts(
    ctx: &ShrinkContext,
    x0: f64,
    x1: f64,
    gap: f64,
    h_init: f64,
    h_min: f64,
    allow_enclose: bool,
) -> ShrinkResult {
    let mut scratch = ShrinkScratch::new();
    max_pattern_height_opts_scratch(ctx, x0, x1, gap, h_init, h_min, allow_enclose, &mut scratch)
}

/// [`max_pattern_height_opts`] with a caller-owned scratch.
#[allow(clippy::too_many_arguments)]
pub fn max_pattern_height_opts_scratch(
    ctx: &ShrinkContext,
    x0: f64,
    x1: f64,
    gap: f64,
    h_init: f64,
    h_min: f64,
    allow_enclose: bool,
    scratch: &mut ShrinkScratch,
) -> ShrinkResult {
    max_pattern_height_impl(
        ctx,
        x0,
        x1,
        gap,
        h_init,
        h_min,
        allow_enclose,
        false,
        scratch,
    )
}

#[allow(clippy::too_many_arguments)]
fn max_pattern_height_impl(
    ctx: &ShrinkContext,
    x0: f64,
    x1: f64,
    gap: f64,
    h_init: f64,
    h_min: f64,
    allow_enclose: bool,
    batched: bool,
    scratch: &mut ShrinkScratch,
) -> ShrinkResult {
    debug_assert!(x0 < x1, "feet must be ordered");
    let none = ShrinkResult {
        height: 0.0,
        routes_around: false,
    };
    if h_init < h_min {
        return none;
    }

    let g2 = gap / 2.0;
    let left = x0 - g2;
    let right = x1 + g2;
    let mut hob = h_init + g2;

    // ---- Stage 1: sides (Eq. 11). -------------------------------------
    if batched {
        // Two thin column gathers instead of the scalar path's full
        // pattern-wide query: a side's contributions can only come from
        // edges the grid registers in that side's column. Extending each
        // column by EPS toward the pattern interior makes the cell-based
        // candidate membership agree with the wide query *exactly*, even
        // for tolerance-positive near-misses straddling a cell boundary
        // (any non-`None` intersection implies a point within EPS of the
        // side, so the edge's cells overlap `[x, x ± EPS]`'s cells iff
        // they overlap the wide rect's); `min` over each column's
        // candidates is then bit-identical to the scalar loop's.
        let hob0 = hob;
        let seg_len = ctx.local_segment.b.x;
        for (x, col) in [
            (
                left,
                Rect::new(Point::new(left, Y_EPS), Point::new(left + EPS, hob0)),
            ),
            (
                right,
                Rect::new(Point::new(right - EPS, Y_EPS), Point::new(right, hob0)),
            ),
        ] {
            ctx.grid.query_batch(
                &col,
                &mut scratch.grid,
                &mut scratch.edge_ids,
                &mut scratch.seg_batch,
            );
            scratch.batch.record(scratch.seg_batch.len());
            hob = hob.min(vertical_side_min_cap(
                x,
                Y_EPS,
                hob0,
                &scratch.seg_batch,
                seg_len,
            ));
        }
    } else {
        let probe_rect = Rect::new(Point::new(left, Y_EPS), Point::new(right, hob));
        let side_l = Segment::new(Point::new(left, Y_EPS), Point::new(left, hob));
        let side_r = Segment::new(Point::new(right, Y_EPS), Point::new(right, hob));
        ctx.grid
            .query_scratch(&probe_rect, &mut scratch.grid, &mut scratch.edge_ids);
        for &id in &scratch.edge_ids {
            let e = &ctx.edges[id as usize];
            for side in [&side_l, &side_r] {
                match segment_intersection(side, e) {
                    SegmentIntersection::None => {}
                    SegmentIntersection::Point(p) => {
                        hob = hob.min(ctx.dist_seg(p));
                    }
                    SegmentIntersection::Overlap(o) => {
                        hob = hob.min(ctx.dist_seg(o.a)).min(ctx.dist_seg(o.b));
                    }
                }
            }
        }
    }
    if hob <= g2 + 1e-12 {
        return none;
    }

    // ---- Stages 2 & 3 interleaved until stable. ------------------------
    // Removed polygons are those the border has been pushed below; they can
    // no longer constrain. Per-polygon stats accumulate in the scratch
    // during one tree visit per pass.
    let n = ctx.polygons.len();
    scratch.cnt.clear();
    scratch.cnt.resize(n, 0);
    scratch.min_d.resize(n, f64::INFINITY);
    scratch.out_inner.resize(n, false);
    scratch.removed.clear();
    scratch.removed.resize(n, false);
    scratch.touched.clear();

    loop {
        let outer = Rect::new(Point::new(left, Y_EPS / 2.0), Point::new(right, hob));
        // The inner border for this pass: stage 3 only runs when stage 2
        // left `hob` untouched, so computing it up front is equivalent to
        // the paper's post-stage-2 evaluation.
        let inner = Rect::new(
            Point::new(x0 + g2, g2),
            Point::new(x1 - g2, (hob - gap).max(g2)),
        );
        let degenerate_inner = inner.min.x >= inner.max.x || inner.min.y >= inner.max.y;

        let ShrinkScratch {
            cnt,
            min_d,
            out_inner,
            removed,
            touched,
            ..
        } = &mut *scratch;
        for &k in touched.iter() {
            cnt[k as usize] = 0;
        }
        touched.clear();
        ctx.tree.for_each_in(&outer, |p, &k| {
            let ku = k as usize;
            if removed[ku] {
                return;
            }
            if cnt[ku] == 0 {
                touched.push(k);
                min_d[ku] = f64::INFINITY;
                out_inner[ku] = false;
            }
            cnt[ku] += 1;
            let d = ctx.dist_seg(*p);
            if d < min_d[ku] {
                min_d[ku] = d;
            }
            if !inner.contains_strict(*p) {
                out_inner[ku] = true;
            }
        });
        let mut changed = false;

        // Stage 2: partially-inside polygons (Eq. 12).
        for &k in touched.iter() {
            let ku = k as usize;
            if (cnt[ku] as usize) < ctx.node_count[ku] {
                if min_d[ku] < hob {
                    hob = min_d[ku];
                    changed = true;
                }
                removed[ku] = true;
            }
        }
        if hob <= g2 + 1e-12 {
            return none;
        }
        if changed {
            continue;
        }

        // Stage 3: fully-inside polygons vs the inner border (Eq. 13).
        let mut any_enclosed = false;
        for &k in touched.iter() {
            let ku = k as usize;
            if removed[ku] {
                continue; // shrunk below during stage 2 of this pass
            }
            debug_assert_eq!(cnt[ku] as usize, ctx.node_count[ku]);
            // Area borders are containers: a pattern can never "enclose"
            // one, so a fully-swallowed area polygon always forces a
            // shrink.
            let escapes = !allow_enclose || ctx.is_area[ku] || degenerate_inner || out_inner[ku];
            if escapes {
                if min_d[ku] < hob {
                    hob = min_d[ku];
                    changed = true;
                }
                removed[ku] = true;
            } else {
                any_enclosed = true;
            }
        }
        if hob <= g2 + 1e-12 {
            return none;
        }
        if !changed {
            let height = (hob - g2).max(0.0);
            // Tolerant comparison: frame transforms and intersection
            // arithmetic cost a few ULPs, and heights exactly at h_min are
            // common (corridor half-width minus margins).
            if height < h_min - 1e-9 {
                return none;
            }
            // Final check: the pattern must stay within one routable-area
            // polygon (covers the all-outside corner cases).
            if !ctx.pattern_in_area(x0, x1, height) {
                return none;
            }
            return ShrinkResult {
                height,
                routes_around: any_enclosed,
            };
        }
    }
}

/// The stage-1 cap of one vertical outer-border side at local `x`: the
/// minimum `dist_seg` over its crossings with context edges, starting from
/// `hob0 = h_init + gap/2` — computed with exactly the intersection calls
/// stage 1 would make, so it bounds (from above, in `h_ob` terms) every
/// shrink result whose border has a side at `x`.
fn stage1_side_cap(
    ctx: &ShrinkContext,
    x: f64,
    hob0: f64,
    grid_scratch: &mut GridScratch,
    edge_ids: &mut Vec<u32>,
) -> f64 {
    let side = Segment::new(Point::new(x, Y_EPS), Point::new(x, hob0));
    let column = Rect::new(Point::new(x, Y_EPS), Point::new(x, hob0));
    ctx.grid.query_scratch(&column, grid_scratch, edge_ids);
    let mut cap = hob0;
    for &id in edge_ids.iter() {
        let e = &ctx.edges[id as usize];
        match segment_intersection(&side, e) {
            SegmentIntersection::None => {}
            SegmentIntersection::Point(p) => {
                cap = cap.min(ctx.dist_seg(p));
            }
            SegmentIntersection::Overlap(o) => {
                cap = cap.min(ctx.dist_seg(o.a)).min(ctx.dist_seg(o.b));
            }
        }
    }
    cap
}

/// Builds the per-position upper-bound profile for one segment's DP
/// (paper's discretization: feet at `0..=m`, step `ldisc`).
///
/// For every foot index and side the profile stores the stage-1 side cap in
/// *height* terms (`cap − gap/2`), clamped to `h_init` and floored to 0
/// when below `h_min` (such a probe returns "no pattern"). Direction
/// indexing follows [`crate::dp::DirIx`]: entry 0 is the `dn` context
/// (geometric −1), entry 1 is `up`.
///
/// Soundness: a pattern with feet `(j, i)` on side `d` has outer-border
/// sides at `j·ldisc − gap/2` and `i·ldisc + gap/2`, and
/// [`max_pattern_height_opts_scratch`] caps `h_ob` by every crossing of
/// those sides before stages 2–3 shrink it further; the profile evaluates
/// those same crossings, so `height(j, i, d) ≤ min(left[d][j],
/// right[d][i], h_init)` holds exactly (same floats, same primitives).
#[allow(clippy::too_many_arguments)]
pub fn build_ub_profile(
    ctx_up: &ShrinkContext,
    ctx_dn: &ShrinkContext,
    m: usize,
    ldisc: f64,
    gap: f64,
    h_init: f64,
    h_min: f64,
    scratch: &mut ShrinkScratch,
) -> UbProfile {
    let g2 = gap / 2.0;
    let hob0 = h_init + g2;
    let floor = |cap_hob: f64| -> f64 {
        let h = cap_hob - g2;
        if h < h_min - 1e-9 {
            0.0
        } else {
            h.min(h_init)
        }
    };
    let mut side = |ctx: &ShrinkContext, left_side: bool| -> Vec<f64> {
        (0..=m)
            .map(|p| {
                let x0 = p as f64 * ldisc;
                let x = if left_side { x0 - g2 } else { x0 + g2 };
                floor(stage1_side_cap(
                    ctx,
                    x,
                    hob0,
                    &mut scratch.grid,
                    &mut scratch.edge_ids,
                ))
            })
            .collect()
    };
    UbProfile {
        cap: h_init,
        left: [side(ctx_dn, true), side(ctx_up, true)],
        right: [side(ctx_dn, false), side(ctx_up, false)],
    }
}

/// [`build_ub_profile`] restructured around the SoA batch kernels: **one**
/// band query per sweep instead of `m + 1` column queries, then an
/// edge-outer loop handing each candidate edge the contiguous span of foot
/// positions whose grid column can see it, evaluated lane-parallel by
/// [`intersect_x_range_batch`].
///
/// Bit-identical to the scalar sweep:
///
/// * **Same candidate sets.** A column query at `x` returns exactly the
///   edges whose registered cell rectangle covers column `⌊x/cell⌋` (the
///   column rect shares the band's y cell range, and the occupied-bounds
///   clamp can only drop cells no edge occupies). The band query returns a
///   superset of every column's candidates, and the per-edge span test
///   `ecx0 ≤ ⌊x/cell⌋ ≤ ecx1` — computed with the grid's own quantization
///   ([`meander_index::SegmentGrid::cell_coord`]) — reproduces the exact
///   membership per position.
/// * **Same floats.** Each lane of the kernel replays the
///   `segment_intersection(side, edge)` + `dist_seg` float stream, and the
///   running `min` from `h_ob⁰` is order-independent.
#[allow(clippy::too_many_arguments)]
pub fn build_ub_profile_batched(
    ctx_up: &ShrinkContext,
    ctx_dn: &ShrinkContext,
    m: usize,
    ldisc: f64,
    gap: f64,
    h_init: f64,
    h_min: f64,
    scratch: &mut ShrinkScratch,
) -> UbProfile {
    let g2 = gap / 2.0;
    let hob0 = h_init + g2;
    let floor = |cap_hob: f64| -> f64 {
        let h = cap_hob - g2;
        if h < h_min - 1e-9 {
            0.0
        } else {
            h.min(h_init)
        }
    };
    // Edges whose x-extent (inflated by the prefilter slack) misses a
    // column provably contribute nothing there — any non-`None`
    // intersection outcome implies a point within ~EPS of the vertical
    // side — so each edge's lane span is its *geometric* x-extent clipped
    // to its grid-cell span (the cell span alone preserves the scalar
    // candidate sets; the clip only drops no-op lanes). The collinearity
    // tolerance scales as `EPS / side height`, so the clip is only applied
    // when the side is at least `SHORT_SEG_LEN` tall.
    let tight = hob0 - Y_EPS >= SHORT_SEG_LEN;
    let mut side = |ctx: &ShrinkContext, left_side: bool| -> Vec<f64> {
        let seg_len = ctx.local_segment.b.x;
        let ShrinkScratch {
            grid,
            edge_ids,
            xs,
            colx,
            caps,
            batch,
            ..
        } = &mut *scratch;
        xs.clear();
        xs.extend((0..=m).map(|p| {
            let x0 = p as f64 * ldisc;
            if left_side {
                x0 - g2
            } else {
                x0 + g2
            }
        }));
        colx.clear();
        colx.extend(xs.iter().map(|&x| ctx.grid.cell_coord(x)));
        caps.clear();
        caps.resize(m + 1, hob0);
        let band = Rect::new(Point::new(xs[0], Y_EPS), Point::new(xs[m], hob0));
        ctx.grid.query_scratch(&band, grid, edge_ids);
        for &id in edge_ids.iter() {
            let e = &ctx.edges[id as usize];
            let (exlo, exhi) = (e.a.x.min(e.b.x), e.a.x.max(e.b.x));
            // `xs` (hence `colx`) ascends: both spans are contiguous.
            let ecx0 = ctx.grid.cell_coord(exlo);
            let ecx1 = ctx.grid.cell_coord(exhi);
            let mut lo = colx.partition_point(|&c| c < ecx0);
            let mut hi = colx.partition_point(|&c| c <= ecx1);
            if tight {
                lo = lo.max(xs.partition_point(|&x| x < exlo - PREFILTER_SLACK));
                hi = hi.min(xs.partition_point(|&x| x <= exhi + PREFILTER_SLACK));
            }
            if lo < hi {
                batch.record(hi - lo);
                intersect_x_range_batch(&xs[lo..hi], Y_EPS, hob0, e, seg_len, &mut caps[lo..hi]);
            }
        }
        caps.iter().map(|&c| floor(c)).collect()
    };
    UbProfile {
        cap: h_init,
        left: [side(ctx_dn, true), side(ctx_up, true)],
        right: [side(ctx_dn, false), side(ctx_up, false)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::WorldContext;
    use meander_geom::{Frame, Polygon};

    /// Context for a horizontal 100-long segment with the given obstacles
    /// and a roomy area.
    fn ctx_with(obstacles: Vec<Polygon>) -> ShrinkContext {
        let seg = Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
        let frame = Frame::from_segment(&seg).unwrap();
        let world = WorldContext {
            area: vec![Polygon::rectangle(
                Point::new(-20.0, -60.0),
                Point::new(120.0, 60.0),
            )],
            obstacles,
            other_uras: vec![],
        };
        ShrinkContext::build(&world, &frame, 100.0, 1)
    }

    const GAP: f64 = 4.0;
    const HMIN: f64 = 4.0;

    #[test]
    fn open_space_gives_full_height() {
        let ctx = ctx_with(vec![]);
        let r = max_pattern_height(&ctx, 20.0, 40.0, GAP, 30.0, HMIN);
        assert!((r.height - 30.0).abs() < 1e-9);
        assert!(!r.routes_around);
    }

    #[test]
    fn area_border_caps_height() {
        let ctx = ctx_with(vec![]);
        // Area top at y=60; URA top h+2 must stay ≤ 60 → h ≤ 58.
        let r = max_pattern_height(&ctx, 20.0, 40.0, GAP, 500.0, HMIN);
        assert!(r.height <= 58.0 + 1e-9);
        assert!(r.height > 50.0);
    }

    #[test]
    fn side_blocking_obstacle_caps_height() {
        // Obstacle wall crossing the left side at height 10.
        let ctx = ctx_with(vec![Polygon::rectangle(
            Point::new(0.0, 10.0),
            Point::new(25.0, 14.0),
        )]);
        let r = max_pattern_height(&ctx, 20.0, 40.0, GAP, 30.0, HMIN);
        // hob ≤ 10 → h ≤ 8.
        assert!((r.height - 8.0).abs() < 1e-9, "h={}", r.height);
    }

    #[test]
    fn hat_node_obstacle_caps_height() {
        // Small via fully inside the URA x-range, bottom at 12.
        let ctx = ctx_with(vec![Polygon::rectangle(
            Point::new(28.0, 12.0),
            Point::new(32.0, 16.0),
        )]);
        // Wide pattern that cannot enclose it (inner border too thin).
        let r = max_pattern_height(&ctx, 26.0, 34.0, GAP, 30.0, HMIN);
        // Must stop below the via: hob ≤ 12 → h ≤ 10.
        assert!((r.height - 10.0).abs() < 1e-9, "h={}", r.height);
    }

    #[test]
    fn routes_around_enclosed_obstacle() {
        // Via at x∈[28,32], y∈[12,16]; pattern feet far outside with a big
        // height: via sits inside the inner border → legally enclosed.
        let ctx = ctx_with(vec![Polygon::rectangle(
            Point::new(28.0, 12.0),
            Point::new(32.0, 16.0),
        )]);
        let r = max_pattern_height(&ctx, 10.0, 50.0, GAP, 40.0, HMIN);
        assert!((r.height - 40.0).abs() < 1e-9, "h={}", r.height);
        assert!(r.routes_around, "pattern should enclose the via");
    }

    #[test]
    fn non_monotone_validity() {
        // The same via: full height 40 is valid (enclosed), but a height
        // that would put the hat *through* the via is not — the
        // non-monotonicity that rules out binary search.
        let ctx = ctx_with(vec![Polygon::rectangle(
            Point::new(28.0, 12.0),
            Point::new(32.0, 16.0),
        )]);
        let tall = max_pattern_height(&ctx, 10.0, 50.0, GAP, 40.0, HMIN);
        assert!((tall.height - 40.0).abs() < 1e-9);
        // Starting from 14 (hat inside the via band): must shrink below.
        let mid = max_pattern_height(&ctx, 10.0, 50.0, GAP, 14.0, HMIN);
        assert!(
            mid.height <= 10.0 + 1e-9,
            "hat through via must shrink below it, got {}",
            mid.height
        );
        assert!(tall.height > mid.height, "validity is not monotone in h");
    }

    #[test]
    fn enclosure_needs_inner_clearance() {
        // Via too close to a foot: inside outer border, escapes the inner
        // border → cannot be enclosed; height drops below it.
        let ctx = ctx_with(vec![Polygon::rectangle(
            Point::new(11.0, 12.0),
            Point::new(15.0, 16.0),
        )]);
        let r = max_pattern_height(&ctx, 10.0, 50.0, GAP, 40.0, HMIN);
        assert!(r.height <= 12.0 + 1e-9, "h={}", r.height);
        assert!(!r.routes_around);
    }

    #[test]
    fn blocked_space_gives_zero() {
        // Wall right on top of the feet region.
        let ctx = ctx_with(vec![Polygon::rectangle(
            Point::new(0.0, 2.0),
            Point::new(100.0, 6.0),
        )]);
        let r = max_pattern_height(&ctx, 20.0, 40.0, GAP, 30.0, HMIN);
        assert_eq!(r.height, 0.0);
    }

    #[test]
    fn h_min_enforced() {
        // Space allows h=3 but h_min=4 → no pattern.
        let ctx = ctx_with(vec![Polygon::rectangle(
            Point::new(10.0, 5.0),
            Point::new(50.0, 8.0),
        )]);
        let r = max_pattern_height(&ctx, 20.0, 40.0, GAP, 30.0, 4.0);
        assert_eq!(r.height, 0.0);
        // With h_min=2 the same space hosts a pattern of 3.
        let r = max_pattern_height(&ctx, 20.0, 40.0, GAP, 30.0, 2.0);
        assert!((r.height - 3.0).abs() < 1e-9);
    }

    #[test]
    fn iterative_hat_shrinking() {
        // Paper Figs. 7–8: shrinking under one polygon makes the next one
        // protrude. P1 straddles the initial outer border (stage 2, hob →
        // 30); P2 was comfortably inside but now pokes through the inner
        // border (stage 3, hob → 20); P3 remains legally enclosed.
        let ctx = ctx_with(vec![
            Polygon::rectangle(Point::new(25.0, 30.0), Point::new(35.0, 50.0)), // P1
            Polygon::rectangle(Point::new(20.0, 20.0), Point::new(24.0, 28.0)), // P2
            Polygon::rectangle(Point::new(36.0, 10.0), Point::new(40.0, 14.0)), // P3
        ]);
        let r = max_pattern_height(&ctx, 15.0, 45.0, GAP, 40.0, 2.0);
        assert!((r.height - 18.0).abs() < 1e-9, "h={}", r.height);
        assert!(r.routes_around, "P3 should remain enclosed");
    }

    #[test]
    fn other_trace_ura_constrains() {
        // A neighbouring parallel run of the same trace 20 above.
        let seg = Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
        let frame = Frame::from_segment(&seg).unwrap();
        let trace = meander_geom::Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(100.0, 20.0),
            Point::new(0.0, 20.0),
        ]);
        let world = WorldContext {
            area: vec![Polygon::rectangle(
                Point::new(-20.0, -60.0),
                Point::new(120.0, 60.0),
            )],
            obstacles: vec![],
            other_uras: WorldContext::trace_uras(&trace, 0, GAP),
        };
        let ctx = ShrinkContext::build(&world, &frame, 100.0, 1);
        let r = max_pattern_height(&ctx, 20.0, 40.0, GAP, 30.0, HMIN);
        // Parallel run URA bottom at y = 18 → hob ≤ 18 → h ≤ 16.
        assert!((r.height - 16.0).abs() < 1e-9, "h={}", r.height);
    }

    #[test]
    fn init_below_min_rejected() {
        let ctx = ctx_with(vec![]);
        let r = max_pattern_height(&ctx, 20.0, 40.0, GAP, 2.0, 4.0);
        assert_eq!(r.height, 0.0);
    }

    #[test]
    fn batched_paths_bitwise_equal() {
        // Mixed geometry, both side contexts: the batched stage-1 and the
        // batched profile sweep must reproduce the scalar floats exactly.
        let obstacles = vec![
            Polygon::rectangle(Point::new(0.0, 10.0), Point::new(18.0, 14.0)),
            Polygon::rectangle(Point::new(55.0, 6.0), Point::new(70.0, 9.0)),
            Polygon::regular(Point::new(36.0, 14.0), 2.5, 7, 0.3),
            Polygon::rectangle(Point::new(80.0, 1.0), Point::new(90.0, 3.0)),
        ];
        let seg = Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
        let frame = Frame::from_segment(&seg).unwrap();
        let world = WorldContext {
            area: vec![Polygon::rectangle(
                Point::new(-20.0, -60.0),
                Point::new(120.0, 60.0),
            )],
            obstacles,
            other_uras: vec![],
        };
        let ctx_up = ShrinkContext::build(&world, &frame, 100.0, 1);
        let ctx_dn = ShrinkContext::build(&world, &frame, 100.0, -1);
        let mut scratch = ShrinkScratch::new();

        let (m, ldisc, h_init, h_min) = (50usize, 2.0, 30.0, 2.0);
        let ps = build_ub_profile(&ctx_up, &ctx_dn, m, ldisc, GAP, h_init, h_min, &mut scratch);
        let pb =
            build_ub_profile_batched(&ctx_up, &ctx_dn, m, ldisc, GAP, h_init, h_min, &mut scratch);
        for d in 0..2 {
            for p in 0..=m {
                assert_eq!(
                    ps.left[d][p].to_bits(),
                    pb.left[d][p].to_bits(),
                    "left[{d}][{p}]: {} vs {}",
                    ps.left[d][p],
                    pb.left[d][p]
                );
                assert_eq!(
                    ps.right[d][p].to_bits(),
                    pb.right[d][p].to_bits(),
                    "right[{d}][{p}]"
                );
            }
        }
        assert!(scratch.batch.calls > 0, "batched sweep must record work");

        for ctx in [&ctx_up, &ctx_dn] {
            for j in 0..m {
                for i in (j + 2)..=(j + 12).min(m) {
                    let (x0, x1) = (j as f64 * ldisc, i as f64 * ldisc);
                    let s =
                        max_pattern_height_scratch(ctx, x0, x1, GAP, h_init, h_min, &mut scratch);
                    let b =
                        max_pattern_height_batched(ctx, x0, x1, GAP, h_init, h_min, &mut scratch);
                    assert_eq!(
                        s.height.to_bits(),
                        b.height.to_bits(),
                        "probe ({j},{i}): {} vs {}",
                        s.height,
                        b.height
                    );
                    assert_eq!(s.routes_around, b.routes_around, "probe ({j},{i})");
                }
            }
        }
    }

    #[test]
    fn ub_profile_bounds_every_probe() {
        // Mixed geometry: a side-blocking wall, a low ceiling patch, and an
        // enclosable via — the profile must upper-bound every probe result
        // exactly (no epsilon: same floats, same primitives).
        let obstacles = vec![
            Polygon::rectangle(Point::new(0.0, 10.0), Point::new(18.0, 14.0)),
            Polygon::rectangle(Point::new(55.0, 6.0), Point::new(70.0, 9.0)),
            Polygon::rectangle(Point::new(34.0, 12.0), Point::new(38.0, 16.0)),
            // Hugging the segment: floors nearby caps to zero.
            Polygon::rectangle(Point::new(80.0, 1.0), Point::new(90.0, 3.0)),
        ];
        let seg = Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
        let frame = Frame::from_segment(&seg).unwrap();
        let world = WorldContext {
            area: vec![Polygon::rectangle(
                Point::new(-20.0, -60.0),
                Point::new(120.0, 60.0),
            )],
            obstacles,
            other_uras: vec![],
        };
        let ctx_up = ShrinkContext::build(&world, &frame, 100.0, 1);
        let ctx_dn = ShrinkContext::build(&world, &frame, 100.0, -1);

        let (m, ldisc, h_init, h_min) = (50usize, 2.0, 30.0, 2.0);
        let mut scratch = ShrinkScratch::new();
        let profile =
            build_ub_profile(&ctx_up, &ctx_dn, m, ldisc, GAP, h_init, h_min, &mut scratch);

        for d in 0..2usize {
            let ctx = if d == 1 { &ctx_up } else { &ctx_dn };
            for j in 0..m {
                for i in (j + 2)..=(j + 16).min(m) {
                    let r = max_pattern_height_scratch(
                        ctx,
                        j as f64 * ldisc,
                        i as f64 * ldisc,
                        GAP,
                        h_init,
                        h_min,
                        &mut scratch,
                    );
                    let cap = profile.cap.min(profile.left[d][j]).min(profile.right[d][i]);
                    assert!(
                        r.height <= cap,
                        "probe ({j},{i},{d}): height {} exceeds profile cap {cap}",
                        r.height
                    );
                }
            }
        }
        // The obstacle hugging the segment must floor some caps to zero.
        assert!(profile.left[1].contains(&0.0));
        // Open positions far from everything stay at the global cap.
        assert!(profile.left[1].contains(&h_init));
    }
}
