//! Pattern geometry: placements → meandered polyline (paper Alg. 1
//! lines 17–18).

use crate::dp::Placement;
use meander_geom::{Frame, Point, Polyline, Segment};

/// Builds the meandered replacement for a segment of length `len` in its
/// local frame: walks `x = 0 → len` splicing a rectangular detour for every
/// placement (`x_lo → up h → across → down → x_hi`).
///
/// Placements must be sorted by `lo` and non-overlapping (feet may touch —
/// connected patterns share a foot). Returns the local polyline including
/// both segment endpoints.
pub fn build_local_meander(len: f64, ldisc: f64, placements: &[Placement]) -> Polyline {
    let feet: Vec<(f64, f64, i8, f64)> = placements
        .iter()
        .map(|p| (p.lo as f64 * ldisc, p.hi as f64 * ldisc, p.dir, p.height))
        .collect();
    build_local_meander_f64(len, &feet)
}

/// [`build_local_meander`] with exact (un-discretized) feet coordinates:
/// `(x0, x1, dir, height)` tuples, sorted by `x0`.
pub fn build_local_meander_f64(len: f64, placements: &[(f64, f64, i8, f64)]) -> Polyline {
    let mut pts: Vec<Point> = Vec::with_capacity(2 + placements.len() * 4);
    pts.push(Point::new(0.0, 0.0));
    for &(x0, x1, dir, height) in placements {
        let y = height * f64::from(dir);
        if !pts
            .last()
            .expect("non-empty")
            .approx_eq(Point::new(x0, 0.0))
        {
            pts.push(Point::new(x0, 0.0));
        }
        pts.push(Point::new(x0, y));
        pts.push(Point::new(x1, y));
        pts.push(Point::new(x1, 0.0));
    }
    let end = Point::new(len, 0.0);
    if !pts.last().expect("non-empty").approx_eq(end) {
        pts.push(end);
    }
    let mut pl = Polyline::new(pts);
    pl.simplify();
    pl
}

/// Splices a meandered local polyline back into `trace`, replacing the
/// segment `seg_index` (whose geometry must still match `frame`).
///
/// Returns the indices (into the updated trace) of the first and last
/// vertex of the spliced run.
pub fn splice_meander(
    trace: &mut Polyline,
    seg_index: usize,
    frame: &Frame,
    local: &Polyline,
) -> (usize, usize) {
    let world: Vec<Point> = local.points().iter().map(|&p| frame.to_world(p)).collect();
    trace.splice(seg_index, seg_index + 1, &world);
    (seg_index, seg_index + world.len() - 1)
}

/// The inclusive step-index window `[a, b]` a placement set occupies on its
/// discretized segment — the invalidation window to hand
/// [`crate::dp::DpSession::invalidate_window`] after splicing these
/// placements changes the height field locally. `None` for an empty set.
pub fn placements_window(placements: &[Placement]) -> Option<(usize, usize)> {
    let lo = placements.iter().map(|p| p.lo).min()?;
    let hi = placements.iter().map(|p| p.hi).max()?;
    Some((lo, hi))
}

/// The world-space segments a meander created (for re-queueing): every
/// segment of the spliced run.
pub fn meander_segments(trace: &Polyline, lo: usize, hi: usize) -> Vec<Segment> {
    (lo..hi.min(trace.point_count() - 1))
        .map(|i| trace.segment(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_placements_is_straight() {
        let pl = build_local_meander(10.0, 1.0, &[]);
        assert_eq!(pl.point_count(), 2);
        assert_eq!(pl.length(), 10.0);
    }

    #[test]
    fn single_pattern_adds_twice_height() {
        let pl = build_local_meander(
            10.0,
            1.0,
            &[Placement {
                lo: 3,
                hi: 6,
                dir: 1,
                height: 4.0,
            }],
        );
        assert_eq!(pl.length(), 10.0 + 8.0);
        assert_eq!(pl.point_count(), 6);
        // Detour goes up (+y).
        assert!(pl.points().iter().any(|p| p.y > 3.9));
    }

    #[test]
    fn down_pattern_goes_negative() {
        let pl = build_local_meander(
            10.0,
            1.0,
            &[Placement {
                lo: 2,
                hi: 5,
                dir: -1,
                height: 3.0,
            }],
        );
        assert!(pl.points().iter().any(|p| p.y < -2.9));
        assert_eq!(pl.length(), 16.0);
    }

    #[test]
    fn connected_patterns_merge_legs() {
        // Two opposite patterns sharing a foot at x = 5: the shared foot
        // leg becomes one straight vertical segment after simplify.
        let pl = build_local_meander(
            10.0,
            1.0,
            &[
                Placement {
                    lo: 2,
                    hi: 5,
                    dir: 1,
                    height: 4.0,
                },
                Placement {
                    lo: 5,
                    hi: 8,
                    dir: -1,
                    height: 3.0,
                },
            ],
        );
        // Gain = 2·4 + 2·3 = 14.
        assert_eq!(pl.length(), 24.0);
        // The shared leg runs from +4 to −3 through (5, 0) with no
        // intermediate vertex (simplify merged the collinear legs).
        let xs5: Vec<_> = pl
            .points()
            .iter()
            .filter(|p| (p.x - 5.0).abs() < 1e-9)
            .collect();
        assert_eq!(xs5.len(), 2, "{:?}", pl.points());
        assert!(!pl.is_self_intersecting());
    }

    #[test]
    fn placements_window_spans_feet() {
        assert_eq!(placements_window(&[]), None);
        let ps = [
            Placement {
                lo: 3,
                hi: 7,
                dir: 1,
                height: 2.0,
            },
            Placement {
                lo: 9,
                hi: 14,
                dir: -1,
                height: 3.0,
            },
        ];
        assert_eq!(placements_window(&ps), Some((3, 14)));
    }

    #[test]
    fn pattern_at_segment_ends() {
        // Feet exactly at both segment nodes.
        let pl = build_local_meander(
            8.0,
            1.0,
            &[Placement {
                lo: 0,
                hi: 8,
                dir: 1,
                height: 5.0,
            }],
        );
        assert_eq!(pl.length(), 18.0);
        assert_eq!(pl.start(), Point::new(0.0, 0.0));
        assert_eq!(pl.end(), Point::new(8.0, 0.0));
    }

    #[test]
    fn splice_into_any_angle_trace() {
        // 45° segment: meander in local frame, splice to world.
        let mut trace = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(20.0, 10.0),
        ]);
        let seg = trace.segment(0);
        let frame = Frame::from_segment(&seg).unwrap();
        let local = build_local_meander(
            seg.length(),
            seg.length() / 10.0,
            &[Placement {
                lo: 4,
                hi: 6,
                dir: 1,
                height: 2.0,
            }],
        );
        let before = trace.length();
        let (lo, hi) = splice_meander(&mut trace, 0, &frame, &local);
        assert_eq!(lo, 0);
        assert!((trace.length() - (before + 4.0)).abs() < 1e-9);
        // End point unchanged.
        assert!(trace.end().approx_eq(Point::new(20.0, 10.0)));
        // Re-queue segments cover the spliced run.
        let segs = meander_segments(&trace, lo, hi);
        assert_eq!(segs.len(), hi - lo);
        assert!(!trace.is_self_intersecting());
    }
}
