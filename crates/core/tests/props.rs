//! Property-based tests for the meandering engine.
//!
//! These check the invariants the paper's correctness rests on, against
//! randomized inputs:
//!
//! * the DP never emits an illegal pattern set (spacing, stubs, widths),
//! * URA shrinking is sound: the returned height yields a pattern whose
//!   clearance to every obstacle is respected *geometrically* (checked
//!   against raw distances, not through the shrink logic itself),
//! * trace extension never overshoots, never moves endpoints, never
//!   self-intersects, and never leaves the routable area.

use meander_core::context::{ShrinkContext, WorldContext};
use meander_core::dp::{extend_segment_dp, DpInput, DpSession, HeightBounds, UbProfile};
use meander_core::extend::{extend_trace, ExtendInput};
use meander_core::shrink::{
    build_ub_profile, build_ub_profile_batched, max_pattern_height, max_pattern_height_batched,
    max_pattern_height_scratch, ShrinkScratch,
};
use meander_core::ExtendConfig;
use meander_drc::DesignRules;
use meander_geom::{Frame, Point, Polygon, Polyline, Segment};
use proptest::prelude::*;

fn rules() -> DesignRules {
    DesignRules {
        gap: 8.0,
        obstacle: 8.0,
        protect: 4.0,
        miter: 2.0,
        width: 4.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dp_output_is_always_legal(
        m in 10usize..80,
        gap_steps in 2usize..8,
        protect_steps in 1usize..4,
        heights in proptest::collection::vec(0.0..20.0f64, 16),
    ) {
        let config = ExtendConfig::default();
        let height = |lo: usize, hi: usize, dir: i8| -> f64 {
            // Pseudo-random but deterministic height field.
            let ix = (lo * 7 + hi * 13 + (dir as usize & 1) * 3) % heights.len();
            let h = heights[ix];
            if h < 1.0 { 0.0 } else { h }
        };
        let out = extend_segment_dp(&DpInput {
            m,
            ldisc: 1.0,
            gap_steps,
            protect_steps,
            min_width_steps: gap_steps,
            max_width_steps: 32,
            height: &height,
            bounds: HeightBounds::Uniform(f64::INFINITY),
            config: &config,
        });
        // Value == restored sum.
        let sum: f64 = out.placements.iter().map(|p| p.height).sum();
        prop_assert!((sum - out.total_height).abs() < 1e-9);
        // Feet ordered, non-overlapping, legal widths and stubs.
        let mut prev_hi = 0usize;
        let mut first = true;
        for p in &out.placements {
            prop_assert!(p.hi <= m);
            prop_assert!(p.hi - p.lo >= gap_steps, "width too small: {p:?}");
            prop_assert!(p.lo == 0 || p.lo >= protect_steps, "left stub: {p:?}");
            prop_assert!(p.hi == m || m - p.hi >= protect_steps, "right stub: {p:?}");
            if !first {
                prop_assert!(p.lo >= prev_hi, "overlap at {p:?}");
            }
            prev_hi = p.hi;
            first = false;
            prop_assert!(p.height > 0.0);
        }
        // Same-side spacing (possibly via connected chains): consecutive
        // same-side patterns must be gap_steps apart unless every pattern
        // between them shares feet (connected chain).
        let v = &out.placements;
        for i in 0..v.len() {
            for j in (i + 1)..v.len() {
                if v[i].dir == v[j].dir {
                    // Distance between same-side feet.
                    let chain = (i..j).all(|k| v[k + 1].lo == v[k].hi);
                    if !chain {
                        prop_assert!(
                            v[j].lo >= v[i].hi + gap_steps.min(protect_steps),
                            "same-side too close: {:?} then {:?}",
                            v[i],
                            v[j]
                        );
                    }
                }
                if v[j].lo >= v[i].hi + gap_steps {
                    break; // far enough; later ones farther still
                }
            }
        }
    }

    #[test]
    fn shrink_is_geometrically_sound(
        obs_x in 10.0..140.0f64,
        obs_y in 2.0..50.0f64,
        obs_r in 1.0..6.0f64,
        x0 in 5.0..60.0f64,
        w in 12.5..60.0f64,
        h_init in 4.0..45.0f64,
    ) {
        let r = rules();
        let g_eff = r.gap + r.width; // 12
        let seg = Segment::new(Point::new(0.0, 0.0), Point::new(150.0, 0.0));
        let frame = Frame::from_segment(&seg).unwrap();
        let area = Polygon::rectangle(Point::new(-30.0, -80.0), Point::new(180.0, 80.0));
        let obstacle = Polygon::regular(Point::new(obs_x, obs_y), obs_r, 8, 0.2);
        let world = WorldContext {
            area: vec![area.clone()],
            obstacles: vec![obstacle.clone()],
            other_uras: vec![],
        };
        let ctx = ShrinkContext::build(&world, &frame, 150.0, 1);
        let x1 = (x0 + w).min(145.0);
        let res = max_pattern_height(&ctx, x0, x1, g_eff, h_init, r.protect);
        prop_assert!(res.height <= h_init + 1e-9);
        if res.height == 0.0 {
            return Ok(());
        }
        // Build the pattern centerline and verify raw clearance: every
        // obstacle is either g_eff/2 away from the pattern, or strictly
        // enclosed by it.
        let pattern = Polyline::new(vec![
            Point::new(x0, 0.0),
            Point::new(x0, res.height),
            Point::new(x1, res.height),
            Point::new(x1, 0.0),
        ]);
        let d = pattern
            .segments()
            .map(|s| obstacle.distance_to_segment(&s))
            .fold(f64::INFINITY, f64::min);
        let enclosed = obstacle.vertices().iter().all(|&v| {
            v.x > x0 && v.x < x1 && v.y < res.height && v.y > 0.0
        });
        if enclosed {
            // Enclosed obstacles still need the clearance to all walls.
            prop_assert!(
                d >= g_eff / 2.0 - 1e-6,
                "enclosed via too close: d={d} h={} obs=({obs_x},{obs_y},{obs_r})",
                res.height
            );
            prop_assert!(res.routes_around);
        } else {
            prop_assert!(
                d >= g_eff / 2.0 - 1e-6,
                "clearance violated: d={d} h={} obs=({obs_x},{obs_y},{obs_r})",
                res.height
            );
        }
        // Pattern inside the area.
        prop_assert!(res.height <= 80.0 - g_eff / 2.0 + 1e-9);
    }

    #[test]
    fn extension_invariants_hold(
        len in 60.0..250.0f64,
        extra_frac in 0.05..0.8f64,
        angle_deg in 0.0..180.0f64,
        half_h in 15.0..60.0f64,
    ) {
        let r = rules();
        let dir = meander_geom::Vector::new(
            angle_deg.to_radians().cos(),
            angle_deg.to_radians().sin(),
        );
        let a = Point::new(7.0, -3.0);
        let b = a + dir * len;
        let trace = Polyline::new(vec![a, b]);
        let seg = Segment::new(a, b);
        let frame = Frame::from_segment(&seg).unwrap();
        let local_area =
            Polygon::rectangle(Point::new(-20.0, -half_h), Point::new(len + 20.0, half_h));
        let area = vec![frame.polygon_to_world(&local_area)];
        let target = len * (1.0 + extra_frac);
        let out = extend_trace(
            &ExtendInput {
                trace: &trace,
                target,
                rules: &r,
                area: &area,
                obstacles: &[],
            },
            &ExtendConfig::default(),
        );
        // Never overshoots; never shrinks.
        prop_assert!(out.achieved <= target + 1e-6, "overshoot {}", out.achieved);
        prop_assert!(out.achieved >= len - 1e-9);
        // Endpoints pinned.
        prop_assert!(out.trace.start().approx_eq(a));
        prop_assert!(out.trace.end().approx_eq(b));
        // Geometry stays legal.
        prop_assert!(!out.trace.is_self_intersecting());
        for &p in out.trace.points() {
            prop_assert!(area[0].contains(p), "escaped area at {p}");
        }
    }

    #[test]
    fn extension_matches_when_roomy(
        len in 120.0..250.0f64,
        extra_frac in 0.05..0.35f64,
    ) {
        // With generous space the engine must land inside tolerance.
        let r = rules();
        let trace = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(len, 0.0)]);
        let area = vec![Polygon::rectangle(
            Point::new(-20.0, -70.0),
            Point::new(len + 20.0, 70.0),
        )];
        let target = len * (1.0 + extra_frac);
        let out = extend_trace(
            &ExtendInput {
                trace: &trace,
                target,
                rules: &r,
                area: &area,
                obstacles: &[],
            },
            &ExtendConfig::default(),
        );
        // Residual below the 2·protect quantization floor.
        prop_assert!(
            target - out.achieved <= 2.0 * r.protect + 1e-6,
            "residual {}",
            target - out.achieved
        );
    }
}

/// A position-dependent height field: `height(lo, hi, dir)` is the min of a
/// per-point side field over the window, floored to 0 below a threshold —
/// mirroring how real URA clearances vary along a segment.
fn window_min_height<'a>(up: &'a [f64], dn: &'a [f64]) -> impl Fn(usize, usize, i8) -> f64 + 'a {
    move |lo, hi, dir| {
        let f = if dir > 0 { up } else { dn };
        let h = f[lo..=hi].iter().fold(f64::INFINITY, |a, &b| a.min(b));
        if h < 1.5 {
            0.0
        } else {
            h
        }
    }
}

fn tile(vals: &[f64], m: usize, offset: usize) -> Vec<f64> {
    (0..=m).map(|i| vals[(i + offset) % vals.len()]).collect()
}

proptest! {
    // The DP-equality contract of the output-sensitive machinery: across
    // ≥128 randomized segments with position-dependent height closures, the
    // profile-bounded pass and the invalidate+resolve session return
    // `Placement` lists bit-identical to the from-scratch DP.
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn profile_bounded_dp_is_bit_identical(
        m in 24usize..120,
        gap_steps in 2usize..8,
        protect_steps in 1usize..4,
        vals in proptest::collection::vec(0.0..14.0f64, 16),
        offset in 0usize..16,
    ) {
        let config = ExtendConfig::default();
        let up = tile(&vals, m, offset);
        let dn = tile(&vals, m, offset + 7);
        let height = window_min_height(&up, &dn);
        let mk_input = |bounds| DpInput {
            m,
            ldisc: 1.0,
            gap_steps,
            protect_steps,
            min_width_steps: gap_steps,
            max_width_steps: 32,
            height: &height,
            bounds,
            config: &config,
        };
        let reference = extend_segment_dp(&mk_input(HeightBounds::Uniform(f64::INFINITY)));

        // The per-point field itself is a sound per-foot cap (window min ≤
        // field value at each foot), so this profile respects the contract.
        let profile = UbProfile {
            cap: 14.0,
            left: [dn.clone(), up.clone()],
            right: [dn.clone(), up.clone()],
        };
        let pruned = extend_segment_dp(&mk_input(HeightBounds::Profile(&profile)));
        prop_assert_eq!(
            &reference.placements,
            &pruned.placements,
            "profile pruning changed the optimum"
        );
        prop_assert_eq!(reference.total_height, pruned.total_height);
    }

    #[test]
    fn session_resolve_is_bit_identical_to_scratch(
        m in 24usize..120,
        gap_steps in 2usize..8,
        protect_steps in 1usize..4,
        vals in proptest::collection::vec(0.0..14.0f64, 16),
        patch in proptest::collection::vec(0.0..14.0f64, 16),
        a_frac in 0.0..1.0f64,
        b_frac in 0.0..1.0f64,
    ) {
        let config = ExtendConfig::default();
        let fields = std::cell::RefCell::new((tile(&vals, m, 0), tile(&vals, m, 5)));
        let height = |lo: usize, hi: usize, dir: i8| -> f64 {
            let f = fields.borrow();
            let side = if dir > 0 { &f.0 } else { &f.1 };
            let h = side[lo..=hi].iter().fold(f64::INFINITY, |a, &b| a.min(b));
            if h < 1.5 { 0.0 } else { h }
        };
        let input = DpInput {
            m,
            ldisc: 1.0,
            gap_steps,
            protect_steps,
            min_width_steps: gap_steps,
            max_width_steps: 32,
            height: &height,
            bounds: HeightBounds::Uniform(f64::INFINITY),
            config: &config,
        };
        let mut session = DpSession::new(&input, true);
        let _ = session.solve(&input);

        // Mutate the per-point field inside `[a, b]` only: exactly the
        // windows overlapping `[a, b]` can change — the invalidation
        // contract of a splice.
        let a = ((m as f64 * a_frac) as usize).min(m);
        let b = (a + (( (m - a) as f64 * b_frac) as usize)).min(m);
        {
            let mut f = fields.borrow_mut();
            for x in a..=b {
                f.0[x] = patch[x % patch.len()];
                f.1[x] = patch[(x + 3) % patch.len()];
            }
        }
        session.invalidate_window(a, b);
        let resolved = session.solve(&input);
        let scratch = extend_segment_dp(&input);
        prop_assert_eq!(
            &resolved.placements,
            &scratch.placements,
            "resolve after invalidate_window({}, {}) diverged", a, b
        );
        prop_assert_eq!(resolved.total_height, scratch.total_height);
        // And a second, overlapping mutation on the already-resolved state.
        {
            let mut f = fields.borrow_mut();
            let c = a / 2;
            for x in c..=((c + 4).min(m)) {
                f.0[x] = 0.0;
            }
            session.invalidate_window(c, (c + 4).min(m));
        }
        let resolved2 = session.solve(&input);
        let scratch2 = extend_segment_dp(&input);
        prop_assert_eq!(&resolved2.placements, &scratch2.placements);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The SoA batch kernels must reproduce the scalar shrink floats
    // bit-for-bit on randomized obstacle fields: the stage-1 probes, the
    // per-position upper-bound profile, and the whole engine run.
    #[test]
    fn batched_kernels_bit_identical_end_to_end(
        obs in proptest::collection::vec(
            (5.0..145.0f64, -40.0..40.0f64, 0.8..5.0f64, 3usize..9),
            0..12,
        ),
        m in 20usize..60,
        h_init in 6.0..50.0f64,
        target_factor in 1.2..2.5f64,
    ) {
        let r = rules();
        let g_eff = r.gap + r.width;
        let seg_len = 150.0;
        let seg = Segment::new(Point::new(0.0, 0.0), Point::new(seg_len, 0.0));
        let frame = Frame::from_segment(&seg).unwrap();
        let area = vec![Polygon::rectangle(
            Point::new(-30.0, -80.0),
            Point::new(180.0, 80.0),
        )];
        let obstacles: Vec<Polygon> = obs
            .iter()
            .map(|&(x, y, rad, n)| Polygon::regular(Point::new(x, y), rad, n, 0.25))
            .collect();
        let world = WorldContext {
            area: area.clone(),
            obstacles: obstacles.clone(),
            other_uras: vec![],
        };
        let ctx_up = ShrinkContext::build(&world, &frame, seg_len, 1);
        let ctx_dn = ShrinkContext::build(&world, &frame, seg_len, -1);
        let mut scratch = ShrinkScratch::new();
        let ldisc = seg_len / m as f64;

        // Profile sweep.
        let ps = build_ub_profile(&ctx_up, &ctx_dn, m, ldisc, g_eff, h_init, r.protect, &mut scratch);
        let pb = build_ub_profile_batched(
            &ctx_up, &ctx_dn, m, ldisc, g_eff, h_init, r.protect, &mut scratch,
        );
        for d in 0..2 {
            for p in 0..=m {
                prop_assert_eq!(
                    ps.left[d][p].to_bits(),
                    pb.left[d][p].to_bits(),
                    "profile left[{}][{}]", d, p
                );
                prop_assert_eq!(
                    ps.right[d][p].to_bits(),
                    pb.right[d][p].to_bits(),
                    "profile right[{}][{}]", d, p
                );
            }
        }

        // Stage-1 probes at assorted feet.
        for ctx in [&ctx_up, &ctx_dn] {
            for j in (0..m.saturating_sub(4)).step_by(3) {
                let (x0, x1) = (j as f64 * ldisc, (j + 4) as f64 * ldisc);
                let s = max_pattern_height_scratch(ctx, x0, x1, g_eff, h_init, r.protect, &mut scratch);
                let b = max_pattern_height_batched(ctx, x0, x1, g_eff, h_init, r.protect, &mut scratch);
                prop_assert_eq!(s.height.to_bits(), b.height.to_bits(), "probe at {}", j);
                prop_assert_eq!(s.routes_around, b.routes_around);
            }
        }

        // Whole engine: identical meander, bit for bit, batch on or off —
        // for both the incremental and the rebuild pipeline.
        let trace = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(seg_len, 0.0)]);
        let input = ExtendInput {
            trace: &trace,
            target: seg_len * target_factor,
            rules: &r,
            area: &area,
            obstacles: &obstacles,
        };
        for incremental in [true, false] {
            let mk = |batch_kernels: bool| ExtendConfig {
                incremental,
                parallel: false,
                batch_kernels,
                ..ExtendConfig::default()
            };
            let scalar = extend_trace(&input, &mk(false));
            let batched = extend_trace(&input, &mk(true));
            prop_assert_eq!(
                scalar.achieved.to_bits(),
                batched.achieved.to_bits(),
                "achieved diverged (incremental={})", incremental
            );
            prop_assert_eq!(scalar.patterns, batched.patterns);
            prop_assert_eq!(scalar.trace.points(), batched.trace.points());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // The spatial-index contract end to end: grid-, R-tree-, and
    // Auto-indexed engines (and shrink contexts) must produce bit-identical
    // results on randomized obstacle fields that include a plane-sized
    // slab — the regime where the structures' query *costs* differ most.
    #[test]
    fn index_kinds_bit_identical_end_to_end(
        obs in proptest::collection::vec(
            (5.0..145.0f64, -40.0..40.0f64, 0.8..5.0f64, 3usize..9),
            0..10,
        ),
        slab_y in 18.0..45.0f64,
        h_init in 6.0..50.0f64,
        target_factor in 1.2..2.2f64,
    ) {
        use meander_core::context::ShrinkContext;
        use meander_index::IndexKind;

        let r = rules();
        let g_eff = r.gap + r.width;
        let seg_len = 150.0;
        let seg = Segment::new(Point::new(0.0, 0.0), Point::new(seg_len, 0.0));
        let frame = Frame::from_segment(&seg).unwrap();
        let area = vec![Polygon::rectangle(
            Point::new(-30.0, -80.0),
            Point::new(180.0, 80.0),
        )];
        let mut obstacles: Vec<Polygon> = obs
            .iter()
            .map(|&(x, y, rad, n)| Polygon::regular(Point::new(x, y), rad, n, 0.25))
            .collect();
        // A full-width plane slab: smears across the whole grid row and is
        // exactly what `Auto` exists to detect.
        obstacles.push(Polygon::rectangle(
            Point::new(-25.0, slab_y),
            Point::new(175.0, slab_y + 4.0),
        ));

        // Context-level: every stage-1 probe bit-identical across kinds.
        let world = WorldContext {
            area: area.clone(),
            obstacles: obstacles.clone(),
            other_uras: vec![],
        };
        let ctx_grid = ShrinkContext::build_indexed(&world, &frame, seg_len, 1, IndexKind::Grid);
        let ctx_rtree = ShrinkContext::build_indexed(&world, &frame, seg_len, 1, IndexKind::RTree);
        let mut scratch = ShrinkScratch::new();
        for j in (0..28).step_by(5) {
            let (x0, x1) = (j as f64 * 5.0, j as f64 * 5.0 + 22.0);
            let a = max_pattern_height_scratch(&ctx_grid, x0, x1, g_eff, h_init, r.protect, &mut scratch);
            let b = max_pattern_height_scratch(&ctx_rtree, x0, x1, g_eff, h_init, r.protect, &mut scratch);
            prop_assert_eq!(a.height.to_bits(), b.height.to_bits(), "probe {}", j);
            prop_assert_eq!(a.routes_around, b.routes_around);
            let c = max_pattern_height_batched(&ctx_rtree, x0, x1, g_eff, h_init, r.protect, &mut scratch);
            prop_assert_eq!(a.height.to_bits(), c.height.to_bits(), "batched probe {}", j);
        }

        // Engine-level: identical meander bit for bit, all kinds, scalar
        // and batched kernels.
        let trace = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(seg_len, 0.0)]);
        let input = ExtendInput {
            trace: &trace,
            target: seg_len * target_factor,
            rules: &r,
            area: &area,
            obstacles: &obstacles,
        };
        let run = |index: IndexKind, batch_kernels: bool| {
            extend_trace(&input, &ExtendConfig {
                index,
                batch_kernels,
                parallel: false,
                ..ExtendConfig::default()
            })
        };
        let reference = run(IndexKind::Grid, false);
        for (kind, bk) in [
            (IndexKind::RTree, false),
            (IndexKind::RTree, true),
            (IndexKind::Auto, false),
        ] {
            let other = run(kind, bk);
            prop_assert_eq!(
                reference.achieved.to_bits(),
                other.achieved.to_bits(),
                "achieved diverged ({:?}, batch={})", kind, bk
            );
            prop_assert_eq!(reference.patterns, other.patterns);
            prop_assert_eq!(reference.trace.points(), other.trace.points());
        }
    }
}
