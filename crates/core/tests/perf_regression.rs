//! Performance regression guards for the incremental pipeline.
//!
//! These bound *behavior* (convergence within the iteration budget, engine
//! agreement on a large board) and enforce one deliberately conservative
//! wall-clock ratio: on a dense via-field board the incremental engine must
//! beat the naive rebuild engine by a wide margin (release-mode baselines
//! show up to 5×; the assertion demands far less so scheduler noise cannot
//! flake the suite).

use meander_core::{match_board_group, ExtendConfig};
use meander_layout::gen::stress_board;
use std::time::{Duration, Instant};

fn naive() -> ExtendConfig {
    ExtendConfig {
        incremental: false,
        parallel: false,
        ..ExtendConfig::default()
    }
}

fn incremental() -> ExtendConfig {
    ExtendConfig {
        parallel: false,
        ..ExtendConfig::default()
    }
}

#[test]
fn long_trace_extension_stays_within_budget() {
    // A segment-rich board with a dense via field: the regime where the
    // naive engine degrades quadratically. The incremental engine must
    // converge (no iteration-cap bailout), hit the target, and finish well
    // inside a generous wall-clock budget even in debug builds.
    let case = stress_board(4, 20, 60, 3);
    let mut board = case.board;
    let t0 = Instant::now();
    let report = match_board_group(&mut board, 0, &incremental());
    let elapsed = t0.elapsed();

    assert!(
        elapsed < Duration::from_secs(120),
        "stress matching took {elapsed:?}"
    );
    assert!(
        report.max_error() < 0.01,
        "stress board must match: max err {:.4}",
        report.max_error()
    );
    assert!(board.check().is_empty(), "{:?}", board.check());
}

#[test]
fn incremental_beats_naive_on_dense_boards() {
    let make = || stress_board(12, 30, 200, 5).board;

    // Warm-up + correctness: both engines must agree on the outcome.
    let mut b_naive = make();
    let mut b_inc = make();
    let r_naive = match_board_group(&mut b_naive, 0, &naive());
    let r_inc = match_board_group(&mut b_inc, 0, &incremental());
    assert_eq!(r_naive.traces.len(), r_inc.traces.len());
    for (a, b) in r_naive.traces.iter().zip(&r_inc.traces) {
        assert_eq!(a.patterns, b.patterns, "trace {:?}", a.id);
        assert!(
            (a.achieved - b.achieved).abs() < 1e-6,
            "trace {:?}: {} vs {}",
            a.id,
            a.achieved,
            b.achieved
        );
    }

    // Timed pass, release builds only: wall-clock ratios in the regular
    // debug `cargo test` run would be a flake vector on loaded machines
    // (debug margin is only ~1.75×). CI runs this test again with
    // `--release`, where the measured margin is ~2.5× on this board (and
    // 5× on the larger baseline board) against a 1.6× bound; the bench
    // binary (`baseline`) records the full before/after numbers.
    if cfg!(debug_assertions) {
        return;
    }
    let time3 = |config: &ExtendConfig| -> f64 {
        let mut times: Vec<f64> = (0..3)
            .map(|_| {
                let mut board = make();
                let t0 = Instant::now();
                let _ = match_board_group(&mut board, 0, config);
                t0.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        times[1]
    };
    let t_naive = time3(&naive());
    let t_inc = time3(&incremental());
    let required = 1.6;
    assert!(
        t_naive > t_inc * required,
        "expected ≥ {required}× speedup, got naive {t_naive:.3}s vs incremental {t_inc:.3}s"
    );
}
