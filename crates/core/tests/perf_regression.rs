//! Performance regression guards for the incremental pipeline.
//!
//! These bound *behavior* (convergence within the iteration budget, engine
//! agreement on a large board) and enforce one deliberately conservative
//! wall-clock ratio: on a dense via-field board the incremental engine must
//! beat the naive rebuild engine by a wide margin (release-mode baselines
//! show up to 5×; the assertion demands far less so scheduler noise cannot
//! flake the suite).

use meander_core::extend::{extend_trace, ExtendInput};
use meander_core::{match_board_group, ExtendConfig};
use meander_layout::gen::{stress_board, table2_case};
use std::time::{Duration, Instant};

fn naive() -> ExtendConfig {
    ExtendConfig {
        incremental: false,
        parallel: false,
        ..ExtendConfig::default()
    }
}

fn incremental() -> ExtendConfig {
    ExtendConfig {
        parallel: false,
        ..ExtendConfig::default()
    }
}

#[test]
fn long_trace_extension_stays_within_budget() {
    // A segment-rich board with a dense via field: the regime where the
    // naive engine degrades quadratically. The incremental engine must
    // converge (no iteration-cap bailout), hit the target, and finish well
    // inside a generous wall-clock budget even in debug builds.
    let case = stress_board(4, 20, 60, 3);
    let mut board = case.board;
    let t0 = Instant::now();
    let report = match_board_group(&mut board, 0, &incremental());
    let elapsed = t0.elapsed();

    assert!(
        elapsed < Duration::from_secs(120),
        "stress matching took {elapsed:?}"
    );
    assert!(
        report.max_error() < 0.01,
        "stress board must match: max err {:.4}",
        report.max_error()
    );
    assert!(board.check().is_empty(), "{:?}", board.check());
}

/// PR 1's baseline showed the incremental engine *losing* to the naive
/// rebuild engine on table2:2 (0.899×): the paper-sized cases are DP-bound,
/// and the incremental bookkeeping was pure overhead there. The grid
/// occupied-bounds clamp plus the DP upper-bound profile turned that into a
/// ~2× win — this guard keeps every table2 case at ≥ 1× (release builds
/// only; the measured margin is ~1.8–3×, so a 1.0 bound cannot flake under
/// normal scheduler noise).
#[test]
fn incremental_not_slower_than_naive_on_table2() {
    if cfg!(debug_assertions) {
        return;
    }
    let mut ratios: Vec<f64> = Vec::new();
    let median3 = |config: &ExtendConfig, input: &ExtendInput<'_>| -> f64 {
        let mut times: Vec<f64> = (0..3)
            .map(|_| {
                let t0 = Instant::now();
                let _ = extend_trace(input, config);
                t0.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        times[1]
    };
    for case_no in 1..=6usize {
        let case = table2_case(case_no);
        let trace = case.board.trace(case.trace).expect("trace").clone();
        let area = case
            .board
            .area(case.trace)
            .expect("area")
            .polygons()
            .to_vec();
        let obstacles: Vec<meander_geom::Polygon> = case
            .board
            .obstacles()
            .iter()
            .map(|o| o.polygon().clone())
            .collect();
        let rules = *trace.rules();
        let target = trace.length() * 50.0;
        let input = ExtendInput {
            trace: trace.centerline(),
            target,
            rules: &rules,
            area: &area,
            obstacles: &obstacles,
        };
        let long_run = |mut c: ExtendConfig| {
            c.max_iterations = 2000;
            c.parallel = false;
            c
        };
        let t_naive = median3(&long_run(naive()), &input);
        let t_inc = median3(&long_run(incremental()), &input);
        // Per-case: ≥ 1×, with a 10 % scheduler-noise allowance — the
        // smallest case is ~10 ms, where a single preemption moves the
        // median by more than the bound.
        assert!(
            t_inc <= t_naive * 1.10,
            "table2:{case_no}: incremental regressed: {t_inc:.4}s vs naive {t_naive:.4}s"
        );
        ratios.push(t_naive / t_inc.max(1e-12));
    }
    // Aggregate: strictly faster overall, no noise allowance (measured
    // geomean is ~2×).
    let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    assert!(
        geomean >= 1.0,
        "table2 geomean speedup regressed below 1.0: {geomean:.3} ({ratios:?})"
    );
}

#[test]
fn incremental_beats_naive_on_dense_boards() {
    let make = || stress_board(12, 30, 200, 5).board;

    // Warm-up + correctness: both engines must agree on the outcome.
    let mut b_naive = make();
    let mut b_inc = make();
    let r_naive = match_board_group(&mut b_naive, 0, &naive());
    let r_inc = match_board_group(&mut b_inc, 0, &incremental());
    assert_eq!(r_naive.traces.len(), r_inc.traces.len());
    for (a, b) in r_naive.traces.iter().zip(&r_inc.traces) {
        assert_eq!(a.patterns, b.patterns, "trace {:?}", a.id);
        assert!(
            (a.achieved - b.achieved).abs() < 1e-6,
            "trace {:?}: {} vs {}",
            a.id,
            a.achieved,
            b.achieved
        );
    }

    // Timed pass, release builds only: wall-clock ratios in the regular
    // debug `cargo test` run would be a flake vector on loaded machines
    // (debug margin is only ~1.75×). CI runs this test again with
    // `--release`, where the measured margin is ~2.5× on this board (and
    // 5× on the larger baseline board) against a 1.6× bound; the bench
    // binary (`baseline`) records the full before/after numbers.
    if cfg!(debug_assertions) {
        return;
    }
    let time3 = |config: &ExtendConfig| -> f64 {
        let mut times: Vec<f64> = (0..3)
            .map(|_| {
                let mut board = make();
                let t0 = Instant::now();
                let _ = match_board_group(&mut board, 0, config);
                t0.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        times[1]
    };
    let t_naive = time3(&naive());
    let t_inc = time3(&incremental());
    let required = 1.6;
    assert!(
        t_naive > t_inc * required,
        "expected ≥ {required}× speedup, got naive {t_naive:.3}s vs incremental {t_inc:.3}s"
    );
}
