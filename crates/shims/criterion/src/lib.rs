//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot fetch crates.io dependencies, so this crate
//! provides a minimal wall-clock benchmarking harness behind the subset of
//! the criterion API the workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`], `iter` / `iter_batched`, [`BenchmarkId`],
//! [`BatchSize`], and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Methodology is deliberately simple: each benchmark is warmed up once,
//! then timed over `sample_size` samples whose per-iteration medians and
//! means are printed. There is no statistical regression analysis — the
//! numbers are indicative, which is all the offline environment supports.
//! `BENCH_QUICK=1` caps samples at 3 for smoke runs.

use std::fmt;
use std::time::{Duration, Instant};

/// How batched inputs are grouped (mirrors `criterion::BatchSize`; the
/// distinction does not change behavior here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id with a function name and a parameter.
    pub fn new<P: fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Id carrying only a parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    samples: usize,
    /// Collected per-sample durations (one sample = one routine call).
    pub times: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` directly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (also forces lazy statics / caches).
        let _ = routine();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            let out = routine();
            self.times.push(t0.elapsed());
            drop(out);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let _ = routine(setup());
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            let out = routine(input);
            self.times.push(t0.elapsed());
            drop(out);
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: String, mut f: F) {
        let samples = if std::env::var("BENCH_QUICK").is_ok() {
            self.sample_size.min(3)
        } else {
            self.sample_size
        };
        let mut b = Bencher {
            samples,
            times: Vec::with_capacity(samples),
        };
        f(&mut b);
        let mut sorted = b.times.clone();
        sorted.sort_unstable();
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or_default();
        let mean = if sorted.is_empty() {
            Duration::ZERO
        } else {
            sorted.iter().sum::<Duration>() / sorted.len() as u32
        };
        println!(
            "bench {:<40} median {:>12.6} ms  mean {:>12.6} ms  ({} samples)",
            format!("{}/{}", self.name, label),
            median.as_secs_f64() * 1e3,
            mean.as_secs_f64() * 1e3,
            sorted.len()
        );
        self.criterion.results.push(BenchResult {
            id: format!("{}/{}", self.name, label),
            median,
            mean,
        });
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id: BenchmarkId = id.into();
        self.run(id.label, f);
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.run(id.label, |b| f(b, input));
    }

    /// Ends the group (printing already happened per-bench).
    pub fn finish(self) {}
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/label`.
    pub id: String,
    /// Median per-iteration time.
    pub median: Duration,
    /// Mean per-iteration time.
    pub mean: Duration,
}

/// Top-level bench context (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    /// All completed measurements, for callers that post-process.
    pub results: Vec<BenchResult>,
}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            sample_size: 20,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group("");
        g.bench_function(name, f);
        g.finish();
        self
    }
}

/// Opaque value barrier (best-effort without unstable intrinsics).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a bench entry group (mirrors `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` (mirrors `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        g.bench_function("iter", |b| b.iter(|| (0..100).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("batched", 4), &4u64, |b, &n| {
            b.iter_batched(
                || vec![n; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    #[test]
    fn harness_collects_results() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        assert_eq!(c.results.len(), 2);
        assert!(c.results.iter().all(|r| r.id.starts_with("shim/")));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_runs() {
        benches();
    }
}
