//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot fetch crates.io dependencies, so this crate
//! re-implements the subset of proptest the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_filter`,
//! * strategies for `Range<f64>` / `Range<usize>` / tuples of strategies,
//! * [`collection::vec`] with either a fixed or a ranged length,
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`),
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from upstream: cases are drawn from a generator seeded
//! deterministically per test name (override the count with the
//! `PROPTEST_CASES` env var), and failing cases are **not shrunk** — the
//! failure message reports the case number so the run can be reproduced (the
//! stream is deterministic).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod test_runner {
    /// Per-test configuration (mirrors `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 128 }
        }
    }
}

/// Error produced by a failing property case (a message).
pub type TestCaseError = String;

/// Deterministic per-test source of randomness.
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds the generator from the test name so every test draws an
    /// independent, reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.0.gen_range(lo..hi)
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.0.gen_range(lo..hi)
    }
}

/// A generator of values of one type (mirrors `proptest::strategy::Strategy`,
/// without shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`, retrying (bounded) until one passes.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Debug)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.f64_in(self.start, self.end)
    }
}

impl Strategy for std::ops::Range<usize> {
    type Value = usize;

    fn new_value(&self, rng: &mut TestRng) -> usize {
        rng.usize_in(self.start, self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:ident $ix:tt),+);)*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$ix.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// A vector length spec: either exact or a range (mirrors
    /// `proptest::collection::SizeRange` inputs).
    pub trait IntoSize {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSize for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSize for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.start >= self.end {
                self.start
            } else {
                rng.usize_in(self.start, self.end)
            }
        }
    }

    /// Strategy for vectors of `element` values with length drawn from
    /// `size`.
    pub fn vec<S: Strategy, L: IntoSize>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// Output of [`vec()`].
    #[derive(Debug)]
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: IntoSize> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The customary glob import.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Resolved case count: `PROPTEST_CASES` env override, else the config's.
pub fn resolve_cases(configured: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(configured)
}

/// Asserts a condition inside a property, failing the current case (mirrors
/// `proptest::prop_assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {{
        let holds: bool = $cond;
        if !holds {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), stringify!($cond)
            ));
        }
    }};
    ($cond:expr, $($fmt:tt)*) => {{
        let holds: bool = $cond;
        if !holds {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), format!($($fmt)*)
            ));
        }
    }};
}

/// Asserts equality inside a property (mirrors `proptest::prop_assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        if va != vb {
            return Err(format!(
                "assertion failed at {}:{}: {:?} != {:?}",
                file!(), line!(), va, vb
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (va, vb) = (&$a, &$b);
        if va != vb {
            return Err(format!(
                "assertion failed at {}:{}: {:?} != {:?}: {}",
                file!(), line!(), va, vb, format!($($fmt)*)
            ));
        }
    }};
}

/// Declares property tests (mirrors `proptest::proptest!`).
///
/// ```ignore
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn addition_commutes(a in 0.0..100.0f64, b in 0.0..100.0f64) {
///         prop_assert!((a + b - (b + a)).abs() < 1e-12);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        #[test]
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        #[test]
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let cases = $crate::resolve_cases(config.cases);
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cases {
                $(let $arg = $crate::Strategy::new_value(&$strat, &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(message) = outcome {
                    panic!(
                        "property `{}` failed on case {}/{}:\n  {}\n  inputs: {}",
                        stringify!($name),
                        case + 1,
                        cases,
                        message,
                        format!(
                            concat!($(stringify!($arg), " = {:?}; ",)*),
                            $(&$arg,)*
                        ),
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct P(f64, f64);

    fn pstrat() -> impl Strategy<Value = P> {
        (-10.0..10.0f64, -10.0..10.0f64).prop_map(|(x, y)| P(x, y))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 1.5..9.5f64, n in 3usize..7) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((3..7).contains(&n), "n was {}", n);
        }

        #[test]
        fn mapped_strategy(p in pstrat()) {
            prop_assert!(p.0.abs() <= 10.0 && p.1.abs() <= 10.0);
        }

        #[test]
        fn filtered_strategy(p in pstrat().prop_filter("nonzero", |p| p.0.abs() > 0.5)) {
            prop_assert!(p.0.abs() > 0.5);
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0.0..1.0f64, 2..6), w in crate::collection::vec(0.0..1.0f64, 4)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(w.len(), 4);
            if v.is_empty() {
                return Ok(());
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        #[should_panic(expected = "failed on case")]
        fn failures_report_case(x in 0.0..1.0f64) {
            prop_assert!(x > 2.0, "x = {} never exceeds 2", x);
        }
    }
}
