//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the real `rand` cannot be
//! fetched. This shim implements the subset of the API the workspace uses —
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`], [`Rng::gen_bool`] and
//! the [`rngs::StdRng`] type — on top of xoshiro256++, which is more than
//! adequate for synthesizing benchmark layouts and property-test inputs.
//!
//! Determinism is part of the contract: the same seed always yields the same
//! stream, so generated boards are reproducible across runs and platforms.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(42);
//! let mut b = StdRng::seed_from_u64(42);
//! let xa: f64 = a.gen_range(0.0..1.0);
//! let xb: f64 = b.gen_range(0.0..1.0);
//! assert_eq!(xa, xb);
//! assert!((0.0..1.0).contains(&xa));
//! ```

use std::ops::Range;

/// Seedable generators (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling within a range — the glue behind [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value of `T` from `self` using `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit source every higher-level method builds on.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (mirrors `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Uniform draw from `range` (half-open, like `rand`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand`'s
    /// `StdRng`; the stream differs from upstream but the determinism and
    /// quality contracts hold).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro authors'
            // recommendation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: f64 = a.gen_range(-5.0..5.0);
            let y: f64 = b.gen_range(-5.0..5.0);
            assert_eq!(x, y);
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3.0..4.5f64);
            assert!((3.0..4.5).contains(&x));
            let n = r.gen_range(2usize..9);
            assert!((2..9).contains(&n));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..8).map(|_| a.gen_range(0.0..1.0)).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.gen_range(0.0..1.0)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        assert!((0..64).all(|_| !r.gen_bool(0.0)));
        assert!((0..64).all(|_| r.gen_bool(1.0)));
    }
}
