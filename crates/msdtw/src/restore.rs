//! Differential-pair restoration after length matching.
//!
//! "the median trace after length matching can be simply restored to the
//! differential pair" (paper Sec. I-C): offset the meandered median by
//! `± sep/2`. Because the median obeyed the virtual DRC
//! ([`meander_drc::virtualize_rules`]) during meandering, the restored pair
//! cannot violate the original rules.

use meander_geom::offset::offset_polyline;
use meander_geom::Polyline;

/// Restores the two sub-traces from a meandered median trace.
///
/// Returns `(p, n)` where `p` is offset `+sep/2` (left of travel) and `n`
/// is offset `−sep/2`. Returns `None` when the median is degenerate
/// (no non-zero-length segments).
///
/// The inner sub-trace of each meander is shorter than the outer one by
/// `2·sep` per pattern side-pair; real tools re-insert tiny patterns to
/// re-balance. [`length_compensation`] reports the residual so callers can
/// decide (the paper: "we restore the differential pairs and compensate
/// tiny patterns to sub-traces if needed").
pub fn restore_pair(median: &Polyline, sep: f64) -> Option<(Polyline, Polyline)> {
    let p = offset_polyline(median, sep / 2.0)?;
    let n = offset_polyline(median, -sep / 2.0)?;
    Some((p, n))
}

/// Signed length difference `length(p) − length(n)` of a restored pair —
/// the amount a tiny-pattern compensation pass would need to add to the
/// shorter side.
pub fn length_compensation(p: &Polyline, n: &Polyline) -> f64 {
    p.length() - n.length()
}

#[cfg(test)]
mod tests {
    use super::*;
    use meander_geom::Point;

    fn pl(coords: &[(f64, f64)]) -> Polyline {
        Polyline::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect())
    }

    #[test]
    fn straight_median_restores_parallel_pair() {
        let m = pl(&[(0.0, 0.0), (100.0, 0.0)]);
        let (p, n) = restore_pair(&m, 6.0).unwrap();
        assert!(p.points()[0].approx_eq(Point::new(0.0, 3.0)));
        assert!(n.points()[0].approx_eq(Point::new(0.0, -3.0)));
        assert!((p.distance_to_polyline(&n) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn meandered_median_restores_without_crossing() {
        // Median with one trombone pattern.
        let m = pl(&[
            (0.0, 0.0),
            (20.0, 0.0),
            (20.0, 15.0),
            (32.0, 15.0),
            (32.0, 0.0),
            (60.0, 0.0),
        ]);
        let (p, n) = restore_pair(&m, 6.0).unwrap();
        assert!(!p.is_self_intersecting());
        assert!(!n.is_self_intersecting());
        // A symmetric trombone has two left and two right turns, so the
        // per-corner gains/losses cancel: no net skew.
        let skew = length_compensation(&p, &n);
        assert!(
            skew.abs() < 1e-9,
            "symmetric meander skew must cancel, got {skew}"
        );
        // Minimum pair separation stays the pitch on straight runs.
        assert!(p.distance_to_polyline(&n) > 5.0);
    }

    #[test]
    fn single_corner_creates_skew() {
        // One 90° miter corner: the inner side loses sep/2 per leg and the
        // outer gains sep/2 per leg, so the pair skew is 2·sep.
        let m = pl(&[(0.0, 0.0), (40.0, 0.0), (40.0, 40.0)]);
        let (p, n) = restore_pair(&m, 6.0).unwrap();
        let skew = length_compensation(&p, &n);
        assert!(
            (skew.abs() - 12.0).abs() < 1e-9,
            "expected |skew| = 2·sep, got {skew}"
        );
        // Turning left (+y): P (left offset) is the inner, shorter side.
        assert!(skew < 0.0);
    }

    #[test]
    fn any_angle_median_restores() {
        let m = pl(&[(0.0, 0.0), (30.0, 18.0), (70.0, 42.0)]);
        let (p, n) = restore_pair(&m, 4.0).unwrap();
        let mid_p = p.point_at_length(p.length() / 2.0);
        let mid_n = n.point_at_length(n.length() / 2.0);
        assert!((m.distance_to_point(mid_p) - 2.0).abs() < 1e-6);
        assert!((m.distance_to_point(mid_n) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_median_rejected() {
        let m = pl(&[(5.0, 5.0), (5.0, 5.0)]);
        assert!(restore_pair(&m, 6.0).is_none());
    }

    #[test]
    fn compensation_zero_for_straight() {
        let m = pl(&[(0.0, 0.0), (50.0, 0.0)]);
        let (p, n) = restore_pair(&m, 6.0).unwrap();
        assert!(length_compensation(&p, &n).abs() < 1e-9);
    }
}
