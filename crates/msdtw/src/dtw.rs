//! Classic Dynamic Time Warping over node sequences (paper Eq. 17).

use meander_geom::Point;

/// One matched node pair: indices into the P and N node lists plus the
/// matching cost `d(i, j)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchedPair {
    /// Index into `traceP`'s nodes.
    pub i: usize,
    /// Index into `traceN`'s nodes.
    pub j: usize,
    /// Euclidean distance between the matched nodes.
    pub cost: f64,
}

/// Computes the optimal DTW node matching between two node sequences.
///
/// State `C[i][j]` is the minimum total cost of matching the first `i` nodes
/// of P with the first `j` nodes of N (Eq. 17); transitions step `(i−1,j)`,
/// `(i,j−1)`, `(i−1,j−1)`. Every node is matched at least once, multiple
/// nodes may match one node (which handles inconsistent node counts,
/// Fig. 10a), and matches are monotone along both traces.
///
/// Returns the matched pairs in path order from `(0, 0)` to `(I−1, J−1)`.
/// Returns an empty vector when either sequence is empty.
///
/// ```
/// use meander_geom::Point;
/// use meander_msdtw::dtw_match;
/// let p = [Point::new(0.0, 1.0), Point::new(10.0, 1.0)];
/// let n = [Point::new(0.0, -1.0), Point::new(10.0, -1.0)];
/// let m = dtw_match(&p, &n);
/// assert_eq!(m.len(), 2);
/// assert_eq!((m[0].i, m[0].j), (0, 0));
/// assert_eq!((m[1].i, m[1].j), (1, 1));
/// ```
pub fn dtw_match(p: &[Point], n: &[Point]) -> Vec<MatchedPair> {
    let rows = p.len();
    let cols = n.len();
    if rows == 0 || cols == 0 {
        return Vec::new();
    }

    // C[i][j]: min cost matching p[..=i] with n[..=j] (0-based, inclusive).
    let mut c = vec![f64::INFINITY; rows * cols];
    let idx = |i: usize, j: usize| i * cols + j;
    for i in 0..rows {
        for j in 0..cols {
            let d = p[i].distance(n[j]);
            let best_prev = if i == 0 && j == 0 {
                0.0
            } else {
                let mut b = f64::INFINITY;
                if i > 0 {
                    b = b.min(c[idx(i - 1, j)]);
                }
                if j > 0 {
                    b = b.min(c[idx(i, j - 1)]);
                }
                if i > 0 && j > 0 {
                    b = b.min(c[idx(i - 1, j - 1)]);
                }
                b
            };
            c[idx(i, j)] = best_prev + d;
        }
    }

    // Backtrack from (rows-1, cols-1): prefer the diagonal on ties so the
    // path stays short.
    let mut path = Vec::with_capacity(rows.max(cols));
    let (mut i, mut j) = (rows - 1, cols - 1);
    loop {
        path.push(MatchedPair {
            i,
            j,
            cost: p[i].distance(n[j]),
        });
        if i == 0 && j == 0 {
            break;
        }
        let here = c[idx(i, j)] - p[i].distance(n[j]);
        let diag = if i > 0 && j > 0 {
            c[idx(i - 1, j - 1)]
        } else {
            f64::INFINITY
        };
        let up = if i > 0 {
            c[idx(i - 1, j)]
        } else {
            f64::INFINITY
        };
        let left = if j > 0 {
            c[idx(i, j - 1)]
        } else {
            f64::INFINITY
        };
        if (diag - here).abs() <= 1e-9 && diag <= up && diag <= left {
            i -= 1;
            j -= 1;
        } else if up <= left && (up - here).abs() <= 1e-9 {
            i -= 1;
        } else if (left - here).abs() <= 1e-9 {
            j -= 1;
        } else if diag <= up && diag <= left {
            i -= 1;
            j -= 1;
        } else if up <= left {
            i -= 1;
        } else {
            j -= 1;
        }
    }
    path.reverse();
    path
}

/// Total cost of a matching (sum of pair costs).
pub fn total_cost(pairs: &[MatchedPair]) -> f64 {
    pairs.iter().map(|p| p.cost).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn equal_length_parallel_matches_one_to_one() {
        let p = pts(&[(0.0, 1.0), (5.0, 1.0), (10.0, 1.0)]);
        let n = pts(&[(0.0, -1.0), (5.0, -1.0), (10.0, -1.0)]);
        let m = dtw_match(&p, &n);
        assert_eq!(m.len(), 3);
        for (k, pair) in m.iter().enumerate() {
            assert_eq!(pair.i, k);
            assert_eq!(pair.j, k);
            assert!((pair.cost - 2.0).abs() < 1e-12);
        }
        assert!((total_cost(&m) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn redundant_corner_nodes_multi_match() {
        // P has three nodes clustered at the corner, N has one (Fig. 10a).
        let p = pts(&[
            (0.0, 1.0),
            (9.6, 1.0),
            (10.0, 1.0),
            (10.0, 1.4),
            (10.0, 10.0),
        ]);
        let n = pts(&[(0.0, -1.0), (10.0, -1.0), (10.0, 10.0)]);
        let m = dtw_match(&p, &n);
        // Every P node matched.
        let matched_i: std::collections::BTreeSet<usize> = m.iter().map(|p| p.i).collect();
        assert_eq!(matched_i.len(), 5);
        // Every N node matched.
        let matched_j: std::collections::BTreeSet<usize> = m.iter().map(|p| p.j).collect();
        assert_eq!(matched_j.len(), 3);
        // The corner cluster (P nodes 1..=3) all match N node 1.
        for pair in &m {
            if (1..=3).contains(&pair.i) {
                assert_eq!(pair.j, 1, "pair {pair:?}");
            }
        }
    }

    #[test]
    fn path_is_monotone() {
        let p = pts(&[(0.0, 0.0), (3.0, 0.2), (7.0, -0.1), (10.0, 0.0)]);
        let n = pts(&[(0.0, 2.0), (5.0, 2.0), (10.0, 2.0)]);
        let m = dtw_match(&p, &n);
        for w in m.windows(2) {
            assert!(w[1].i >= w[0].i);
            assert!(w[1].j >= w[0].j);
            assert!(w[1].i + w[1].j > w[0].i + w[0].j);
        }
        assert_eq!((m[0].i, m[0].j), (0, 0));
        let last = m.last().unwrap();
        assert_eq!((last.i, last.j), (3, 2));
    }

    #[test]
    fn empty_inputs() {
        assert!(dtw_match(&[], &pts(&[(0.0, 0.0)])).is_empty());
        assert!(dtw_match(&pts(&[(0.0, 0.0)]), &[]).is_empty());
        assert!(dtw_match(&[], &[]).is_empty());
    }

    #[test]
    fn single_nodes_match() {
        let m = dtw_match(&pts(&[(0.0, 0.0)]), &pts(&[(3.0, 4.0)]));
        assert_eq!(m.len(), 1);
        assert!((m[0].cost - 5.0).abs() < 1e-12);
    }

    #[test]
    fn matching_minimizes_cost() {
        // Shifted sequences: DTW should warp rather than match 1:1.
        let p = pts(&[(0.0, 1.0), (1.0, 1.0), (5.0, 1.0), (10.0, 1.0)]);
        let n = pts(&[(0.0, -1.0), (5.0, -1.0), (9.0, -1.0), (10.0, -1.0)]);
        let m = dtw_match(&p, &n);
        // Optimal total: every node pairs with its nearest counterpart.
        let naive: f64 = p.iter().zip(&n).map(|(a, b)| a.distance(*b)).sum();
        assert!(total_cost(&m) <= naive + 1e-9);
    }
}
