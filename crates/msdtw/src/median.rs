//! Median-point generation from matched pairs (paper Eq. 18).

use crate::dtw::MatchedPair;
use meander_geom::Point;

/// One connected component of the match graph: the P-node indices and
/// N-node indices joined (transitively) by matched pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// P-node indices in the component (sorted).
    pub p_nodes: Vec<usize>,
    /// N-node indices in the component (sorted).
    pub n_nodes: Vec<usize>,
}

/// Groups matched pairs into connected components.
///
/// "we connect every pair of matched nodes, thereby making all nodes compose
/// several connected components" (Sec. V-A). DTW matches are monotone, so
/// components are consecutive runs sharing a node; a linear sweep suffices.
pub fn components(pairs: &[MatchedPair]) -> Vec<Component> {
    let mut out: Vec<Component> = Vec::new();
    for pair in pairs {
        let joined = out
            .last_mut()
            .filter(|c| c.p_nodes.contains(&pair.i) || c.n_nodes.contains(&pair.j));
        match joined {
            Some(c) => {
                if !c.p_nodes.contains(&pair.i) {
                    c.p_nodes.push(pair.i);
                }
                if !c.n_nodes.contains(&pair.j) {
                    c.n_nodes.push(pair.j);
                }
            }
            None => out.push(Component {
                p_nodes: vec![pair.i],
                n_nodes: vec![pair.j],
            }),
        }
    }
    for c in &mut out {
        c.p_nodes.sort_unstable();
        c.n_nodes.sort_unstable();
    }
    out
}

/// Median point of one component per Eq. 18: the midpoint of the two
/// per-side centroids — "we first respectively calculate the median point of
/// nodes on each sub-trace and then use them to calculate the final median
/// point", so multi-matched nodes cannot pull the median toward one side.
pub fn component_median(c: &Component, p: &[Point], n: &[Point]) -> Point {
    let pc = Point::centroid(&c.p_nodes.iter().map(|&i| p[i]).collect::<Vec<_>>());
    let nc = Point::centroid(&c.n_nodes.iter().map(|&j| n[j]).collect::<Vec<_>>());
    pc.midpoint(nc)
}

/// Median points for all components, in path order.
pub fn median_points(pairs: &[MatchedPair], p: &[Point], n: &[Point]) -> Vec<Point> {
    components(pairs)
        .iter()
        .map(|c| component_median(c, p, n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(i: usize, j: usize) -> MatchedPair {
        MatchedPair { i, j, cost: 0.0 }
    }

    #[test]
    fn one_to_one_components() {
        let pairs = [pair(0, 0), pair(1, 1), pair(2, 2)];
        let cs = components(&pairs);
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[1].p_nodes, vec![1]);
        assert_eq!(cs[1].n_nodes, vec![1]);
    }

    #[test]
    fn multi_match_merges_into_one_component() {
        // P nodes 1,2,3 all match N node 1.
        let pairs = [pair(0, 0), pair(1, 1), pair(2, 1), pair(3, 1), pair(4, 2)];
        let cs = components(&pairs);
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[1].p_nodes, vec![1, 2, 3]);
        assert_eq!(cs[1].n_nodes, vec![1]);
    }

    #[test]
    fn median_is_midpoint_of_side_centroids() {
        // Corner cluster: three P nodes around (10, 1), one N node (10, -1).
        let p = vec![
            Point::new(0.0, 1.0),
            Point::new(9.8, 1.0),
            Point::new(10.0, 1.0),
            Point::new(10.2, 1.0),
        ];
        let n = vec![Point::new(0.0, -1.0), Point::new(10.0, -1.0)];
        let pairs = [pair(0, 0), pair(1, 1), pair(2, 1), pair(3, 1)];
        let meds = median_points(&pairs, &p, &n);
        assert_eq!(meds.len(), 2);
        // Cluster centroid (10, 1) midpointed with (10, -1) → (10, 0); a
        // naive average over all four nodes would drift toward P.
        assert!(meds[1].approx_eq(Point::new(10.0, 0.0)));
    }

    #[test]
    fn median_of_parallel_pair_is_centerline() {
        let p = vec![Point::new(0.0, 3.0), Point::new(50.0, 3.0)];
        let n = vec![Point::new(0.0, -3.0), Point::new(50.0, -3.0)];
        let pairs = [pair(0, 0), pair(1, 1)];
        let meds = median_points(&pairs, &p, &n);
        assert!(meds[0].approx_eq(Point::new(0.0, 0.0)));
        assert!(meds[1].approx_eq(Point::new(50.0, 0.0)));
    }

    #[test]
    fn empty_pairs_empty_medians() {
        assert!(median_points(&[], &[], &[]).is_empty());
    }
}
