//! # meander-msdtw
//!
//! Multi-Scale Dynamic Time Warping (paper Sec. V): converts a — possibly
//! imperfectly coupled — differential pair into a single *median trace* that
//! the length-matching engine can meander, and restores the pair afterwards.
//!
//! Why not simple parallel-segment detection? Real pairs carry redundant
//! corner nodes ("short segments", Fig. 10a) and tiny length-compensation
//! patterns (Fig. 10b), so their segments are frequently *not* parallel.
//! MSDTW instead matches **nodes**:
//!
//! 1. [`dtw`] — classic DTW over the two node sequences (Eq. 17),
//! 2. [`filter`] — matched pairs with cost `> √2·r` are noise from tiny
//!    patterns and are dropped; their nodes become *unpaired*,
//! 3. [`multiscale`] — when the pair crosses several DRAs the distance rule
//!    `r` is ambiguous; Alg. 3 matches at increasing scales, splitting the
//!    pair into sub-pairs at each round's accepted matches,
//! 4. [`median`] — accepted matches form connected components whose nodes
//!    average into median points (Eq. 18),
//! 5. [`restore`] — after meandering, offsetting the median by `± sep/2`
//!    recovers the sub-traces; the virtual DRC from
//!    [`meander_drc::virtualize_rules`] guarantees the restored pair is
//!    legal.
//!
//! ```
//! use meander_geom::{Point, Polyline};
//! use meander_msdtw::{merge_pair, PairGeometry};
//!
//! let p = Polyline::new(vec![Point::new(0.0, 3.0), Point::new(100.0, 3.0)]);
//! let n = Polyline::new(vec![Point::new(0.0, -3.0), Point::new(100.0, -3.0)]);
//! let merged = merge_pair(&PairGeometry::new(&p, &n, 6.0)).unwrap();
//! assert_eq!(merged.median.point_count(), 2);
//! assert!(merged.median.points()[0].approx_eq(Point::new(0.0, 0.0)));
//! ```

pub mod dtw;
pub mod filter;
pub mod median;
pub mod multiscale;
pub mod restore;

pub use dtw::{dtw_match, MatchedPair};
pub use median::{components, median_points};
pub use multiscale::{merge_pair, msdtw_match, MergeResult, MsdtwError, PairGeometry};
pub use restore::restore_pair;
