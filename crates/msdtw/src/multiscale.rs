//! The multi-scale recursion (paper Alg. 3) and the top-level merge.

use crate::dtw::{dtw_match, MatchedPair};
use crate::filter::filter_pairs;
use crate::median::median_points;
use meander_geom::{Point, Polyline};

/// Input geometry of a differential pair to merge.
#[derive(Debug, Clone)]
pub struct PairGeometry<'a> {
    /// Positive sub-trace.
    pub p: &'a Polyline,
    /// Negative sub-trace.
    pub n: &'a Polyline,
    /// Distance-rule ladder `R = {r0 < r1 < …}`. For a single-DRA pair this
    /// is one value: the pair pitch.
    pub scales: Vec<f64>,
}

impl<'a> PairGeometry<'a> {
    /// Single-scale pair (one DRA) with pitch `sep`.
    pub fn new(p: &'a Polyline, n: &'a Polyline, sep: f64) -> Self {
        PairGeometry {
            p,
            n,
            scales: vec![sep],
        }
    }

    /// Multi-scale pair: `scales` must be non-empty; they are sorted
    /// ascending internally as Alg. 3 requires.
    pub fn with_scales(p: &'a Polyline, n: &'a Polyline, mut scales: Vec<f64>) -> Self {
        assert!(!scales.is_empty(), "need at least one distance rule");
        scales.sort_by(|a, b| a.partial_cmp(b).expect("finite scales"));
        PairGeometry { p, n, scales }
    }
}

/// Result of merging a pair into a median trace.
#[derive(Debug, Clone)]
pub struct MergeResult {
    /// The merged median trace (meander this, then
    /// [`crate::restore_pair`]).
    pub median: Polyline,
    /// All accepted matched pairs, in path order.
    pub matches: Vec<MatchedPair>,
    /// P-node indices filtered as tiny-pattern noise.
    pub unpaired_p: Vec<usize>,
    /// N-node indices filtered as tiny-pattern noise.
    pub unpaired_n: Vec<usize>,
    /// Extra length carried by tiny patterns on P minus on N (signed):
    /// `length(P) − length(N)`; restoration re-compensates this.
    pub length_skew: f64,
}

/// Merge failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsdtwError {
    /// Fewer than 2 median points survive — the pair is too decoupled to
    /// merge.
    DegenerateMedian,
}

impl std::fmt::Display for MsdtwError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MsdtwError::DegenerateMedian => {
                write!(f, "median trace degenerate: pair too decoupled to merge")
            }
        }
    }
}

impl std::error::Error for MsdtwError {}

/// A sub-pair under recursion: index ranges (inclusive) into P and N nodes.
#[derive(Debug, Clone, Copy)]
struct SubPair {
    p_lo: usize,
    p_hi: usize,
    n_lo: usize,
    n_hi: usize,
}

/// Runs the multi-scale matching of Alg. 3 and returns all accepted matched
/// pairs in path order.
///
/// Round `k` matches nodes inside every surviving sub-pair with DTW under
/// distance rule `r_k`, drops pairs costing more than `√2·r_k`, splits each
/// sub-pair at its accepted matches, and discards sub-pairs with an empty
/// side ("no more meaningful matching can occur"). The first and last node
/// pairs of the *original* pair are protected so pad endpoints always merge.
pub fn msdtw_match(p: &[Point], n: &[Point], scales: &[f64]) -> Vec<MatchedPair> {
    if p.is_empty() || n.is_empty() {
        return Vec::new();
    }
    let last = (p.len() - 1, n.len() - 1);
    let protect = |m: &MatchedPair| (m.i == 0 && m.j == 0) || (m.i == last.0 && m.j == last.1);

    let mut accepted: Vec<MatchedPair> = Vec::new();
    let mut subs = vec![SubPair {
        p_lo: 0,
        p_hi: p.len() - 1,
        n_lo: 0,
        n_hi: n.len() - 1,
    }];

    for &r in scales {
        let mut next_subs: Vec<SubPair> = Vec::new();
        for sp in subs.drain(..) {
            let pv = &p[sp.p_lo..=sp.p_hi];
            let nv = &n[sp.n_lo..=sp.n_hi];
            let raw = dtw_match(pv, nv);
            // Shift indices back to global space.
            let raw: Vec<MatchedPair> = raw
                .into_iter()
                .map(|m| MatchedPair {
                    i: m.i + sp.p_lo,
                    j: m.j + sp.n_lo,
                    cost: m.cost,
                })
                .collect();
            let (kept, _dropped) = filter_pairs(&raw, r, protect);
            // Split at kept matches: gaps between consecutive kept pairs
            // containing skipped nodes become sub-pairs for the next scale.
            if kept.is_empty() {
                next_subs.push(sp);
                continue;
            }
            // Leading gap.
            let first = kept.first().expect("non-empty");
            push_gap(
                &mut next_subs,
                sp.p_lo,
                first.i.wrapping_sub(1),
                sp.n_lo,
                first.j.wrapping_sub(1),
                first.i > sp.p_lo,
                first.j > sp.n_lo,
            );
            for w in kept.windows(2) {
                push_gap(
                    &mut next_subs,
                    w[0].i + 1,
                    w[1].i.wrapping_sub(1),
                    w[0].j + 1,
                    w[1].j.wrapping_sub(1),
                    w[1].i > w[0].i + 1,
                    w[1].j > w[0].j + 1,
                );
            }
            let lastk = kept.last().expect("non-empty");
            push_gap(
                &mut next_subs,
                lastk.i + 1,
                sp.p_hi,
                lastk.j + 1,
                sp.n_hi,
                sp.p_hi > lastk.i,
                sp.n_hi > lastk.j,
            );
            accepted.extend(kept);
        }
        subs = next_subs;
        if subs.is_empty() {
            break;
        }
    }

    accepted.sort_by(|a, b| a.i.cmp(&b.i).then(a.j.cmp(&b.j)));
    accepted.dedup_by(|a, b| a.i == b.i && a.j == b.j);
    accepted
}

/// Records the gap `[p_lo..=p_hi] × [n_lo..=n_hi]` as a sub-pair when *both*
/// sides are non-empty (Alg. 3 drops one-sided gaps: their nodes are tiny
/// patterns, which "shall only appear on either traceP or traceN").
#[allow(clippy::too_many_arguments)]
fn push_gap(
    subs: &mut Vec<SubPair>,
    p_lo: usize,
    p_hi: usize,
    n_lo: usize,
    n_hi: usize,
    p_nonempty: bool,
    n_nonempty: bool,
) {
    if p_nonempty && n_nonempty && p_lo <= p_hi && n_lo <= n_hi {
        subs.push(SubPair {
            p_lo,
            p_hi,
            n_lo,
            n_hi,
        });
    }
}

/// Merges a differential pair into its median trace (the whole Sec. V
/// pipeline: MSDTW match → filter → components → median points).
///
/// # Errors
///
/// [`MsdtwError::DegenerateMedian`] when fewer than two median points
/// survive filtering.
pub fn merge_pair(input: &PairGeometry<'_>) -> Result<MergeResult, MsdtwError> {
    let p = input.p.points();
    let n = input.n.points();
    let matches = msdtw_match(p, n, &input.scales);
    let meds = median_points(&matches, p, n);
    if meds.len() < 2 {
        return Err(MsdtwError::DegenerateMedian);
    }
    // Unpaired = nodes not present in any accepted match.
    let kept_i: std::collections::BTreeSet<usize> = matches.iter().map(|m| m.i).collect();
    let kept_j: std::collections::BTreeSet<usize> = matches.iter().map(|m| m.j).collect();
    let unpaired_p: Vec<usize> = (0..p.len()).filter(|i| !kept_i.contains(i)).collect();
    let unpaired_n: Vec<usize> = (0..n.len()).filter(|j| !kept_j.contains(j)).collect();

    let mut median = Polyline::new(meds);
    median.simplify();
    Ok(MergeResult {
        median,
        matches,
        unpaired_p,
        unpaired_n,
        length_skew: input.p.length() - input.n.length(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(coords: &[(f64, f64)]) -> Polyline {
        Polyline::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect())
    }

    #[test]
    fn clean_pair_merges_to_centerline() {
        let p = pl(&[(0.0, 3.0), (80.0, 3.0), (80.0, 50.0)]);
        let n = pl(&[(0.0, -3.0), (86.0, -3.0), (86.0, 50.0)]);
        let r = merge_pair(&PairGeometry::new(&p, &n, 6.0)).unwrap();
        assert!(r.unpaired_p.is_empty());
        assert!(r.unpaired_n.is_empty());
        // Median starts on the centerline.
        assert!(r.median.points()[0].approx_eq(Point::new(0.0, 0.0)));
        // Corner median ≈ (83, 0).
        assert!(r.median.points()[1].distance(Point::new(83.0, 0.0)) < 1e-9);
    }

    #[test]
    fn tiny_pattern_nodes_filtered() {
        // N carries a tiny bump; its top nodes must be filtered out.
        let sep = 6.0;
        let bump_h = 4.0; // sep + bump > √2·sep
        let p = pl(&[(0.0, 3.0), (100.0, 3.0)]);
        let n = pl(&[
            (0.0, -3.0),
            (40.0, -3.0),
            (40.0, -3.0 - bump_h),
            (44.0, -3.0 - bump_h),
            (44.0, -3.0),
            (100.0, -3.0),
        ]);
        let r = merge_pair(&PairGeometry::new(&p, &n, sep)).unwrap();
        // The two bump-top nodes (indices 2, 3) are unpaired.
        assert!(r.unpaired_n.contains(&2));
        assert!(r.unpaired_n.contains(&3));
        assert!(r.unpaired_p.is_empty());
        // Median stays on the centerline: no vertex below y = -1.
        for pt in r.median.points() {
            assert!(pt.y.abs() < 1.0, "median shifted: {pt}");
        }
        // Length skew recorded (N longer than P by 2·bump_h).
        assert!((r.length_skew + 2.0 * bump_h).abs() < 1e-9);
    }

    #[test]
    fn naive_single_scale_fails_where_multiscale_succeeds() {
        // Paper Fig. 12: the pair runs at pitch 4 in the first DRA (nodes
        // E/F regime) and pitch 12 in the second (G/H regime); a tiny
        // pattern sits in the narrow DRA with node costs of ~12 — above
        // √2·r0 ≈ 5.66 but below √2·r1 ≈ 16.97.
        let r0 = 4.0;
        let r1 = 12.0;
        let p: Vec<Point> = [(0.0, 2.0), (30.0, 2.0), (60.0, 6.0), (100.0, 6.0)]
            .iter()
            .map(|&(x, y)| Point::new(x, y))
            .collect();
        let n: Vec<Point> = [
            (0.0, -2.0),
            (30.0, -2.0),
            (30.0, -10.0), // tiny-pattern node, cost 12 to (30, 2)
            (32.0, -10.0), // tiny-pattern node
            (32.0, -2.0),
            (60.0, -6.0),
            (100.0, -6.0),
        ]
        .iter()
        .map(|&(x, y)| Point::new(x, y))
        .collect();
        // Multi-scale: bump nodes filtered at scale r0, wide-DRA nodes
        // matched at scale r1.
        let multi = msdtw_match(&p, &n, &[r0, r1]);
        let matched_n: std::collections::BTreeSet<usize> = multi.iter().map(|m| m.j).collect();
        assert!(!matched_n.contains(&2), "bump node survived multiscale");
        assert!(!matched_n.contains(&3), "bump node survived multiscale");
        assert!(matched_n.contains(&5), "wide-DRA node must match");
        // Single wide scale keeps the bump nodes (the failure mode the
        // paper's Fig. 12a illustrates).
        let single = msdtw_match(&p, &n, &[r1]);
        let matched_single: std::collections::BTreeSet<usize> =
            single.iter().map(|m| m.j).collect();
        assert!(
            matched_single.contains(&2) || matched_single.contains(&3),
            "wide-rule matching should NOT filter the bump"
        );
    }

    #[test]
    fn endpoints_always_merge() {
        // Badly decoupled at the far end: protection keeps the boundary
        // match.
        let p = pl(&[(0.0, 3.0), (100.0, 3.0), (100.0, 40.0)]);
        let n = pl(&[(0.0, -3.0), (100.0, -3.0), (130.0, 30.0)]);
        let r = merge_pair(&PairGeometry::new(&p, &n, 6.0)).unwrap();
        let last = r.matches.last().unwrap();
        assert_eq!(last.i, 2);
        assert_eq!(last.j, 2);
    }

    #[test]
    fn coincident_node_clusters_still_merge() {
        // Nearly-coincident clusters collapse components but the boundary
        // protection keeps both endpoints, so the merge still succeeds.
        let p = pl(&[(0.0, 0.0), (0.0, 0.1)]);
        let n = pl(&[(0.0, -0.2), (0.0, -0.1)]);
        let r = merge_pair(&PairGeometry::new(&p, &n, 6.0)).unwrap();
        assert!(r.median.point_count() >= 2);
    }

    #[test]
    fn error_display_mentions_decoupling() {
        assert!(format!("{}", MsdtwError::DegenerateMedian).contains("decoupled"));
    }

    #[test]
    fn scales_sorted_by_constructor() {
        let p = pl(&[(0.0, 3.0), (10.0, 3.0)]);
        let n = pl(&[(0.0, -3.0), (10.0, -3.0)]);
        let g = PairGeometry::with_scales(&p, &n, vec![12.0, 4.0]);
        assert_eq!(g.scales, vec![4.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_scales_panic() {
        let p = pl(&[(0.0, 3.0), (10.0, 3.0)]);
        let n = pl(&[(0.0, -3.0), (10.0, -3.0)]);
        let _ = PairGeometry::with_scales(&p, &n, vec![]);
    }
}
