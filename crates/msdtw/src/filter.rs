//! Unpaired-node filtering (paper Sec. V-B).

use crate::dtw::MatchedPair;

/// Cost threshold factor: a legal matched pair, even across an obtuse
/// corner, costs at most `√2 · r` (paper: "Considering the rotation angle of
/// a trace must be obtuse, any matched pair, even if at a corner, shall meet
/// cost ≤ √2·r, otherwise … it is a matched pair involving nodes of tiny
/// patterns").
pub const FILTER_FACTOR: f64 = std::f64::consts::SQRT_2;

/// Splits `pairs` into kept matches and dropped (noise) matches under
/// distance rule `r`.
///
/// `protected` marks pair indices that are never dropped regardless of cost
/// (used for the boundary matches that anchor pad endpoints).
pub fn filter_pairs(
    pairs: &[MatchedPair],
    r: f64,
    protected: impl Fn(&MatchedPair) -> bool,
) -> (Vec<MatchedPair>, Vec<MatchedPair>) {
    let threshold = FILTER_FACTOR * r;
    let mut kept = Vec::with_capacity(pairs.len());
    let mut dropped = Vec::new();
    for p in pairs {
        if p.cost <= threshold + 1e-9 || protected(p) {
            kept.push(*p);
        } else {
            dropped.push(*p);
        }
    }
    (kept, dropped)
}

/// Node indices that appear only in dropped pairs — the *unpaired nodes*
/// excluded from median generation.
pub fn unpaired_nodes(kept: &[MatchedPair], dropped: &[MatchedPair]) -> (Vec<usize>, Vec<usize>) {
    use std::collections::BTreeSet;
    let kept_i: BTreeSet<usize> = kept.iter().map(|p| p.i).collect();
    let kept_j: BTreeSet<usize> = kept.iter().map(|p| p.j).collect();
    let mut up: BTreeSet<usize> = BTreeSet::new();
    let mut un: BTreeSet<usize> = BTreeSet::new();
    for p in dropped {
        if !kept_i.contains(&p.i) {
            up.insert(p.i);
        }
        if !kept_j.contains(&p.j) {
            un.insert(p.j);
        }
    }
    (up.into_iter().collect(), un.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(i: usize, j: usize, cost: f64) -> MatchedPair {
        MatchedPair { i, j, cost }
    }

    #[test]
    fn threshold_is_sqrt2_r() {
        let pairs = [pair(0, 0, 5.0), pair(1, 1, 7.0), pair(2, 2, 7.2)];
        let r = 5.0; // threshold ≈ 7.071
        let (kept, dropped) = filter_pairs(&pairs, r, |_| false);
        assert_eq!(kept.len(), 2);
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].i, 2);
    }

    #[test]
    fn protection_overrides_cost() {
        let pairs = [pair(0, 0, 100.0), pair(1, 1, 1.0)];
        let (kept, dropped) = filter_pairs(&pairs, 1.0, |p| p.i == 0);
        assert_eq!(kept.len(), 2);
        assert!(dropped.is_empty());
    }

    #[test]
    fn unpaired_excludes_rescued_nodes() {
        // Node i=1 appears in a kept pair and a dropped pair: not unpaired.
        let kept = [pair(0, 0, 1.0), pair(1, 1, 1.0)];
        let dropped = [pair(1, 2, 9.0), pair(2, 3, 9.0)];
        let (up, un) = unpaired_nodes(&kept, &dropped);
        assert_eq!(up, vec![2]);
        assert_eq!(un, vec![2, 3]);
    }

    #[test]
    fn all_kept_gives_no_unpaired() {
        let pairs = [pair(0, 0, 1.0), pair(1, 1, 1.0)];
        let (kept, dropped) = filter_pairs(&pairs, 2.0, |_| false);
        assert_eq!(kept.len(), 2);
        let (up, un) = unpaired_nodes(&kept, &dropped);
        assert!(up.is_empty() && un.is_empty());
    }
}
