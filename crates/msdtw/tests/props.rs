//! Property tests for MSDTW invariants.

use meander_geom::{Point, Polyline, Vector};
use meander_msdtw::{dtw_match, merge_pair, restore_pair, PairGeometry};
use proptest::prelude::*;

fn walk(seed: &[f64], step: f64) -> Vec<Point> {
    // Monotone-x polyline with bounded y wiggle.
    let mut pts = vec![Point::new(0.0, 0.0)];
    for (i, &dy) in seed.iter().enumerate() {
        let last = pts[i];
        pts.push(Point::new(last.x + step, last.y + dy));
    }
    pts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dtw_path_is_monotone_and_covers(
        p_seed in proptest::collection::vec(-3.0..3.0f64, 1..20),
        n_seed in proptest::collection::vec(-3.0..3.0f64, 1..20),
    ) {
        let p = walk(&p_seed, 5.0);
        let n: Vec<Point> = walk(&n_seed, 5.0)
            .into_iter()
            .map(|q| q + Vector::new(0.0, -6.0))
            .collect();
        let m = dtw_match(&p, &n);
        // Boundary matches.
        prop_assert_eq!((m[0].i, m[0].j), (0, 0));
        let last = m.last().unwrap();
        prop_assert_eq!((last.i, last.j), (p.len() - 1, n.len() - 1));
        // Monotone, single-step.
        for w in m.windows(2) {
            prop_assert!(w[1].i >= w[0].i && w[1].j >= w[0].j);
            prop_assert!(w[1].i - w[0].i <= 1 && w[1].j - w[0].j <= 1);
            prop_assert!(w[1].i + w[1].j > w[0].i + w[0].j);
        }
        // Every node matched.
        let is_cover = (0..p.len()).all(|i| m.iter().any(|x| x.i == i))
            && (0..n.len()).all(|j| m.iter().any(|x| x.j == j));
        prop_assert!(is_cover);
        // Costs are the true distances.
        for x in &m {
            prop_assert!((x.cost - p[x.i].distance(n[x.j])).abs() < 1e-12);
        }
    }

    #[test]
    fn clean_parallel_pair_merges_to_exact_centerline(
        n_nodes in 2usize..12,
        sep in 2.0..12.0f64,
        angle in 0.0..std::f64::consts::PI,
    ) {
        // A straight pair at an arbitrary angle.
        let dir = Vector::new(angle.cos(), angle.sin());
        let normal = dir.perp();
        let a = Point::new(3.0, -2.0);
        let p: Vec<Point> = (0..n_nodes)
            .map(|i| a + dir * (i as f64 * 10.0) + normal * (sep / 2.0))
            .collect();
        let n: Vec<Point> = (0..n_nodes)
            .map(|i| a + dir * (i as f64 * 10.0) - normal * (sep / 2.0))
            .collect();
        let p = Polyline::new(p);
        let n = Polyline::new(n);
        let merged = merge_pair(&PairGeometry::new(&p, &n, sep)).unwrap();
        // The median is the centerline.
        for &pt in merged.median.points() {
            prop_assert!(p.distance_to_point(pt) - sep / 2.0 < 1e-6);
            prop_assert!((p.distance_to_point(pt) - n.distance_to_point(pt)).abs() < 1e-6);
        }
        prop_assert!(merged.unpaired_p.is_empty());
        prop_assert!(merged.unpaired_n.is_empty());
        prop_assert!((merged.length_skew).abs() < 1e-9);
    }

    #[test]
    fn restore_round_trip_distance(
        seed in proptest::collection::vec(-4.0..4.0f64, 1..10),
        sep in 2.0..10.0f64,
    ) {
        let m = Polyline::new(walk(&seed, 12.0));
        if let Some((p, n)) = restore_pair(&m, sep) {
            // Mid-segment samples of each side sit sep/2 from the median.
            for seg in p.segments() {
                let q = seg.midpoint();
                prop_assert!((m.distance_to_point(q) - sep / 2.0).abs() < 0.5);
            }
            // The two sides never cross each other.
            prop_assert!(p.distance_to_polyline(&n) > 0.0);
        }
    }

    #[test]
    fn tiny_patterns_always_filtered(
        base_x in 20.0..60.0f64,
        bump_w in 1.0..4.0f64,
        extra in 0.1..3.0f64,
    ) {
        let sep = 6.0;
        // Bump depth beyond the filter threshold.
        let bump_h = (std::f64::consts::SQRT_2 - 1.0) * sep + extra;
        let p = Polyline::new(vec![Point::new(0.0, 3.0), Point::new(100.0, 3.0)]);
        let n = Polyline::new(vec![
            Point::new(0.0, -3.0),
            Point::new(base_x, -3.0),
            Point::new(base_x, -3.0 - bump_h),
            Point::new(base_x + bump_w, -3.0 - bump_h),
            Point::new(base_x + bump_w, -3.0),
            Point::new(100.0, -3.0),
        ]);
        let merged = merge_pair(&PairGeometry::new(&p, &n, sep)).unwrap();
        // Bump-top nodes filtered; median undisturbed.
        prop_assert!(merged.unpaired_n.contains(&2));
        prop_assert!(merged.unpaired_n.contains(&3));
        for &pt in merged.median.points() {
            prop_assert!(pt.y.abs() < 1.0, "median shifted to {pt}");
        }
    }
}
