//! # meander-bench
//!
//! Regenerates every table and figure of the paper's evaluation section
//! (Sec. VI). Each experiment exists twice:
//!
//! * a **binary** (`table1`, `table2`, `figures`) that prints the table
//!   rows / writes the SVG figures,
//! * a **Criterion bench** (`benches/`) that measures the kernels behind
//!   the runtime columns and prints the same rows into the bench log.
//!
//! The library part holds the shared experiment drivers so binaries,
//! benches, and integration tests all run exactly the same code.

pub mod table1;
pub mod table2;

pub use table1::{run_table1_case, Table1Row};
pub use table2::{run_table2_case, Table2Row};
