//! Table II driver: extension upper bound with and without DP.

use meander_core::baseline::{extend_trace_fixed, FixedTrackOptions};
use meander_core::extend::ExtendInput;
use meander_core::{extend_trace, ExtendConfig};
use meander_layout::gen::table2_case;

/// One row of Table II.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Case number (1–6).
    pub case_no: usize,
    /// `d_gap / w_trace`.
    pub dgap_ratio: f64,
    /// `l_original / d_gap`.
    pub loriginal_ratio: f64,
    /// Extension upper bound with DP, percent (paper Eq. 20).
    pub with_dp: f64,
    /// Extension upper bound without DP, percent.
    pub without_dp: f64,
}

/// Runs one Table II case: both algorithms extend the via-field trace as
/// far as they can (`l_target = 50·l_original`), reporting
/// `(l_ext − l_orig)/l_orig · 100` (Eq. 20).
pub fn run_table2_case(case_no: usize) -> Table2Row {
    let case = table2_case(case_no);
    let trace = case.board.trace(case.trace).expect("trace").clone();
    let area = case
        .board
        .area(case.trace)
        .expect("area")
        .polygons()
        .to_vec();
    let obstacles: Vec<meander_geom::Polygon> = case
        .board
        .obstacles()
        .iter()
        .map(|o| o.polygon().clone())
        .collect();
    let rules = *trace.rules();
    let loriginal = trace.length();
    let target = loriginal * 50.0;
    let config = ExtendConfig {
        // Upper-bound hunt: let the queue run long.
        max_iterations: 2000,
        ..ExtendConfig::default()
    };

    let input = ExtendInput {
        trace: trace.centerline(),
        target,
        rules: &rules,
        area: &area,
        obstacles: &obstacles,
    };
    let dp = extend_trace(&input, &config);
    let fixed = extend_trace_fixed(&input, &config, &FixedTrackOptions::default());

    Table2Row {
        case_no,
        dgap_ratio: case.dgap_ratio,
        loriginal_ratio: case.loriginal_ratio,
        with_dp: (dp.achieved - loriginal) / loriginal * 100.0,
        without_dp: (fixed.achieved - loriginal) / loriginal * 100.0,
    }
}

/// Formats the header of the printed table.
pub fn header() -> String {
    format!(
        "{:<4} {:>11} {:>15} {:>12} {:>12}",
        "case", "dgap/wtrace", "loriginal/dgap", "withDP(%)", "withoutDP(%)"
    )
}

impl std::fmt::Display for Table2Row {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<4} {:>11.1} {:>15.2} {:>12.2} {:>12.2}",
            self.case_no, self.dgap_ratio, self.loriginal_ratio, self.with_dp, self.without_dp
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dp_dominates_at_tight_drc() {
        // Paper shape: comparable at small dgap, DP wins big at dgap = 5w.
        let tight = run_table2_case(6);
        assert!(
            tight.with_dp > tight.without_dp,
            "DP {:.1}% vs fixed {:.1}%",
            tight.with_dp,
            tight.without_dp
        );
    }

    #[test]
    fn loose_drc_is_competitive() {
        let loose = run_table2_case(1);
        // Both meander a lot; the gap between them is comparatively small.
        assert!(loose.with_dp > 100.0, "{loose:?}");
        assert!(loose.without_dp > 100.0, "{loose:?}");
    }
}
