//! Regenerates the paper's Table II: extension upper bound with and
//! without the DP, on the dense via-field dummy design.
//!
//! ```text
//! cargo run --release -p meander-bench --bin table2
//! ```

use meander_bench::table2::{header, run_table2_case};

fn main() {
    println!("Table II — extension performance with and without DP");
    println!("{}", header());
    for case_no in 1..=6 {
        let row = run_table2_case(case_no);
        println!("{row}");
    }
    println!();
    println!("paper reference (withDP% / withoutDP%):");
    println!("  case 1: 879.30 / 845.80");
    println!("  case 2: 718.79 / 742.16");
    println!("  case 3: 581.42 / 345.62");
    println!("  case 4: 481.14 / 229.79");
    println!("  case 5: 428.33 / 177.92");
    println!("  case 6: 327.41 /  80.20");
}
