//! Regenerates the paper's display figures as SVG files under
//! `target/figures/`:
//!
//! * `fig14a` — length-matched Table I case 1 (result display),
//! * `fig14b` — any-direction bus demo,
//! * `fig15a..f` — Table II cases 1/5/6 with and without DP,
//! * `fig16a` — decoupled pair and its merged median trace,
//! * `fig16b` — meandered median and the restored pair,
//! * `fig09` — the decoupled differential pair itself (input of Fig. 16),
//! * `fig13` — median trace with DTW match lines.
//!
//! ```text
//! cargo run --release -p meander-bench --bin figures
//! ```

use meander_core::baseline::{extend_trace_fixed, FixedTrackOptions};
use meander_core::extend::ExtendInput;
use meander_core::{extend_trace, match_board_group, ExtendConfig};
use meander_geom::{Angle, Point, Polyline, Segment};
use meander_layout::gen::{any_angle_bus, decoupled_pair, table1_case, table2_case};
use meander_layout::svg::{render_board, render_scene, SvgStyle};
use meander_msdtw::{merge_pair, PairGeometry};
use std::fs;
use std::path::Path;

fn save(dir: &Path, name: &str, svg: &str) {
    let path = dir.join(format!("{name}.svg"));
    fs::write(&path, svg).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}

fn main() {
    let dir = Path::new("target/figures");
    fs::create_dir_all(dir).expect("create target/figures");
    let config = ExtendConfig::default();
    let style = SvgStyle::default();

    // ---- Fig. 14a: matched Table I case. ------------------------------
    let mut case = table1_case(1);
    let report = match_board_group(&mut case.board, 0, &config);
    println!(
        "fig14a: case 1 matched, max err {:.2}%, avg {:.2}%",
        report.max_error() * 100.0,
        report.avg_error() * 100.0
    );
    save(
        dir,
        "fig14a_table1_case1_result",
        &render_board(&case.board, &style),
    );

    // ---- Fig. 14b: any-direction functionality. ------------------------
    let mut bus = any_angle_bus(4, Angle::from_degrees(17.0));
    let report = match_board_group(&mut bus, 0, &config);
    println!(
        "fig14b: any-angle bus matched, max err {:.2}%",
        report.max_error() * 100.0
    );
    save(dir, "fig14b_any_direction", &render_board(&bus, &style));

    // ---- Fig. 15: Table II cases 1/5/6, with and without DP. -----------
    for (tag, case_no) in [("a", 1usize), ("b", 5), ("c", 6)] {
        let case = table2_case(case_no);
        let trace = case.board.trace(case.trace).expect("trace").clone();
        let area = case
            .board
            .area(case.trace)
            .expect("area")
            .polygons()
            .to_vec();
        let obstacles: Vec<_> = case
            .board
            .obstacles()
            .iter()
            .map(|o| o.polygon().clone())
            .collect();
        let rules = *trace.rules();
        let input = ExtendInput {
            trace: trace.centerline(),
            target: trace.length() * 50.0,
            rules: &rules,
            area: &area,
            obstacles: &obstacles,
        };
        let big = ExtendConfig {
            max_iterations: 2000,
            ..ExtendConfig::default()
        };

        let dp = extend_trace(&input, &big);
        let mut with_board = case.board.clone();
        with_board
            .trace_mut(case.trace)
            .expect("trace")
            .set_centerline(dp.trace.clone());
        save(
            dir,
            &format!("fig15{tag}_case{case_no}_with_dp"),
            &render_board(&with_board, &style),
        );

        let fixed = extend_trace_fixed(&input, &big, &FixedTrackOptions::default());
        let mut without_board = case.board.clone();
        without_board
            .trace_mut(case.trace)
            .expect("trace")
            .set_centerline(fixed.trace.clone());
        save(
            dir,
            &format!("fig15{}_case{case_no}_without_dp", next_tag(tag)),
            &render_board(&without_board, &style),
        );
        println!(
            "fig15 case {case_no}: DP +{:.1}%, fixed +{:.1}%",
            (dp.achieved / trace.length() - 1.0) * 100.0,
            (fixed.achieved / trace.length() - 1.0) * 100.0
        );
    }

    // ---- Fig. 9 / 13 / 16: MSDTW on the decoupled pair. ----------------
    let pair_case = decoupled_pair(false);
    save(
        dir,
        "fig09_decoupled_pair",
        &render_board(&pair_case.board, &style),
    );

    let p0 = pair_case
        .board
        .trace(pair_case.p)
        .expect("p")
        .centerline()
        .clone();
    let n0 = pair_case
        .board
        .trace(pair_case.n)
        .expect("n")
        .centerline()
        .clone();
    let merged = merge_pair(&PairGeometry::new(&p0, &n0, pair_case.sep0)).expect("merge");

    // Fig. 13: pair + median + match lines.
    let mut lines: Vec<(Polyline, &str, f64)> = vec![
        (p0.clone(), "#4fc3f7", 1.2),
        (n0.clone(), "#4fc3f7", 1.2),
        (merged.median.clone(), "#aed581", 1.6),
    ];
    for m in &merged.matches {
        let a = p0.points()[m.i];
        let b = n0.points()[m.j];
        lines.push((Polyline::new(vec![a, b]), "#f06292", 0.3));
    }
    save(
        dir,
        "fig13_msdtw_matching",
        &render_scene(&lines, &[], 1000.0),
    );

    // Fig. 16a: original pair (white) + merged median (green).
    save(
        dir,
        "fig16a_merged_median",
        &render_scene(
            &[
                (p0.clone(), "#e8eaed", 1.2),
                (n0.clone(), "#e8eaed", 1.2),
                (merged.median.clone(), "#81c784", 1.6),
            ],
            &[],
            1000.0,
        ),
    );

    // Fig. 16b: meander the median, restore the pair.
    let mut board = pair_case.board.clone();
    let report = match_board_group(&mut board, 0, &config);
    println!(
        "fig16b: pair matched via MSDTW, max err {:.2}%",
        report.max_error() * 100.0
    );
    let new_p = board.trace(pair_case.p).expect("p").centerline().clone();
    let new_n = board.trace(pair_case.n).expect("n").centerline().clone();
    // Re-derive the meandered median for display.
    let median_display = merge_pair(&PairGeometry::new(&new_p, &new_n, pair_case.sep0))
        .map(|m| m.median)
        .unwrap_or_else(|_| merged.median.clone());
    save(
        dir,
        "fig16b_restored_pair",
        &render_scene(
            &[
                (median_display, "#e8eaed", 1.2),
                (new_p, "#81c784", 1.2),
                (new_n, "#81c784", 1.2),
            ],
            &[],
            1000.0,
        ),
    );

    // ---- Bonus: Fig. 3-style URA illustration. --------------------------
    let seg = Segment::new(Point::new(0.0, 0.0), Point::new(60.0, 0.0));
    let ura = meander_geom::Polygon::rectangle(Point::new(16.0, 0.0), Point::new(44.0, 22.0));
    let pattern = Polyline::new(vec![
        Point::new(0.0, 0.0),
        Point::new(20.0, 0.0),
        Point::new(20.0, 18.0),
        Point::new(40.0, 18.0),
        Point::new(40.0, 0.0),
        Point::new(60.0, 0.0),
    ]);
    save(
        dir,
        "fig06_ura",
        &render_scene(
            &[
                (Polyline::new(vec![seg.a, seg.b]), "#4fc3f7", 1.0),
                (pattern, "#aed581", 1.0),
            ],
            &[(ura, "#54606e")],
            800.0,
        ),
    );

    println!("figures complete");
}

fn next_tag(tag: &str) -> &'static str {
    match tag {
        "a" => "d",
        "b" => "e",
        _ => "f",
    }
}
