//! Performance baseline: times the matching flow and the DRC scan on the
//! paper's cases plus the large stress board, for each engine configuration,
//! and emits `BENCH_PR1.json` — the first point of the repo's performance
//! trajectory (every future perf PR appends a `BENCH_PR<n>.json` measured
//! the same way).
//!
//! ```text
//! cargo run --release -p meander-bench --bin baseline [out.json]
//! ```
//!
//! Configurations:
//!
//! * `naive`       — rebuild-per-iteration engine, serial driver
//! * `incremental` — indexed engine, serial driver
//! * `parallel`    — indexed engine, parallel driver
//!
//! The headline number is `speedup_incremental = naive / incremental` on
//! the group-matching wall clock, and `speedup_drc = brute / indexed` on
//! the post-matching violation scan.

use meander_core::extend::{extend_trace, ExtendInput};
use meander_core::{match_board_group, ExtendConfig};
use meander_drc::{check_layout_brute, check_layout_indexed, CheckInput, TraceGeometry};
use meander_layout::gen::{stress_board, table1_case, table2_case};
use meander_layout::Board;
use std::fmt::Write as _;
use std::time::Instant;

fn naive_config() -> ExtendConfig {
    ExtendConfig {
        incremental: false,
        parallel: false,
        ..ExtendConfig::default()
    }
}

fn incremental_config() -> ExtendConfig {
    ExtendConfig {
        parallel: false,
        ..ExtendConfig::default()
    }
}

fn parallel_config() -> ExtendConfig {
    ExtendConfig::default()
}

struct CaseRow {
    name: String,
    naive_s: f64,
    incremental_s: f64,
    parallel_s: f64,
    max_err_pct: f64,
    patterns: usize,
}

fn time_match<F: Fn() -> Board>(make: F, config: &ExtendConfig) -> (f64, f64, usize) {
    let mut board = make();
    let t0 = Instant::now();
    let report = match_board_group(&mut board, 0, config);
    let secs = t0.elapsed().as_secs_f64();
    let patterns = report.traces.iter().map(|t| t.patterns).sum();
    (secs, report.max_error() * 100.0, patterns)
}

fn run_case<F: Fn() -> Board>(name: &str, make: F) -> CaseRow {
    let (naive_s, _, _) = time_match(&make, &naive_config());
    let (incremental_s, max_err_pct, patterns) = time_match(&make, &incremental_config());
    let (parallel_s, _, _) = time_match(&make, &parallel_config());
    let row = CaseRow {
        name: name.to_string(),
        naive_s,
        incremental_s,
        parallel_s,
        max_err_pct,
        patterns,
    };
    println!(
        "{:<18} naive {:>9.4}s  incremental {:>9.4}s  parallel {:>9.4}s  (x{:.1} / x{:.1})  maxerr {:.2}%",
        row.name,
        row.naive_s,
        row.incremental_s,
        row.parallel_s,
        row.naive_s / row.incremental_s.max(1e-12),
        row.naive_s / row.parallel_s.max(1e-12),
        row.max_err_pct
    );
    row
}

struct ExtendRow {
    name: String,
    naive_s: f64,
    incremental_s: f64,
    iterations: usize,
    patterns: usize,
}

fn run_extend_case(name: &str, case_no: usize) -> ExtendRow {
    let case = table2_case(case_no);
    let trace = case.board.trace(case.trace).expect("trace").clone();
    let area = case
        .board
        .area(case.trace)
        .expect("area")
        .polygons()
        .to_vec();
    let obstacles: Vec<meander_geom::Polygon> = case
        .board
        .obstacles()
        .iter()
        .map(|o| o.polygon().clone())
        .collect();
    let rules = *trace.rules();
    let target = trace.length() * 50.0;
    let input = ExtendInput {
        trace: trace.centerline(),
        target,
        rules: &rules,
        area: &area,
        obstacles: &obstacles,
    };
    let long_run = |mut c: ExtendConfig| {
        c.max_iterations = 2000;
        c
    };

    let t0 = Instant::now();
    let slow = extend_trace(&input, &long_run(naive_config()));
    let naive_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let fast = extend_trace(&input, &long_run(incremental_config()));
    let incremental_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        slow.patterns, fast.patterns,
        "{name}: engines must agree on pattern count"
    );
    println!(
        "{:<18} naive {:>9.4}s  incremental {:>9.4}s  (x{:.1})  {} iters, {} patterns",
        name,
        naive_s,
        incremental_s,
        naive_s / incremental_s.max(1e-12),
        fast.iterations,
        fast.patterns
    );
    ExtendRow {
        name: name.to_string(),
        naive_s,
        incremental_s,
        iterations: fast.iterations,
        patterns: fast.patterns,
    }
}

struct DrcRow {
    name: String,
    brute_s: f64,
    indexed_s: f64,
    violations: usize,
    segments: usize,
}

fn run_drc_case(name: &str, board: &Board) -> DrcRow {
    let input = CheckInput {
        traces: board
            .traces()
            .map(|(id, t)| TraceGeometry {
                id: id.0,
                centerline: t.centerline().clone(),
                width: t.width(),
                rules: *t.rules(),
                area: board
                    .area(id)
                    .map(|a| a.polygons().to_vec())
                    .unwrap_or_default(),
                coupled_with: vec![],
            })
            .collect(),
        obstacles: board
            .obstacles()
            .iter()
            .map(|o| o.polygon().clone())
            .collect(),
    };
    let segments: usize = input
        .traces
        .iter()
        .map(|t| t.centerline.segment_count())
        .sum();

    let t0 = Instant::now();
    let brute = check_layout_brute(&input);
    let brute_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let indexed = check_layout_indexed(&input);
    let indexed_s = t0.elapsed().as_secs_f64();
    assert_eq!(brute, indexed, "{name}: DRC paths must agree exactly");
    println!(
        "{:<18} brute {:>9.4}s  indexed {:>9.4}s  (x{:.1})  {} segments, {} violations",
        name,
        brute_s,
        indexed_s,
        brute_s / indexed_s.max(1e-12),
        segments,
        brute.len()
    );
    DrcRow {
        name: name.to_string(),
        brute_s,
        indexed_s,
        violations: brute.len(),
        segments,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR1.json".to_string());

    println!("== group matching (naive vs incremental vs parallel) ==");
    let mut rows: Vec<CaseRow> = Vec::new();
    for case_no in 1..=5usize {
        rows.push(run_case(&format!("table1:{case_no}"), || {
            table1_case(case_no).board
        }));
    }
    rows.push(run_case("stress:small", || {
        stress_board(12, 30, 200, 11).board
    }));
    rows.push(run_case("stress:large", || {
        stress_board(16, 40, 300, 12).board
    }));

    println!("\n== single-trace extension (table2 upper-bound hunts) ==");
    let mut extend_rows: Vec<ExtendRow> = Vec::new();
    for case_no in 1..=6usize {
        extend_rows.push(run_extend_case(&format!("table2:{case_no}"), case_no));
    }

    println!("\n== DRC scan on matched boards (brute vs indexed) ==");
    let mut drc_rows: Vec<DrcRow> = Vec::new();
    for (name, mut board) in [
        ("table1:4", table1_case(4).board),
        ("stress:large", stress_board(16, 40, 300, 12).board),
    ] {
        let _ = match_board_group(&mut board, 0, &parallel_config());
        drc_rows.push(run_drc_case(name, &board));
    }

    // Headline: geometric-mean speedups.
    let gmean =
        |xs: &[f64]| -> f64 { (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp() };
    let match_speedups: Vec<f64> = rows
        .iter()
        .map(|r| r.naive_s / r.incremental_s.max(1e-12))
        .collect();
    let drc_speedups: Vec<f64> = drc_rows
        .iter()
        .map(|r| r.brute_s / r.indexed_s.max(1e-12))
        .collect();
    println!(
        "\ngeomean speedup: matching x{:.1}, drc x{:.1}",
        gmean(&match_speedups),
        gmean(&drc_speedups)
    );

    // ---- JSON emission (hand-rolled; no serde offline). ------------------
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema\": \"meander-bench-baseline/1\",");
    let _ = writeln!(j, "  \"pr\": 1,");
    let _ = writeln!(
        j,
        "  \"geomean_matching_speedup\": {:.3},",
        gmean(&match_speedups)
    );
    let _ = writeln!(j, "  \"geomean_drc_speedup\": {:.3},", gmean(&drc_speedups));
    let _ = writeln!(j, "  \"group_matching\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"case\": \"{}\", \"naive_s\": {:.6}, \"incremental_s\": {:.6}, \"parallel_s\": {:.6}, \"speedup_incremental\": {:.3}, \"speedup_parallel\": {:.3}, \"max_err_pct\": {:.4}, \"patterns\": {}}}{}",
            r.name,
            r.naive_s,
            r.incremental_s,
            r.parallel_s,
            r.naive_s / r.incremental_s.max(1e-12),
            r.naive_s / r.parallel_s.max(1e-12),
            r.max_err_pct,
            r.patterns,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"single_trace_extension\": [");
    for (i, r) in extend_rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"case\": \"{}\", \"naive_s\": {:.6}, \"incremental_s\": {:.6}, \"speedup\": {:.3}, \"iterations\": {}, \"patterns\": {}}}{}",
            r.name,
            r.naive_s,
            r.incremental_s,
            r.naive_s / r.incremental_s.max(1e-12),
            r.iterations,
            r.patterns,
            if i + 1 < extend_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"drc_scan\": [");
    for (i, r) in drc_rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"case\": \"{}\", \"brute_s\": {:.6}, \"indexed_s\": {:.6}, \"speedup\": {:.3}, \"segments\": {}, \"violations\": {}}}{}",
            r.name,
            r.brute_s,
            r.indexed_s,
            r.brute_s / r.indexed_s.max(1e-12),
            r.segments,
            r.violations,
            if i + 1 < drc_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");

    std::fs::write(&out_path, &j).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path}");
}
